#!/usr/bin/env python3
"""Compare nightly soak throughput artifacts against the previous run.

The nightly-soak CI job uploads one ``soak_*.txt`` per runtime/mode, each a
flat ``key=value`` stream printed by ``examples/recorded_soak`` (keys ending
in ``_events_per_sec`` are throughputs; ``soak.window_mode`` / ``soak.policy``
make the artifacts self-describing). This tool diffs the current artifacts
against the previous nightly's and FAILS (exit 1) when any throughput
regressed by more than the threshold.

The default threshold is deliberately loose (25%): the CI runners are
shared single-tenant VMs and the repository's one-core growth box measures
per-event overhead, not contention (see ROADMAP "Single-core CI caveat"),
so day-to-day noise is large. The gate exists to catch step-function
regressions (an accidental O(n) in the drain, a lock reintroduced on the
hot path), not percent-level drift.

Exit codes: 0 ok / no previous data, 1 regression found, 2 usage error.

    tools/soak_trend.py --prev prev_artifacts/ --curr . [--threshold 0.25]
"""

import argparse
import pathlib
import sys


def parse_soak_file(path: pathlib.Path) -> dict:
    """Parse a key=value soak artifact; returns {} if unparseable."""
    out = {}
    try:
        for line in path.read_text().splitlines():
            if "=" not in line:
                continue
            key, _, value = line.partition("=")
            out[key.strip()] = value.strip()
    except OSError as err:
        print(f"soak_trend: cannot read {path}: {err}", file=sys.stderr)
    return out


def throughputs(record: dict) -> dict:
    """The comparable metrics: every *_events_per_sec key, as float."""
    out = {}
    for key, value in record.items():
        if not key.endswith("_events_per_sec"):
            continue
        try:
            out[key] = float(value)
        except ValueError:
            pass
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--prev", required=True,
                        help="directory holding the previous run's soak_*.txt")
    parser.add_argument("--curr", required=True,
                        help="directory holding this run's soak_*.txt")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that fails the job "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    prev_dir = pathlib.Path(args.prev)
    curr_dir = pathlib.Path(args.curr)
    if not curr_dir.is_dir():
        print(f"soak_trend: --curr {curr_dir} is not a directory",
              file=sys.stderr)
        return 2

    curr_files = sorted(curr_dir.glob("soak_*.txt"))
    if not curr_files:
        print(f"soak_trend: no soak_*.txt under {curr_dir}", file=sys.stderr)
        return 2
    if not prev_dir.is_dir() or not sorted(prev_dir.glob("soak_*.txt")):
        # First run / expired artifacts: nothing to compare against.
        print("soak_trend: no previous artifacts; baseline recorded, "
              "nothing to compare")
        return 0

    regressions = []
    rows = []
    for curr_path in curr_files:
        prev_path = prev_dir / curr_path.name
        if not prev_path.exists():
            rows.append((curr_path.name, "-", "-", "-", "new artifact"))
            continue
        prev = throughputs(parse_soak_file(prev_path))
        curr = throughputs(parse_soak_file(curr_path))
        for key in sorted(set(prev) & set(curr)):
            if prev[key] <= 0:
                continue
            ratio = curr[key] / prev[key]
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                regressions.append((curr_path.name, key, prev[key], curr[key]))
            rows.append((curr_path.name, key,
                         f"{prev[key]:,.0f}", f"{curr[key]:,.0f}",
                         f"{status} ({ratio:.1%} of previous)"))

    name_w = max((len(r[0]) for r in rows), default=10)
    key_w = max((len(r[1]) for r in rows), default=10)
    for name, key, prev_v, curr_v, status in rows:
        print(f"{name:<{name_w}}  {key:<{key_w}}  prev={prev_v:>14}  "
              f"curr={curr_v:>14}  {status}")

    if regressions:
        print(f"\nsoak_trend: {len(regressions)} throughput metric(s) "
              f"regressed more than {args.threshold:.0%} "
              "(loose floor; single-core runners — see ROADMAP caveat)",
              file=sys.stderr)
        return 1
    print("\nsoak_trend: all throughputs within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
