// Cross-runtime conformance fuzz: every runtime × every resolver policy ×
// {streaming monitor, sharded driver, exact check_opacity}, via
// core::check_conformance (core/conformance.hpp).
//
// The acceptance bar of the window-free work lives here: on >= 150 fuzz
// seeds, a window-free tl2 recording of a deterministic schedule must be
// BYTE-EQUAL to the windowed recording of the identical schedule (the
// window changes locking, never content — stamps included), and every
// engine must return the same verdict and first condemned position on it.
// Genuinely concurrent window-free runs (where records really drift) must
// certify under the stamped policies, and corrupted recordings must flag
// equivalently everywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/conformance.hpp"
#include "core/random_history.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace optm::core {
namespace {

// --- deterministic seeded schedules -----------------------------------------
//
// Logical processes driven from one OS thread (the repo's exact-
// interleaving idiom, §6.1): the interleaving, operations, and values are
// a pure function of the seed, so the same schedule can be replayed
// against any non-blocking runtime in any recording mode.

struct ScheduleParams {
  std::uint64_t seed = 1;
  std::uint32_t procs = 3;
  std::uint32_t txs_per_proc = 2;
  std::uint32_t max_ops_per_tx = 3;
  std::uint32_t vars = 4;
  double write_prob = 0.5;
  double voluntary_abort_prob = 0.1;
};

void drive_schedule(stm::Stm& stm, const ScheduleParams& p) {
  util::Xoshiro256 rng(p.seed);
  struct Proc {
    std::unique_ptr<sim::ThreadCtx> ctx;
    std::uint32_t txs_done = 0;
    std::uint32_t ops_left = 0;
    bool in_tx = false;
    bool vol_abort = false;
  };
  std::vector<Proc> procs(p.procs);
  for (std::uint32_t i = 0; i < p.procs; ++i) {
    procs[i].ctx = std::make_unique<sim::ThreadCtx>(i);
  }
  std::uint64_t unique = 0;
  for (;;) {
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < p.procs; ++i) {
      if (procs[i].in_tx || procs[i].txs_done < p.txs_per_proc) {
        ready.push_back(i);
      }
    }
    if (ready.empty()) break;
    Proc& pr = procs[ready[rng.below(ready.size())]];
    sim::ThreadCtx& ctx = *pr.ctx;
    if (!pr.in_tx) {
      stm.begin(ctx);
      pr.in_tx = true;
      pr.ops_left = 1 + static_cast<std::uint32_t>(rng.below(p.max_ops_per_tx));
      pr.vol_abort = rng.chance(p.voluntary_abort_prob);
      continue;
    }
    if (pr.ops_left > 0) {
      --pr.ops_left;
      const auto var = static_cast<stm::VarId>(rng.below(p.vars));
      bool ok = false;
      if (rng.chance(p.write_prob)) {
        ok = stm.write(ctx, var, 1000 + ++unique);  // value-unique
      } else {
        std::uint64_t out = 0;
        ok = stm.read(ctx, var, out);
      }
      if (!ok) {  // forcefully aborted mid-operation: transaction over
        pr.in_tx = false;
        ++pr.txs_done;
      }
      continue;
    }
    if (pr.vol_abort) {
      stm.abort(ctx);
    } else {
      (void)stm.commit(ctx);
    }
    pr.in_tx = false;
    ++pr.txs_done;
  }
}

[[nodiscard]] History record_schedule(const std::string& name,
                                      const ScheduleParams& p,
                                      bool window_free,
                                      std::uint32_t stamp_batch = 1) {
  const auto stm = stm::make_stm(name, p.vars);
  EXPECT_EQ(stm->set_window_free(window_free), true)
      << name << " did not honor window mode";
  stm::Recorder recorder(p.vars, stm::Recorder::Options{stamp_batch});
  stm->set_recorder(&recorder);
  drive_schedule(*stm, p);
  return recorder.history();
}

constexpr std::uint64_t kScheduleSeeds = 150;  // the acceptance bar

[[nodiscard]] ScheduleParams schedule_params(std::uint64_t seed) {
  ScheduleParams p;
  p.seed = seed;
  return p;
}

// The acceptance criterion: window-free tl2 recording of a deterministic
// schedule is byte-equal to the windowed recording of the identical
// schedule, and monitor, sharded driver and check_opacity all agree on it
// under every policy.
TEST(ConformanceFuzz, WindowFreeTl2MatchesWindowedOnDeterministicSchedules) {
  ConformanceOptions options;
  options.policies = {
      VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kBlindWriteSmart,
      VersionOrderPolicy::kSnapshotRank, VersionOrderPolicy::kStampedRead};
  std::size_t stamped_reads = 0;
  for (std::uint64_t seed = 1; seed <= kScheduleSeeds; ++seed) {
    const ScheduleParams p = schedule_params(seed);
    const History windowed = record_schedule("tl2", p, /*window_free=*/false);
    const History window_free = record_schedule("tl2", p, /*window_free=*/true);

    // Byte-equivalence: the window changes recorder locking, never what is
    // recorded — stamps and read-stamp pairs included.
    ASSERT_EQ(windowed.size(), window_free.size()) << "seed " << seed;
    for (std::size_t i = 0; i < windowed.size(); ++i) {
      ASSERT_EQ(windowed[i], window_free[i])
          << "seed " << seed << " event " << i << ": "
          << to_string(windowed[i]) << " vs " << to_string(window_free[i]);
      if (windowed[i].kind == EventKind::kResponse &&
          windowed[i].op == OpCode::kRead && windowed[i].stamp != 0) {
        ++stamped_reads;
      }
    }

    // Every engine agrees, and a correct runtime's recording certifies
    // under every policy (deterministic single-thread driving: commit
    // order and stamp order coincide).
    const ConformanceReport report = check_conformance(window_free, options);
    ASSERT_TRUE(report.ok) << "seed " << seed << ": " << report.divergence
                           << "\n" << window_free.str();
    for (const PolicyConformance& pc : report.policies) {
      EXPECT_TRUE(pc.monitor.certified)
          << "seed " << seed << " " << to_string(pc.policy) << ": "
          << pc.monitor.reason << "\n" << window_free.str();
    }
    ASSERT_EQ(report.exact, Verdict::kYes)
        << "seed " << seed << ": " << report.exact_reason;
  }
  // The fuzz set must actually exercise the stamped-read machinery.
  EXPECT_GE(stamped_reads, kScheduleSeeds);
  RecordProperty("stamped_reads", static_cast<int>(stamped_reads));
}

// The acceptance bar of the orec-stamp work, mirroring the tl2 test above:
// windowed and window-free recordings of identical deterministic schedules
// must be BYTE-EQUAL for the ownership-record runtimes (dstm, astm — reads
// stamped with their validation snapshot and CAS-acquired orec version)
// and for mv (update commits now ticket before validating), and every
// engine must agree on them under every policy. The write-heavy parameter
// set drives real contention-manager kills and orec steals through the
// deterministic interleaving, so the abort paths record too.
TEST(ConformanceFuzz, WindowFreeOrecAndMvMatchWindowedOnDeterministicSchedules) {
  ConformanceOptions options;
  options.policies = {
      VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kBlindWriteSmart,
      VersionOrderPolicy::kSnapshotRank, VersionOrderPolicy::kStampedRead};
  for (const char* name : {"dstm", "astm", "mv"}) {
    std::size_t stamped_reads = 0;
    for (std::uint64_t seed = 1; seed <= kScheduleSeeds; ++seed) {
      ScheduleParams p = schedule_params(seed);
      p.write_prob = 0.6;  // orec duels and steals need write-write conflict
      const History windowed = record_schedule(name, p, /*window_free=*/false);
      const History window_free = record_schedule(name, p, /*window_free=*/true);

      ASSERT_EQ(windowed.size(), window_free.size()) << name << " seed " << seed;
      for (std::size_t i = 0; i < windowed.size(); ++i) {
        ASSERT_EQ(windowed[i], window_free[i])
            << name << " seed " << seed << " event " << i << ": "
            << to_string(windowed[i]) << " vs " << to_string(window_free[i]);
        if (windowed[i].kind == EventKind::kResponse &&
            windowed[i].op == OpCode::kRead && windowed[i].stamp != 0) {
          ++stamped_reads;
        }
      }

      const ConformanceReport report = check_conformance(window_free, options);
      ASSERT_TRUE(report.ok) << name << " seed " << seed << ": "
                             << report.divergence << "\n" << window_free.str();
      for (const PolicyConformance& pc : report.policies) {
        EXPECT_TRUE(pc.monitor.certified)
            << name << " seed " << seed << " " << to_string(pc.policy) << ": "
            << pc.monitor.reason << "\n" << window_free.str();
      }
      ASSERT_EQ(report.exact, Verdict::kYes)
          << name << " seed " << seed << ": " << report.exact_reason;
    }
    // Each runtime's fuzz set must actually exercise its stamp source.
    EXPECT_GE(stamped_reads, kScheduleSeeds) << name;
  }
}

// The batch-stamping acceptance bar (Recorder::Options::stamp_batch): a
// recording thread drawing ONE global-clock ticket per batch of events
// must change only how many tickets are drawn, never what is recorded.
// Under the strict batch seqlock (a lane extends its batch only while its
// ticket is still the latest one drawn), the drained stream stays in
// real-time stamp-draw order, so the batch recording of a deterministic
// schedule is BYTE-EQUAL to the per-event recording — which makes every
// engine's verdict and first flag position on it identical by
// construction. The sweep proves it on the full 150-seed set, for every
// stamping runtime, windowed and window-free, at N in {3, 8, 64}; a
// sub-sampled conformance pass re-runs the verdict path end to end on
// batch-stamped recordings.
TEST(ConformanceFuzz, BatchStampedRecordingsMatchPerEventStamping) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  for (const char* name : {"tl2", "tiny", "norec", "dstm", "astm", "mv"}) {
    for (const bool window_free : {false, true}) {
      for (std::uint64_t seed = 1; seed <= kScheduleSeeds; ++seed) {
        ScheduleParams p = schedule_params(seed);
        p.write_prob = 0.6;  // drive aborts/steals through the batch paths
        const History per_event =
            record_schedule(name, p, window_free, /*stamp_batch=*/1);
        for (const std::uint32_t batch : {3u, 8u, 64u}) {
          const History batched = record_schedule(name, p, window_free, batch);
          ASSERT_EQ(per_event.size(), batched.size())
              << name << (window_free ? " window-free" : " windowed")
              << " seed " << seed << " batch " << batch;
          for (std::size_t i = 0; i < per_event.size(); ++i) {
            ASSERT_EQ(per_event[i], batched[i])
                << name << (window_free ? " window-free" : " windowed")
                << " seed " << seed << " batch " << batch << " event " << i
                << ": " << to_string(per_event[i]) << " vs "
                << to_string(batched[i]);
          }
        }
        // Byte-equality makes engine agreement a corollary; spot-run the
        // full conformance stack anyway so monitor, sharded driver and
        // exact checker all actually ingest batch-stamped recordings.
        if (seed % 25 == 0) {
          const History batched =
              record_schedule(name, p, window_free, /*stamp_batch=*/8);
          const ConformanceReport report = check_conformance(batched, options);
          ASSERT_TRUE(report.ok)
              << name << " seed " << seed << ": " << report.divergence << "\n"
              << batched.str();
          for (const PolicyConformance& pc : report.policies) {
            EXPECT_TRUE(pc.monitor.certified)
                << name << " seed " << seed << " " << to_string(pc.policy)
                << ": " << pc.monitor.reason << "\n" << batched.str();
          }
          ASSERT_EQ(report.exact, Verdict::kYes)
              << name << " seed " << seed << ": " << report.exact_reason;
        }
      }
    }
  }
}

// The same deterministic schedules replayed window-free on the other
// stamping runtimes: tiny (snapshot extension moves rv mid-transaction)
// and norec (value validation — version half of the pair absent).
TEST(ConformanceFuzz, WindowFreeTinyAndNorecCertifyOnDeterministicSchedules) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  for (const char* name : {"tiny", "norec"}) {
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      const History h = record_schedule(name, schedule_params(seed),
                                        /*window_free=*/true);
      const ConformanceReport report = check_conformance(h, options);
      ASSERT_TRUE(report.ok)
          << name << " seed " << seed << ": " << report.divergence << "\n"
          << h.str();
      for (const PolicyConformance& pc : report.policies) {
        EXPECT_TRUE(pc.monitor.certified)
            << name << " seed " << seed << " " << to_string(pc.policy) << ": "
            << pc.monitor.reason << "\n" << h.str();
      }
      ASSERT_EQ(report.exact, Verdict::kYes)
          << name << " seed " << seed << ": " << report.exact_reason;
    }
  }
}

// Windowed sweep across every deterministically drivable runtime: the
// conformance contracts must hold whatever the runtime's recording
// discipline (record-order stamps, snapshot stamps, or none).
TEST(ConformanceFuzz, EveryRuntimeConformsOnDeterministicSchedules) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  for (const char* name :
       {"tl2", "tiny", "norec", "dstm", "astm", "visible", "mv"}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const History h = record_schedule(name, schedule_params(seed),
                                        /*window_free=*/false);
      const ConformanceReport report = check_conformance(h, options);
      ASSERT_TRUE(report.ok)
          << name << " seed " << seed << ": " << report.divergence << "\n"
          << h.str();
      EXPECT_TRUE(report.certified(VersionOrderPolicy::kCommitOrder))
          << name << " seed " << seed << "\n" << h.str();
      ASSERT_EQ(report.exact, Verdict::kYes)
          << name << " seed " << seed << ": " << report.exact_reason;
    }
  }
}

// The window-free capability matrix, one row per factory runtime: exactly
// the six stamping runtimes — clock-validated (tl2, tiny, norec), orec
// (dstm, astm) and multi-version (mv) — honor set_window_free(true); the
// other five must refuse AND stay windowed rather than silently record
// unsound histories.
TEST(ConformanceFuzz, WindowFreeCapabilityMatrix) {
  struct Row {
    const char* name;
    bool window_free_capable;
  };
  static constexpr Row kMatrix[] = {
      {"tl2", true},      {"tiny", true},  {"norec", true},
      {"dstm", true},     {"astm", true},  {"mv", true},
      {"visible", false}, {"weak", false}, {"sistm", false},
      {"glock", false},   {"twopl", false},
  };
  for (const Row& row : kMatrix) {
    const auto stm = stm::make_stm(row.name, 4);
    EXPECT_EQ(stm->set_window_free(true), row.window_free_capable) << row.name;
    EXPECT_EQ(stm->window_free(), row.window_free_capable)
        << row.name << (row.window_free_capable ? " refused window-free mode"
                                                : " went window-free unsoundly");
    // Switching back off always succeeds and always lands windowed.
    EXPECT_TRUE(stm->set_window_free(false)) << row.name;
    EXPECT_FALSE(stm->window_free()) << row.name;
  }
}

// Corrupted recordings: a lying stamp is caught by kStampedRead (and only
// by it — the corruption leaves the history opaque), a lying value by
// every policy, with monitor and driver agreeing throughout.
TEST(ConformanceFuzz, CorruptedWindowFreeRecordingsFlagEquivalently) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  std::size_t ver_corrupted = 0;
  std::size_t ret_corrupted = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const History h = record_schedule("tl2", schedule_params(seed),
                                      /*window_free=*/true);

    // (a) Corrupt the version half of the first stamped read: the value
    // still resolves, so only the stamp cross-check can object.
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse &&
            e.op == OpCode::kRead && e.stamp != 0 &&
            e.ver != kNoReadVersion) {
          copy.ver = e.ver + 7;
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        ++ver_corrupted;
        const ConformanceReport report = check_conformance(bad, options);
        ASSERT_TRUE(report.ok)
            << "seed " << seed << ": " << report.divergence << "\n" << bad.str();
        EXPECT_TRUE(report.certified(VersionOrderPolicy::kCommitOrder));
        EXPECT_TRUE(report.certified(VersionOrderPolicy::kSnapshotRank));
        EXPECT_FALSE(report.certified(VersionOrderPolicy::kStampedRead))
            << "seed " << seed << ": a corrupted read stamp went unnoticed\n"
            << bad.str();
        EXPECT_EQ(report.exact, Verdict::kYes) << "seed " << seed;
      }
    }

    // (a') The wrap attack: ver = 2^63 + true_ver makes 2·ver wrap back to
    // the true open rank — the magnitude guard must still flag it.
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse &&
            e.op == OpCode::kRead && e.stamp != 0 &&
            e.ver != kNoReadVersion) {
          copy.ver = e.ver + (std::uint64_t{1} << 63);
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        const ConformanceReport report = check_conformance(bad, options);
        ASSERT_TRUE(report.ok)
            << "seed " << seed << ": " << report.divergence << "\n" << bad.str();
        EXPECT_FALSE(report.certified(VersionOrderPolicy::kStampedRead))
            << "seed " << seed << ": a wrapping version claim went unnoticed\n"
            << bad.str();
      }
    }

    // (b) Corrupt a read's return value to one never written: a §5.4
    // consistency violation every policy must flag and the exact checker
    // must confirm as non-opaque.
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse &&
            e.op == OpCode::kRead) {
          copy.ret = 999'999'999;
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        ++ret_corrupted;
        const ConformanceReport report = check_conformance(bad, options);
        ASSERT_TRUE(report.ok)
            << "seed " << seed << ": " << report.divergence << "\n" << bad.str();
        for (const PolicyConformance& pc : report.policies) {
          EXPECT_FALSE(pc.monitor.certified)
              << "seed " << seed << " " << to_string(pc.policy);
        }
        EXPECT_EQ(report.exact, Verdict::kNo) << "seed " << seed;
      }
    }
  }
  EXPECT_GE(ver_corrupted, 25u);  // most seeds have a stamped read
  EXPECT_GE(ret_corrupted, 25u);
}

// The orec-side corruption sweep, on window-free dstm recordings: a lying
// orec version word, a replayed stale snapshot stamp (the shape a stolen
// orec's leftover stamp would take), and the 2·ver wrap attack. Each
// corruption leaves the history opaque — the lie is in the stamps — so
// exactly kStampedRead must flag it, every engine agreeing, and the exact
// checker must still answer kYes.
TEST(ConformanceFuzz, CorruptedOrecStampsFlagUnderStampedReadOnly) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  std::size_t lying_ver = 0;
  std::size_t replayed_stamp = 0;
  std::size_t wrapped_ver = 0;
  const auto check_caught = [&](const History& bad, std::uint64_t seed,
                                const char* what) {
    const ConformanceReport report = check_conformance(bad, options);
    ASSERT_TRUE(report.ok)
        << what << " seed " << seed << ": " << report.divergence << "\n"
        << bad.str();
    EXPECT_TRUE(report.certified(VersionOrderPolicy::kCommitOrder))
        << what << " seed " << seed;
    EXPECT_TRUE(report.certified(VersionOrderPolicy::kSnapshotRank))
        << what << " seed " << seed;
    EXPECT_FALSE(report.certified(VersionOrderPolicy::kStampedRead))
        << what << " seed " << seed << " went unnoticed\n" << bad.str();
    EXPECT_EQ(report.exact, Verdict::kYes) << what << " seed " << seed;
  };
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ScheduleParams p = schedule_params(seed);
    p.write_prob = 0.6;
    const History h = record_schedule("dstm", p, /*window_free=*/true);

    // (a) Lying orec version: the value still resolves, only the
    // version-identity cross-check can object.
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
            e.stamp != 0 && e.ver != kNoReadVersion) {
          copy.ver = e.ver + 7;
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        ++lying_ver;
        check_caught(bad, seed, "lying orec ver");
      }
    }

    // (b) Stolen-orec stamp replay: a read claims a snapshot predating the
    // version it resolves to (stamp 1 = "before any commit"), the shape a
    // stamp copied from before the orec was rewritten would take. Needs a
    // read of a non-initial version (ver > 0), so the open rank 2·ver
    // exceeds the replayed snapshot.
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
            e.stamp != 0 && e.ver != kNoReadVersion && e.ver > 0) {
          copy.stamp = 1;
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        ++replayed_stamp;
        check_caught(bad, seed, "replayed stamp");
      }
    }

    // (c) The 2·ver wrap attack, from the orec stamp source: ver = 2^63 +
    // true_ver would alias back to the true open rank without the shared
    // magnitude guard (core::read_stamp_names_version).
    {
      History bad(h.model());
      bool done = false;
      for (const Event& e : h.events()) {
        Event copy = e;
        if (!done && e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
            e.stamp != 0 && e.ver != kNoReadVersion) {
          copy.ver = e.ver + (std::uint64_t{1} << 63);
          done = true;
        }
        bad.append(copy);
      }
      if (done) {
        ++wrapped_ver;
        check_caught(bad, seed, "wrapped ver");
      }
    }
  }
  // The write-heavy schedules must surface enough stamped reads (and
  // non-initial versions) for each corruption shape to be exercised.
  EXPECT_GE(lying_ver, 25u);
  EXPECT_GE(replayed_stamp, 15u);
  EXPECT_GE(wrapped_ver, 25u);
}

// The drift shapes window-free recording actually produces, hand-built so
// they are exercised deterministically even on a single-core runner:
// T_a (wv=2) and T_b (wv=3) commit disjoint registers with their C records
// INVERTED (T_a descheduled between its clock advance and its push), and a
// reader at snapshot rv=2 whose x1 response drifted past T_b's closing C.
// In record order the reader's window is empty — the commit-order policy
// falsely flags — but the stamps place every read inside its version's
// stamp interval and the snapshot point 2·rv+1=5 inside the window, so the
// stamped policies certify what the exact checker confirms is opaque.
TEST(ConformanceFuzz, DriftedTl2RecordsCertifyOnStampsNotPositions) {
  History h(ObjectModel::registers(2, 0));
  // T0 commits x1=5 (wv=1, stamp 2).
  h.append(ev::inv(1, 1, OpCode::kWrite, 5)).append(ev::ret(1, 1, OpCode::kWrite, 5, 0));
  h.append(ev::try_commit(1)).append(ev::commit(1, 2));
  // Reader T4 invokes its x1 read and samples 5 BEFORE T_b locks x1...
  h.append(ev::inv(4, 1, OpCode::kRead));
  // ...then T_a (wv=2, x0=7) and T_b (wv=3, x1=9) commit, records inverted.
  h.append(ev::inv(2, 0, OpCode::kWrite, 7)).append(ev::ret(2, 0, OpCode::kWrite, 7, 0));
  h.append(ev::try_commit(2));
  h.append(ev::inv(3, 1, OpCode::kWrite, 9)).append(ev::ret(3, 1, OpCode::kWrite, 9, 0));
  h.append(ev::try_commit(3)).append(ev::commit(3, 6));
  h.append(ev::commit(2, 4));
  // The reader's drifted x1 response (rv=2, version 1), then its x0 read
  // of T_a's version, then its read-only commit at the snapshot point.
  h.append(ev::ret(4, 1, OpCode::kRead, 0, 5, /*stamp=*/5, /*ver=*/1));
  h.append(ev::inv(4, 0, OpCode::kRead));
  h.append(ev::ret(4, 0, OpCode::kRead, 0, 7, /*stamp=*/5, /*ver=*/2));
  h.append(ev::try_commit(4)).append(ev::commit(4, 5));

  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  const ConformanceReport report = check_conformance(h, options);
  ASSERT_TRUE(report.ok) << report.divergence << "\n" << h.str();
  EXPECT_FALSE(report.certified(VersionOrderPolicy::kCommitOrder))
      << "the drift should empty the record-order window";
  EXPECT_TRUE(report.certified(VersionOrderPolicy::kSnapshotRank)) << h.str();
  EXPECT_TRUE(report.certified(VersionOrderPolicy::kStampedRead)) << h.str();
  ASSERT_EQ(report.exact, Verdict::kYes) << report.exact_reason;

  // The false flag is the snapshot-empty kind, at the drifted response.
  for (const PolicyConformance& pc : report.policies) {
    if (pc.policy == VersionOrderPolicy::kCommitOrder) {
      EXPECT_EQ(pc.monitor.kind, CertFlagKind::kSnapshotEmpty)
          << pc.monitor.reason;
    }
  }
}

// --- genuinely concurrent recordings ----------------------------------------
//
// Real threads, real drift: without windows a read response can land after
// the C that overwrote its version, and C records can land out of wv
// order. The stamped policies must certify anyway (this is the TSan
// surface for the dropped window lock, too — including the orec runtimes'
// kCommitting hand-off and MvStm's lock → ticket → validate commit).
TEST(ConformanceFuzz, ConcurrentWindowFreeRunsCertifyUnderStampedPolicies) {
  for (const char* name : {"tl2", "tiny", "norec", "dstm", "astm", "mv"}) {
    for (const bool window_free : {false, true}) {
      const auto stm = stm::make_stm(name, 8);
      ASSERT_TRUE(stm->set_window_free(window_free)) << name;
      stm::Recorder recorder(8);
      stm->set_recorder(&recorder);

      wl::MixParams params;
      params.threads = 3;
      params.vars = 8;
      params.txs_per_thread = 80;
      params.seed = 31337 + (window_free ? 1 : 0);
      (void)wl::run_random_mix(*stm, params);

      const History h = recorder.history();
      std::string why;
      ASSERT_TRUE(h.well_formed(&why)) << name << ": " << why;

      ConformanceOptions options;
      options.policies = {VersionOrderPolicy::kSnapshotRank,
                          VersionOrderPolicy::kStampedRead};
      if (!window_free) {
        options.policies.push_back(VersionOrderPolicy::kCommitOrder);
      }
      options.exact_max_txs = 0;  // exponential checker: recordings too big
      const ConformanceReport report = check_conformance(h, options);
      ASSERT_TRUE(report.ok)
          << name << (window_free ? " window-free" : " windowed") << ": "
          << report.divergence;
      for (const PolicyConformance& pc : report.policies) {
        EXPECT_TRUE(pc.monitor.certified)
            << name << (window_free ? " window-free" : " windowed") << " "
            << to_string(pc.policy) << ": flagged at " << pc.monitor.pos
            << ": " << pc.monitor.reason;
      }
    }
  }
}

// Batch stamping under real concurrency, through the shared DrainPump
// loop: producers record window-free while the pump drains mid-run,
// exercising the open-batch stall (drain parks at a ticket whose batch a
// producer is still extending) and the partial-prefix emission that keeps
// approx_pending() honest at quiescence. The monitor must certify, the
// pump must see every recorded event exactly once, tickets must actually
// amortize, and the offline stack must agree on the assembled history.
// This test (with the deterministic sweep above) is the TSan surface for
// the batch seqlock — both ride the conformance_fuzz_test TSan CI job.
TEST(ConformanceFuzz, ConcurrentBatchStampedRunsCertifyThroughDrainPump) {
  for (const char* name : {"tl2", "dstm"}) {
    for (const std::uint32_t batch : {3u, 8u}) {
      const auto stm = stm::make_stm(name, 8);
      ASSERT_TRUE(stm->set_window_free(true)) << name;
      stm::Recorder recorder(8, stm::Recorder::Options{batch});
      stm->set_recorder(&recorder);

      core::OnlineCertificateMonitor monitor(recorder.model(),
                                             VersionOrderPolicy::kStampedRead);
      History h(recorder.model());
      stm::MonitorSink monitor_sink(monitor);
      stm::HistoryAppendSink history_sink(h);
      stm::TeeSink tee{&monitor_sink, &history_sink};

      std::atomic<bool> done{false};
      stm::DrainPump pump(recorder, tee);
      stm::DrainPump::Stats stats;
      std::thread verifier([&] { stats = pump.run(done); });

      wl::MixParams params;
      params.threads = 3;
      params.vars = 8;
      params.txs_per_thread = 200;
      params.seed = 4242 + batch;
      (void)wl::run_random_mix(*stm, params);
      done.store(true, std::memory_order_release);
      verifier.join();

      EXPECT_TRUE(stats.sink_ok) << name << " batch " << batch;
      EXPECT_EQ(stats.events, recorder.num_events())
          << name << " batch " << batch << ": the pump lost or duplicated events";
      EXPECT_TRUE(monitor.ok())
          << name << " batch " << batch << ": flagged at "
          << monitor.violation()->pos << ": " << monitor.violation()->reason;
      // The whole point of batching: strictly fewer clock tickets than
      // events (back-to-back pushes from one lane share a ticket).
      EXPECT_LT(recorder.tickets_issued(), recorder.num_events())
          << name << " batch " << batch;

      std::string why;
      ASSERT_TRUE(h.well_formed(&why)) << name << " batch " << batch << ": " << why;
      ConformanceOptions options;
      options.policies = {VersionOrderPolicy::kSnapshotRank,
                          VersionOrderPolicy::kStampedRead};
      options.exact_max_txs = 0;  // exponential checker: recordings too big
      const ConformanceReport report = check_conformance(h, options);
      ASSERT_TRUE(report.ok)
          << name << " batch " << batch << ": " << report.divergence;
      for (const PolicyConformance& pc : report.policies) {
        EXPECT_TRUE(pc.monitor.certified)
            << name << " batch " << batch << " " << to_string(pc.policy)
            << ": flagged at " << pc.monitor.pos << ": " << pc.monitor.reason;
      }
    }
  }
}

// --- the random_*_history generators ----------------------------------------

TEST(ConformanceFuzz, RandomHistoriesConformUnderEveryPolicy) {
  // kBlindWriteSmart is deliberately absent: its monitor and driver search
  // different prefixes, so on flagged histories even verdicts may diverge
  // between the bounded searches — its soundness contract is covered by
  // version_order_test on the §3.6 histories.
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  for (const ValueModel model :
       {ValueModel::kCoherent, ValueModel::kAdversarial}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      RandomHistoryParams params;
      params.seed = seed;
      params.num_txs = 8;
      params.num_objects = 4;
      params.value_model = model;
      const History h = random_history(params);
      const ConformanceReport report = check_conformance(h, options);
      EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.divergence
                             << "\n" << h.str();
    }
  }
}

TEST(ConformanceFuzz, MvHistoriesConformAndCertifyUnderStampedPolicies) {
  ConformanceOptions options;
  options.policies = {VersionOrderPolicy::kCommitOrder,
                      VersionOrderPolicy::kSnapshotRank,
                      VersionOrderPolicy::kStampedRead};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    MvHistoryParams params;
    params.seed = seed;
    params.num_txs = 10;
    params.num_objects = 3;
    params.num_procs = 4;
    const History h = random_mv_history(params);
    const ConformanceReport report = check_conformance(h, options);
    ASSERT_TRUE(report.ok) << "seed " << seed << ": " << report.divergence
                           << "\n" << h.str();
    // MV reads carry no read stamps, so kStampedRead must degrade exactly
    // to kSnapshotRank — and both certify what commit-order may flag.
    EXPECT_TRUE(report.certified(VersionOrderPolicy::kSnapshotRank))
        << "seed " << seed;
    EXPECT_TRUE(report.certified(VersionOrderPolicy::kStampedRead))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace optm::core
