// Legality by replay (§4): legal sequential histories and per-transaction
// legality (committed prefix + the transaction itself).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/legality.hpp"

namespace optm::core {
namespace {

TEST(SequentialLegal, AcceptsCorrectReplay) {
  const History s = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .commit_now(1)
                        .read(2, 0, 5)
                        .commit_now(2)
                        .build();
  std::string why;
  EXPECT_TRUE(sequential_legal(s, &why)) << why;
}

TEST(SequentialLegal, RejectsWrongReadValue) {
  const History s = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .commit_now(1)
                        .read(2, 0, 7)
                        .commit_now(2)
                        .build();
  std::string why;
  EXPECT_FALSE(sequential_legal(s, &why));
  EXPECT_NE(why.find("return"), std::string::npos);
}

TEST(SequentialLegal, RejectsNonSequential) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .read(2, 0, 0)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  std::string why;
  EXPECT_FALSE(sequential_legal(h, &why));
  EXPECT_NE(why.find("sequential"), std::string::npos);
}

TEST(SequentialLegal, TrailingPendingInvocationAllowed) {
  History s(ObjectModel::registers(1));
  s.append(ev::inv(1, 0, OpCode::kWrite, 1));
  s.append(ev::ret(1, 0, OpCode::kWrite, 1, kOk));
  s.append(ev::inv(1, 0, OpCode::kRead));  // pending
  std::string why;
  EXPECT_TRUE(sequential_legal(s, &why)) << why;
}

TEST(SequentialLegal, QueueSemanticsChecked) {
  ObjectModel m;
  m.add(std::make_shared<QueueSpec>());
  const History good = HistoryBuilder(m)
                           .enq(1, 0, 10)
                           .enq(1, 0, 20)
                           .commit_now(1)
                           .deq(2, 0, 10)
                           .commit_now(2)
                           .build();
  EXPECT_TRUE(sequential_legal(good));
  const History bad = HistoryBuilder(m)
                          .enq(1, 0, 10)
                          .enq(1, 0, 20)
                          .commit_now(1)
                          .deq(2, 0, 20)  // LIFO answer from a FIFO queue
                          .commit_now(2)
                          .build();
  EXPECT_FALSE(sequential_legal(bad));
}

TEST(TransactionLegal, SkipsAbortedPredecessors) {
  // T1 aborts after writing; T2 must see the initial value, not T1's write.
  const History s = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .tryc(1)
                        .abort(1)
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  std::string why;
  EXPECT_TRUE(transaction_legal(s, 2, &why)) << why;
  EXPECT_TRUE(all_transactions_legal(s, &why)) << why;
}

TEST(TransactionLegal, AbortedTransactionStillJudged) {
  // The aborted transaction itself must have read a consistent state.
  const History s = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .commit_now(1)
                        .read(2, 0, 0)  // stale: committed prefix has x=5
                        .trya(2)
                        .abort(2)
                        .build();
  EXPECT_TRUE(transaction_legal(s, 1));
  std::string why;
  EXPECT_FALSE(transaction_legal(s, 2, &why));
  EXPECT_FALSE(all_transactions_legal(s));
}

TEST(TransactionLegal, ReadsOwnWritesWithinTransaction) {
  const History s = HistoryBuilder::registers(1)
                        .write(1, 0, 9)
                        .read(1, 0, 9)
                        .commit_now(1)
                        .build();
  std::string why;
  EXPECT_TRUE(transaction_legal(s, 1, &why)) << why;
}

TEST(TransactionLegal, UnknownTransaction) {
  const History s = HistoryBuilder::registers(1).read(1, 0, 0).build();
  std::string why;
  EXPECT_FALSE(transaction_legal(s, 42, &why));
}

TEST(AllTransactionsLegal, MixedRolesSequence) {
  // committed T1, aborted T2 (sees T1), committed T3 (sees T1 only).
  const History s = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .write(2, 1, 7)
                        .trya(2)
                        .abort(2)
                        .read(3, 1, 0)  // T2 aborted: its write to y invisible
                        .commit_now(3)
                        .build();
  std::string why;
  EXPECT_TRUE(all_transactions_legal(s, &why)) << why;
}

}  // namespace
}  // namespace optm::core
