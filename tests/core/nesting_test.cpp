// §7's model extensions: closed nesting via flattening, and
// non-transactional accesses as single-operation committed transactions.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/nesting.hpp"
#include "core/opacity.hpp"

namespace optm::core {
namespace {

TEST(Nesting, CommittedChildMergesIntoParent) {
  // Parent T1 writes x; nested child T10 writes y and commits; parent
  // commits. Flattened: one transaction with both writes.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(10, 1, 2)  // child ops
                        .commit_now(10)   // child commits
                        .commit_now(1)
                        .build();
  const History flat = flatten_closed_nesting(h, {{10, 1}});
  EXPECT_EQ(flat.transactions(), (std::vector<TxId>{1}));
  const HistoryIndex idx(flat);
  EXPECT_EQ(idx.txs()[0].ops.size(), 2u);
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);
}

TEST(Nesting, ChildSeesParentWrites) {
  // The §7 requirement: "a nested transaction should observe the changes
  // done by its parent transaction". After flattening, the child's read of
  // the parent's write is a plain read-own-write — legal.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .read(10, 0, 7)  // child reads parent's write
                        .commit_now(10)
                        .commit_now(1)
                        .build();
  const History flat = flatten_closed_nesting(h, {{10, 1}});
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);

  // WITHOUT the nesting relationship the run is incorrect, but in the
  // subtle prefix sense of §5.2: the COMPLETE history is opaque (T1
  // eventually commits, so "T1 then T10" is a legal witness), yet the
  // prefix ending at the child's commit is not — there T1 is live and not
  // commit-pending, so every completion aborts it, making T10's read
  // illegal. A TM generates its history progressively, so that prefix
  // alone condemns the execution.
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
  const auto bad_prefix = first_non_opaque_prefix(h);
  ASSERT_TRUE(bad_prefix.has_value());
  // The earliest offending prefix ends right after T10's read RESPONSE:
  // there both T1 and T10 are live and not commit-pending, every
  // completion aborts both, and aborted T10's read of T1's never-committed
  // value is illegal.
  EXPECT_EQ(*bad_prefix, 4u);
}

TEST(Nesting, AbortedChildStaysSeparateAndInvisible) {
  // Child T10 writes y then aborts; parent commits. The child's write must
  // not be visible — T2 reading it makes the flattened history non-opaque.
  const History ok = HistoryBuilder::registers(2)
                         .write(1, 0, 1)
                         .write(10, 1, 2)
                         .trya(10)
                         .abort(10)
                         .commit_now(1)
                         .read(2, 1, 0)  // sees initial y: child discarded
                         .commit_now(2)
                         .build();
  const History flat_ok = flatten_closed_nesting(ok, {{10, 1}});
  EXPECT_EQ(check_opacity(flat_ok).verdict, Verdict::kYes);

  const History bad = HistoryBuilder::registers(2)
                          .write(1, 0, 1)
                          .write(10, 1, 2)
                          .trya(10)
                          .abort(10)
                          .commit_now(1)
                          .read(2, 1, 2)  // observes the aborted child!
                          .commit_now(2)
                          .build();
  const History flat_bad = flatten_closed_nesting(bad, {{10, 1}});
  EXPECT_EQ(check_opacity(flat_bad).verdict, Verdict::kNo);
}

TEST(Nesting, TwoLevelNestingFlattensTransitively) {
  const History h = HistoryBuilder::registers(3)
                        .write(1, 0, 1)
                        .write(10, 1, 2)
                        .write(20, 2, 3)  // grandchild
                        .commit_now(20)
                        .commit_now(10)
                        .commit_now(1)
                        .build();
  const History flat = flatten_closed_nesting(h, {{10, 1}, {20, 10}});
  EXPECT_EQ(flat.transactions(), (std::vector<TxId>{1}));
  const HistoryIndex idx(flat);
  EXPECT_EQ(idx.txs()[0].ops.size(), 3u);
}

TEST(Nesting, CyclicForestRejected) {
  const History h = HistoryBuilder::registers(1).read(1, 0, 0).commit_now(1).build();
  EXPECT_THROW((void)flatten_closed_nesting(h, {{1, 2}, {2, 1}}),
               std::invalid_argument);
}

TEST(OpenNesting, CommittedChildSurvivesParentAbort) {
  // The defining difference from closed nesting: the open-nested child's
  // commit publishes immediately and survives the parent's abort. Parent
  // T1 writes x (never commits); child T10 logs y:=2 and commits; T1
  // aborts; T2 then reads the child's y.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(10, 1, 2)
                        .commit_now(10)
                        .trya(1)
                        .abort(1)
                        .read(2, 1, 2)  // the child's effect is visible
                        .commit_now(2)
                        .build();
  const History flat = flatten_open_nesting(h, {{10, 1}});
  EXPECT_TRUE(flat.is_committed(10));
  EXPECT_TRUE(flat.is_aborted(1));
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);

  // Under CLOSED nesting the same history is contradictory — a committed
  // child inside an aborted parent would relabel the child's events into
  // the aborted parent, and T2's read of y could then never be justified.
  const History closed = flatten_closed_nesting(h, {{10, 1}});
  EXPECT_EQ(check_opacity(closed).verdict, Verdict::kNo);
}

TEST(OpenNesting, ChildReadOfParentPendingWriteIsNestLocal) {
  // Child T10 reads the parent's uncommitted x — justified by the nest
  // context ("operations of a nested transaction together with all the
  // preceding operations of its parent"), so the reduction removes the
  // read; the remaining history is opaque.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 7)
                        .read(10, 0, 7)  // parent's pending write
                        .write(10, 1, 9)
                        .commit_now(10)
                        .commit_now(1)
                        .build();
  const History flat = flatten_open_nesting(h, {{10, 1}});
  // The nest-local read is gone; the child keeps its own write.
  const HistoryIndex idx(flat);
  EXPECT_EQ(idx.txs()[idx.pos_of(10)].ops.size(), 1u);
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);

  // WITHOUT the reduction the raw history's prefix is condemned (the read
  // looks dirty to the flat model).
  ASSERT_TRUE(first_non_opaque_prefix(h).has_value());
}

TEST(OpenNesting, ChildReadOfParentCommittedWriteIsJudgedGlobally) {
  // If the ancestor COMMITTED before the child's read, the read is an
  // ordinary global read and must stay: dropping it would hide staleness.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .commit_now(1)
                        .read(10, 0, 7)
                        .commit_now(10)
                        .build();
  // T10 begins after T1 committed, so the parent map is vacuous here; the
  // read survives the reduction and the history stays opaque.
  const History flat = flatten_open_nesting(h, {{10, 1}});
  const HistoryIndex idx(flat);
  EXPECT_EQ(idx.txs()[idx.pos_of(10)].ops.size(), 1u);
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);
}

TEST(OpenNesting, StaleChildReadStillCondemned) {
  // The reduction must NOT whitewash a genuinely stale child read: T9
  // (unrelated) overwrites x and commits; the child then reads the
  // parent's STALE pending value... which is fine as nest-local — but a
  // stale read of an unrelated committed value stays condemned.
  const History h = HistoryBuilder::registers(2)
                        .write(9, 0, 5)
                        .commit_now(9)
                        .write(1, 1, 1)   // parent writes y
                        .read(10, 0, 0)   // child reads x = 0: stale!
                        .commit_now(10)
                        .commit_now(1)
                        .build();
  const History flat = flatten_open_nesting(h, {{10, 1}});
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kNo);
}

TEST(OpenNesting, CyclicForestRejected) {
  const History h =
      HistoryBuilder::registers(1).read(1, 0, 0).commit_now(1).build();
  EXPECT_THROW((void)flatten_open_nesting(h, {{1, 2}, {2, 1}}),
               std::invalid_argument);
}

TEST(OpenNesting, GrandparentWritesAreNestLocalToo) {
  // Two-level nest: grandchild T20 reads top-level T1's pending write.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 3)
                        .read(20, 0, 3)
                        .write(20, 1, 4)
                        .commit_now(20)
                        .commit_now(10)  // middle child (no ops)
                        .commit_now(1)
                        .build();
  const History flat = flatten_open_nesting(h, {{10, 1}, {20, 10}});
  const HistoryIndex idx(flat);
  EXPECT_EQ(idx.txs()[idx.pos_of(20)].ops.size(), 1u);
  EXPECT_EQ(check_opacity(flat).verdict, Verdict::kYes);
}

TEST(NonTransactional, EncapsulatedAsCommittedSingleton) {
  // §7: "encapsulating every non-transactional operation into a committed
  // transaction" preserves the illusion of instantaneous execution.
  History h = HistoryBuilder::registers(1)
                  .write(1, 0, 1)
                  .commit_now(1)
                  .build();
  const History extended =
      with_non_transactional_access(h, 99, 0, OpCode::kRead, 0, 1);
  EXPECT_TRUE(extended.is_committed(99));
  EXPECT_EQ(check_opacity(extended).verdict, Verdict::kYes);

  // A non-transactional read of a never-written value is a race the model
  // now CATCHES instead of leaving undefined:
  const History racy =
      with_non_transactional_access(h, 99, 0, OpCode::kRead, 0, 42);
  EXPECT_EQ(check_opacity(racy).verdict, Verdict::kNo);
}

TEST(NonTransactional, DuplicateTxIdRejected) {
  const History h = HistoryBuilder::registers(1).read(1, 0, 0).build();
  EXPECT_THROW(
      (void)with_non_transactional_access(h, 1, 0, OpCode::kRead, 0, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace optm::core
