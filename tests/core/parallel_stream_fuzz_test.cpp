// Conformance fuzz for the parallel streaming certifier: on every corpus
// history, ParallelStreamCertifier must return the SAME verdict and the
// SAME first condemned position as OnlineCertificateMonitor — across
// {1, 2, 4, 8} register shards, varying ingest chunk sizes and merge-
// window cadences — under each of the three supported policies
// (kCommitOrder, kSnapshotRank, kStampedRead; kBlindWriteSmart falls back
// to the serial monitor, tested separately). The corpus mixes certified
// and flagged histories: coherent random histories (realistic snapshot
// violations), adversarial ones (reject paths), and opaque-by-construction
// MV histories with drifted C records and stamped reads (certified under
// the stamp policies, flagged under commit order). 150 seeds — the same
// acceptance bar as the monitor/driver conformance suite. This test also
// runs under TSan in CI: the pipeline (bounded channels, barrier protocol,
// handoff slots) must be clean.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/online.hpp"
#include "core/parallel_stream.hpp"
#include "core/random_history.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

struct StreamVerdict {
  bool certified{true};
  std::size_t pos{0};
};

StreamVerdict monitor_verdict(const History& h, VersionOrderPolicy policy) {
  OnlineCertificateMonitor monitor(h.model(), policy);
  (void)monitor.ingest(std::span<const Event>(h.events()));
  StreamVerdict v;
  v.certified = monitor.ok();
  if (monitor.violation()) v.pos = monitor.violation()->pos;
  return v;
}

StreamVerdict certifier_verdict(const History& h, VersionOrderPolicy policy,
                                std::size_t shards, std::size_t chunk,
                                std::size_t window) {
  ParallelStreamCertifier::Options opts;
  opts.num_shards = shards;
  opts.merge_window_events = window;
  ParallelStreamCertifier cert(h.model(), policy, opts);
  EXPECT_FALSE(cert.serial_fallback());
  EXPECT_EQ(cert.shards_used(), shards);
  EXPECT_EQ(cert.threads_used(), shards + 1);
  const std::vector<Event>& events = h.events();
  for (std::size_t at = 0; at < events.size(); at += chunk) {
    const std::size_t n = std::min(chunk, events.size() - at);
    (void)cert.ingest(std::span<const Event>(events.data() + at, n));
  }
  (void)cert.finish();
  EXPECT_EQ(cert.events_fed(), events.size());
  StreamVerdict v;
  v.certified = cert.ok();
  if (cert.violation()) v.pos = cert.violation()->pos;
  return v;
}

constexpr VersionOrderPolicy kPolicies[] = {VersionOrderPolicy::kCommitOrder,
                                            VersionOrderPolicy::kSnapshotRank,
                                            VersionOrderPolicy::kStampedRead};
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
// Cycled per seed rather than cross-producted: chunk sizes stress the
// ingest/chunk boundary handling, windows the barrier cadence (1 = a merge
// barrier after every chunk, 1<<16 = one final barrier only).
constexpr std::size_t kChunks[] = {1, 3, 7, 64};
constexpr std::size_t kWindows[] = {1, 2, 8, std::size_t{1} << 16};

void expect_conformant(const History& h, const char* corpus,
                       std::uint64_t seed, std::size_t variant) {
  const std::size_t chunk = kChunks[variant % std::size(kChunks)];
  const std::size_t window = kWindows[(variant / 2) % std::size(kWindows)];
  for (const VersionOrderPolicy policy : kPolicies) {
    const StreamVerdict want = monitor_verdict(h, policy);
    for (const std::size_t shards : kShardCounts) {
      const StreamVerdict got =
          certifier_verdict(h, policy, shards, chunk, window);
      ASSERT_EQ(got.certified, want.certified)
          << corpus << " seed " << seed << " policy " << to_string(policy)
          << " shards " << shards << " chunk " << chunk << " window "
          << window << ": certifier says " << (got.certified ? "yes" : "no")
          << " at " << got.pos << ", monitor says "
          << (want.certified ? "yes" : "no") << " at " << want.pos;
      if (!want.certified) {
        ASSERT_EQ(got.pos, want.pos)
            << corpus << " seed " << seed << " policy " << to_string(policy)
            << " shards " << shards << " chunk " << chunk << " window "
            << window << ": first condemned position diverged";
      }
    }
  }
}

constexpr std::uint64_t kSeeds = 150;

TEST(ParallelStreamFuzz, CoherentAndAdversarialCorpus) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RandomHistoryParams params;
    params.seed = seed;
    params.num_txs = 6;
    params.num_objects = 4;
    params.value_model =
        seed % 3 == 0 ? ValueModel::kAdversarial : ValueModel::kCoherent;
    expect_conformant(random_history(params),
                      params.value_model == ValueModel::kAdversarial
                          ? "adversarial"
                          : "coherent",
                      seed, static_cast<std::size_t>(seed));
  }
}

TEST(ParallelStreamFuzz, MvStampedCorpus) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    MvHistoryParams params;
    params.seed = seed;
    params.num_txs = 10;
    params.num_objects = 5;
    expect_conformant(random_mv_history(params), "mv", seed,
                      static_cast<std::size_t>(seed) + 1);
  }
}

TEST(ParallelStreamFuzz, BlindWriteSmartFallsBackToSerialMonitor) {
  RandomHistoryParams params;
  params.seed = 7;
  params.num_txs = 6;
  params.num_objects = 4;
  const History h = random_history(params);
  ParallelStreamCertifier::Options opts;
  opts.num_shards = 4;
  ParallelStreamCertifier cert(h.model(), VersionOrderPolicy::kBlindWriteSmart,
                               opts);
  EXPECT_TRUE(cert.serial_fallback());
  EXPECT_EQ(cert.shards_used(), 1u);
  EXPECT_EQ(cert.threads_used(), 1u);
  (void)cert.ingest(std::span<const Event>(h.events()));
  (void)cert.finish();
  OnlineCertificateMonitor monitor(h.model(),
                                   VersionOrderPolicy::kBlindWriteSmart);
  (void)monitor.ingest(std::span<const Event>(h.events()));
  EXPECT_EQ(cert.ok(), monitor.ok());
  if (monitor.violation()) {
    ASSERT_TRUE(cert.violation().has_value());
    EXPECT_EQ(cert.violation()->pos, monitor.violation()->pos);
  }
}

TEST(ParallelStreamFuzz, ExternalPoolAndReserve) {
  RandomHistoryParams params;
  params.seed = 11;
  params.num_txs = 8;
  params.num_objects = 6;
  const History h = random_history(params);
  util::ThreadPool pool(4);
  ParallelStreamCertifier::Options opts;
  opts.num_shards = 3;  // needs 3 + 1 = pool.size() threads
  ParallelStreamCertifier cert(h.model(), VersionOrderPolicy::kCommitOrder,
                               opts, &pool);
  cert.reserve(64, 256);
  (void)cert.ingest(std::span<const Event>(h.events()));
  (void)cert.finish();
  const StreamVerdict want =
      monitor_verdict(h, VersionOrderPolicy::kCommitOrder);
  EXPECT_EQ(cert.ok(), want.certified);
  if (!want.certified) {
    ASSERT_TRUE(cert.violation().has_value());
    EXPECT_EQ(cert.violation()->pos, want.pos);
  }
}

TEST(ParallelStreamFuzz, ExternalPoolTooSmallThrows) {
  RandomHistoryParams params;
  params.seed = 3;
  const History h = random_history(params);
  util::ThreadPool pool(2);
  ParallelStreamCertifier::Options opts;
  opts.num_shards = 4;  // would need 5 dedicated threads
  EXPECT_THROW(ParallelStreamCertifier(h.model(),
                                       VersionOrderPolicy::kCommitOrder, opts,
                                       &pool),
               std::invalid_argument);
}

TEST(ParallelStreamFuzz, EmptyStreamCertifies) {
  RandomHistoryParams params;
  params.seed = 5;
  const History h = random_history(params);
  ParallelStreamCertifier cert(h.model(), VersionOrderPolicy::kSnapshotRank);
  EXPECT_TRUE(cert.finish());
  EXPECT_TRUE(cert.ok());
  EXPECT_FALSE(cert.violation().has_value());
  EXPECT_EQ(cert.events_fed(), 0u);
}

}  // namespace
}  // namespace optm::core
