// Progressiveness as a history predicate (§6.1), including the live
// TL2-vs-DSTM separation on recorded runs.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/progress.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"

namespace optm::core {
namespace {

TEST(Progress, NoAbortsIsProgressive) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const auto r = check_progressive(h);
  EXPECT_TRUE(r.progressive);
  EXPECT_EQ(r.forced_aborts, 0u);
}

TEST(Progress, VoluntaryAbortDoesNotCount) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .trya(1)
                        .abort(1)
                        .build();
  EXPECT_TRUE(check_progressive(h).progressive);
}

TEST(Progress, JustifiedAbortAccepted) {
  // T1 and T2 overlap and touch the same register; aborting T2 is allowed.
  const History h = HistoryBuilder::registers(1)
                        .read(2, 0, 0)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .tryc(2)
                        .abort(2)
                        .build();
  const auto r = check_progressive(h);
  EXPECT_TRUE(r.progressive);
  EXPECT_EQ(r.forced_aborts, 1u);
  EXPECT_EQ(r.justified_aborts, 1u);
}

TEST(Progress, UnjustifiedAbortRejected) {
  // T2 conflicts with nobody (different register, and T1 completed before
  // T2 began anyway): aborting it is a progressiveness violation.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 1, 0)
                        .tryc(2)
                        .abort(2)
                        .build();
  const auto r = check_progressive(h);
  EXPECT_FALSE(r.progressive);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->aborted_tx, 2u);
}

TEST(Progress, DisjointLifetimesDoNotJustify) {
  // T1 and T2 access the same register but sequentially: no time t at
  // which both are live, so T2's forced abort is unjustified.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .tryc(2)
                        .abort(2)
                        .build();
  EXPECT_FALSE(check_progressive(h).progressive);
}

// --- live runtimes --------------------------------------------------------

TEST(Progress, RecordedTl2WitnessFailsProgressiveness) {
  // §6.2's schedule: T2 commits before T1 ever touches x, TL2 still aborts
  // T1. The recorded history itself certifies the violation... except that
  // T1 and T2 ARE concurrent here (T1 began first), so the paper's
  // definition is about the conflicting ACCESS coming after the commit.
  // Our history-level checker is lifetime-based (conservative), so we
  // build the sharper schedule: T2 runs entirely before T1's first event.
  const auto stm = stm::make_stm("tl2", 2);
  stm::Recorder recorder(2);
  stm->set_recorder(&recorder);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  // Advance the clock with an unrelated committed writer.
  stm->begin(p2);
  ASSERT_TRUE(stm->write(p2, 0, 1));
  ASSERT_TRUE(stm->commit(p2));

  // A reader with a stale rv: rv is sampled lazily at the FIRST access,
  // so pin it with a read of x0 before the second writer commits.
  stm->begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm->read(p1, 0, v));  // pins T1's rv
  stm->begin(p2);
  ASSERT_TRUE(stm->write(p2, 1, 2));
  ASSERT_TRUE(stm->commit(p2));
  EXPECT_FALSE(stm->read(p1, 1, v));  // TL2's non-progressive abort

  // The recorded run: T1 aborted; its only overlapping conflicter is the
  // second T2-instance — which never overlaps T1's ACCESS to x1, but does
  // overlap its lifetime, so the lifetime-based checker calls this
  // justified. The deterministic behavioural test (progressive_test.cpp)
  // covers the sharper op-level claim; here we assert the abort happened
  // and is attributed.
  const auto r = check_progressive(recorder.history());
  EXPECT_EQ(r.forced_aborts, 1u);
}

TEST(Progress, RecordedDstmRunsAreProgressive) {
  const auto stm = stm::make_stm("dstm", 4);
  stm::Recorder recorder(4);
  stm->set_recorder(&recorder);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  // A mix of conflicting and non-conflicting transactions.
  for (int round = 0; round < 20; ++round) {
    stm->begin(p1);
    std::uint64_t v = 0;
    const bool r1 = stm->read(p1, 0, v);

    stm->begin(p2);
    (void)stm->write(p2, static_cast<stm::VarId>(round % 4),
                     static_cast<std::uint64_t>(100 + round));
    (void)stm->commit(p2);

    if (r1) {
      std::uint64_t w = 0;
      if (stm->read(p1, 1, w)) (void)stm->commit(p1);
    }
  }
  const auto r = check_progressive(recorder.history());
  EXPECT_TRUE(r.progressive)
      << (r.violation ? r.violation->explanation : "");
}

}  // namespace
}  // namespace optm::core
