// Read-stamp pruning of the §3.6 reorder search (ROADMAP follow-up from
// PR 4, landed in PR 5): a candidate version order that serializes a
// stamped reader at or before its claimed version's writer — or after that
// version's overwriter — cannot pass verify_opacity_certificate, so
// StampPruneIndex rejects it in O(reads) BEFORE the exact pass.
//
// Two properties are fuzzed here over stamped drifted MV histories (the
// random_mv_history generator stamps its reads with the (2·snapshot+1,
// version) pair MvStm records window-free):
//
//   * soundness / verdict preservation: the search with pruning on and off
//     reaches the SAME certified verdict and the SAME witness order on
//     every history — pruning only ever skips candidates the exact pass
//     refutes;
//   * effectiveness: across the searches the drifted corpus triggers,
//     at least half of all candidate orders are rejected without an exact
//     pass (the acceptance bar).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/online.hpp"
#include "core/parallel_verify.hpp"
#include "core/random_history.hpp"
#include "core/version_order.hpp"

namespace optm::core {
namespace {

[[nodiscard]] MvHistoryParams drifted_params(std::uint64_t seed) {
  MvHistoryParams params;
  params.seed = seed;
  params.num_txs = 10;
  params.num_objects = 3;
  params.num_procs = 4;
  params.record_delay_prob = 0.7;  // heavy C-record drift
  params.max_record_delay_steps = 30;
  return params;
}

TEST(StampPruneFuzz, PruningPreservesVerdictsAndPrunesHalfTheCandidates) {
  std::size_t searches = 0;
  std::size_t tried = 0;
  std::size_t pruned = 0;
  std::size_t certified = 0;

  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    const History h = random_mv_history(drifted_params(seed));

    // Only histories the commit-order certificate flags REPAIRABLY enter
    // the §3.6 search in production (fail() / the driver's repair gate);
    // mirror that trigger.
    ShardVerifyOptions commit_order;
    commit_order.num_shards = 1;
    const ParallelVerifyResult flagged =
        verify_history_sharded(h, commit_order);
    if (flagged.certified) continue;
    bool repairable = true;
    for (const ShardFlag& f : flagged.flags) {
      repairable = repairable && reorder_repairable(f.kind);
    }
    if (!repairable) continue;

    SmartReorderOptions with_prune;
    with_prune.prioritize = flagged.flags.front().tx;
    SmartReorderOptions no_prune = with_prune;
    no_prune.stamp_prune = false;

    const SmartReorderResult a = smart_reorder_search(h, with_prune);
    const SmartReorderResult b = smart_reorder_search(h, no_prune);

    // Verdict AND witness equivalence: pruning may only skip candidates
    // the exact pass would refute, so the first certified candidate (in
    // identical candidate order) is identical.
    ASSERT_EQ(a.certified, b.certified) << "seed " << seed;
    if (a.certified) {
      EXPECT_EQ(a.order, b.order) << "seed " << seed;
      ++certified;
    }
    EXPECT_EQ(a.candidates_tried, b.candidates_tried) << "seed " << seed;
    EXPECT_EQ(b.candidates_pruned, 0u);

    ++searches;
    tried += a.candidates_tried;
    pruned += a.candidates_pruned;
  }

  // The corpus must actually exercise the machinery.
  ASSERT_GE(searches, 10u) << "drifted corpus produced too few searches";
  ASSERT_GE(tried, 100u);
  RecordProperty("searches", static_cast<int>(searches));
  RecordProperty("candidates_tried", static_cast<int>(tried));
  RecordProperty("candidates_pruned", static_cast<int>(pruned));
  RecordProperty("certified", static_cast<int>(certified));

  // The acceptance bar: >= 50% of candidate orders rejected by the
  // O(reads) stamp scan, no exact pass spent on them.
  EXPECT_GE(2 * pruned, tried)
      << "stamp pruning rejected only " << pruned << "/" << tried
      << " candidate orders";
}

/// The monitor path end-to-end: kBlindWriteSmart streams over drifted
/// stamped histories, repairing via the (pruned) search; verdicts must
/// match the unpruned driver repair and the snapshot-rank ground truth.
TEST(StampPruneFuzz, MonitorBlindWriteSmartAgreesWithSnapshotRankOnDrift) {
  std::size_t repaired = 0;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    const History h = random_mv_history(drifted_params(seed));

    // Ground truth: these generated histories are opaque by construction
    // and certify under the stamp policies.
    OnlineCertificateMonitor snapshot_rank(h.model(),
                                           VersionOrderPolicy::kSnapshotRank);
    for (const Event& e : h.events()) (void)snapshot_rank.feed(e);
    ASSERT_TRUE(snapshot_rank.ok()) << "seed " << seed;

    OnlineCertificateMonitor smart(h.model(),
                                   VersionOrderPolicy::kBlindWriteSmart);
    for (const Event& e : h.events()) (void)smart.feed(e);
    if (smart.retro_ordered() && smart.ok()) ++repaired;
    // A smart flag must never contradict an exactly-certified repair
    // being available... but the bounded search may legitimately miss
    // deep reorderings; what it must NOT do is crash or certify a
    // non-opaque history (covered by the conformance suites). Here we
    // assert the common case: when it certifies, snapshot-rank does too.
    if (smart.ok()) {
      EXPECT_TRUE(snapshot_rank.ok()) << "seed " << seed;
    }
  }
  // The corpus must exercise the streaming repair path.
  EXPECT_GE(repaired, 3u);
  RecordProperty("repaired", static_cast<int>(repaired));
}

}  // namespace
}  // namespace optm::core
