// The implication lattice among the §3 criteria and opacity (§5), as
// executable properties over seeded random histories.
//
// The paper's argument is exactly a walk through this lattice: opacity
// sits strictly above strict serializability (committed-part witness),
// which sits above plain serializability / global atomicity; rigorousness
// implies strict recoverability by definition; and the §2 phenomena
// (hard dirty reads, inconsistent snapshots) each refute opacity. The
// STRICTNESS of the inclusions is witnessed by the paper's own histories
// (H1: strictly serializable but not opaque; §3.6: opaque but not
// rigorous), pinned in paper_histories_test; here the INCLUSIONS
// themselves are checked on hundreds of generated histories.
#include <gtest/gtest.h>

#include "core/criteria.hpp"
#include "core/opacity.hpp"
#include "core/phenomena.hpp"
#include "core/random_history.hpp"
#include "core/serializability.hpp"

namespace optm::core {
namespace {

class CriteriaLattice
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, ValueModel>> {
 protected:
  [[nodiscard]] History make_history() const {
    RandomHistoryParams params;
    params.seed = std::get<0>(GetParam());
    params.value_model = std::get<1>(GetParam());
    params.num_txs = 6;
    params.num_objects = 3;
    params.split_op_prob = 0.4;
    return random_history(params);
  }
};

TEST_P(CriteriaLattice, OpacityImpliesStrictSerializability) {
  const History h = make_history();
  const CriteriaReport report = evaluate_criteria(h);
  if (report.verdict(Criterion::kOpacity) == Verdict::kYes) {
    EXPECT_EQ(report.verdict(Criterion::kStrictSerializability), Verdict::kYes)
        << h.str();
  }
}

TEST_P(CriteriaLattice, StrictSerializabilityImpliesSerializability) {
  const History h = make_history();
  const CriteriaReport report = evaluate_criteria(h);
  if (report.verdict(Criterion::kStrictSerializability) == Verdict::kYes) {
    EXPECT_EQ(report.verdict(Criterion::kSerializability), Verdict::kYes)
        << h.str();
  }
}

TEST_P(CriteriaLattice, StrictConflictImpliesPlainConflictSerializability) {
  // NOTE the implication that does NOT hold here: classical conflict
  // serializability does not imply our (view/value) serializability,
  // because the classical model assumes every read returns the last value
  // written to the object REGARDLESS of commit status, while the TM model
  // judges reads against committed state — a conflict-acyclic history can
  // contain a read no committed-prefix replay can produce (e.g. two
  // non-repeatable reads of uncommitted values). What does hold: adding
  // the real-time edges can only break acyclicity, never restore it.
  const History h = make_history();
  const auto strict = check_strict_conflict_serializability(h);
  if (strict.verdict == Verdict::kYes) {
    EXPECT_EQ(check_conflict_serializability(h).verdict, Verdict::kYes)
        << h.str();
  }
}

TEST_P(CriteriaLattice, RigorousnessImpliesStrictRecoverability) {
  const History h = make_history();
  const CriteriaReport report = evaluate_criteria(h);
  if (report.verdict(Criterion::kRigorousness) == Verdict::kYes) {
    EXPECT_EQ(report.verdict(Criterion::kStrictRecoverability), Verdict::kYes)
        << h.str();
  }
}

TEST_P(CriteriaLattice, OpacityImpliesOneCopySerializability) {
  const History h = make_history();
  const CriteriaReport report = evaluate_criteria(h);
  if (report.verdict(Criterion::kOpacity) == Verdict::kYes &&
      report.verdict(Criterion::kOneCopySerializability) != Verdict::kUnknown) {
    EXPECT_EQ(report.verdict(Criterion::kOneCopySerializability), Verdict::kYes)
        << h.str();
  }
}

TEST_P(CriteriaLattice, HardDirtyReadRefutesOpacity) {
  // A read from a writer that NEVER issued tryC before the read cannot be
  // explained by any completion: the prefix machinery must reject.
  const History h = make_history();
  const auto dirty = find_dirty_read(h);
  if (dirty.has_value() && !dirty->writer_commit_pending &&
      !h.is_committed(dirty->writer)) {
    EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo)
        << h.str() << "\nreader T" << dirty->reader << " writer T"
        << dirty->writer;
  }
}

TEST_P(CriteriaLattice, InconsistentSnapshotRefutesOpacity) {
  const History h = make_history();
  if (std::get<1>(GetParam()) != ValueModel::kCoherent) return;
  const auto snapshot = find_inconsistent_snapshot(h);
  if (snapshot.has_value()) {
    EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo)
        << h.str() << "\n"
        << snapshot->explanation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CriteriaLattice,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 26),
                       ::testing::Values(ValueModel::kCoherent,
                                         ValueModel::kAdversarial)),
    [](const auto& inf) {
      return "seed" + std::to_string(std::get<0>(inf.param)) +
             (std::get<1>(inf.param) == ValueModel::kCoherent ? "_coherent"
                                                              : "_adversarial");
    });

}  // namespace
}  // namespace optm::core
