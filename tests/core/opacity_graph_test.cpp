// §5.4 graph characterization: OPG construction, well-formedness,
// acyclicity, the polynomial certificate checker, and — most importantly —
// machine-checking Theorem 2 by comparing the exhaustive graph search with
// the definitional checker on both handcrafted and randomized histories.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/paper.hpp"
#include "core/random_history.hpp"

namespace optm::core {
namespace {

// --- construction ---------------------------------------------------------------

TEST(Opg, BuildSimpleReadsFrom) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const OpacityGraph g = build_opg(h, {1, 2}, {});
  ASSERT_EQ(g.size(), 3u);  // T0 (synthetic) + T1 + T2
  EXPECT_TRUE(g.has_synthetic_init);
  // T1 -> T2 must carry both rt and rf.
  std::size_t v1 = 0, v2 = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.vertex_tx[i] == 1) v1 = i;
    if (g.vertex_tx[i] == 2) v2 = i;
  }
  EXPECT_TRUE(g.label[v1][v2] & kLrt);
  EXPECT_TRUE(g.label[v1][v2] & kLrf);
  EXPECT_TRUE(g.well_formed());
  EXPECT_TRUE(g.acyclic());
}

TEST(Opg, ReversedOrderCreatesCycle) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  // ≪ = (T2, T1): T2 reads x (from T1), T1 writes x, T2 ≪ T1 gives an Lrw
  // edge T2 -> T1, while Lrf gives T1 -> T2: a cycle.
  const OpacityGraph g = build_opg(h, {2, 1}, {});
  EXPECT_FALSE(g.acyclic());
}

TEST(Opg, ReadFromAbortedBreaksWellFormedness) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .trya(1)
                        .abort(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const OpacityGraph g = build_opg(h, {1, 2}, {});
  std::string why;
  EXPECT_FALSE(g.well_formed(&why));
  EXPECT_NE(why.find("Lrf"), std::string::npos);
}

TEST(Opg, CommitPendingInVIsVisible) {
  const History h = paper::h3();  // T2 reads from commit-pending T1
  const OpacityGraph with_v = build_opg(h, {1, 2}, {1});
  EXPECT_TRUE(with_v.well_formed());
  EXPECT_TRUE(with_v.acyclic());
  const OpacityGraph without_v = build_opg(h, {1, 2}, {});
  EXPECT_FALSE(without_v.well_formed());  // T1 invisible yet read from
}

TEST(Opg, RejectsNonCommitPendingInV) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .build();
  EXPECT_THROW((void)build_opg(h, {1}, {1}), std::invalid_argument);
}

TEST(Opg, RejectsDuplicateWrites) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .commit_now(1)
                        .write(2, 0, 7)  // same value, same register
                        .commit_now(2)
                        .build();
  EXPECT_THROW((void)build_opg(h, {1, 2}, {}), std::invalid_argument);
}

TEST(Opg, RejectsNonRegisterHistories) {
  ObjectModel m;
  m.add(std::make_shared<CounterSpec>());
  const History h = HistoryBuilder(m).inc(1, 0).commit_now(1).build();
  EXPECT_THROW((void)build_opg(h, {1}, {}), std::invalid_argument);
}

TEST(Opg, MissingTransactionInOrderThrows) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_THROW((void)build_opg(h, {1}, {}), std::invalid_argument);
}

TEST(Opg, DotRenderingMentionsLabels) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const std::string dot = build_opg(h, {1, 2}, {}).dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("rf"), std::string::npos);
}

TEST(Opg, LocalOperationsDoNotProduceEdges) {
  // T2's read of its own write is local: no rf edge from anyone.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .read(2, 0, 2)  // local
                        .commit_now(2)
                        .build();
  const OpacityGraph g = build_opg(h, {1, 2}, {});
  std::size_t v1 = 0, v2 = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.vertex_tx[i] == 1) v1 = i;
    if (g.vertex_tx[i] == 2) v2 = i;
  }
  EXPECT_FALSE(g.label[v1][v2] & kLrf);
  EXPECT_TRUE(g.acyclic());
}

// --- graph search on the paper histories ----------------------------------------

TEST(GraphSearch, H1NotOpaque) {
  const GraphCheckResult r = check_opacity_via_graph(paper::fig1_h1());
  EXPECT_EQ(r.verdict, Verdict::kNo) << r.reason;
}

TEST(GraphSearch, H4Opaque) {
  const GraphCheckResult r = check_opacity_via_graph(paper::h4());
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
  // The witness V must contain T2: T3 read from it.
  ASSERT_TRUE(r.v.has_value());
  EXPECT_NE(std::find(r.v->begin(), r.v->end(), 2u), r.v->end());
}

TEST(GraphSearch, H5Opaque) {
  const GraphCheckResult r = check_opacity_via_graph(paper::fig2_h5());
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
}

TEST(GraphSearch, InconsistentHistoryRejectedByCondition1) {
  const History h = HistoryBuilder::registers(1).read(1, 0, 42).build();
  const GraphCheckResult r = check_opacity_via_graph(h);
  EXPECT_EQ(r.verdict, Verdict::kNo);
  EXPECT_NE(r.reason.find("consistent"), std::string::npos);
}

// --- Theorem 2: definitional <=> graph, randomized ---------------------------------

class Theorem2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2, CheckersAgreeOnCoherentHistories) {
  RandomHistoryParams params;
  params.seed = GetParam();
  params.num_txs = 4;
  params.num_objects = 2;
  params.max_ops_per_tx = 3;
  const History h = random_history(params);
  ASSERT_TRUE(h.well_formed());

  const OpacityResult definitional = check_opacity(h);
  const GraphCheckResult graph = check_opacity_via_graph(h, 7);
  ASSERT_NE(definitional.verdict, Verdict::kUnknown);
  ASSERT_NE(graph.verdict, Verdict::kUnknown) << graph.reason;
  EXPECT_EQ(definitional.verdict, graph.verdict)
      << "Theorem 2 violated on seed " << GetParam() << "\n"
      << h.str();
}

TEST_P(Theorem2, CheckersAgreeOnAdversarialHistories) {
  RandomHistoryParams params;
  params.seed = GetParam();
  params.num_txs = 4;
  params.num_objects = 2;
  params.max_ops_per_tx = 3;
  params.value_model = ValueModel::kAdversarial;
  const History h = random_history(params);
  ASSERT_TRUE(h.well_formed());

  const OpacityResult definitional = check_opacity(h);
  const GraphCheckResult graph = check_opacity_via_graph(h, 7);
  ASSERT_NE(definitional.verdict, Verdict::kUnknown);
  ASSERT_NE(graph.verdict, Verdict::kUnknown) << graph.reason;
  EXPECT_EQ(definitional.verdict, graph.verdict)
      << "Theorem 2 violated on seed " << GetParam() << "\n"
      << h.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2, ::testing::Range<std::uint64_t>(1, 81));

// --- certificate checker --------------------------------------------------------------

TEST(Certificate, AcceptsCommitOrderOfSequentialRun) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .write(2, 1, 2)
                        .commit_now(2)
                        .read(3, 1, 2)
                        .commit_now(3)
                        .build();
  std::string why;
  EXPECT_TRUE(verify_opacity_certificate(h, {1, 2, 3}, {}, &why)) << why;
}

TEST(Certificate, RejectsWrongOrder) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  std::string why;
  EXPECT_FALSE(verify_opacity_certificate(h, {2, 1}, {}, &why));
  EXPECT_FALSE(why.empty());
}

TEST(Certificate, RejectsInconsistentHistory) {
  const History h = HistoryBuilder::registers(1).read(1, 0, 42).build();
  std::string why;
  EXPECT_FALSE(verify_opacity_certificate(h, {1}, {}, &why));
}

TEST(Certificate, DetectsInterveningWriter) {
  // T3 reads the initial value after T1 committed a write: under order
  // (T1, T3) the version T3 read has a visible writer ranked in between.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(3, 0, 0)
                        .commit_now(3)
                        .build();
  std::string why;
  EXPECT_FALSE(verify_opacity_certificate(h, {1, 3}, {}, &why));
  // ... and no certificate exists at all (the history is not opaque):
  EXPECT_FALSE(verify_opacity_certificate(h, {3, 1}, {}, &why));
}

TEST(Certificate, AcceptsH4WithVContainingT2) {
  const History h = paper::h4();
  std::string why;
  EXPECT_TRUE(verify_opacity_certificate(h, {1, 2, 3}, {2}, &why)) << why;
  EXPECT_FALSE(verify_opacity_certificate(h, {1, 2, 3}, {}, &why));
}

TEST(Certificate, SoundWheneverItAccepts) {
  // Property: on random small histories, certificate acceptance (for the
  // natural commit order) implies definitional opacity.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RandomHistoryParams params;
    params.seed = seed;
    params.num_txs = 4;
    params.num_objects = 2;
    const History h = random_history(params);

    // Candidate ≪: commit order, then remaining transactions by last event.
    std::vector<TxId> order;
    for (const Event& e : h.events())
      if (e.kind == EventKind::kCommit) order.push_back(e.tx);
    for (TxId tx : h.transactions())
      if (!h.is_committed(tx)) order.push_back(tx);
    std::vector<TxId> v;  // treat all commit-pending as aborted

    if (verify_opacity_certificate(h, order, v)) {
      EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes)
          << "unsound certificate at seed " << seed << "\n"
          << h.str();
    }
  }
}

}  // namespace
}  // namespace optm::core
