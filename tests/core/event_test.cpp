#include <gtest/gtest.h>

#include "core/event.hpp"

namespace optm::core {
namespace {

TEST(Event, FactoryHelpers) {
  const Event i = ev::inv(3, 7, OpCode::kWrite, 42);
  EXPECT_EQ(i.kind, EventKind::kInvoke);
  EXPECT_EQ(i.tx, 3u);
  EXPECT_EQ(i.obj, 7u);
  EXPECT_EQ(i.op, OpCode::kWrite);
  EXPECT_EQ(i.arg, 42);
  EXPECT_TRUE(i.is_invocation());
  EXPECT_FALSE(i.is_response());

  const Event r = ev::ret(3, 7, OpCode::kWrite, 42, kOk);
  EXPECT_TRUE(r.is_response());
  EXPECT_EQ(r.ret, kOk);
}

TEST(Event, InvocationResponseMatching) {
  const Event i = ev::inv(1, 0, OpCode::kRead);
  EXPECT_TRUE(i.matches(ev::ret(1, 0, OpCode::kRead, 0, 5)));
  EXPECT_FALSE(i.matches(ev::ret(2, 0, OpCode::kRead, 0, 5)));  // other tx
  EXPECT_FALSE(i.matches(ev::ret(1, 1, OpCode::kRead, 0, 5)));  // other obj
  EXPECT_FALSE(i.matches(ev::ret(1, 0, OpCode::kWrite, 0, 5))); // other op
  // An abort may arrive instead of an operation response (paper §4).
  EXPECT_TRUE(i.matches(ev::abort(1)));
  EXPECT_FALSE(i.matches(ev::abort(2)));
}

TEST(Event, TryCommitMatching) {
  const Event t = ev::try_commit(4);
  EXPECT_TRUE(t.matches(ev::commit(4)));
  EXPECT_TRUE(t.matches(ev::abort(4)));   // tryC may be answered with A
  EXPECT_FALSE(t.matches(ev::commit(5)));
  EXPECT_TRUE(t.is_invocation());
}

TEST(Event, TryAbortMatching) {
  const Event t = ev::try_abort(4);
  EXPECT_TRUE(t.matches(ev::abort(4)));
  EXPECT_FALSE(t.matches(ev::commit(4)));  // tryA always results in A
}

TEST(Event, ResponseNeverMatches) {
  const Event r = ev::ret(1, 0, OpCode::kRead, 0, 5);
  EXPECT_FALSE(r.matches(ev::ret(1, 0, OpCode::kRead, 0, 5)));
}

TEST(Event, ToStringNotation) {
  EXPECT_EQ(to_string(ev::try_commit(1)), "tryC1");
  EXPECT_EQ(to_string(ev::commit(2)), "C2");
  EXPECT_EQ(to_string(ev::try_abort(3)), "tryA3");
  EXPECT_EQ(to_string(ev::abort(4)), "A4");
  EXPECT_EQ(to_string(ev::inv(1, 0, OpCode::kRead)), "inv1(x0, read)");
  EXPECT_EQ(to_string(ev::inv(1, 0, OpCode::kWrite, 9)), "inv1(x0, write, 9)");
  EXPECT_EQ(to_string(ev::ret(2, 1, OpCode::kRead, 0, 7)),
            "ret2(x1, read -> 7)");
}

TEST(Event, EqualityIsStructural) {
  EXPECT_EQ(ev::inv(1, 0, OpCode::kRead), ev::inv(1, 0, OpCode::kRead));
  EXPECT_NE(ev::inv(1, 0, OpCode::kRead), ev::inv(1, 1, OpCode::kRead));
}

TEST(OpCode, Names) {
  EXPECT_STREQ(to_string(OpCode::kRead), "read");
  EXPECT_STREQ(to_string(OpCode::kWrite), "write");
  EXPECT_STREQ(to_string(OpCode::kInc), "inc");
  EXPECT_STREQ(to_string(OpCode::kFetchAdd), "fetch_add");
  EXPECT_STREQ(to_string(OpCode::kDeq), "deq");
  EXPECT_STREQ(to_string(OpCode::kContains), "contains");
}

}  // namespace
}  // namespace optm::core
