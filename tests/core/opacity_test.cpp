// Definition 1 checker: systematic small cases covering every clause of the
// definition — real-time preservation, the roles of aborted/live/commit-
// pending transactions, arbitrary objects, and witness extraction.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/opacity.hpp"

namespace optm::core {
namespace {

// --- basics ------------------------------------------------------------------

TEST(Opacity, EmptyHistoryIsOpaque) {
  const History h(ObjectModel::registers(1));
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(Opacity, SingleCommittedTx) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(1, 0, 1)
                        .commit_now(1)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(Opacity, SingleTxWrongSelfRead) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(1, 0, 2)
                        .commit_now(1)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, ReadFromCommittedWriter) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- real-time order (requirement 1 of Definition 1) -----------------------------

TEST(Opacity, StaleReadAfterWriterCommitted) {
  // T1 commits x=1, then T2 *starts* and reads the old 0: the serialization
  // T2 < T1 is legal but violates ≺_H — exactly §2's "preserving real-time
  // order" requirement.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, SameHistoryWithoutRealTimeRequirement) {
  // Dropping requirement (1) (options toggle) accepts it.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  OpacityOptions opt;
  opt.require_real_time = false;
  EXPECT_EQ(check_opacity(h, opt).verdict, Verdict::kYes);
}

TEST(Opacity, ConcurrentStaleReadIsFine) {
  // If T2 started before T1 committed, T2 may serialize first.
  const History h = HistoryBuilder::registers(1)
                        .read(2, 0, 0)  // T2's first event before T1 completes
                        .write(1, 0, 1)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- aborted transactions (requirement 2) ---------------------------------------

TEST(Opacity, AbortedWritesInvisible) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .trya(1)
                        .abort(1)
                        .read(2, 0, 1)  // reads the aborted write
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, AbortedReaderMustSeeConsistentState) {
  // Lost-update-style: aborted T2 reads a state that never existed.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 0)  // x from after T1, y from before
                        .tryc(2)
                        .abort(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, AbortedTxReadingOldStateConcurrently) {
  const History h = HistoryBuilder::registers(2)
                        .read(2, 0, 0)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 1, 0)  // consistent with "T2 before T1"
                        .tryc(2)
                        .abort(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- live transactions ------------------------------------------------------------

TEST(Opacity, LiveTransactionTreatedAsAborted) {
  // Live T2's writes must not be visible to others.
  const History h = HistoryBuilder::registers(1)
                        .write(2, 0, 7)  // T2 stays live
                        .read(1, 0, 7)   // T1 observed a live tx's write
                        .commit_now(1)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, LiveReaderJudgedLikeAborted) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 0)  // inconsistent; T2 still live
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, PendingInvocationIgnoredForLegality) {
  History h = HistoryBuilder::registers(1).write(1, 0, 1).commit_now(1).build();
  h.append(ev::inv(2, 0, OpCode::kRead));  // no response yet
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- commit-pending duality ---------------------------------------------------------

TEST(Opacity, CommitPendingMayAppearCommitted) {
  // T2 reads commit-pending T1's write: only the "T1 commits" completion works.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .tryc(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const auto r = check_opacity(h);
  EXPECT_EQ(r.verdict, Verdict::kYes);
}

TEST(Opacity, CommitPendingMayAppearAborted) {
  // T2 reads the OLD value under a commit-pending writer: only the "T1
  // aborts" (or T2-before-T1) completion works.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .tryc(1)
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(Opacity, CommitPendingCannotBeBoth) {
  // T2 reads x=1 from commit-pending T1, T3 reads x=0 — but T3 started
  // after T2 completed, so T3 cannot be serialized before T2. No single
  // role for T1 satisfies both readers.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .tryc(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .read(3, 0, 0)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

// --- arbitrary objects ----------------------------------------------------------------

TEST(Opacity, QueueHistoryOpaque) {
  ObjectModel m;
  m.add(std::make_shared<QueueSpec>());
  const History h = HistoryBuilder(m)
                        .enq(1, 0, 10)
                        .commit_now(1)
                        .enq(2, 0, 20)
                        .deq(3, 0, 10)
                        .commit_now(2)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(Opacity, QueueDoubleDequeueSameElement) {
  ObjectModel m;
  m.add(std::make_shared<QueueSpec>());
  const History h = HistoryBuilder(m)
                        .enq(1, 0, 10)
                        .commit_now(1)
                        .deq(2, 0, 10)
                        .deq(3, 0, 10)  // the same element twice
                        .commit_now(2)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, SetConcurrentInsertsCommute) {
  ObjectModel m;
  m.add(std::make_shared<SetSpec>());
  const History h = HistoryBuilder(m)
                        .insert(1, 0, 1, 1)
                        .insert(2, 0, 2, 1)
                        .commit_now(1)
                        .commit_now(2)
                        .contains(3, 0, 1, 1)
                        .contains(3, 0, 2, 1)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- witnesses and misc API --------------------------------------------------------------

TEST(Opacity, WitnessReconstructsLegalSequentialHistory) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .tryc(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const auto r = check_opacity(h);
  ASSERT_EQ(r.verdict, Verdict::kYes);
  ASSERT_TRUE(r.witness.has_value());
  const History s = witness_history(h, *r.witness);
  EXPECT_TRUE(s.is_sequential());
  EXPECT_TRUE(s.is_complete());
  EXPECT_TRUE(s.preserves_real_time_order_of(h));
}

TEST(Opacity, BudgetExhaustionReportsUnknown) {
  // A history large enough that a 1-state budget cannot decide it.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  OpacityOptions opt;
  opt.max_states = 1;
  EXPECT_EQ(check_opacity(h, opt).verdict, Verdict::kUnknown);
}

TEST(Opacity, PrefixCheckerFindsViolationPoint) {
  // The violation appears exactly when T2's inconsistent read returns.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 0)
                        .build();
  const auto first_bad = first_non_opaque_prefix(h);
  ASSERT_TRUE(first_bad.has_value());
  EXPECT_EQ(*first_bad, h.size());  // the last event (the bad response)
  // Every proper prefix before it is opaque.
  const History h_ok = HistoryBuilder::registers(2)
                           .write(1, 0, 1)
                           .write(1, 1, 1)
                           .commit_now(1)
                           .read(2, 0, 1)
                           .build();
  EXPECT_FALSE(first_non_opaque_prefix(h_ok).has_value());
}

TEST(Opacity, MoreThan64TransactionsThrows) {
  HistoryBuilder b = HistoryBuilder::registers(1);
  for (TxId t = 1; t <= 65; ++t) b.read(t, 0, 0).commit_now(t);
  EXPECT_THROW((void)check_opacity(b.build()), std::invalid_argument);
}

// --- write-skew-shaped interleaving (both orders must be explored) ------------------------

TEST(Opacity, BlindWriteRace) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(2, 1, 2)
                        .write(1, 1, 3)
                        .write(2, 0, 4)
                        .commit_now(1)
                        .commit_now(2)
                        .read(3, 0, 4)
                        .read(3, 1, 3)
                        .commit_now(3)
                        .build();
  // Final state {x=4, y=3} corresponds to T1's y surviving and T2's x
  // surviving — impossible under any serial order of T1, T2.
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(Opacity, BlindWriteRaceConsistentFinalState) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(2, 1, 2)
                        .write(1, 1, 3)
                        .write(2, 0, 4)
                        .commit_now(1)
                        .commit_now(2)
                        .read(3, 0, 4)
                        .read(3, 1, 2)  // consistent with order T1, T2
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

}  // namespace
}  // namespace optm::core
