// The dense hot-path containers (core/dense_state.hpp) — including the
// regression for the overflow/dense shadowing bug: an id first judged
// sparse (parked in the overflow map) must stay authoritative after the
// dense frontier later grows past it (growth migrates the entry), or a
// transaction's lifecycle state would silently reset mid-stream.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/dense_state.hpp"

namespace optm::core {
namespace {

TEST(TxSlab, DenseIdsRoundTrip) {
  TxSlab<int> slab;
  for (TxId tx = 1; tx <= 100; ++tx) slab.get(tx) = static_cast<int>(tx);
  for (TxId tx = 1; tx <= 100; ++tx) {
    ASSERT_NE(slab.find(tx), nullptr);
    EXPECT_EQ(*slab.find(tx), static_cast<int>(tx));
  }
}

TEST(TxSlab, SparseIdsGoToOverflowAndSurviveFrontierGrowth) {
  TxSlab<int> slab;
  // Far past the grow slack from an empty slab: judged sparse.
  const TxId sparse = TxSlab<int>::kGrowSlack + 70'000;
  slab.get(sparse) = 42;
  ASSERT_NE(slab.find(sparse), nullptr);
  EXPECT_EQ(*slab.find(sparse), 42);

  // Now grow the dense frontier PAST the sparse id (within slack of the
  // current frontier each step). The overflow entry must migrate, not be
  // shadowed by a default-constructed dense slot.
  TxId frontier = 0;
  while (frontier < sparse + 10) {
    frontier += TxSlab<int>::kGrowSlack - 1;
    slab.get(frontier) = -1;
  }
  ASSERT_NE(slab.find(sparse), nullptr);
  EXPECT_EQ(*slab.find(sparse), 42) << "overflow entry shadowed by growth";
  EXPECT_EQ(slab.get(sparse), 42);

  // And it visits exactly once with its value.
  int seen = 0;
  slab.for_each([&](TxId tx, const int& v) {
    if (tx == sparse) {
      ++seen;
      EXPECT_EQ(v, 42);
    }
  });
  EXPECT_EQ(seen, 1);
}

TEST(TxSlab, ReserveIsNeverOvershotByGeometricGrowth) {
  TxSlab<int> slab;
  slab.reserve(1000);
  // Touch ids densely: growth doubles but clips to the reserved capacity.
  for (TxId tx = 0; tx < 1000; ++tx) slab.get(tx) = 1;
  ASSERT_NE(slab.find(999), nullptr);
}

TEST(VersionTable, FindAndInsertAcrossRehashes) {
  VersionTable<int> table(2);  // force several rehashes
  for (ObjId obj = 0; obj < 8; ++obj) {
    for (Value v = 0; v < 64; ++v) {
      bool inserted = false;
      table.slot(obj, v, &inserted) = static_cast<int>(obj * 1000 + v);
      EXPECT_TRUE(inserted);
    }
  }
  EXPECT_EQ(table.size(), 8u * 64u);
  for (ObjId obj = 0; obj < 8; ++obj) {
    for (Value v = 0; v < 64; ++v) {
      const int* rec = table.find(obj, v);
      ASSERT_NE(rec, nullptr) << obj << "," << v;
      EXPECT_EQ(*rec, static_cast<int>(obj * 1000 + v));
    }
  }
  EXPECT_EQ(table.find(9, 0), nullptr);
  EXPECT_EQ(table.find(0, 64), nullptr);
  // Re-slot of an existing key reports !inserted and keeps the record.
  bool inserted = true;
  EXPECT_EQ(table.slot(3, 7, &inserted), 3007);
  EXPECT_FALSE(inserted);
}

TEST(SmallWriteSet, SortedUpsertInlineAndSpilled) {
  SmallWriteSet::SpillPool pool;
  SmallWriteSet ws;
  EXPECT_TRUE(ws.empty());
  // Out-of-order inserts, one overwrite, spill past the inline capacity.
  const ObjId objs[] = {7, 3, 9, 1, 5, 8, 2};
  for (std::size_t i = 0; i < std::size(objs); ++i) {
    ws.set(objs[i], static_cast<Value>(objs[i] * 10), pool);
  }
  ws.set(3, 333, pool);  // overwrite keeps size
  EXPECT_EQ(ws.size(), std::size(objs));
  // Iteration is ascending-register (the std::map order the engines need).
  ObjId prev = 0;
  for (const auto& [obj, val] : ws) {
    EXPECT_GT(obj, prev);
    prev = obj;
    EXPECT_EQ(val, obj == 3 ? 333 : static_cast<Value>(obj * 10));
  }
  ASSERT_NE(ws.find(3), nullptr);
  EXPECT_EQ(*ws.find(3), 333);
  EXPECT_EQ(ws.find(4), nullptr);

  // release() recycles the spill storage through the pool.
  ws.release(pool);
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(pool.size(), 1u);
  SmallWriteSet other;
  for (ObjId obj = 0; obj < 6; ++obj) other.set(obj, 1, pool);
  EXPECT_TRUE(pool.empty()) << "spill should come from the pool";
}

}  // namespace
}  // namespace optm::core
