// Phenomenon detectors: dirty reads and inconsistent snapshots (§1-§2).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/paper.hpp"
#include "core/phenomena.hpp"

namespace optm::core {
namespace {

TEST(DirtyRead, CleanHistoryHasNone) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(find_dirty_read(h).has_value());
}

TEST(DirtyRead, ReadFromLiveWriterDetected) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 1)  // T1 not even commit-pending
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  const auto d = find_dirty_read(h);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reader, 2u);
  EXPECT_EQ(d->writer, 1u);
  EXPECT_EQ(d->obj, 0u);
  EXPECT_FALSE(d->writer_commit_pending);
}

TEST(DirtyRead, SpeculativeReadFromCommitPendingFlagged) {
  const History h = paper::h3();  // T2 reads from commit-pending T1
  const auto d = find_dirty_read(h);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->writer_commit_pending);
}

TEST(DirtyRead, OwnWriteIsNotDirty) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .read(1, 0, 5)
                        .commit_now(1)
                        .build();
  EXPECT_FALSE(find_dirty_read(h).has_value());
}

TEST(DirtyRead, InitialValueIsNotDirty) {
  const History h = HistoryBuilder::registers(1, 9).read(1, 0, 9).build();
  EXPECT_FALSE(find_dirty_read(h).has_value());
}

TEST(Snapshot, ConsistentPairAccepted) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 2)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 2)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(find_inconsistent_snapshot(h).has_value());
}

TEST(Snapshot, TornPairDetected) {
  const History h = HistoryBuilder::registers(2)
                        .read(2, 0, 0)  // x before T1
                        .write(1, 0, 1)
                        .write(1, 1, 2)
                        .commit_now(1)
                        .read(2, 1, 2)  // y after T1
                        .tryc(2)
                        .abort(2)
                        .build();
  const auto s = find_inconsistent_snapshot(h);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->tx, 2u);
  EXPECT_EQ(s->value_a, 0);
  EXPECT_EQ(s->value_b, 2);
}

TEST(Snapshot, ZombieFromSection2) {
  const auto s = find_inconsistent_snapshot(paper::section2_zombie());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->tx, 2u);
}

TEST(Snapshot, SequenceOfCommitsStillConsistent) {
  // Reading two values current at the SAME moment, even across multiple
  // intermediate commits elsewhere, is fine.
  const History h = HistoryBuilder::registers(3)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 2, 9)  // unrelated register
                        .commit_now(2)
                        .read(3, 0, 1)
                        .read(3, 1, 0)
                        .read(3, 2, 9)
                        .commit_now(3)
                        .build();
  EXPECT_FALSE(find_inconsistent_snapshot(h).has_value());
}

TEST(Snapshot, ReadFromNeverCommittedWriter) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .trya(1)
                        .abort(1)
                        .read(2, 0, 7)
                        .commit_now(2)
                        .build();
  const auto s = find_inconsistent_snapshot(h);
  ASSERT_TRUE(s.has_value());
  EXPECT_NE(s->explanation.find("never committed"), std::string::npos);
}

TEST(Snapshot, CommitPendingWriterToleratedLikeH4) {
  // H4 is opaque; its reads must not be flagged.
  EXPECT_FALSE(find_inconsistent_snapshot(paper::h4()).has_value());
}

TEST(Snapshot, OwnWritesDoNotPolluteSnapshot) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 5)
                        .read(1, 0, 5)  // local read
                        .read(1, 1, 0)
                        .commit_now(1)
                        .build();
  EXPECT_FALSE(find_inconsistent_snapshot(h).has_value());
}

TEST(Phenomena, ValueUniquenessEnforced) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .commit_now(1)
                        .write(2, 0, 7)
                        .commit_now(2)
                        .build();
  EXPECT_THROW((void)find_dirty_read(h), std::invalid_argument);
}

}  // namespace
}  // namespace optm::core
