// Serializability family (§3.2): view-style (shared search engine),
// strictness, and the polynomial conflict checker; includes the containment
// properties the paper leans on (opaque => strictly serializable, etc.).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/opacity.hpp"
#include "core/random_history.hpp"
#include "core/serializability.hpp"

namespace optm::core {
namespace {

TEST(Serializability, AbortedTransactionsIgnored) {
  // The aborted zombie is invisible to serializability: the committed part
  // alone is consistent.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 0)  // inconsistent, but T2 aborts
                        .tryc(2)
                        .abort(2)
                        .build();
  EXPECT_EQ(check_serializability(h).verdict, Verdict::kYes);
  EXPECT_EQ(check_strict_serializability(h).verdict, Verdict::kYes);
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);  // the separation
}

TEST(Serializability, CommittedInconsistencyRejected) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .read(2, 1, 0)
                        .commit_now(2)  // now it counts
                        .build();
  EXPECT_EQ(check_serializability(h).verdict, Verdict::kNo);
}

TEST(Serializability, StrictnessSeparation) {
  // T2 reads stale value after T1 committed: serializable (T2 first) but
  // not strictly serializable.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_serializability(h).verdict, Verdict::kYes);
  EXPECT_EQ(check_strict_serializability(h).verdict, Verdict::kNo);
}

TEST(Serializability, WitnessOrderReported) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const auto r = check_strict_serializability(h);
  ASSERT_EQ(r.verdict, Verdict::kYes);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->order, (std::vector<TxId>{1, 2}));
}

TEST(Serializability, GlobalAtomicityAliases) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .build();
  EXPECT_EQ(check_global_atomicity(h).verdict,
            check_serializability(h).verdict);
  EXPECT_EQ(check_strict_global_atomicity(h).verdict,
            check_strict_serializability(h).verdict);
}

// --- conflict serializability -------------------------------------------------------

TEST(ConflictSR, SimpleAcyclic) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .write(2, 1, 2)
                        .commit_now(2)
                        .build();
  const auto r = check_conflict_serializability(h);
  EXPECT_EQ(r.verdict, Verdict::kYes);
  ASSERT_TRUE(r.order.has_value());
  EXPECT_EQ(*r.order, (std::vector<TxId>{1, 2}));
}

TEST(ConflictSR, ClassicCycle) {
  // T1 reads x then writes y; T2 reads y then writes x; interleaved so that
  // each read precedes the other's write: rw edges both ways.
  const History h = HistoryBuilder::registers(2)
                        .read(1, 0, 0)
                        .read(2, 1, 0)
                        .write(1, 1, 1)
                        .write(2, 0, 2)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_conflict_serializability(h).verdict, Verdict::kNo);
}

TEST(ConflictSR, ConflictImpliesView) {
  // Conflict-serializable => view-serializable on random histories.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 4;
    p.num_objects = 2;
    p.split_op_prob = 0.0;  // keep conflicting ops non-overlapping
    const History h = random_history(p);
    const auto conflict = check_conflict_serializability(h);
    if (conflict.verdict == Verdict::kYes) {
      EXPECT_EQ(check_serializability(h).verdict, Verdict::kYes)
          << "seed " << seed;
    }
  }
}

TEST(ConflictSR, StrictAddsRealTimeEdges) {
  // Serial T1 then T2 with no data conflict, but T2 reads stale... cannot
  // happen without conflict; instead check: non-conflicting transactions in
  // real-time order keep kYes, and the order respects ≺_H.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 1, 2)
                        .commit_now(2)
                        .build();
  const auto r = check_strict_conflict_serializability(h);
  ASSERT_EQ(r.verdict, Verdict::kYes);
  EXPECT_EQ(*r.order, (std::vector<TxId>{1, 2}));
}

TEST(ConflictSR, OverlappingConflictsUnknown) {
  // Two concurrent writes whose intervals overlap: conflict order undefined.
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kWrite, 1));
  h.append(ev::inv(2, 0, OpCode::kWrite, 2));
  h.append(ev::ret(1, 0, OpCode::kWrite, 1, kOk));
  h.append(ev::ret(2, 0, OpCode::kWrite, 2, kOk));
  h.append(ev::try_commit(1));
  h.append(ev::commit(1));
  h.append(ev::try_commit(2));
  h.append(ev::commit(2));
  const auto r = check_conflict_serializability(h);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
}

TEST(ConflictSR, NonRegisterOpsUnknown) {
  ObjectModel m;
  m.add(std::make_shared<CounterSpec>());
  const History h = HistoryBuilder(m).inc(1, 0).commit_now(1).build();
  EXPECT_EQ(check_conflict_serializability(h).verdict, Verdict::kUnknown);
}

// --- containments (property tests) ------------------------------------------------------

TEST(Containment, OpaqueImpliesStrictSerializable) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 4;
    p.num_objects = 3;
    const History h = random_history(p);
    if (check_opacity(h).verdict == Verdict::kYes) {
      EXPECT_EQ(check_strict_serializability(h).verdict, Verdict::kYes)
          << "seed " << seed << "\n" << h.str();
      EXPECT_EQ(check_serializability(h).verdict, Verdict::kYes);
    }
  }
}

TEST(Containment, StrictImpliesPlainSerializable) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 5;
    p.num_objects = 2;
    p.value_model = ValueModel::kAdversarial;
    const History h = random_history(p);
    if (check_strict_serializability(h).verdict == Verdict::kYes) {
      EXPECT_EQ(check_serializability(h).verdict, Verdict::kYes)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace optm::core
