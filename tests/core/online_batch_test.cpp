// Batch ingestion and the sharded offline driver must agree with the
// single-event streaming certificate monitor — same verdict, same first
// condemned position — on fuzzed histories, clean recorded runs, and the
// paper's own counterexamples.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/paper.hpp"
#include "core/parallel_verify.hpp"
#include "core/random_history.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

[[nodiscard]] std::optional<OnlineViolation> stream_one_by_one(
    const History& h) {
  OnlineCertificateMonitor m(h.model());
  for (const Event& e : h.events()) (void)m.feed(e);
  return m.violation();
}

class BatchEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchEquivalence, IngestMatchesFeedForEveryBatchSize) {
  for (const ValueModel model :
       {ValueModel::kCoherent, ValueModel::kAdversarial}) {
    RandomHistoryParams params;
    params.seed = GetParam();
    params.num_txs = 8;
    params.num_objects = 4;
    params.value_model = model;
    const History h = random_history(params);
    const auto reference = stream_one_by_one(h);

    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{16}, h.size() + 1}) {
      OnlineCertificateMonitor m(h.model());
      const std::span<const Event> events(h.events());
      for (std::size_t i = 0; i < events.size(); i += batch) {
        (void)m.ingest(events.subspan(i, std::min(batch, events.size() - i)));
      }
      EXPECT_EQ(m.ok(), !reference.has_value()) << h.str();
      EXPECT_EQ(m.events_fed(), h.size());
      if (reference.has_value()) {
        ASSERT_TRUE(m.violation().has_value());
        EXPECT_EQ(m.violation()->pos, reference->pos) << h.str();
        EXPECT_EQ(m.violation()->reason, reference->reason);
      }
    }
  }
}

TEST_P(BatchEquivalence, ShardedDriverMatchesStreamingMonitor) {
  util::ThreadPool pool(2);
  for (const ValueModel model :
       {ValueModel::kCoherent, ValueModel::kAdversarial}) {
    RandomHistoryParams params;
    params.seed = GetParam() + 5000;
    params.num_txs = 8;
    params.num_objects = 4;
    params.max_ops_per_tx = 5;
    params.value_model = model;
    const History h = random_history(params);
    const auto reference = stream_one_by_one(h);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}}) {
      ShardVerifyOptions options;
      options.num_shards = shards;
      const ParallelVerifyResult result =
          verify_history_sharded(h, pool, options);
      EXPECT_EQ(result.certified, !reference.has_value())
          << "shards=" << shards << "\n"
          << h.str()
          << (result.violation ? "\ndriver: " + result.violation->reason : "")
          << (reference ? "\nmonitor: " + reference->reason : "");
      if (reference.has_value() && result.violation.has_value()) {
        EXPECT_EQ(result.violation->pos, reference->pos)
            << "shards=" << shards << "\ndriver: " << result.violation->reason
            << "\nmonitor: " << reference->reason << "\n"
            << h.str();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalence,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(ShardedDriver, CertifiesTheOpaquePaperHistory) {
  const History h5 = paper::fig2_h5();
  const ParallelVerifyResult result = verify_history_sharded(h5);
  EXPECT_TRUE(result.certified) << (result.violation ? result.violation->reason
                                                     : "");
}

TEST(ShardedDriver, FlagsAndAdjudicatesTheNonOpaquePaperHistory) {
  const History h1 = paper::fig1_h1();
  ShardVerifyOptions options;
  options.num_shards = 1;
  options.definitional_fallback = true;
  const ParallelVerifyResult result = verify_history_sharded(h1, options);
  ASSERT_FALSE(result.certified);
  ASSERT_FALSE(result.flags.empty());
  // The streaming monitor condemns the same position.
  const auto reference = stream_one_by_one(h1);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(result.violation->pos, reference->pos);
  // H1 is genuinely non-opaque, so the exact adjudicator must agree that
  // the flagged shard's sub-history (here: the whole history) is bad.
  EXPECT_EQ(result.flags.front().adjudication, Verdict::kNo)
      << result.flags.front().adjudication_reason;
}

TEST(ShardedDriver, ProjectionKeepsLifecycleOfTouchingTransactions) {
  const History h1 = paper::fig1_h1();
  std::vector<ObjId> all_regs;
  for (ObjId r = 0; r < h1.model().size(); ++r) all_regs.push_back(r);
  const History full = project_registers(h1, all_regs);
  ASSERT_EQ(full.size(), h1.size());
  const History none = project_registers(h1, {});
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace optm::core
