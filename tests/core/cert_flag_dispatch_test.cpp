// Table-driven coverage of CertFlagKind: every kind's classification
// (proves_non_opaque / reorder_repairable), a history that provokes it
// where one is constructible, and — the point of the structured kinds —
// the sharded driver's definitional fallback dispatching on them: kinds
// that violate §5.4 consistency short-circuit to kNo WITHOUT running the
// exponential search, while conservative kinds (the H4
// reads-from-commit-pending flag included) are adjudicated by the exact
// checker and may come back kYes.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/parallel_verify.hpp"
#include "core/version_order.hpp"

namespace optm::core {
namespace {

[[nodiscard]] ObjectModel model3() { return ObjectModel::registers(3, 0); }

struct KindCase {
  CertFlagKind kind;
  bool proves_non_opaque;
  bool reorder_repairable;
  /// Policy under which the provoking history flags (the stamp-space kinds
  /// need a stamp-space policy).
  VersionOrderPolicy policy;
  /// Exact verdict of the flagged history (what the non-short-circuited
  /// fallback must report). Meaningless without a builder.
  Verdict exact;
  /// Builds a history whose FIRST flag has this kind; nullptr for kinds
  /// with no reachable single-history trigger (classification-only rows).
  std::function<History()> build;
};

// T1 writes then reads back a different value.
[[nodiscard]] History local_inconsistency() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kWrite, 5)).append(ev::ret(1, 0, OpCode::kWrite, 5, 0));
  h.append(ev::inv(1, 0, OpCode::kRead)).append(ev::ret(1, 0, OpCode::kRead, 0, 7));
  return h;
}

[[nodiscard]] History unwritten_value() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kRead)).append(ev::ret(1, 0, OpCode::kRead, 0, 42));
  return h;
}

[[nodiscard]] History value_not_unique() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kWrite, 5)).append(ev::ret(1, 0, OpCode::kWrite, 5, 0));
  h.append(ev::try_commit(1)).append(ev::commit(1));
  h.append(ev::inv(2, 0, OpCode::kWrite, 5)).append(ev::ret(2, 0, OpCode::kWrite, 5, 0));
  return h;
}

[[nodiscard]] History not_well_formed() {
  History h(model3());
  h.append(ev::commit(1));  // C without tryC
  return h;
}

// H4: T1 is commit-pending when T2 reads its value — legal under opacity
// (the set V may include commit-pending writers), flagged conservatively.
[[nodiscard]] History reads_from_commit_pending() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kWrite, 5)).append(ev::ret(1, 0, OpCode::kWrite, 5, 0));
  h.append(ev::try_commit(1));  // no C: commit-pending
  h.append(ev::inv(2, 0, OpCode::kRead)).append(ev::ret(2, 0, OpCode::kRead, 0, 5));
  return h;
}

// T1's two reads straddle T2's commit of both registers: no consistent
// snapshot — the paper's Fig. 1 shape, genuinely non-opaque.
[[nodiscard]] History snapshot_empty() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kRead)).append(ev::ret(1, 0, OpCode::kRead, 0, 0));
  h.append(ev::inv(2, 0, OpCode::kWrite, 1)).append(ev::ret(2, 0, OpCode::kWrite, 1, 0));
  h.append(ev::inv(2, 1, OpCode::kWrite, 2)).append(ev::ret(2, 1, OpCode::kWrite, 2, 0));
  h.append(ev::try_commit(2)).append(ev::commit(2));
  h.append(ev::inv(1, 1, OpCode::kRead)).append(ev::ret(1, 1, OpCode::kRead, 0, 2));
  return h;
}

// T3 begins after T2 overwrote x, yet reads the old value: ≺_H forbids
// serializing T3 before T2.
[[nodiscard]] History stale_read() {
  History h(model3());
  h.append(ev::inv(2, 0, OpCode::kWrite, 1)).append(ev::ret(2, 0, OpCode::kWrite, 1, 0));
  h.append(ev::try_commit(2)).append(ev::commit(2));
  h.append(ev::inv(3, 0, OpCode::kRead)).append(ev::ret(3, 0, OpCode::kRead, 0, 0));
  return h;
}

// T1 read x before T2 overwrote it, then commits an update of y: under
// the commit order its reads are no longer current — but serializing T1
// BEFORE T2 is legal, so the flag is conservative (the §3.6 territory).
[[nodiscard]] History not_current_at_commit() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kRead)).append(ev::ret(1, 0, OpCode::kRead, 0, 0));
  h.append(ev::inv(2, 0, OpCode::kWrite, 1)).append(ev::ret(2, 0, OpCode::kWrite, 1, 0));
  h.append(ev::try_commit(2)).append(ev::commit(2));
  h.append(ev::inv(1, 1, OpCode::kWrite, 5)).append(ev::ret(1, 1, OpCode::kWrite, 5, 0));
  h.append(ev::try_commit(1)).append(ev::commit(1));
  return h;
}

// Snapshot-rank: T1 (read-only) pins its serialization at stamp 5, past
// the close (stamp 2) of the version it read — yet serializing T1 before
// T2 is perfectly legal, the runtime merely stamped a claim the version
// order contradicts.
[[nodiscard]] History no_read_only_point() {
  History h(model3());
  h.append(ev::inv(1, 0, OpCode::kRead)).append(ev::ret(1, 0, OpCode::kRead, 0, 0));
  h.append(ev::inv(2, 0, OpCode::kWrite, 1)).append(ev::ret(2, 0, OpCode::kWrite, 1, 0));
  h.append(ev::try_commit(2)).append(ev::commit(2, /*stamp=*/2));
  h.append(ev::try_commit(1)).append(ev::commit(1, /*stamp=*/5));
  return h;
}

// Stamped read naming a version the value does not belong to (a lying
// runtime / corrupted record); the history itself is opaque.
[[nodiscard]] History read_stamp_mismatch() {
  History h(model3());
  h.append(ev::inv(2, 0, OpCode::kWrite, 7)).append(ev::ret(2, 0, OpCode::kWrite, 7, 0));
  h.append(ev::try_commit(2)).append(ev::commit(2, /*stamp=*/2));
  h.append(ev::inv(1, 0, OpCode::kRead))
      .append(ev::ret(1, 0, OpCode::kRead, 0, 7, /*stamp=*/3, /*ver=*/99));
  return h;
}

const std::vector<KindCase>& kind_table() {
  static const std::vector<KindCase> table = {
      {CertFlagKind::kNone, false, false, VersionOrderPolicy::kCommitOrder,
       Verdict::kUnknown, nullptr},
      {CertFlagKind::kNotWellFormed, false, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kUnknown, not_well_formed},
      {CertFlagKind::kValueNotUnique, false, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kYes, value_not_unique},
      {CertFlagKind::kLocalInconsistency, true, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kNo, local_inconsistency},
      {CertFlagKind::kUnwrittenValue, true, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kNo, unwritten_value},
      // kSelfRead is defensively coded but unreachable from feed(): a
      // version resolving to the reader was installed by the reader's own
      // write response, which also populated its local-write table, so the
      // local-read path answers first. Classification-only row.
      {CertFlagKind::kSelfRead, true, false, VersionOrderPolicy::kCommitOrder,
       Verdict::kUnknown, nullptr},
      {CertFlagKind::kReadFromNonCommitted, false, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kYes,
       reads_from_commit_pending},
      {CertFlagKind::kSnapshotEmpty, false, true,
       VersionOrderPolicy::kCommitOrder, Verdict::kNo, snapshot_empty},
      {CertFlagKind::kStaleRead, false, true,
       VersionOrderPolicy::kCommitOrder, Verdict::kNo, stale_read},
      {CertFlagKind::kNotCurrentAtCommit, false, true,
       VersionOrderPolicy::kCommitOrder, Verdict::kYes, not_current_at_commit},
      {CertFlagKind::kNoReadOnlyPoint, false, true,
       VersionOrderPolicy::kSnapshotRank, Verdict::kYes, no_read_only_point},
      {CertFlagKind::kReadStampMismatch, false, false,
       VersionOrderPolicy::kStampedRead, Verdict::kYes, read_stamp_mismatch},
      // Adjudication/search outcomes, never raised by the register checks.
      {CertFlagKind::kSmartReorderFailed, false, false,
       VersionOrderPolicy::kBlindWriteSmart, Verdict::kUnknown, nullptr},
      {CertFlagKind::kNotOpaque, false, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kUnknown, nullptr},
      {CertFlagKind::kBudgetExhausted, false, false,
       VersionOrderPolicy::kCommitOrder, Verdict::kUnknown, nullptr},
  };
  return table;
}

TEST(CertFlagDispatch, TableCoversEveryKindExactlyOnce) {
  // A new enum value must get a table row (and a dispatch decision): the
  // count below is the number of CertFlagKind enumerators.
  EXPECT_EQ(kind_table().size(), 15u);
  for (std::size_t i = 0; i < kind_table().size(); ++i) {
    for (std::size_t j = i + 1; j < kind_table().size(); ++j) {
      EXPECT_NE(kind_table()[i].kind, kind_table()[j].kind);
    }
  }
}

TEST(CertFlagDispatch, ClassificationMatchesTheTable) {
  for (const KindCase& c : kind_table()) {
    EXPECT_EQ(proves_non_opaque(c.kind), c.proves_non_opaque)
        << to_string(c.kind);
    EXPECT_EQ(reorder_repairable(c.kind), c.reorder_repairable)
        << to_string(c.kind);
    // The two dispatch sets are disjoint: a kind proving non-opacity can
    // never be repaired by reordering versions.
    EXPECT_FALSE(proves_non_opaque(c.kind) && reorder_repairable(c.kind))
        << to_string(c.kind);
  }
}

TEST(CertFlagDispatch, MonitorRaisesEachConstructibleKind) {
  for (const KindCase& c : kind_table()) {
    if (!c.build) continue;
    const History h = c.build();
    OnlineCertificateMonitor m(h.model(), c.policy);
    for (const Event& e : h.events()) (void)m.feed(e);
    ASSERT_FALSE(m.ok()) << to_string(c.kind) << "\n" << h.str();
    EXPECT_EQ(m.violation()->kind, c.kind)
        << "got " << to_string(m.violation()->kind) << ": "
        << m.violation()->reason << "\n" << h.str();
  }
}

TEST(CertFlagDispatch, FallbackShortCircuitsConsistencyViolatingKinds) {
  for (const KindCase& c : kind_table()) {
    if (!c.build) continue;
    const History h = c.build();
    ShardVerifyOptions options;
    options.policy = c.policy;
    options.num_shards = 1;
    options.definitional_fallback = true;
    const ParallelVerifyResult result = verify_history_sharded(h, options);
    ASSERT_FALSE(result.certified) << to_string(c.kind);
    ASSERT_FALSE(result.flags.empty()) << to_string(c.kind);
    const ShardFlag& flag = result.flags.front();
    EXPECT_EQ(flag.kind, c.kind) << flag.reason << "\n" << h.str();

    if (flag.shard == kNoShard) {
      // Global well-formedness flags have no shard sub-history to
      // adjudicate; the fallback leaves them kUnknown.
      EXPECT_EQ(flag.adjudication, Verdict::kUnknown) << to_string(c.kind);
      continue;
    }
    if (proves_non_opaque(c.kind)) {
      // The short-circuit: §5.4 consistency violations adjudicate kNo by
      // dispatch on the kind — the exponential search must not run.
      EXPECT_EQ(flag.adjudication, Verdict::kNo) << to_string(c.kind);
      EXPECT_NE(flag.adjudication_reason.find("no search needed"),
                std::string::npos)
          << to_string(c.kind) << ": " << flag.adjudication_reason;
    } else {
      // Conservative kinds go to the exact checker; H4 and the version-
      // order claims come back kYes (the flag was a false alarm as far as
      // opacity goes), the genuine violations kNo.
      EXPECT_EQ(flag.adjudication, c.exact)
          << to_string(c.kind) << ": " << flag.adjudication_reason;
      EXPECT_EQ(flag.adjudication_reason.find("no search needed"),
                std::string::npos)
          << to_string(c.kind) << " short-circuited unexpectedly";
    }
  }
}

}  // namespace
}  // namespace optm::core
