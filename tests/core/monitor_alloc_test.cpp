// The allocation-free hot path, held to its word: feed 100k+ recorded
// events through OnlineCertificateMonitor under a counting operator-new
// and assert ZERO heap allocations after warm-up (reserve()), per policy.
//
// The monitor's per-event state is a TxId-indexed slab, an open-addressing
// flat version table, pooled write-set spill storage and reusable holder
// lists (core/dense_state.hpp); failure strings exist only on flags. With
// the dense state pre-sized for the run, nothing on the feed path touches
// the heap — which is exactly what lets the live pipeline verify at
// recording speed. kBlindWriteSmart is exempt by design: it retains the
// prefix for the §3.6 reorder search (checker-scale, documented).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/online.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "workload/workloads.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting global allocator: every operator-new in the binary bumps the
// counter. Works under ASan/TSan too (they intercept the malloc beneath).
// GCC cannot see that the replaced operator-new is malloc-backed and warns
// about the free() in the matching deletes; the pairing is correct here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
// Over-aligned allocations must count too (alignas(64) members would
// otherwise escape the gate through the aligned overloads).
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace optm::core {
namespace {

/// Record a single-threaded deterministic mix (window-free tl2, so read
/// responses carry their (rv, version) stamps and every policy below has
/// real material to validate). Single-threaded keeps the recording
/// deterministic; the monitor does not care who recorded.
[[nodiscard]] History recorded_history(std::size_t target_events) {
  const auto stm = stm::make_stm("tl2", 32);
  EXPECT_TRUE(stm->set_window_free(true));
  stm::Recorder recorder(32);
  stm->set_recorder(&recorder);
  wl::MixParams params;
  params.threads = 1;
  params.vars = 32;
  // ~2 events per op + ~3 lifecycle events per transaction, sized with
  // slack (aborted transactions record fewer events).
  params.ops_per_tx = 4;  // <= SmallWriteSet::kInlineCapacity: no spill
  params.txs_per_thread = target_events / (2 * params.ops_per_tx + 1) + 1;
  params.write_ratio = 0.4;
  params.voluntary_abort_ratio = 0.05;
  params.seed = 20260730;
  (void)wl::run_random_mix(*stm, params);
  return recorder.history();
}

struct ReserveSizes {
  std::size_t num_txs = 0;
  std::size_t num_versions = 0;
  std::size_t holders = 0;
};

/// Upper bounds computable from the history alone — what a production
/// deployment would size from its expected load.
[[nodiscard]] ReserveSizes sizes_for(const History& h) {
  ReserveSizes s;
  TxId max_tx = 0;
  std::size_t writes = 0;
  std::vector<std::size_t> reads_per_obj(h.model().size(), 0);
  for (const Event& e : h.events()) {
    if (e.tx > max_tx) max_tx = e.tx;
    if (e.kind != EventKind::kResponse) continue;
    if (e.op == OpCode::kWrite) {
      ++writes;
    } else if (e.op == OpCode::kRead) {
      ++reads_per_obj[e.obj];
    }
  }
  s.num_txs = static_cast<std::size_t>(max_tx) + 2;
  s.num_versions = writes + h.model().size() + 1;
  for (const std::size_t n : reads_per_obj) s.holders = std::max(s.holders, n);
  return s;
}

class MonitorAllocTest
    : public ::testing::TestWithParam<VersionOrderPolicy> {};

TEST_P(MonitorAllocTest, SteadyStateFeedsWithoutAllocating) {
  const VersionOrderPolicy policy = GetParam();
  const History h = recorded_history(100'000);
  ASSERT_GE(h.size(), 100'000u) << "workload undershot the event target";

  OnlineCertificateMonitor monitor(h.model(), policy);
  // Warm-up: pre-size the dense state from the recorded load.
  const ReserveSizes sizes = sizes_for(h);
  monitor.reserve(sizes.num_txs, sizes.num_versions, sizes.holders);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const Event& e : h.events()) {
    if (!monitor.feed(e)) break;  // a flag would allocate its reason string
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_TRUE(monitor.ok()) << to_string(policy) << ": "
                            << monitor.violation()->reason;
  EXPECT_EQ(monitor.events_fed(), h.size());
  EXPECT_EQ(after - before, 0u)
      << to_string(policy) << ": the hot path allocated " << (after - before)
      << " times over " << h.size() << " events";
}

INSTANTIATE_TEST_SUITE_P(Policies, MonitorAllocTest,
                         ::testing::Values(VersionOrderPolicy::kCommitOrder,
                                           VersionOrderPolicy::kSnapshotRank,
                                           VersionOrderPolicy::kStampedRead),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionOrderPolicy::kCommitOrder:
                               return "CommitOrder";
                             case VersionOrderPolicy::kSnapshotRank:
                               return "SnapshotRank";
                             case VersionOrderPolicy::kStampedRead:
                               return "StampedRead";
                             default:
                               return "Other";
                           }
                         });

/// The batch path must be equally clean: ingest() in drain-sized batches.
TEST(MonitorAllocBatch, IngestAllocatesNothingSteadyState) {
  const History h = recorded_history(100'000);
  OnlineCertificateMonitor monitor(h.model(),
                                   VersionOrderPolicy::kStampedRead);
  const ReserveSizes sizes = sizes_for(h);
  monitor.reserve(sizes.num_txs, sizes.num_versions, sizes.holders);

  const std::span<const Event> events(h.events());
  const std::size_t batch = 1024;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < events.size(); i += batch) {
    (void)monitor.ingest(
        events.subspan(i, std::min(batch, events.size() - i)));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(monitor.ok());
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace optm::core
