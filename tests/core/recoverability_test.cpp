// Recoverability (§3.5) and rigorous scheduling (§3.6).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/opacity.hpp"
#include "core/paper.hpp"
#include "core/recoverability.hpp"
#include "core/rigorous.hpp"

namespace optm::core {
namespace {

// --- classical recoverability ------------------------------------------------

TEST(Recoverability, CleanCommitOrderHolds) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(check_recoverability(h).holds);
}

TEST(Recoverability, CommittedReaderOfUncommittedWriter) {
  // T2 reads T1's uncommitted write and commits first: unrecoverable.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .commit_now(1)
                        .build();
  const auto r = check_recoverability(h);
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Recoverability, CommittedReaderOfAbortedWriter) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 1)
                        .trya(1)
                        .abort(1)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(check_recoverability(h).holds);
}

TEST(Recoverability, AbortedReaderUnconstrained) {
  // Cascading abort resolved by aborting the reader: recoverable.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 1)
                        .trya(1)
                        .abort(1)
                        .trya(2)
                        .abort(2)
                        .build();
  EXPECT_TRUE(check_recoverability(h).holds);
}

// --- strict recoverability ---------------------------------------------------

TEST(StrictRecoverability, BlocksAccessDuringUpdate) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 0)  // touches x while T1 incomplete
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  const auto r = check_strict_recoverability(h);
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.reason.find("T2"), std::string::npos);
}

TEST(StrictRecoverability, AccessAfterCompletionIsFine) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(check_strict_recoverability(h).holds);
}

TEST(StrictRecoverability, ReaderDoesNotBlockWriters) {
  // Strict recoverability constrains only UPDATES: a read followed by
  // another transaction's write is permitted.
  const History h = HistoryBuilder::registers(1)
                        .read(1, 0, 0)
                        .write(2, 0, 1)
                        .commit_now(2)
                        .commit_now(1)
                        .build();
  EXPECT_TRUE(check_strict_recoverability(h).holds);
}

TEST(StrictRecoverability, LiveUpdaterBlocksUntilEndOfHistory) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)  // T1 never completes
                        .read(2, 0, 0)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(check_strict_recoverability(h).holds);
}

TEST(StrictRecoverability, CounterIncrementsForbidden) {
  // §3.5: "recoverability does not allow them to proceed concurrently, for
  //  each modifies the same shared object. However, there is no reason why
  //  a TM implementation could not execute them in parallel."
  const History h = paper::counter_increments(3);
  EXPECT_FALSE(check_strict_recoverability(h).holds);
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- rigorousness ---------------------------------------------------------------

TEST(Rigorous, SequentialHistoryIsRigorous) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(check_rigorous(h).holds);
}

TEST(Rigorous, WriteAfterForeignReadForbidden) {
  // The extra condition beyond strict recoverability.
  const History h = HistoryBuilder::registers(1)
                        .read(1, 0, 0)
                        .write(2, 0, 1)  // overwrites what T1 read, T1 live
                        .commit_now(2)
                        .commit_now(1)
                        .build();
  EXPECT_FALSE(check_rigorous(h).holds);
  EXPECT_TRUE(check_strict_recoverability(h).holds);  // the separation
}

TEST(Rigorous, BlindWritesExampleNotRigorousButOpaque) {
  // §3.6's argument in executable form.
  const History h = paper::blind_overlapping_writes(3);
  EXPECT_FALSE(check_rigorous(h).holds);
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(Rigorous, ReadersMayShareFreely) {
  const History h = HistoryBuilder::registers(1)
                        .read(1, 0, 0)
                        .read(2, 0, 0)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(check_rigorous(h).holds);
}

TEST(Rigorous, RigorousHistoriesAreOpaqueInPractice) {
  // Rigorousness (plus sane read values) implies no interleaved access to
  // written data — our sequentially generated histories stay opaque.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 2)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .write(2, 0, 3)
                        .commit_now(2)
                        .read(3, 0, 3)
                        .read(3, 1, 2)
                        .commit_now(3)
                        .build();
  EXPECT_TRUE(check_rigorous(h).holds);
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

}  // namespace
}  // namespace optm::core
