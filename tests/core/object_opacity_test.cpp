// Opacity over ARBITRARY shared objects — the §3.4 requirement the paper
// insists on ("we need to consider a formal description of the semantics
// of the implemented shared objects as an input parameter to the TM
// correctness criterion"). These tests drive the definitional checker
// through queue, stack, counter, fetch-add and set histories, where
// legality is decided by sequential-specification replay rather than
// last-write bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "core/builder.hpp"
#include "core/object_spec.hpp"
#include "core/opacity.hpp"
#include "core/recoverability.hpp"

namespace optm::core {
namespace {

ObjectModel one(std::shared_ptr<const ObjectSpec> spec) {
  ObjectModel m;
  m.add(std::move(spec));
  return m;
}

// --- FIFO queue ---------------------------------------------------------------

TEST(QueueOpacity, FifoOrderAccepted) {
  const History h = HistoryBuilder(one(std::make_shared<QueueSpec>()))
                        .enq(1, 0, 10)
                        .enq(1, 0, 20)
                        .commit_now(1)
                        .deq(2, 0, 10)
                        .commit_now(2)
                        .deq(3, 0, 20)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(QueueOpacity, SkippedHeadRejected) {
  // Dequeuing 20 while 10 is still at the front matches no sequential
  // execution of a FIFO queue.
  const History h = HistoryBuilder(one(std::make_shared<QueueSpec>()))
                        .enq(1, 0, 10)
                        .enq(1, 0, 20)
                        .commit_now(1)
                        .deq(2, 0, 20)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(QueueOpacity, DuplicateDequeueRejected) {
  // Two committed transactions both claim the same element.
  const History h = HistoryBuilder(one(std::make_shared<QueueSpec>()))
                        .enq(1, 0, 10)
                        .commit_now(1)
                        .deq(2, 0, 10)
                        .deq(3, 0, 10)
                        .commit_now(2)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(QueueOpacity, EmptyDequeueIsAState) {
  // kEmpty is a legal return precisely while nothing is enqueued — and an
  // aborted enqueuer never changes that.
  const History ok = HistoryBuilder(one(std::make_shared<QueueSpec>()))
                         .enq(1, 0, 10)
                         .abort_now(1)
                         .deq(2, 0, kEmpty)
                         .commit_now(2)
                         .build();
  EXPECT_EQ(check_opacity(ok).verdict, Verdict::kYes);

  const History bad = HistoryBuilder(one(std::make_shared<QueueSpec>()))
                          .enq(1, 0, 10)
                          .abort_now(1)
                          .deq(2, 0, 10)  // observes the aborted enqueue
                          .commit_now(2)
                          .build();
  EXPECT_EQ(check_opacity(bad).verdict, Verdict::kNo);
}

TEST(QueueOpacity, DequeueFromCommitPendingEnqueuerAllowed) {
  // The H4 duality on a queue: T1 is commit-pending when T2 dequeues its
  // element; Complete(H) may commit T1, so the history is opaque.
  HistoryBuilder b(one(std::make_shared<QueueSpec>()));
  b.enq(1, 0, 10).tryc(1);  // commit-pending
  b.deq(2, 0, 10).commit_now(2);
  const History h = b.build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

// --- LIFO stack ----------------------------------------------------------------

TEST(StackOpacity, LifoOrderAccepted) {
  const History h = HistoryBuilder(one(std::make_shared<StackSpec>()))
                        .push(1, 0, 10)
                        .push(1, 0, 20)
                        .commit_now(1)
                        .pop(2, 0, 20)
                        .pop(2, 0, 10)
                        .pop(2, 0, kEmpty)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(StackOpacity, FifoOrderRejected) {
  const History h = HistoryBuilder(one(std::make_shared<StackSpec>()))
                        .push(1, 0, 10)
                        .push(1, 0, 20)
                        .commit_now(1)
                        .pop(2, 0, 10)  // bottom first: not a stack
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

// --- counter (§3.4) --------------------------------------------------------------

TEST(CounterOpacity, ConcurrentBlindIncrementsAllCommit) {
  // The paper's motivating example: k concurrent inc() transactions are
  // all opaque together — any serialization is legal because inc is
  // write-only and commutative.
  HistoryBuilder b(one(std::make_shared<CounterSpec>()));
  b.inc(1, 0).inc(2, 0).inc(3, 0);
  b.commit_now(1).commit_now(2).commit_now(3);
  const History h = b.build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);

  // ... while strict recoverability (§3.5) forbids exactly this — the
  // paper's argument that it is too strong for arbitrary objects.
  EXPECT_FALSE(check_strict_recoverability(h).holds);
}

TEST(CounterOpacity, GetPinsTheCount) {
  // A reader between increments constrains the serialization: get() -> 1
  // with two committed incs around it is opaque (one before, one after),
  // but get() -> 3 with only two incs is not.
  HistoryBuilder ok(one(std::make_shared<CounterSpec>()));
  ok.inc(1, 0).commit_now(1);
  ok.get(2, 0, 1).commit_now(2);
  ok.inc(3, 0).commit_now(3);
  EXPECT_EQ(check_opacity(ok.build()).verdict, Verdict::kYes);

  HistoryBuilder bad(one(std::make_shared<CounterSpec>()));
  bad.inc(1, 0).commit_now(1);
  bad.inc(2, 0).commit_now(2);
  bad.get(3, 0, 3).commit_now(3);  // only two increments ever committed
  EXPECT_EQ(check_opacity(bad.build()).verdict, Verdict::kNo);
}

TEST(CounterOpacity, AbortedIncrementInvisible) {
  HistoryBuilder b(one(std::make_shared<CounterSpec>()));
  b.inc(1, 0).abort_now(1);
  b.get(2, 0, 1).commit_now(2);  // claims to see the aborted inc
  EXPECT_EQ(check_opacity(b.build()).verdict, Verdict::kNo);
}

// --- fetch-add ----------------------------------------------------------------------

TEST(FetchAddOpacity, ReturnValuesForceATotalOrder) {
  // faa returns the OLD value, so concurrent faa(1)s must observe distinct
  // predecessors: {0, 1} is opaque, {0, 0} is not.
  HistoryBuilder ok(one(std::make_shared<FetchAddSpec>()));
  ok.fetch_add(1, 0, 1, 0).fetch_add(2, 0, 1, 1);
  ok.commit_now(1).commit_now(2);
  EXPECT_EQ(check_opacity(ok.build()).verdict, Verdict::kYes);

  HistoryBuilder bad(one(std::make_shared<FetchAddSpec>()));
  bad.fetch_add(1, 0, 1, 0).fetch_add(2, 0, 1, 0);
  bad.commit_now(1).commit_now(2);
  EXPECT_EQ(check_opacity(bad.build()).verdict, Verdict::kNo);
}

// --- set ------------------------------------------------------------------------------

TEST(SetOpacity, DisjointInsertsCommute) {
  HistoryBuilder b(one(std::make_shared<SetSpec>()));
  b.exec(1, 0, OpCode::kInsert, 5, 1).exec(2, 0, OpCode::kInsert, 7, 1);
  b.commit_now(1).commit_now(2);
  b.exec(3, 0, OpCode::kContains, 5, 1)
      .exec(3, 0, OpCode::kContains, 7, 1)
      .commit_now(3);
  EXPECT_EQ(check_opacity(b.build()).verdict, Verdict::kYes);
}

TEST(SetOpacity, DoubleInsertOfSameKeyCannotBothSucceed) {
  // insert returns 1 only when the key was absent: two committed
  // transactions cannot both have inserted the same key first.
  HistoryBuilder b(one(std::make_shared<SetSpec>()));
  b.exec(1, 0, OpCode::kInsert, 5, 1).exec(2, 0, OpCode::kInsert, 5, 1);
  b.commit_now(1).commit_now(2);
  EXPECT_EQ(check_opacity(b.build()).verdict, Verdict::kNo);
}

// --- mixed objects -----------------------------------------------------------------

TEST(MixedObjects, TornViewAcrossObjectTypesRejected) {
  // One register (obj 0) and one queue (obj 1), updated together by T1.
  // Live T2 sees the new register value but the OLD queue state: no
  // committed prefix ever contained that combination.
  ObjectModel m;
  m.add(std::make_shared<RegisterSpec>(0));
  m.add(std::make_shared<QueueSpec>());
  HistoryBuilder b(m);
  b.write(1, 0, 7).enq(1, 1, 10).commit_now(1);
  b.read(2, 0, 7).deq(2, 1, kEmpty);  // new register, old queue
  b.tryc(2).abort(2);
  EXPECT_EQ(check_opacity(b.build()).verdict, Verdict::kNo);
}

TEST(MixedObjects, ConsistentCrossObjectViewAccepted) {
  ObjectModel m;
  m.add(std::make_shared<RegisterSpec>(0));
  m.add(std::make_shared<QueueSpec>());
  HistoryBuilder b(m);
  b.write(1, 0, 7).enq(1, 1, 10).commit_now(1);
  b.read(2, 0, 7).deq(2, 1, 10).commit_now(2);
  EXPECT_EQ(check_opacity(b.build()).verdict, Verdict::kYes);
}

}  // namespace
}  // namespace optm::core
