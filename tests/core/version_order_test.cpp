// The pluggable version-order layer: §3.6 blind-write histories that the
// commit-order certificate falsely flags but the BlindWriteSmart policy
// certifies (cross-checked against the exact definitional monitor),
// structured reason codes on certificate flags, and policy plumbing through
// both the streaming monitor and the sharded offline driver.
#include <gtest/gtest.h>

#include <string>

#include "core/online.hpp"
#include "core/opacity.hpp"
#include "core/paper.hpp"
#include "core/parallel_verify.hpp"
#include "core/random_history.hpp"
#include "core/version_order.hpp"

namespace optm::core {
namespace {

[[nodiscard]] OnlineCertificateMonitor feed_all(
    const History& h, VersionOrderPolicy policy) {
  OnlineCertificateMonitor m(h.model(), policy);
  for (const Event& e : h.events()) (void)m.feed(e);
  return m;
}

/// §3.6's smart-TM shape: T2 reads the initial x, T1 blind-writes x and
/// commits FIRST, then T2 blind-writes y and commits. The commit order
/// cannot serialize T2 (its read of x=0 is no longer current at its commit
/// rank), but T2 ≪ T1 is a legal version order: T1's write is blind and
/// the two transactions overlap in real time.
[[nodiscard]] History smart_blind_history() {
  History h(ObjectModel::registers(2, 0));
  h.append(ev::inv(2, 0, OpCode::kRead)).append(ev::ret(2, 0, OpCode::kRead, 0, 0));
  h.append(ev::inv(1, 0, OpCode::kWrite, 1))
      .append(ev::ret(1, 0, OpCode::kWrite, 1, kOk));
  h.append(ev::try_commit(1)).append(ev::commit(1));
  h.append(ev::inv(2, 1, OpCode::kWrite, 1))
      .append(ev::ret(2, 1, OpCode::kWrite, 1, kOk));
  h.append(ev::try_commit(2)).append(ev::commit(2));
  return h;
}

/// The same shape but T1 wholly precedes T2, so the real-time order ≺_H
/// forbids the reordering — genuinely non-opaque.
[[nodiscard]] History stale_blind_history() {
  History h(ObjectModel::registers(2, 0));
  h.append(ev::inv(1, 0, OpCode::kWrite, 1))
      .append(ev::ret(1, 0, OpCode::kWrite, 1, kOk));
  h.append(ev::try_commit(1)).append(ev::commit(1));
  h.append(ev::inv(2, 0, OpCode::kRead)).append(ev::ret(2, 0, OpCode::kRead, 0, 0));
  h.append(ev::inv(2, 1, OpCode::kWrite, 2))
      .append(ev::ret(2, 1, OpCode::kWrite, 2, kOk));
  h.append(ev::try_commit(2)).append(ev::commit(2));
  return h;
}

TEST(BlindWriteSmart, CertifiesWhatCommitOrderFalselyFlags) {
  const History h = smart_blind_history();

  // Commit order: flagged at T2's C, with the structured kind.
  const auto commit_order = feed_all(h, VersionOrderPolicy::kCommitOrder);
  ASSERT_FALSE(commit_order.ok());
  EXPECT_EQ(commit_order.violation()->kind, CertFlagKind::kNotCurrentAtCommit);
  EXPECT_EQ(commit_order.violation()->pos, h.size() - 1);

  // BlindWriteSmart: the §3.6 reordering certifies the prefix and the
  // monitor keeps streaming (retro-ordered).
  const auto smart = feed_all(h, VersionOrderPolicy::kBlindWriteSmart);
  EXPECT_TRUE(smart.ok()) << smart.violation()->reason;
  EXPECT_TRUE(smart.retro_ordered());

  // The exact definitional monitor agrees the history is opaque.
  OnlineDefinitionalMonitor exact(h.model());
  for (const Event& e : h.events()) (void)exact.feed(e);
  EXPECT_TRUE(exact.ok()) << exact.violation()->reason;
}

TEST(BlindWriteSmart, ShardedDriverMatchesMonitorAndYieldsWitnessOrder) {
  const History h = smart_blind_history();

  ShardVerifyOptions commit_order;
  commit_order.num_shards = 1;
  const ParallelVerifyResult flagged = verify_history_sharded(h, commit_order);
  ASSERT_FALSE(flagged.certified);
  EXPECT_EQ(flagged.flags.front().kind, CertFlagKind::kNotCurrentAtCommit);
  EXPECT_EQ(flagged.flags.front().tx, 2u);

  ShardVerifyOptions smart;
  smart.policy = VersionOrderPolicy::kBlindWriteSmart;
  smart.num_shards = 1;
  const ParallelVerifyResult repaired = verify_history_sharded(h, smart);
  EXPECT_TRUE(repaired.certified);
  EXPECT_TRUE(repaired.flags.empty());
  // The witness order serializes the blind-written version of T2 first.
  ASSERT_EQ(repaired.smart_order.size(), 2u);
  EXPECT_EQ(repaired.smart_order[0], 2u);
  EXPECT_EQ(repaired.smart_order[1], 1u);
}

TEST(BlindWriteSmart, RealTimeOrderStillBlocksTheReordering) {
  const History h = stale_blind_history();

  // The per-read stale flag fires for every policy — no §3.6 reordering
  // can move T2 before a transaction that wholly preceded it, so the
  // repair attempt fails and the ORIGINAL flag (kind included) is latched.
  for (const VersionOrderPolicy policy :
       {VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kBlindWriteSmart}) {
    const auto m = feed_all(h, policy);
    ASSERT_FALSE(m.ok()) << to_string(policy);
    EXPECT_EQ(m.violation()->kind, CertFlagKind::kStaleRead) << to_string(policy);
  }

  // And rightly so: the history is genuinely non-opaque.
  const OpacityResult exact = check_opacity(h);
  EXPECT_EQ(exact.verdict, Verdict::kNo);

  ShardVerifyOptions smart;
  smart.policy = VersionOrderPolicy::kBlindWriteSmart;
  smart.num_shards = 1;
  smart.definitional_fallback = true;
  const ParallelVerifyResult result = verify_history_sharded(h, smart);
  EXPECT_FALSE(result.certified);
  EXPECT_TRUE(result.smart_order.empty());
  EXPECT_EQ(result.flags.front().adjudication, Verdict::kNo)
      << result.flags.front().adjudication_reason;
}

TEST(BlindWriteSmart, PaperBlindOverlappingWritesCertifiesUnderEveryPolicy) {
  const History h = paper::blind_overlapping_writes(4);
  for (const VersionOrderPolicy policy :
       {VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kBlindWriteSmart,
        VersionOrderPolicy::kSnapshotRank}) {
    const auto m = feed_all(h, policy);
    EXPECT_TRUE(m.ok()) << to_string(policy) << ": " << m.violation()->reason;
  }
}

TEST(ReasonCodes, ReadFromCommitPendingWriterIsStructured) {
  // H4's shape: T2's writes are commit-pending when T3 reads one of them.
  // The certificate flags conservatively — and the flag must carry the
  // kReadFromNonCommitted kind so adjudication can dispatch on it without
  // string matching.
  const History h4 = paper::h4();
  const auto m = feed_all(h4, VersionOrderPolicy::kCommitOrder);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violation()->kind, CertFlagKind::kReadFromNonCommitted);

  ShardVerifyOptions options;
  options.num_shards = 1;
  options.definitional_fallback = true;
  const ParallelVerifyResult result = verify_history_sharded(h4, options);
  ASSERT_FALSE(result.certified);
  EXPECT_EQ(result.flags.front().kind, CertFlagKind::kReadFromNonCommitted);
  // H4 is opaque (the V-set optimization): the conservative flag is
  // adjudicated kYes by the exact checker.
  EXPECT_EQ(result.flags.front().adjudication, Verdict::kYes)
      << result.flags.front().adjudication_reason;
}

TEST(ReasonCodes, ConsistencyViolationsAdjudicateWithoutTheSearch) {
  // A read of a never-written value proves non-opacity outright
  // (Theorem 2 makes §5.4 consistency necessary): the fallback dispatches
  // on the kind and skips the exponential checker.
  History h(ObjectModel::registers(1, 0));
  h.append(ev::inv(1, 0, OpCode::kRead))
      .append(ev::ret(1, 0, OpCode::kRead, 0, 42));
  h.append(ev::try_commit(1)).append(ev::commit(1));

  const auto m = feed_all(h, VersionOrderPolicy::kCommitOrder);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violation()->kind, CertFlagKind::kUnwrittenValue);
  EXPECT_TRUE(proves_non_opaque(m.violation()->kind));

  ShardVerifyOptions options;
  options.num_shards = 1;
  options.definitional_fallback = true;
  const ParallelVerifyResult result = verify_history_sharded(h, options);
  ASSERT_FALSE(result.certified);
  EXPECT_EQ(result.flags.front().kind, CertFlagKind::kUnwrittenValue);
  EXPECT_EQ(result.flags.front().adjudication, Verdict::kNo);
  EXPECT_NE(result.flags.front().adjudication_reason.find("no search needed"),
            std::string::npos);
}

TEST(ReasonCodes, DefinitionalMonitorTagsItsViolations) {
  const History zombie = paper::section2_zombie();
  OnlineDefinitionalMonitor m(zombie.model());
  for (const Event& e : zombie.events()) (void)m.feed(e);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violation()->kind, CertFlagKind::kNotOpaque);
}

TEST(SnapshotRank, DegeneratesToCommitOrderOnUnstampedHistories) {
  // Unstamped C events synthesize ranks in record order, so the
  // SnapshotRank policy must agree with kCommitOrder verdict-and-position
  // on every stamp-free history.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    for (const ValueModel model :
         {ValueModel::kCoherent, ValueModel::kAdversarial}) {
      RandomHistoryParams params;
      params.seed = seed;
      params.num_txs = 8;
      params.num_objects = 4;
      params.value_model = model;
      const History h = random_history(params);
      const auto commit_order = feed_all(h, VersionOrderPolicy::kCommitOrder);
      const auto snapshot = feed_all(h, VersionOrderPolicy::kSnapshotRank);
      ASSERT_EQ(commit_order.ok(), snapshot.ok()) << h.str();
      if (!commit_order.ok()) {
        EXPECT_EQ(commit_order.violation()->pos, snapshot.violation()->pos)
            << h.str();
        EXPECT_EQ(commit_order.violation()->kind, snapshot.violation()->kind);
      }
    }
  }
}

TEST(SnapshotRank, ReadlessUpdateCommitBelowTheBirthFloorFlagsInBothEngines) {
  // T1 commits an update stamped 2·10 (floor 20); T2 then begins and
  // blind-writes with a stamp BELOW the floor — serializing before a
  // transaction that wholly preceded it. The monitor fires the rank check
  // at T2's C; the driver must agree even though T2 has no reads (readless
  // commits never enter the window merge).
  History h(ObjectModel::registers(2, 0));
  h.append(ev::inv(1, 0, OpCode::kWrite, 1))
      .append(ev::ret(1, 0, OpCode::kWrite, 1, kOk));
  h.append(ev::try_commit(1)).append(ev::commit(1, 20));
  h.append(ev::inv(2, 1, OpCode::kWrite, 2))
      .append(ev::ret(2, 1, OpCode::kWrite, 2, kOk));
  h.append(ev::try_commit(2)).append(ev::commit(2, 4));

  const auto m = feed_all(h, VersionOrderPolicy::kSnapshotRank);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.violation()->kind, CertFlagKind::kNotCurrentAtCommit);
  EXPECT_EQ(m.violation()->pos, h.size() - 1);

  ShardVerifyOptions options;
  options.policy = VersionOrderPolicy::kSnapshotRank;
  options.num_shards = 2;
  const ParallelVerifyResult driver = verify_history_sharded(h, options);
  ASSERT_FALSE(driver.certified);
  EXPECT_EQ(driver.violation->pos, m.violation()->pos);
  EXPECT_EQ(driver.flags.front().kind, CertFlagKind::kNotCurrentAtCommit);
}

TEST(AnchorOrder, MatchesRecorderAnchors) {
  const History h = smart_blind_history();
  const std::vector<TxId> order = anchor_order(h);
  ASSERT_EQ(order.size(), 2u);
  // Both committed: anchored at their C events, T1 first.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
}

// Regression for the shared version-identity helper (it used to be
// duplicated, guard included, in both certificate engines): genuine
// claims match, mismatches fail, and the 2·ver wrap attack — where
// ver = 2^63 + true_ver multiplies back to the true open rank modulo
// 2^64 — is rejected by the magnitude guard, not by luck of the product.
TEST(StampedRead, SharedVersionIdentityHelperGuardsTheWrap) {
  EXPECT_TRUE(read_stamp_names_version(0, 0));     // the initializer
  EXPECT_TRUE(read_stamp_names_version(21, 42));
  EXPECT_FALSE(read_stamp_names_version(21, 44));  // names the wrong version
  EXPECT_FALSE(read_stamp_names_version(22, 42));

  const std::uint64_t wrap = (std::uint64_t{1} << 63) + 21;
  ASSERT_EQ(2 * wrap, 42u);  // the attack really aliases without the guard
  EXPECT_FALSE(read_stamp_names_version(wrap, 42));
  // The guard's boundary: the largest non-wrapping ver still validates.
  const std::uint64_t max_ver = ~std::uint64_t{0} >> 1;
  EXPECT_TRUE(read_stamp_names_version(
      max_ver, static_cast<std::size_t>(2 * max_ver)));
  EXPECT_FALSE(read_stamp_names_version(max_ver + 1, 0));
}

}  // namespace
}  // namespace optm::core
