// 1-copy serializability (§3.3): MVSG construction, version-order search,
// certificates, and the relationship to plain serializability.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/one_copy.hpp"
#include "core/paper.hpp"
#include "core/random_history.hpp"
#include "core/serializability.hpp"

namespace optm::core {
namespace {

TEST(OneCopy, SequentialHistoryHolds) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  const auto r = check_one_copy_serializability(h);
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
}

TEST(OneCopy, MultiVersionReadAccepted) {
  // T3 reads the OLD value of x although T2 overwrote it: fine under
  // 1-copy SR with version order placing T3's read before T2 — the
  // signature freedom of multi-version systems.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .read(3, 0, 1)  // old version
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_one_copy_serializability(h).verdict, Verdict::kYes);
}

TEST(OneCopy, FractturedReadsRejected) {
  // Committed T3 reads x from T1 and y from T2 where T2 also wrote x and
  // T1 also wrote y: no serial one-copy order explains both.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .write(1, 1, 10)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .write(2, 1, 20)
                        .commit_now(2)
                        .read(3, 0, 1)
                        .read(3, 1, 20)
                        .commit_now(3)
                        .build();
  EXPECT_EQ(check_one_copy_serializability(h).verdict, Verdict::kNo);
}

TEST(OneCopy, ReadFromAbortedRejected) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .trya(1)
                        .abort(1)
                        .read(2, 0, 1)
                        .commit_now(2)
                        .build();
  EXPECT_EQ(check_one_copy_serializability(h).verdict, Verdict::kNo);
}

TEST(OneCopy, AbortedReaderIgnored) {
  // Like serializability, 1SR says nothing about aborted transactions.
  const History h = paper::fig1_h1();
  EXPECT_EQ(check_one_copy_serializability(h).verdict, Verdict::kYes);
}

TEST(OneCopy, CertificateAcceptsWitness) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .read(3, 0, 1)
                        .commit_now(3)
                        .build();
  const auto r = check_one_copy_serializability(h);
  ASSERT_EQ(r.verdict, Verdict::kYes);
  ASSERT_TRUE(r.order.has_value());
  std::string why;
  EXPECT_TRUE(verify_one_copy_certificate(h, *r.order, &why)) << why;
}

TEST(OneCopy, CertificateRejectsBadOrder) {
  // Version order T2 before T1 puts T1's version after T2's; T3's read of
  // version 1 then has an intervening newer version it skipped -> cycle.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .read(2, 0, 1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .read(3, 0, 2)
                        .commit_now(3)
                        .build();
  std::string why;
  EXPECT_TRUE(verify_one_copy_certificate(h, {1, 2, 3}, &why)) << why;
  EXPECT_FALSE(verify_one_copy_certificate(h, {2, 1, 3}, &why));
}

TEST(OneCopy, NonRegisterThrows) {
  ObjectModel m;
  m.add(std::make_shared<CounterSpec>());
  const History h = HistoryBuilder(m).inc(1, 0).commit_now(1).build();
  EXPECT_THROW((void)check_one_copy_serializability(h), std::invalid_argument);
}

TEST(OneCopy, SerializableImpliesOneCopy) {
  // In our value-replay framework, plain (view) serializability of committed
  // register transactions implies 1-copy serializability.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 4;
    p.num_objects = 2;
    const History h = random_history(p);
    if (check_serializability(h).verdict == Verdict::kYes) {
      EXPECT_EQ(check_one_copy_serializability(h).verdict, Verdict::kYes)
          << "seed " << seed << "\n" << h.str();
    }
  }
}

}  // namespace
}  // namespace optm::core
