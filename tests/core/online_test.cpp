// Online opacity monitors: the §5.2 prefix discipline made streaming.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/builder.hpp"
#include "core/online.hpp"
#include "core/opacity.hpp"
#include "core/object_spec.hpp"
#include "core/paper.hpp"
#include "core/random_history.hpp"

namespace optm::core {
namespace {

// Feed a full history into a monitor; return the violation (if any).
template <typename Monitor>
std::optional<OnlineViolation> run_monitor(Monitor& m, const History& h) {
  for (const Event& e : h.events()) (void)m.feed(e);
  return m.violation();
}

// --- definitional backend ---------------------------------------------------------

TEST(OnlineDefinitional, AcceptsTheOpaquePaperHistoryH5) {
  const History h5 = paper::fig2_h5();
  OnlineDefinitionalMonitor m(h5.model());
  EXPECT_FALSE(run_monitor(m, h5).has_value());
  EXPECT_EQ(m.events_fed(), h5.size());
}

TEST(OnlineDefinitional, FlagsFigure1AtTheSecondRead) {
  // H1 (Figure 1) is the paper's separating example: T2's second read makes
  // the torn snapshot visible. The monitor pinpoints exactly that response.
  const History h1 = paper::fig1_h1();
  OnlineDefinitionalMonitor m(h1.model());
  const auto v = run_monitor(m, h1);
  ASSERT_TRUE(v.has_value());
  const Event& e = h1[v->pos];
  EXPECT_EQ(e.kind, EventKind::kResponse);
  EXPECT_EQ(e.tx, 2u);
  EXPECT_EQ(e.ret, 2);  // read2(y -> 2): the inconsistent value
}

TEST(OnlineDefinitional, ViolationIsSticky) {
  const History h1 = paper::fig1_h1();
  OnlineDefinitionalMonitor m(h1.model());
  (void)run_monitor(m, h1);
  ASSERT_TRUE(m.violation().has_value());
  const std::size_t pos = m.violation()->pos;
  EXPECT_FALSE(m.feed(ev::try_commit(42)));
  EXPECT_EQ(m.violation()->pos, pos);  // first violation is kept
  EXPECT_EQ(m.events_fed(), h1.size() + 1);  // but events keep being recorded
}

TEST(OnlineDefinitional, FlagsIllFormedStream) {
  OnlineDefinitionalMonitor m(ObjectModel::registers(1));
  EXPECT_TRUE(m.feed(ev::inv(1, 0, OpCode::kRead)));
  // A second invocation without a response is not well-formed.
  EXPECT_FALSE(m.feed(ev::inv(1, 0, OpCode::kRead)));
  ASSERT_TRUE(m.violation().has_value());
  EXPECT_NE(m.violation()->reason.find("well-formed"), std::string::npos);
}

TEST(OnlineDefinitional, PrefixSubtletyDirtyReadFromLaterCommitter) {
  // The §5.2 prefix discipline: T10 commits having read live T1's write.
  // The COMPLETE history is opaque (T1 commits in the end), but the online
  // monitor — which judges every prefix as the run unfolds — condemns the
  // read response itself.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .read(10, 0, 7)
                        .commit_now(10)
                        .commit_now(1)
                        .build();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);  // whole history: fine
  OnlineDefinitionalMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(h[v->pos].tx, 10u);
  EXPECT_EQ(h[v->pos].kind, EventKind::kResponse);
}

// --- certificate backend ----------------------------------------------------------

TEST(OnlineCertificate, AcceptsCommittedSequentialRun) {
  OnlineCertificateMonitor m(ObjectModel::registers(2));
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 5)
                        .write(1, 1, 6)
                        .commit_now(1)
                        .read(2, 0, 5)
                        .read(2, 1, 6)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(run_monitor(m, h).has_value());
  EXPECT_EQ(m.commits_seen(), 1u);  // only T1 wrote
}

TEST(OnlineCertificate, RequiresRegisterModel) {
  OnlineCertificateMonitor ok(ObjectModel::registers(1));
  (void)ok;
  // A counter object is rejected (§5.4 applies to registers).
  ObjectModel counters;
  counters.add(std::make_shared<CounterSpec>());
  EXPECT_THROW(OnlineCertificateMonitor bad(counters), std::invalid_argument);
}

TEST(OnlineCertificate, FlagsTornSnapshotAtTheRead) {
  // The §2 zombie, in WeakStm shape: T1 reads old x, T2 commits {x,y}, T1
  // reads new y. Flagged at T1's second read response.
  const History h = HistoryBuilder::registers(2)
                        .read(1, 0, 0)
                        .write(2, 0, 1)
                        .write(2, 1, 2)
                        .commit_now(2)
                        .read(1, 1, 2)  // torn: old x with new y
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(h[v->pos].tx, 1u);
  EXPECT_EQ(h[v->pos].ret, 2);
  EXPECT_NE(v->reason.find("consistent snapshot"), std::string::npos);
}

TEST(OnlineCertificate, FlagsDirtyRead) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 7)
                        .read(2, 0, 7)  // T1 has not committed
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("non-committed"), std::string::npos);
}

TEST(OnlineCertificate, FlagsStaleReadAsRealTimeViolation) {
  // T2 commits x:=1 BEFORE T1's first event; T1 then reads the initial 0.
  // ≺_H forces T2 before T1, so the stale read is condemned — exactly the
  // situation the lazy-snapshot fix in MvStm/SiStm prevents.
  const History h = HistoryBuilder::registers(1)
                        .write(2, 0, 1)
                        .commit_now(2)
                        .read(1, 0, 0)
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("real-time"), std::string::npos);
}

TEST(OnlineCertificate, AdmitsOldSnapshotWhenReaderWasBornBeforeWriter) {
  // Multi-version freedom (H4-flavoured): T1's first read precedes T2's
  // commit, so T1 may keep reading its old snapshot after T2 commits.
  const History h = HistoryBuilder::registers(2)
                        .read(1, 0, 0)  // T1 born before T2's commit
                        .write(2, 0, 1)
                        .write(2, 1, 2)
                        .commit_now(2)
                        .read(1, 1, 0)  // old y: consistent with old x
                        .commit_now(1)  // read-only: commits
                        .build();
  OnlineCertificateMonitor m(h.model());
  EXPECT_FALSE(run_monitor(m, h).has_value());
}

TEST(OnlineCertificate, FlagsWriteSkewAtTheSecondCommit) {
  // SiStm's signature anomaly: both read {x,y}, write disjoint variables,
  // both try to commit. The second commit is the certificate violation.
  const History h = HistoryBuilder::registers(2)
                        .write(9, 0, 1)
                        .write(9, 1, 1)
                        .commit_now(9)
                        .read(1, 0, 1)
                        .read(1, 1, 1)
                        .read(2, 0, 1)
                        .read(2, 1, 1)
                        .write(1, 0, 100)  // T1 zeroes x (value-unique: 100)
                        .write(2, 1, 200)  // T2 zeroes y
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(h[v->pos].kind, EventKind::kCommit);
  EXPECT_EQ(h[v->pos].tx, 2u);
  EXPECT_NE(v->reason.find("not current at commit"), std::string::npos);
}

TEST(OnlineCertificate, AbortedReaderOfStableSnapshotIsClean) {
  const History h = HistoryBuilder::registers(2)
                        .read(1, 0, 0)
                        .read(1, 1, 0)
                        .trya(1)
                        .abort(1)
                        .build();
  OnlineCertificateMonitor m(h.model());
  EXPECT_FALSE(run_monitor(m, h).has_value());
}

TEST(OnlineCertificate, LocalReadMustReturnOwnWrite) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .read(1, 0, 0)  // ignores its own write
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("local consistency"), std::string::npos);
}

TEST(OnlineCertificate, ValueUniqueWritesEnforced) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .commit_now(1)
                        .write(2, 0, 5)  // same value, different writer
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("value-unique"), std::string::npos);
}

TEST(OnlineCertificate, ReadOfNeverInstalledOverwrittenValueFlagged) {
  // T1 writes 5 then 6 to x before committing: only 6 is ever installed.
  // T2's read of 5 observes a value that was never current.
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 5)
                        .write(1, 0, 6)
                        .commit_now(1)
                        .read(2, 0, 5)
                        .build();
  OnlineCertificateMonitor m(h.model());
  const auto v = run_monitor(m, h);
  EXPECT_TRUE(v.has_value());
}

// --- cross-validation: certificate is SUFFICIENT for opacity ------------------------

class OnlineCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineCrossValidation, CertificateCleanImpliesDefinitionallyOpaque) {
  RandomHistoryParams params;
  params.seed = GetParam();
  params.num_txs = 6;
  params.num_objects = 3;
  params.value_model = ValueModel::kCoherent;
  const History h = random_history(params);

  OnlineCertificateMonitor cert(h.model());
  const auto cert_violation = run_monitor(cert, h);
  if (!cert_violation.has_value()) {
    // Sufficiency: a certificate-clean stream is opaque at every prefix.
    EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes) << h.str();
    EXPECT_FALSE(first_non_opaque_prefix(h).has_value()) << h.str();
  } else {
    // One-sided: a certificate violation need not condemn the FULL history
    // (the certificate is not a decision procedure), but whenever the
    // definitional monitor also complains, the certificate must have fired
    // at or before that point (it judges prefixes at least as harshly).
    OnlineDefinitionalMonitor def(h.model());
    const auto def_violation = run_monitor(def, h);
    if (def_violation.has_value()) {
      EXPECT_LE(cert_violation->pos, def_violation->pos) << h.str();
    }
  }
}

TEST_P(OnlineCrossValidation, DefinitionalMonitorAgreesWithPrefixChecker) {
  RandomHistoryParams params;
  params.seed = GetParam() + 1000;
  params.num_txs = 5;
  params.num_objects = 2;
  params.value_model = ValueModel::kCoherent;
  params.split_op_prob = 0.5;
  const History h = random_history(params);

  OnlineDefinitionalMonitor m(h.model());
  const auto v = run_monitor(m, h);
  const auto prefix = first_non_opaque_prefix(h);
  if (prefix.has_value()) {
    ASSERT_TRUE(v.has_value()) << h.str();
    // first_non_opaque_prefix reports a LENGTH; the monitor the INDEX of
    // the last event of that prefix.
    EXPECT_EQ(v->pos, *prefix - 1) << h.str();
  } else {
    EXPECT_FALSE(v.has_value()) << h.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace optm::core
