// Sequential specifications: semantics of every shipped object class, plus
// the framework invariants (clone independence, canonical encodings) that
// the opacity checker's memoization relies on.
#include <gtest/gtest.h>

#include <memory>

#include "core/object_spec.hpp"

namespace optm::core {
namespace {

TEST(RegisterSpec, ReadWriteSemantics) {
  RegisterSpec spec(7);
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kRead, 0), 7);
  EXPECT_EQ(s->apply(OpCode::kWrite, 42), kOk);
  EXPECT_EQ(s->apply(OpCode::kRead, 0), 42);
}

TEST(RegisterSpec, Capabilities) {
  RegisterSpec spec;
  EXPECT_TRUE(spec.supports(OpCode::kRead));
  EXPECT_TRUE(spec.supports(OpCode::kWrite));
  EXPECT_FALSE(spec.supports(OpCode::kInc));
  EXPECT_TRUE(spec.is_readonly(OpCode::kRead));
  EXPECT_FALSE(spec.is_readonly(OpCode::kWrite));
  EXPECT_EQ(spec.name(), "register");
}

TEST(CounterSpec, IncDecGet) {
  CounterSpec spec(10);
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kInc, 0), kOk);
  EXPECT_EQ(s->apply(OpCode::kInc, 0), kOk);
  EXPECT_EQ(s->apply(OpCode::kDec, 0), kOk);
  EXPECT_EQ(s->apply(OpCode::kGet, 0), 11);
}

TEST(CounterSpec, IncIsNotReadonly) {
  CounterSpec spec;
  EXPECT_FALSE(spec.is_readonly(OpCode::kInc));
  EXPECT_TRUE(spec.is_readonly(OpCode::kGet));
}

TEST(FetchAddSpec, ReturnsOldValue) {
  FetchAddSpec spec(5);
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kFetchAdd, 3), 5);
  EXPECT_EQ(s->apply(OpCode::kFetchAdd, -2), 8);
  EXPECT_EQ(s->apply(OpCode::kGet, 0), 6);
}

TEST(QueueSpec, FifoOrder) {
  QueueSpec spec;
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kDeq, 0), kEmpty);
  EXPECT_EQ(s->apply(OpCode::kEnq, 1), kOk);
  EXPECT_EQ(s->apply(OpCode::kEnq, 2), kOk);
  EXPECT_EQ(s->apply(OpCode::kDeq, 0), 1);
  EXPECT_EQ(s->apply(OpCode::kDeq, 0), 2);
  EXPECT_EQ(s->apply(OpCode::kDeq, 0), kEmpty);
}

TEST(StackSpec, LifoOrder) {
  StackSpec spec;
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kPop, 0), kEmpty);
  EXPECT_EQ(s->apply(OpCode::kPush, 1), kOk);
  EXPECT_EQ(s->apply(OpCode::kPush, 2), kOk);
  EXPECT_EQ(s->apply(OpCode::kPop, 0), 2);
  EXPECT_EQ(s->apply(OpCode::kPop, 0), 1);
}

TEST(SetSpec, InsertEraseContains) {
  SetSpec spec;
  auto s = spec.initial();
  EXPECT_EQ(s->apply(OpCode::kContains, 5), 0);
  EXPECT_EQ(s->apply(OpCode::kInsert, 5), 1);
  EXPECT_EQ(s->apply(OpCode::kInsert, 5), 0);  // already present
  EXPECT_EQ(s->apply(OpCode::kContains, 5), 1);
  EXPECT_EQ(s->apply(OpCode::kErase, 5), 1);
  EXPECT_EQ(s->apply(OpCode::kErase, 5), 0);  // already absent
}

// --- framework invariants, parameterized over all specs ---------------------

struct SpecCase {
  const char* label;
  std::shared_ptr<const ObjectSpec> spec;
  OpCode mutate_op;
  Value mutate_arg;
};

class SpecFramework : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecFramework, CloneIsIndependent) {
  const auto& p = GetParam();
  auto a = p.spec->initial();
  auto b = a->clone();
  std::string ea, eb;
  a->encode(ea);
  b->encode(eb);
  EXPECT_EQ(ea, eb);
  (void)a->apply(p.mutate_op, p.mutate_arg);
  ea.clear();
  eb.clear();
  a->encode(ea);
  b->encode(eb);
  EXPECT_NE(ea, eb) << p.label << ": clone must not alias the original";
}

TEST_P(SpecFramework, EncodingIsDeterministic) {
  const auto& p = GetParam();
  auto a = p.spec->initial();
  auto b = p.spec->initial();
  (void)a->apply(p.mutate_op, p.mutate_arg);
  (void)b->apply(p.mutate_op, p.mutate_arg);
  std::string ea, eb;
  a->encode(ea);
  b->encode(eb);
  EXPECT_EQ(ea, eb) << p.label;
}

TEST_P(SpecFramework, MutateOpIsNotReadonly) {
  const auto& p = GetParam();
  EXPECT_FALSE(p.spec->is_readonly(p.mutate_op)) << p.label;
  EXPECT_TRUE(p.spec->supports(p.mutate_op)) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, SpecFramework,
    ::testing::Values(
        SpecCase{"register", std::make_shared<RegisterSpec>(0), OpCode::kWrite, 9},
        SpecCase{"counter", std::make_shared<CounterSpec>(0), OpCode::kInc, 0},
        SpecCase{"faa", std::make_shared<FetchAddSpec>(0), OpCode::kFetchAdd, 2},
        SpecCase{"queue", std::make_shared<QueueSpec>(), OpCode::kEnq, 1},
        SpecCase{"stack", std::make_shared<StackSpec>(), OpCode::kPush, 1},
        SpecCase{"set", std::make_shared<SetSpec>(), OpCode::kInsert, 3}),
    [](const auto& param_info) { return param_info.param.label; });

// --- ObjectModel / SystemState ------------------------------------------------

TEST(ObjectModel, RegistersFactory) {
  const ObjectModel m = ObjectModel::registers(4, 7);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(m.contains(3));
  EXPECT_FALSE(m.contains(4));
  EXPECT_EQ(m.spec(0).name(), "register");
}

TEST(SystemState, AppliesAcrossObjects) {
  ObjectModel m;
  m.add(std::make_shared<RegisterSpec>(0));
  m.add(std::make_shared<CounterSpec>(0));
  SystemState s(m);
  EXPECT_EQ(s.apply(0, OpCode::kWrite, 5), kOk);
  EXPECT_EQ(s.apply(1, OpCode::kInc, 0), kOk);
  EXPECT_EQ(s.apply(0, OpCode::kRead, 0), 5);
  EXPECT_EQ(s.apply(1, OpCode::kGet, 0), 1);
}

TEST(SystemState, CopyIsDeep) {
  const ObjectModel m = ObjectModel::registers(1, 0);
  SystemState a(m);
  SystemState b = a;
  (void)a.apply(0, OpCode::kWrite, 42);
  EXPECT_NE(a.encode(), b.encode());
  SystemState c(m);
  c = a;
  EXPECT_EQ(c.encode(), a.encode());
  (void)c.apply(0, OpCode::kWrite, 1);
  EXPECT_NE(c.encode(), a.encode());
}

TEST(SystemState, EncodeDistinguishesStates) {
  const ObjectModel m = ObjectModel::registers(2, 0);
  SystemState a(m), b(m);
  EXPECT_EQ(a.encode(), b.encode());
  (void)a.apply(0, OpCode::kWrite, 1);
  (void)b.apply(1, OpCode::kWrite, 1);
  EXPECT_NE(a.encode(), b.encode());  // same value, different register
}

}  // namespace
}  // namespace optm::core
