// Random history generator: structural guarantees and cross-checker
// properties over many seeds.
#include <gtest/gtest.h>

#include <set>

#include "core/opacity.hpp"
#include "core/random_history.hpp"

namespace optm::core {
namespace {

TEST(RandomHistory, DeterministicInSeed) {
  RandomHistoryParams p;
  p.seed = 123;
  const History a = random_history(p);
  const History b = random_history(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RandomHistory, DifferentSeedsDiffer) {
  RandomHistoryParams p;
  p.seed = 1;
  const History a = random_history(p);
  p.seed = 2;
  const History b = random_history(p);
  EXPECT_FALSE(a.equivalent(b));
}

TEST(RandomHistory, AlwaysWellFormed) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 6;
    p.num_objects = 4;
    p.split_op_prob = 0.5;
    const History h = random_history(p);
    std::string why;
    EXPECT_TRUE(h.well_formed(&why)) << "seed " << seed << ": " << why;
  }
}

TEST(RandomHistory, WritesAreValueUnique) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 8;
    const History h = random_history(p);
    std::set<std::pair<ObjId, Value>> writes;
    for (const Event& e : h.events()) {
      if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
        EXPECT_TRUE(writes.insert({e.obj, e.arg}).second)
            << "duplicate write at seed " << seed;
      }
    }
  }
}

TEST(RandomHistory, CoherentModeIsLocallyConsistent) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    const History h = random_history(p);
    std::string why;
    EXPECT_TRUE(h.locally_consistent(&why)) << "seed " << seed << ": " << why;
    EXPECT_TRUE(h.consistent(&why)) << "seed " << seed << ": " << why;
  }
}

TEST(RandomHistory, TerminationMixAppears) {
  // Over many seeds all four terminal shapes should materialize.
  bool committed = false, aborted = false, commit_pending = false, live = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 6;
    const History h = random_history(p);
    for (TxId tx : h.transactions()) {
      switch (h.status(tx)) {
        case TxStatus::kCommitted: committed = true; break;
        case TxStatus::kAborted: aborted = true; break;
        case TxStatus::kCommitPending: commit_pending = true; break;
        case TxStatus::kLive: live = true; break;
      }
    }
  }
  EXPECT_TRUE(committed);
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(commit_pending);
  EXPECT_TRUE(live);
}

TEST(RandomHistory, CoherentModeProducesBothVerdicts) {
  // The coherent generator is an unvalidated invisible-read STM: it should
  // produce opaque histories AND inconsistent-snapshot violations.
  int opaque = 0, not_opaque = 0;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 5;
    p.num_objects = 2;
    const auto r = check_opacity(random_history(p));
    ASSERT_NE(r.verdict, Verdict::kUnknown);
    (r.verdict == Verdict::kYes ? opaque : not_opaque)++;
  }
  EXPECT_GT(opaque, 5);
  EXPECT_GT(not_opaque, 5);
}

TEST(RandomHistory, AdversarialModeMostlyNotOpaque) {
  int not_opaque = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomHistoryParams p;
    p.seed = seed;
    p.num_txs = 5;
    p.num_objects = 2;
    p.value_model = ValueModel::kAdversarial;
    not_opaque += check_opacity(random_history(p)).verdict == Verdict::kNo;
  }
  EXPECT_GT(not_opaque, 20);
}

TEST(RandomHistory, RespectsOpBounds) {
  RandomHistoryParams p;
  p.seed = 9;
  p.num_txs = 10;
  p.min_ops_per_tx = 2;
  p.max_ops_per_tx = 3;
  const History h = random_history(p);
  for (TxId tx : h.transactions()) {
    std::size_t invocations = 0;
    for (const Event& e : h.events())
      invocations += e.tx == tx && e.kind == EventKind::kInvoke;
    EXPECT_GE(invocations, 2u);
    EXPECT_LE(invocations, 3u);
  }
}

}  // namespace
}  // namespace optm::core
