// Machine-checks every claim the paper makes about its worked histories
// (Figures 1-2, H1-H5, and the §2/§3 examples). This suite IS the paper's
// "evaluation" in executable form: each EXPECT corresponds to a sentence in
// the text.
#include <gtest/gtest.h>

#include "core/criteria.hpp"
#include "core/legality.hpp"
#include "core/opacity.hpp"
#include "core/paper.hpp"
#include "core/phenomena.hpp"
#include "core/recoverability.hpp"
#include "core/rigorous.hpp"
#include "core/serializability.hpp"

namespace optm::core {
namespace {

using paper::kX;
using paper::kY;

// --- Figure 1 / H1 ----------------------------------------------------------

TEST(Fig1H1, IsWellFormedAndComplete) {
  const History h = paper::fig1_h1();
  std::string why;
  EXPECT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(h.is_complete());
}

TEST(Fig1H1, StatusesMatchSection4) {
  // "Transactions T1 and T3 are committed in H1, while transaction T2 is
  //  forcefully aborted in H1."
  const History h = paper::fig1_h1();
  EXPECT_TRUE(h.is_committed(1));
  EXPECT_TRUE(h.is_committed(3));
  EXPECT_TRUE(h.is_aborted(2));
  EXPECT_TRUE(h.is_forcefully_aborted(2));
}

TEST(Fig1H1, RealTimeOrderMatchesSection4) {
  // "In H1, transactions T2 and T3 are concurrent, T1 ≺ T2, and T1 ≺ T3."
  const History h = paper::fig1_h1();
  EXPECT_TRUE(h.concurrent(2, 3));
  EXPECT_TRUE(h.precedes(1, 2));
  EXPECT_TRUE(h.precedes(1, 3));
  EXPECT_FALSE(h.precedes(2, 3));
  EXPECT_FALSE(h.precedes(3, 2));
}

TEST(Fig1H1, SatisfiesGlobalAtomicityWithRealTimeOrder) {
  // Figure 1 caption: "A history that satisfies global atomicity (with
  //  real-time ordering guarantees) ..."
  const History h = paper::fig1_h1();
  EXPECT_EQ(check_global_atomicity(h).verdict, Verdict::kYes);
  EXPECT_EQ(check_strict_global_atomicity(h).verdict, Verdict::kYes);
}

TEST(Fig1H1, SatisfiesRecoverability) {
  // "... and recoverability, ..."
  const History h = paper::fig1_h1();
  EXPECT_TRUE(check_recoverability(h).holds);
  EXPECT_TRUE(check_strict_recoverability(h).holds)
      << check_strict_recoverability(h).reason;
}

TEST(Fig1H1, IsNotOpaque) {
  // "... but in which an aborted transaction (T2) accesses an inconsistent
  //  state of the system."
  const History h = paper::fig1_h1();
  const OpacityResult r = check_opacity(h);
  EXPECT_EQ(r.verdict, Verdict::kNo) << r.reason;
}

TEST(Fig1H1, T2SnapshotIsInconsistent) {
  const auto snapshot = find_inconsistent_snapshot(paper::fig1_h1());
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->tx, 2u);
}

// --- H2 ----------------------------------------------------------------------

TEST(H2, EquivalentToH1AndSequential) {
  // "The following history H2 is one of the histories that are equivalent
  //  to H1" and "history H2 introduced before is sequential".
  const History h1 = paper::fig1_h1();
  const History h2 = paper::h2();
  EXPECT_TRUE(h1.equivalent(h2));
  EXPECT_TRUE(h2.equivalent(h1));
  EXPECT_TRUE(h2.is_sequential());
  EXPECT_FALSE(h1.is_sequential());
  // "Any history H for which T1 ≺ T2 and T1 ≺ T3 preserves the real time
  //  order of H1."
  EXPECT_TRUE(h2.preserves_real_time_order_of(h1));
}

// --- H3 and Complete(H3) ----------------------------------------------------

TEST(H3, CompletionsMatchSection4) {
  // "in each history in set Complete(H3): (1) transaction T1 is either
  //  committed or aborted, and (2) transaction T2 is (forcefully) aborted."
  const History h3 = paper::h3();
  EXPECT_FALSE(h3.is_complete());
  EXPECT_TRUE(h3.is_commit_pending(1));
  EXPECT_EQ(h3.status(2), TxStatus::kLive);

  const auto completions = h3.completions();
  ASSERT_EQ(completions.size(), 2u);  // T1 committed or aborted
  bool saw_committed = false;
  bool saw_aborted = false;
  for (const History& c : completions) {
    std::string why;
    EXPECT_TRUE(c.well_formed(&why)) << why;
    EXPECT_TRUE(c.is_complete());
    EXPECT_TRUE(c.is_aborted(2));
    EXPECT_TRUE(c.is_forcefully_aborted(2));
    saw_committed |= c.is_committed(1);
    saw_aborted |= c.is_aborted(1);
  }
  EXPECT_TRUE(saw_committed);
  EXPECT_TRUE(saw_aborted);
}

TEST(H3, IsOpaque) {
  // T2 read T1's write; the completion committing T1 legalizes it.
  const OpacityResult r = check_opacity(paper::h3());
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
  ASSERT_TRUE(r.witness.has_value());
  // The witness must commit T1 (T2 read x=1 from it).
  const auto& w = *r.witness;
  for (std::size_t i = 0; i < w.order.size(); ++i) {
    if (w.order[i] == 1) {
      EXPECT_EQ(w.roles[i], Role::kCommitted);
    }
  }
}

// --- H4 (§5.2, commit-pending duality) ---------------------------------------

TEST(H4, IsOpaque) {
  // "Because every transaction is legal in S, history H4 is opaque."
  const OpacityResult r = check_opacity(paper::h4());
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
}

TEST(H4, T1MustNotReadNewY) {
  // "if T1 read value 5 from y, then opacity would be violated, because T1
  //  would observe an inconsistent state of the system (x = 0 and y = 5)."
  History h(ObjectModel::registers(2));
  h.append(ev::inv(1, kX, OpCode::kRead));
  h.append(ev::ret(1, kX, OpCode::kRead, 0, 0));
  h.append(ev::inv(2, kX, OpCode::kWrite, 5));
  h.append(ev::ret(2, kX, OpCode::kWrite, 5, kOk));
  h.append(ev::inv(2, kY, OpCode::kWrite, 5));
  h.append(ev::ret(2, kY, OpCode::kWrite, 5, kOk));
  h.append(ev::try_commit(2));
  h.append(ev::inv(3, kY, OpCode::kRead));
  h.append(ev::ret(3, kY, OpCode::kRead, 0, 5));
  h.append(ev::inv(1, kY, OpCode::kRead));
  h.append(ev::ret(1, kY, OpCode::kRead, 0, 5));  // the forbidden read
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
}

TEST(H4, WitnessSerializesT1BeforeT2) {
  // "transaction T1 appears to happen before T2 ... T3 after T2."
  const OpacityResult r = check_opacity(paper::h4());
  ASSERT_TRUE(r.witness.has_value());
  const auto& order = r.witness->order;
  const auto pos = [&order](TxId tx) {
    return std::find(order.begin(), order.end(), tx) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(2), pos(3));
}

// --- Figure 2 / H5 ------------------------------------------------------------

TEST(Fig2H5, IsWellFormed) {
  const History h = paper::fig2_h5();
  std::string why;
  EXPECT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(h.is_complete());
}

TEST(Fig2H5, RealTimeOrderMatchesSection53) {
  // "Complete(H5) = {H5} and ≺H5 = {(T2, T3)}: there is no live transaction
  //  in H5 and T1 is concurrent with T2 and T3."
  const History h = paper::fig2_h5();
  EXPECT_EQ(h.completions().size(), 1u);
  EXPECT_TRUE(h.precedes(2, 3));
  EXPECT_TRUE(h.concurrent(1, 2));
  EXPECT_TRUE(h.concurrent(1, 3));
}

TEST(Fig2H5, IsOpaqueWithWitnessT2T1T3) {
  // "Consider the sequential history S = H5|T2 · H5|T1 · H5|T3 ... history
  //  H5 is opaque."
  const History h = paper::fig2_h5();
  const OpacityResult r = check_opacity(h);
  EXPECT_EQ(r.verdict, Verdict::kYes) << r.reason;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->order, (std::vector<TxId>{2, 1, 3}));
}

TEST(Fig2H5, PaperWitnessIsLegalSequentialHistory) {
  // Reconstruct S = H5|T2 · H5|T1 · H5|T3 explicitly and check all three
  // legality statements the paper asserts.
  const History h = paper::fig2_h5();
  const History s =
      h.project_tx(2).concat(h.project_tx(1)).concat(h.project_tx(3));
  EXPECT_TRUE(s.is_sequential());
  EXPECT_TRUE(s.equivalent(h));
  EXPECT_TRUE(s.preserves_real_time_order_of(h));
  std::string why;
  EXPECT_TRUE(all_transactions_legal(s, &why)) << why;
}

TEST(Fig2H5, T1CannotPrecedeT2NorFollowT3) {
  // "a sequential history in which T1 precedes T2 is not legal. Similarly,
  //  T3 cannot precede T1."
  const History h = paper::fig2_h5();
  const History t1_first =
      h.project_tx(1).concat(h.project_tx(2)).concat(h.project_tx(3));
  EXPECT_FALSE(all_transactions_legal(t1_first));
  const History t3_before_t1 =
      h.project_tx(2).concat(h.project_tx(3)).concat(h.project_tx(1));
  EXPECT_FALSE(all_transactions_legal(t3_before_t1));
}

// --- §2 zombie -----------------------------------------------------------------

TEST(Section2Zombie, NotOpaqueAndSnapshotDetected) {
  const History h = paper::section2_zombie();
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kNo);
  const auto snapshot = find_inconsistent_snapshot(h);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->tx, 2u);
  // The dangerous pair is exactly x = 4 (old) with y = 4 (new).
  EXPECT_EQ(snapshot->value_a, 4);
  EXPECT_EQ(snapshot->value_b, 4);
}

TEST(Section2Zombie, CommittedPartIsPerfectlySerializable) {
  // The zombie is invisible to committed-only criteria — the reason §3's
  // criteria all fail to capture the problem.
  const History h = paper::section2_zombie();
  EXPECT_EQ(check_strict_serializability(h).verdict, Verdict::kYes);
}

// --- §3.4 counter -----------------------------------------------------------------

TEST(CounterIncrements, AllCommitAndOpaque) {
  for (std::size_t k : {2u, 3u, 5u}) {
    const History h = paper::counter_increments(k);
    std::string why;
    ASSERT_TRUE(h.well_formed(&why)) << why;
    const OpacityResult r = check_opacity(h);
    EXPECT_EQ(r.verdict, Verdict::kYes) << "k=" << k << ": " << r.reason;
  }
}

TEST(CounterIncrements, StrictRecoverabilityForbidsThem) {
  // §3.5: "recoverability does not allow them to proceed concurrently, for
  //  each modifies the same shared object."
  const History h = paper::recoverability_counterexample();
  EXPECT_FALSE(check_strict_recoverability(h).holds);
  EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes);
}

TEST(RegisterIncrements, OnlyOneCanCommit) {
  // §3.4: "among the transactions that read the same value from x, only one
  //  can commit (otherwise serializability is violated)."
  EXPECT_EQ(check_opacity(paper::register_increments_all_commit(2)).verdict,
            Verdict::kNo);
  EXPECT_EQ(check_opacity(paper::register_increments_all_commit(3)).verdict,
            Verdict::kNo);
  EXPECT_EQ(
      check_serializability(paper::register_increments_all_commit(3)).verdict,
      Verdict::kNo);
  EXPECT_EQ(check_opacity(paper::register_increments_one_commits(3)).verdict,
            Verdict::kYes);
}

// --- §3.6 blind writes --------------------------------------------------------------

TEST(BlindWrites, OpaqueButNotRigorous) {
  for (std::size_t k : {2u, 4u}) {
    const History h = paper::blind_overlapping_writes(k);
    EXPECT_EQ(check_opacity(h).verdict, Verdict::kYes) << "k=" << k;
    EXPECT_FALSE(check_rigorous(h).holds) << "k=" << k;
  }
}

// --- the full criteria matrix on H1 -------------------------------------------------

TEST(CriteriaMatrix, H1SeparatesOpacityFromEverythingElse) {
  const CriteriaReport report = evaluate_criteria(paper::fig1_h1());
  EXPECT_EQ(report.verdict(Criterion::kSerializability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kStrictSerializability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kGlobalAtomicity), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kRecoverability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kStrictRecoverability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kTxLinearizability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kOneCopySerializability), Verdict::kYes);
  EXPECT_EQ(report.verdict(Criterion::kOpacity), Verdict::kNo);
}

}  // namespace
}  // namespace optm::core
