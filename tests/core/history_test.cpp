// History model (§4): well-formedness, projections, equivalence, statuses,
// real-time order, Complete(H), and the §5.4 register-history notions.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/history.hpp"

namespace optm::core {
namespace {

History two_tx_history() {
  return HistoryBuilder::registers(2)
      .write(1, 0, 1)
      .read(2, 0, 0)
      .commit_now(1)
      .read(2, 1, 0)
      .commit_now(2)
      .build();
}

// --- well-formedness -----------------------------------------------------

TEST(WellFormed, AcceptsTypicalHistory) {
  std::string why;
  EXPECT_TRUE(two_tx_history().well_formed(&why)) << why;
}

TEST(WellFormed, RejectsResponseWithoutInvocation) {
  History h(ObjectModel::registers(1));
  h.append(ev::ret(1, 0, OpCode::kRead, 0, 0));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsSecondInvocationWhilePending) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kRead));
  h.append(ev::inv(1, 0, OpCode::kRead));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsMismatchedResponse) {
  History h(ObjectModel::registers(2));
  h.append(ev::inv(1, 0, OpCode::kRead));
  h.append(ev::ret(1, 1, OpCode::kRead, 0, 0));  // wrong object
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsEventsAfterCommit) {
  History h(ObjectModel::registers(1));
  h.append(ev::try_commit(1));
  h.append(ev::commit(1));
  h.append(ev::inv(1, 0, OpCode::kRead));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsCommitWithoutTryCommit) {
  History h(ObjectModel::registers(1));
  h.append(ev::commit(1));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsCommitAfterTryAbort) {
  History h(ObjectModel::registers(1));
  h.append(ev::try_abort(1));
  h.append(ev::commit(1));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, AbortMayReplaceOperationResponse) {
  // F = <inv_i(ob, op, args), A_i> is a valid termination (paper §4).
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kRead));
  h.append(ev::abort(1));
  std::string why;
  EXPECT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(h.is_aborted(1));
}

TEST(WellFormed, RejectsOperationUnsupportedBySpec) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kInc));  // registers have no inc
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, RejectsUnknownObject) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 5, OpCode::kRead));
  EXPECT_FALSE(h.well_formed());
}

TEST(WellFormed, TryCWhileOpPendingIsInvalid) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kRead));
  h.append(ev::try_commit(1));
  EXPECT_FALSE(h.well_formed());
}

// --- projections and equivalence -------------------------------------------

TEST(Projection, ByTransaction) {
  const History h = two_tx_history();
  const History h1 = h.project_tx(1);
  for (const Event& e : h1.events()) EXPECT_EQ(e.tx, 1u);
  EXPECT_EQ(h1.size(), 4u);  // inv, ret, tryC, C
  const History h9 = h.project_tx(9);
  EXPECT_TRUE(h9.empty());
}

TEST(Projection, ByObject) {
  const History h = two_tx_history();
  const History hx = h.project_obj(0);
  for (const Event& e : hx.events()) EXPECT_EQ(e.obj, 0u);
  EXPECT_EQ(hx.size(), 4u);  // T1's write + T2's read (termination excluded)
}

TEST(Equivalence, ReorderingAcrossTxPreserves) {
  const History a = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .read(2, 0, 0)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  const History b = HistoryBuilder::registers(1)
                        .read(2, 0, 0)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(a.equivalent(b));
}

TEST(Equivalence, ReorderingWithinTxBreaks) {
  const History a =
      HistoryBuilder::registers(2).read(1, 0, 0).read(1, 1, 0).build();
  const History b =
      HistoryBuilder::registers(2).read(1, 1, 0).read(1, 0, 0).build();
  EXPECT_FALSE(a.equivalent(b));
}

TEST(Equivalence, MissingTransactionBreaks) {
  const History a = HistoryBuilder::registers(1).read(1, 0, 0).build();
  const History b = HistoryBuilder::registers(1)
                        .read(1, 0, 0)
                        .read(2, 0, 0)
                        .build();
  EXPECT_FALSE(a.equivalent(b));
  EXPECT_FALSE(b.equivalent(a));
}

// --- statuses -----------------------------------------------------------------

TEST(Status, AllFourStates) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)   // committed
                        .write(2, 0, 2)
                        .trya(2)
                        .abort(2)        // aborted (voluntarily)
                        .write(3, 0, 3)
                        .tryc(3)         // commit-pending
                        .write(4, 0, 4)  // live
                        .build();
  EXPECT_EQ(h.status(1), TxStatus::kCommitted);
  EXPECT_EQ(h.status(2), TxStatus::kAborted);
  EXPECT_EQ(h.status(3), TxStatus::kCommitPending);
  EXPECT_EQ(h.status(4), TxStatus::kLive);
  EXPECT_FALSE(h.is_forcefully_aborted(2));  // it asked to abort
  EXPECT_TRUE(h.is_completed(1));
  EXPECT_TRUE(h.is_completed(2));
  EXPECT_TRUE(h.is_live(3));  // commit-pending transactions are live
  EXPECT_TRUE(h.is_live(4));
}

TEST(Status, ForcefulAbort) {
  const History h =
      HistoryBuilder::registers(1).write(1, 0, 1).tryc(1).abort(1).build();
  EXPECT_TRUE(h.is_forcefully_aborted(1));
}

TEST(PendingInvocation, DetectsAndClears) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kRead));
  ASSERT_TRUE(h.pending_invocation(1).has_value());
  EXPECT_EQ(h.pending_invocation(1)->op, OpCode::kRead);
  h.append(ev::ret(1, 0, OpCode::kRead, 0, 0));
  EXPECT_FALSE(h.pending_invocation(1).has_value());
}

// --- real-time order -------------------------------------------------------------

TEST(RealTime, SequentialHistoryTotallyOrdered) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(h.precedes(1, 2));
  EXPECT_FALSE(h.precedes(2, 1));
  EXPECT_FALSE(h.concurrent(1, 2));
  EXPECT_TRUE(h.is_sequential());
}

TEST(RealTime, LiveTransactionPrecedesNothing) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)  // T1 stays live
                        .write(2, 0, 2)
                        .commit_now(2)
                        .build();
  EXPECT_FALSE(h.precedes(1, 2));  // T1 incomplete -> not ordered before T2
  EXPECT_TRUE(h.concurrent(1, 2));
}

TEST(RealTime, PreservationIsSubsetRelation) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .build();
  // The reversed order does not preserve h's order.
  const History rev = HistoryBuilder::registers(1)
                          .write(2, 0, 2)
                          .commit_now(2)
                          .write(1, 0, 1)
                          .commit_now(1)
                          .build();
  EXPECT_FALSE(rev.preserves_real_time_order_of(h));
  EXPECT_TRUE(h.preserves_real_time_order_of(h));
}

TEST(Sequential, InterleavedIsNotSequential) {
  std::string why;
  EXPECT_FALSE(two_tx_history().is_sequential(&why));
  EXPECT_FALSE(why.empty());
}

// --- Complete(H) -------------------------------------------------------------------

TEST(Complete, CompleteHistoryHasSingleCompletion) {
  const History h = two_tx_history();
  EXPECT_TRUE(h.is_complete());
  const auto cs = h.completions();
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].equivalent(h));
}

TEST(Complete, LivePendingOpGetsAbortEvent) {
  History h(ObjectModel::registers(1));
  h.append(ev::inv(1, 0, OpCode::kRead));  // pending op, live
  const auto cs = h.completions();
  ASSERT_EQ(cs.size(), 1u);
  std::string why;
  EXPECT_TRUE(cs[0].well_formed(&why)) << why;
  EXPECT_TRUE(cs[0].is_aborted(1));
}

TEST(Complete, TwoCommitPendingGiveFourCompletions) {
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)
                        .tryc(1)
                        .write(2, 1, 2)
                        .tryc(2)
                        .build();
  const auto cs = h.completions();
  ASSERT_EQ(cs.size(), 4u);
  int committed_count = 0;
  for (const History& c : cs) {
    EXPECT_TRUE(c.is_complete());
    committed_count += c.is_committed(1) + c.is_committed(2);
  }
  EXPECT_EQ(committed_count, 4);  // (0,0),(1,0),(0,1),(1,1)
}

TEST(Complete, ThrowsWhenTooManyCombinations) {
  HistoryBuilder b = HistoryBuilder::registers(12);
  for (TxId t = 1; t <= 12; ++t) b.write(t, t - 1, t).tryc(t);
  EXPECT_THROW((void)b.build().completions(16), std::length_error);
}

// --- §5.4 notions ----------------------------------------------------------------------

TEST(Nonlocal, StripsLocalReadsAndOverwrittenWrites) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)  // local (overwritten below)
                        .read(1, 0, 1)   // local (preceded by own write)
                        .write(1, 0, 2)  // non-local (last write)
                        .commit_now(1)
                        .build();
  const History nl = h.nonlocal();
  // Only the final write's two events plus tryC/C remain.
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl[0].op, OpCode::kWrite);
  EXPECT_EQ(nl[0].arg, 2);
}

TEST(Nonlocal, FirstReadBeforeOwnWriteIsNonLocal) {
  const History h = HistoryBuilder::registers(1)
                        .read(1, 0, 0)   // non-local: no own write before it
                        .write(1, 0, 1)  // non-local: last write
                        .commit_now(1)
                        .build();
  EXPECT_EQ(h.nonlocal().size(), h.size());
}

TEST(LocallyConsistent, DetectsBrokenLocalRead) {
  const History good = HistoryBuilder::registers(1)
                           .write(1, 0, 5)
                           .read(1, 0, 5)
                           .build();
  EXPECT_TRUE(good.locally_consistent());
  const History bad = HistoryBuilder::registers(1)
                          .write(1, 0, 5)
                          .read(1, 0, 7)
                          .build();
  std::string why;
  EXPECT_FALSE(bad.locally_consistent(&why));
  EXPECT_FALSE(why.empty());
}

TEST(Consistent, ReadOfNeverWrittenValueFails) {
  const History h = HistoryBuilder::registers(1).read(1, 0, 99).build();
  std::string why;
  EXPECT_FALSE(h.consistent(&why));
}

TEST(Consistent, InitialValueCountsAsWritten) {
  const History h = HistoryBuilder::registers(1, 7).read(1, 0, 7).build();
  EXPECT_TRUE(h.consistent());
}

TEST(Consistent, WrittenValueSatisfies) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 3)
                        .commit_now(1)
                        .read(2, 0, 3)
                        .commit_now(2)
                        .build();
  EXPECT_TRUE(h.consistent());
}

// --- rendering ------------------------------------------------------------------------

TEST(Rendering, StrAndTimelineNonEmpty) {
  const History h = two_tx_history();
  EXPECT_NE(h.str().find("write"), std::string::npos);
  const std::string tl = h.timeline();
  EXPECT_NE(tl.find("T1:"), std::string::npos);
  EXPECT_NE(tl.find("T2:"), std::string::npos);
}

// --- HistoryIndex -----------------------------------------------------------------------

TEST(HistoryIndex, DigestsOpsAndStatus) {
  const History h = two_tx_history();
  const HistoryIndex idx(h);
  ASSERT_EQ(idx.num_txs(), 2u);
  const TxInfo& t1 = idx.txs()[idx.pos_of(1)];
  EXPECT_EQ(t1.ops.size(), 1u);
  EXPECT_EQ(t1.ops[0].op, OpCode::kWrite);
  EXPECT_TRUE(t1.ops[0].has_response);
  EXPECT_FALSE(t1.read_only);
  const TxInfo& t2 = idx.txs()[idx.pos_of(2)];
  EXPECT_TRUE(t2.read_only);
  EXPECT_EQ(t2.ops.size(), 2u);
}

TEST(HistoryIndex, RejectsMalformedHistory) {
  History h(ObjectModel::registers(1));
  h.append(ev::commit(1));
  EXPECT_THROW(HistoryIndex idx(h), std::invalid_argument);
}

TEST(HistoryIndex, PrecedesUsesDenseIndices) {
  const History h = HistoryBuilder::registers(1)
                        .write(1, 0, 1)
                        .commit_now(1)
                        .write(2, 0, 2)
                        .commit_now(2)
                        .build();
  const HistoryIndex idx(h);
  EXPECT_TRUE(idx.precedes(idx.pos_of(1), idx.pos_of(2)));
  EXPECT_FALSE(idx.precedes(idx.pos_of(2), idx.pos_of(1)));
}

}  // namespace
}  // namespace optm::core
