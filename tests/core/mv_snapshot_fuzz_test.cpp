// MV snapshot-rank fuzz: random_mv_history simulates MvStm's algorithm
// recorded WITHOUT the exclusive commit window, so C records drift out of
// stamp order. Every generated history is opaque by construction; the
// commit-order certificate falsely flags the drifted ones, while the
// SnapshotRank policy — streaming monitor AND sharded driver — certifies
// them from the stamps the C/A events carry. The definitional checker
// adjudicates every verdict.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/opacity.hpp"
#include "core/parallel_verify.hpp"
#include "core/random_history.hpp"
#include "core/version_order.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

constexpr std::uint64_t kSeeds = 150;  // >= 100 histories (acceptance bar)

[[nodiscard]] MvHistoryParams fuzz_params(std::uint64_t seed) {
  MvHistoryParams params;
  params.seed = seed;
  params.num_txs = 14;
  params.num_objects = 3;
  params.num_procs = 5;
  params.min_ops_per_tx = 1;
  params.max_ops_per_tx = 3;
  params.write_prob = 0.7;
  params.read_only_prob = 0.55;
  params.record_delay_prob = 0.6;
  params.max_record_delay_steps = 20;
  return params;
}

[[nodiscard]] OnlineCertificateMonitor feed_all(const History& h,
                                                VersionOrderPolicy policy) {
  OnlineCertificateMonitor m(h.model(), policy);
  for (const Event& e : h.events()) (void)m.feed(e);
  return m;
}

TEST(MvSnapshotFuzz, SnapshotRankCertifiesWhatCommitOrderFalselyFlags) {
  util::ThreadPool pool(2);
  std::size_t commit_order_flagged = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const History h = random_mv_history(fuzz_params(seed));
    std::string why;
    ASSERT_TRUE(h.well_formed(&why)) << "seed " << seed << ": " << why;

    // The commit-order policy may flag (the false-flag count is asserted
    // below); monitor and driver must still agree with each other.
    const auto commit_monitor = feed_all(h, VersionOrderPolicy::kCommitOrder);
    ShardVerifyOptions commit_options;
    commit_options.num_shards = 2;
    const ParallelVerifyResult commit_driver =
        verify_history_sharded(h, pool, commit_options);
    ASSERT_EQ(commit_driver.certified, commit_monitor.ok())
        << "seed " << seed << "\n" << h.str();
    if (!commit_monitor.ok()) {
      ++commit_order_flagged;
      EXPECT_EQ(commit_driver.violation->pos, commit_monitor.violation()->pos)
          << "seed " << seed;
    }

    // SnapshotRank: every history certifies, streaming and sharded alike.
    const auto snap_monitor = feed_all(h, VersionOrderPolicy::kSnapshotRank);
    EXPECT_TRUE(snap_monitor.ok())
        << "seed " << seed << " at " << snap_monitor.violation()->pos << ": "
        << snap_monitor.violation()->reason << "\n"
        << h.str();
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
      ShardVerifyOptions options;
      options.policy = VersionOrderPolicy::kSnapshotRank;
      options.num_shards = shards;
      const ParallelVerifyResult driver =
          verify_history_sharded(h, pool, options);
      EXPECT_EQ(driver.certified, snap_monitor.ok())
          << "seed " << seed << " shards " << shards
          << (driver.violation ? "\ndriver: " + driver.violation->reason : "");
    }

    // The exact checker confirms every history really is opaque — the
    // commit-order flags above were false alarms, not bugs slipping by.
    const OpacityResult exact = check_opacity(h);
    EXPECT_EQ(exact.verdict, Verdict::kYes)
        << "seed " << seed << ": " << exact.reason << "\n" << h.str();
  }

  // The fuzz set must actually exercise the divergence: enough drifted
  // histories that commit-order certification falsely flags. (The count is
  // deterministic — fixed seeds.)
  EXPECT_GE(commit_order_flagged, 8u);
  RecordProperty("commit_order_false_flags",
                 static_cast<int>(commit_order_flagged));
}

TEST(MvSnapshotFuzz, CorruptedHistoriesFlagUnderEveryPolicyAndAreNonOpaque) {
  util::ThreadPool pool(2);
  std::size_t corrupted = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    History h = random_mv_history(fuzz_params(seed));
    // Corrupt the first non-local read response to a never-written value —
    // a §5.4 consistency violation, hence definitely non-opaque.
    History bad(h.model());
    bool done = false;
    for (const Event& e : h.events()) {
      Event copy = e;
      if (!done && e.kind == EventKind::kResponse && e.op == OpCode::kRead) {
        copy.ret = 999'999'999;
        done = true;
      }
      bad.append(copy);
    }
    if (!done) continue;
    ++corrupted;

    for (const VersionOrderPolicy policy :
         {VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kSnapshotRank}) {
      const auto monitor = feed_all(bad, policy);
      ASSERT_FALSE(monitor.ok()) << "seed " << seed << " " << to_string(policy);
      ShardVerifyOptions options;
      options.policy = policy;
      options.num_shards = 2;
      const ParallelVerifyResult driver =
          verify_history_sharded(bad, pool, options);
      ASSERT_FALSE(driver.certified) << "seed " << seed;
      EXPECT_EQ(driver.violation->pos, monitor.violation()->pos)
          << "seed " << seed << " " << to_string(policy);
    }

    const OpacityResult exact = check_opacity(bad);
    EXPECT_EQ(exact.verdict, Verdict::kNo) << "seed " << seed;
  }
  EXPECT_GE(corrupted, 30u);  // nearly every seed has a non-local read
}

}  // namespace
}  // namespace optm::core
