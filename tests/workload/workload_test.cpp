// Workload harness plumbing.
#include <gtest/gtest.h>

#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::wl {
namespace {

TEST(RunResult, DerivedMetrics) {
  RunResult r;
  r.commits = 80;
  r.aborts = 20;
  r.reads = 10;
  r.steps.loads = 50;
  r.seconds = 2.0;
  EXPECT_DOUBLE_EQ(r.commits_per_second(), 40.0);
  EXPECT_DOUBLE_EQ(r.abort_ratio(), 0.2);
  EXPECT_DOUBLE_EQ(r.steps_per_read(), 5.0);
  RunResult zero;
  EXPECT_DOUBLE_EQ(zero.commits_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(zero.abort_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(zero.steps_per_read(), 0.0);
}

TEST(Bank, InitialTotalsRight) {
  const auto stm = optm::stm::make_stm("tl2", 8);
  BankParams params;
  params.threads = 1;
  params.accounts = 8;
  params.transfers_per_thread = 0;
  const BankResult result = run_bank(*stm, params);
  EXPECT_EQ(result.expected_total, 8u * params.initial_balance);
  EXPECT_EQ(result.final_total, result.expected_total);
}

TEST(Bank, DeterministicSeedSameCommitCount) {
  BankParams params;
  params.threads = 1;
  params.accounts = 8;
  params.transfers_per_thread = 100;
  params.seed = 5;
  const auto a = run_bank(*optm::stm::make_stm("tl2", 8), params);
  const auto b = run_bank(*optm::stm::make_stm("tl2", 8), params);
  EXPECT_EQ(a.run.commits, b.run.commits);
  EXPECT_EQ(a.final_total, b.final_total);
}

TEST(Mix, CountsAddUp) {
  MixParams params;
  params.threads = 1;
  params.txs_per_thread = 100;
  const auto stm = optm::stm::make_stm("tl2", params.vars);
  params.voluntary_abort_ratio = 0.3;
  const RunResult run = run_random_mix(*stm, params);
  // Single-threaded: no forced aborts; attempts = txs.
  EXPECT_EQ(run.commits + run.aborts, 100u);
  EXPECT_GT(run.aborts, 0u);  // the voluntary ones
}

TEST(ReadMostly, ReadsDominate) {
  ReadMostlyParams params;
  params.vars = 64;
  params.reader_threads = 1;
  params.scans_per_thread = 50;
  params.writer_txs = 5;
  const auto stm = optm::stm::make_stm("tl2", params.vars);
  const RunResult run = run_read_mostly(*stm, params);
  EXPECT_GT(run.reads, 10 * run.writes);
}

TEST(WriteSkew, SerializableStmsPreserveTheInvariant) {
  // Every opaque STM (and even WeakStm, whose COMMITTED part is
  // serializable) keeps x + y >= 1 in all rounds: at most one of the two
  // fully-overlapped withdrawers commits.
  for (const char* name : {"tl2", "tiny", "dstm", "astm", "astm-eager",
                           "visible", "mv", "norec", "weak",
                           "twopl-nowait"}) {
    const auto stm = optm::stm::make_stm(name, 2);
    WriteSkewParams params;
    params.rounds = 60;
    const WriteSkewResult result = run_write_skew(*stm, params);
    EXPECT_GT(result.rounds_played, 0u) << name;
    EXPECT_EQ(result.skew_rounds, 0u) << name << " admitted write skew";
    EXPECT_EQ(result.both_committed_rounds, 0u) << name;
  }
}

TEST(WriteSkew, SnapshotIsolationAdmitsSkewEveryRound) {
  // Deterministic schedule: under SI BOTH withdrawers commit (disjoint
  // write sets pass first-committer-wins) in every single round.
  const auto stm = optm::stm::make_stm("sistm", 2);
  WriteSkewParams params;
  params.rounds = 60;
  const WriteSkewResult result = run_write_skew(*stm, params);
  EXPECT_EQ(result.rounds_played, 60u);
  EXPECT_EQ(result.skew_rounds, result.rounds_played);
  EXPECT_EQ(result.both_committed_rounds, result.rounds_played);
}

TEST(LongReader, SingleVersionInvisibleReadStmsAbortTheReader) {
  // tiny aborts too: its first extension attempt finds var 0 overwritten.
  for (const char* name : {"tl2", "tiny", "dstm", "astm", "norec", "visible"}) {
    const auto stm = optm::stm::make_stm(name, 8);
    const LongReaderProbe probe = long_reader_probe(*stm, 8, 4);
    EXPECT_FALSE(probe.reads_succeeded && probe.reader_committed &&
                 probe.snapshot_consistent && probe.writer_commits > 0)
        << name << ": a single-version TM cannot serve the old snapshot";
  }
}

TEST(LongReader, MultiVersionServesTheOldSnapshotAndCommits) {
  for (const char* name : {"mv", "sistm"}) {
    const auto stm = optm::stm::make_stm(name, 8);
    const LongReaderProbe probe = long_reader_probe(*stm, 8, 4);
    EXPECT_TRUE(probe.reads_succeeded) << name;
    EXPECT_TRUE(probe.reader_committed) << name;
    EXPECT_TRUE(probe.snapshot_consistent) << name;
    EXPECT_EQ(probe.writer_commits, 4u) << name;
  }
}

TEST(LongReader, TwoPlBlocksTheWritersInstead) {
  // The pessimistic escape: the reader's shared locks make the writers
  // die, so the reader commits a consistent snapshot with zero overlap.
  const auto stm = optm::stm::make_stm("twopl-nowait", 8);
  const LongReaderProbe probe = long_reader_probe(*stm, 8, 4);
  EXPECT_TRUE(probe.reads_succeeded);
  EXPECT_TRUE(probe.reader_committed);
  EXPECT_TRUE(probe.snapshot_consistent);
  EXPECT_EQ(probe.writer_commits, 0u);
}

TEST(LowerBoundProbeShape, ZeroReadSet) {
  // m = 0: no prior reads; every STM handles the degenerate case. With
  // lazy (first-access) snapshots even TL2 succeeds: its rv is sampled at
  // the final read itself, after the writer's commit.
  for (const auto name : optm::stm::all_stm_names()) {
    const auto stm = optm::stm::make_stm(name, 2);
    const LowerBoundProbe probe = lower_bound_probe(*stm, 0);
    EXPECT_TRUE(probe.read_succeeded) << name;
  }
}

}  // namespace
}  // namespace optm::wl
