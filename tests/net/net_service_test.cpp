// The networked certification service, end to end over loopback:
// verdict/flag-position equivalence with the local engines, multi-tenant
// isolation, handshake rejection, credit backpressure, and the hard
// robustness property — nothing a client sends (malformed frames, bad
// CRCs, truncation, mid-stream disconnects) takes the server down or
// poisons another tenant's verdict.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "core/online.hpp"
#include "log/format.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket_sink.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "util/hash.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace optm;

// ---------------------------------------------------------------------------
// Stream builders
// ---------------------------------------------------------------------------

void append_writer(std::vector<core::Event>& h, core::TxId tx, core::ObjId var,
                   core::Value value) {
  h.push_back(core::ev::inv(tx, var, core::OpCode::kWrite, value));
  h.push_back(core::ev::ret(tx, var, core::OpCode::kWrite, value, core::kOk));
  h.push_back(core::ev::try_commit(tx));
  h.push_back(core::ev::commit(tx));
}

/// Sequential committed writers: certifies under commit-order.
[[nodiscard]] std::vector<core::Event> certified_stream(std::size_t txs) {
  std::vector<core::Event> h;
  core::TxId tx = 1;
  for (std::size_t i = 0; i < txs; ++i) {
    append_writer(h, tx++, static_cast<core::ObjId>(i % 4),
                  static_cast<core::Value>(i + 1));
  }
  return h;
}

/// A read returning a value nobody ever wrote, planted after `prefix_txs`
/// clean transactions: flagged at a deterministic position.
[[nodiscard]] std::vector<core::Event> flagged_stream(std::size_t prefix_txs) {
  auto h = certified_stream(prefix_txs);
  const core::TxId tx = static_cast<core::TxId>(prefix_txs + 1);
  h.push_back(core::ev::inv(tx, 0, core::OpCode::kRead, 0));
  h.push_back(core::ev::ret(tx, 0, core::OpCode::kRead, 0,
                            core::Value{987654321}));
  h.push_back(core::ev::try_commit(tx));
  h.push_back(core::ev::commit(tx));
  return h;
}

[[nodiscard]] log::LogMetadata meta_for(std::uint32_t vars,
                                        const std::string& policy) {
  log::LogMetadata meta;
  meta.runtime = "test";
  meta.policy = policy;
  meta.window_mode = "windowed";
  meta.num_vars = vars;
  meta.threads = 1;
  return meta;
}

/// Local ground truth: the serial monitor over the same stream.
[[nodiscard]] std::optional<core::OnlineViolation> local_verdict(
    std::span<const core::Event> events, std::uint32_t vars,
    const std::string& policy) {
  core::OnlineCertificateMonitor monitor(
      core::ObjectModel::registers(vars, 0),
      *core::parse_version_order_policy(policy));
  (void)monitor.ingest(events);
  return monitor.violation();
}

/// Stream `events` through a fresh client; true if the transport stayed
/// clean (the verdict lands in `out`).
[[nodiscard]] bool stream_to(std::uint16_t port,
                             std::span<const core::Event> events,
                             const log::LogMetadata& meta,
                             net::RemoteVerdict& out) {
  net::CertClient client;
  if (!client.connect("127.0.0.1", port, net::make_hello(meta))) return false;
  if (!client.send_events(events)) return false;
  if (!client.finish()) return false;
  out = client.verdict();
  return true;
}

// ---------------------------------------------------------------------------
// parse_host_port
// ---------------------------------------------------------------------------

TEST(NetService, ParseHostPortAcceptsV4AndBracketedV6) {
  std::string host;
  std::uint16_t port = 0;

  ASSERT_TRUE(net::parse_host_port("127.0.0.1:9000", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);

  ASSERT_TRUE(net::parse_host_port("example.test:1", host, port));
  EXPECT_EQ(host, "example.test");
  EXPECT_EQ(port, 1);

  // RFC 3986 bracketed IPv6 literal.
  ASSERT_TRUE(net::parse_host_port("[::1]:9000", host, port));
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 9000);

  ASSERT_TRUE(net::parse_host_port("[fe80::1%eth0]:65535", host, port));
  EXPECT_EQ(host, "fe80::1%eth0");
  EXPECT_EQ(port, 65535);
}

TEST(NetService, ParseHostPortRejectsMalformedSpecs) {
  std::string host = "unchanged";
  std::uint16_t port = 7;

  // A bare multi-colon IPv6 spec is ambiguous (which colon splits?) and
  // must be rejected, not silently mis-split.
  EXPECT_FALSE(net::parse_host_port("::1:9000", host, port));
  EXPECT_FALSE(net::parse_host_port("fe80::1:9000", host, port));

  EXPECT_FALSE(net::parse_host_port("", host, port));
  EXPECT_FALSE(net::parse_host_port("nocolon", host, port));
  EXPECT_FALSE(net::parse_host_port(":9000", host, port));         // empty host
  EXPECT_FALSE(net::parse_host_port("host:", host, port));         // empty port
  EXPECT_FALSE(net::parse_host_port("host:abc", host, port));      // non-numeric
  EXPECT_FALSE(net::parse_host_port("host:0", host, port));        // port 0
  EXPECT_FALSE(net::parse_host_port("host:65536", host, port));    // overflow
  EXPECT_FALSE(net::parse_host_port("[::1]", host, port));         // no port
  EXPECT_FALSE(net::parse_host_port("[::1]9000", host, port));     // no colon
  EXPECT_FALSE(net::parse_host_port("[]:9000", host, port));       // empty brkt
  EXPECT_FALSE(net::parse_host_port("[::1:9000", host, port));     // unclosed

  // Rejected parses must not clobber the out-params.
  EXPECT_EQ(host, "unchanged");
  EXPECT_EQ(port, 7);
}

// ---------------------------------------------------------------------------
// Transport deadlines
// ---------------------------------------------------------------------------

TEST(NetService, ClientTimesOutOnUnresponsiveAcceptor) {
  // A listener that never accepts: the kernel completes the TCP handshake
  // into the backlog, so the hang point is the protocol handshake read.
  // Without ClientOptions::timeout_ms this blocked forever (the bug);
  // with it, connect() must fail with a "timed out" operational error in
  // bounded time.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  net::ClientOptions options;
  options.timeout_ms = 300;
  net::CertClient client(options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.connect("127.0.0.1", port,
                              net::make_hello(meta_for(4, "commit-order"))));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(client.error().find("timed out"), std::string::npos)
      << client.error();
  // Bounded: well past the 300ms deadline counts as hanging. Generous
  // margin for loaded CI machines.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(listener);
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(NetService, CertifiedRoundTrip) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  const auto events = certified_stream(200);
  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), events, meta_for(4, "commit-order"),
                        verdict));
  EXPECT_TRUE(verdict.certified);
  EXPECT_EQ(verdict.events, events.size());
  EXPECT_FALSE(verdict.violation.has_value());

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.streams_completed, 1u);
  EXPECT_EQ(stats.streams_failed, 0u);
  EXPECT_EQ(stats.events_ingested, events.size());
}

TEST(NetService, FlaggedStreamMatchesLocalMonitor) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  const auto events = flagged_stream(50);
  const auto local = local_verdict(events, 4, "commit-order");
  ASSERT_TRUE(local.has_value());

  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), events, meta_for(4, "commit-order"),
                        verdict));
  EXPECT_FALSE(verdict.certified);
  ASSERT_TRUE(verdict.violation.has_value());
  EXPECT_EQ(verdict.violation->pos, local->pos);
  EXPECT_EQ(verdict.violation->kind, local->kind);
  EXPECT_EQ(verdict.violation->reason, local->reason);

  server.stop();
  EXPECT_EQ(server.stats().streams_flagged, 1u);
}

TEST(NetService, PerStreamParallelCertifierMatchesMonitor) {
  net::ServerOptions options;
  options.stream_threads = 3;
  net::CertServer server(options);
  ASSERT_TRUE(server.start()) << server.error();

  const auto bad = flagged_stream(64);
  const auto local = local_verdict(bad, 4, "commit-order");
  ASSERT_TRUE(local.has_value());

  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), bad, meta_for(4, "commit-order"),
                        verdict));
  EXPECT_FALSE(verdict.certified);
  ASSERT_TRUE(verdict.violation.has_value());
  EXPECT_EQ(verdict.violation->pos, local->pos);

  net::RemoteVerdict clean;
  ASSERT_TRUE(stream_to(server.port(), certified_stream(100),
                        meta_for(4, "commit-order"), clean));
  EXPECT_TRUE(clean.certified);
}

TEST(NetService, BackpressureWithTinyCreditWindowCompletes) {
  net::ServerOptions options;
  options.credit_events = 64;  // forces many wait_credit round trips
  net::CertServer server(options);
  ASSERT_TRUE(server.start()) << server.error();

  const auto events = certified_stream(500);  // 2000 events >> window
  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), events, meta_for(4, "commit-order"),
                        verdict));
  EXPECT_TRUE(verdict.certified);
  EXPECT_EQ(verdict.events, events.size());
}

// ---------------------------------------------------------------------------
// Multi-tenant
// ---------------------------------------------------------------------------

TEST(NetService, ConcurrentTenantsGetIsolatedVerdicts) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  const auto good = certified_stream(300);
  const auto bad = flagged_stream(30);
  const auto local = local_verdict(bad, 4, "commit-order");
  ASSERT_TRUE(local.has_value());

  net::RemoteVerdict good_verdict, bad_verdict;
  std::atomic<bool> good_sent{false}, bad_sent{false};
  std::thread t1([&] {
    good_sent = stream_to(server.port(), good, meta_for(4, "commit-order"),
                          good_verdict);
  });
  std::thread t2([&] {
    bad_sent = stream_to(server.port(), bad, meta_for(4, "commit-order"),
                         bad_verdict);
  });
  t1.join();
  t2.join();

  ASSERT_TRUE(good_sent.load());
  ASSERT_TRUE(bad_sent.load());
  EXPECT_TRUE(good_verdict.certified);
  EXPECT_FALSE(bad_verdict.certified);
  ASSERT_TRUE(bad_verdict.violation.has_value());
  EXPECT_EQ(bad_verdict.violation->pos, local->pos);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.streams_completed, 2u);
  EXPECT_EQ(stats.streams_flagged, 1u);
  EXPECT_EQ(stats.streams_failed, 0u);
  EXPECT_EQ(stats.events_ingested, good.size() + bad.size());
}

// ---------------------------------------------------------------------------
// Handshake + robustness
// ---------------------------------------------------------------------------

TEST(NetService, RejectedHandshakesDoNotPoisonLaterStreams) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  {  // Unknown policy: the server must answer kError.
    net::CertClient client;
    EXPECT_FALSE(client.connect("127.0.0.1", server.port(),
                                net::make_hello(meta_for(4, "no-such-policy"))));
    EXPECT_NE(client.error().find("server error"), std::string::npos)
        << client.error();
  }
  {  // Corrupted handshake CRC.
    auto hello = net::make_hello(meta_for(4, "commit-order"));
    hello.header_crc ^= 0x5a5a5a5a;
    net::CertClient client;
    EXPECT_FALSE(client.connect("127.0.0.1", server.port(), hello));
  }
  {  // Cross-ABI event size.
    auto meta = meta_for(4, "commit-order");
    auto hello = net::make_hello(meta);
    hello.event_size = 40;
    hello.header_crc = util::crc32c(&hello, net::kHelloCrcBytes);
    net::CertClient client;
    EXPECT_FALSE(client.connect("127.0.0.1", server.port(), hello));
  }

  // The service is still healthy for the next tenant.
  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), certified_stream(50),
                        meta_for(4, "commit-order"), verdict));
  EXPECT_TRUE(verdict.certified);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.streams_failed, 3u);
  EXPECT_EQ(stats.streams_completed, 1u);
}

TEST(NetService, AbsurdReserveHintsAreSaturatedNotFatal) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  // reserve_txs/reserve_versions are client-controlled: UINT64_MAX must
  // be clamped server-side, not handed to vector::reserve (which would
  // throw on the loop thread and take the whole service down).
  const auto events = certified_stream(100);
  net::CertClient client;
  ASSERT_TRUE(client.connect(
      "127.0.0.1", server.port(),
      net::make_hello(meta_for(4, "commit-order"),
                      std::numeric_limits<std::uint64_t>::max(),
                      std::numeric_limits<std::uint64_t>::max())))
      << client.error();
  ASSERT_TRUE(client.send_events(events));
  ASSERT_TRUE(client.finish());
  EXPECT_TRUE(client.verdict().certified);
  EXPECT_EQ(client.verdict().events, events.size());

  server.stop();
  EXPECT_EQ(server.stats().streams_failed, 0u);
}

TEST(NetService, OutOfBoundsNumVarsIsARejectedHandshake) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  {  // num_vars ~4e9: must be a kError, not a 4-billion-register model.
    auto meta = meta_for(4, "commit-order");
    meta.num_vars = std::numeric_limits<std::uint32_t>::max();
    net::CertClient client;
    EXPECT_FALSE(
        client.connect("127.0.0.1", server.port(), net::make_hello(meta)));
    EXPECT_NE(client.error().find("server error"), std::string::npos)
        << client.error();
  }
  {  // num_vars == 0 is equally out of bounds.
    auto meta = meta_for(4, "commit-order");
    meta.num_vars = 0;
    net::CertClient client;
    EXPECT_FALSE(
        client.connect("127.0.0.1", server.port(), net::make_hello(meta)));
  }

  // The service is still healthy for the next tenant.
  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), certified_stream(50),
                        meta_for(4, "commit-order"), verdict));
  EXPECT_TRUE(verdict.certified);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.streams_failed, 2u);
  EXPECT_EQ(stats.streams_completed, 1u);
}

/// Raw loopback socket for speaking deliberately broken optm-net-v1.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  void send_bytes(const void* data, std::size_t n) {
    (void)::send(fd_, data, n, MSG_NOSIGNAL);
  }
  template <typename T>
  void send_struct(const T& t) {
    send_bytes(&t, sizeof(t));
  }
  /// True if the server eventually closes our end (read returns 0/err).
  [[nodiscard]] bool server_closed() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return true;
    }
  }

 private:
  int fd_ = -1;
};

TEST(NetService, MalformedAndTruncatedStreamsNeverKillTheServer) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();
  const auto meta = meta_for(4, "commit-order");

  {  // Pure garbage instead of a handshake.
    RawClient raw(server.port());
    ASSERT_TRUE(raw.ok());
    std::vector<unsigned char> junk(512);
    for (std::size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<unsigned char>(i * 37 + 11);
    }
    raw.send_bytes(junk.data(), junk.size());
    EXPECT_TRUE(raw.server_closed());
  }
  {  // Valid handshake, then a block header with a corrupt CRC.
    RawClient raw(server.port());
    ASSERT_TRUE(raw.ok());
    raw.send_struct(net::make_hello(meta));
    log::BlockHeader bh;
    bh.event_count = 4;
    bh.first_stamp = 0;
    bh.payload_crc = 0xdeadbeef;
    bh.header_crc = 0xbadbad00;  // wrong
    raw.send_struct(bh);
    EXPECT_TRUE(raw.server_closed());
  }
  {  // Valid handshake + valid header, payload truncated by a disconnect.
    RawClient raw(server.port());
    ASSERT_TRUE(raw.ok());
    raw.send_struct(net::make_hello(meta));
    const auto events = certified_stream(8);
    log::BlockHeader bh;
    bh.event_count = static_cast<std::uint32_t>(events.size());
    bh.first_stamp = 0;
    bh.payload_crc =
        util::crc32c(events.data(), events.size() * sizeof(core::Event));
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    raw.send_struct(bh);
    raw.send_bytes(events.data(), 100);  // partial payload, then vanish
  }
  {  // Valid handshake, then a stamp discontinuity.
    RawClient raw(server.port());
    ASSERT_TRUE(raw.ok());
    raw.send_struct(net::make_hello(meta));
    const auto events = certified_stream(2);
    log::BlockHeader bh;
    bh.event_count = static_cast<std::uint32_t>(events.size());
    bh.first_stamp = 999;  // stream starts at 0
    bh.payload_crc =
        util::crc32c(events.data(), events.size() * sizeof(core::Event));
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    raw.send_struct(bh);
    raw.send_bytes(events.data(), events.size() * sizeof(core::Event));
    EXPECT_TRUE(raw.server_closed());
  }
  {  // CRC-valid header demanding an absurd event_count.
    RawClient raw(server.port());
    ASSERT_TRUE(raw.ok());
    raw.send_struct(net::make_hello(meta));
    log::BlockHeader bh;
    bh.event_count = 0x7fffffff;
    bh.first_stamp = 0;
    bh.payload_crc = 0;
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    raw.send_struct(bh);
    EXPECT_TRUE(raw.server_closed());
  }

  // After all of that, a healthy tenant still gets a correct verdict.
  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), certified_stream(100), meta, verdict));
  EXPECT_TRUE(verdict.certified);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.streams_completed, 1u);
  EXPECT_GE(stats.streams_failed, 5u);
}

TEST(NetService, CreditIgnoringFloodIsDroppedNotBuffered) {
  net::ServerOptions options;
  options.credit_events = 16;       // rx bound ≈ hello + 16·72B + one block
  options.max_block_events = 64;
  options.max_response_buffer = 4096;
  net::CertServer server(options);
  ASSERT_TRUE(server.start()) << server.error();

  // A sender that never reads acks and ships far more than the credit
  // window: the server must drop the connection (credit-window or
  // slow-reader rule) instead of growing the rx/tx buffers without
  // bound — and keep serving compliant tenants.
  RawClient raw(server.port());
  ASSERT_TRUE(raw.ok());
  raw.send_struct(net::make_hello(meta_for(4, "commit-order")));
  const auto events = certified_stream(1000);  // 4000 events >> window
  std::vector<unsigned char> flood;
  flood.reserve(events.size() * (sizeof(log::BlockHeader) + sizeof(core::Event)));
  for (std::size_t i = 0; i < events.size(); ++i) {
    log::BlockHeader bh;
    bh.event_count = 1;
    bh.first_stamp = i;
    bh.payload_crc = util::crc32c(&events[i], sizeof(core::Event));
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    const auto* h = reinterpret_cast<const unsigned char*>(&bh);
    flood.insert(flood.end(), h, h + sizeof(bh));
    const auto* p = reinterpret_cast<const unsigned char*>(&events[i]);
    flood.insert(flood.end(), p, p + sizeof(core::Event));
  }
  // Corrupt trailer: even a server that somehow kept pace with the whole
  // flood must close (CRC error) — server_closed() can never hang.
  log::BlockHeader trailer;
  trailer.event_count = 1;
  trailer.first_stamp = events.size();
  trailer.header_crc = 0xdeadbeef;
  const auto* t = reinterpret_cast<const unsigned char*>(&trailer);
  flood.insert(flood.end(), t, t + sizeof(trailer));
  raw.send_bytes(flood.data(), flood.size());
  EXPECT_TRUE(raw.server_closed());

  net::RemoteVerdict verdict;
  ASSERT_TRUE(stream_to(server.port(), certified_stream(50),
                        meta_for(4, "commit-order"), verdict));
  EXPECT_TRUE(verdict.certified);

  server.stop();
  const auto stats = server.stats();
  EXPECT_GE(stats.streams_failed, 1u);
  EXPECT_EQ(stats.streams_completed, 1u);
}

// ---------------------------------------------------------------------------
// SocketSink in the drain pipeline
// ---------------------------------------------------------------------------

TEST(NetService, SocketSinkStreamsALiveRecording) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();

  const std::uint32_t vars = 8;
  auto stm = stm::make_stm("tl2", vars);
  stm::Recorder recorder(vars);
  stm->set_recorder(&recorder);

  net::CertClient client;
  auto meta = meta_for(vars, "commit-order");
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(),
                             net::make_hello(meta)))
      << client.error();
  stm::SocketSink sink(client);

  std::atomic<bool> done{false};
  stm::DrainPump pump(recorder, sink);
  stm::DrainPump::Stats stats;
  std::thread pumper([&] { stats = pump.run(done); });

  wl::MixParams mix;
  mix.threads = 2;
  mix.vars = vars;
  mix.txs_per_thread = 200;
  mix.ops_per_tx = 3;
  mix.seed = 42;
  (void)wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  pumper.join();

  ASSERT_TRUE(stats.sink_ok) << client.error();
  EXPECT_EQ(client.verdict().certified, true);
  EXPECT_EQ(client.verdict().events, recorder.num_events());
  EXPECT_EQ(stats.events, recorder.num_events());
}

// ---------------------------------------------------------------------------
// Acceptance: remote == local across runtimes × policies
// ---------------------------------------------------------------------------

/// Collects every drained event, in stamp order.
class VectorSink final : public stm::EventSink {
 public:
  std::vector<core::Event> events;
  bool accept(std::span<const core::Event> batch) override {
    events.insert(events.end(), batch.begin(), batch.end());
    return true;
  }
};

void expect_remote_matches_local(const std::string& stm_name,
                                 const std::string& policy, bool window_free,
                                 std::uint16_t port) {
  SCOPED_TRACE(stm_name + "/" + policy);
  const std::uint32_t vars = 12;
  auto stm = stm::make_stm(stm_name, vars);
  if (window_free) {
    ASSERT_TRUE(stm->set_window_free(true));
  }
  stm::Recorder recorder(vars);
  stm->set_recorder(&recorder);

  VectorSink collected;
  std::atomic<bool> done{false};
  stm::DrainPump pump(recorder, collected);
  std::thread pumper([&] { (void)pump.run(done); });
  wl::MixParams mix;
  mix.threads = 3;
  mix.vars = vars;
  mix.txs_per_thread = 150;
  mix.ops_per_tx = 4;
  mix.seed = 7;
  (void)wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  pumper.join();

  const auto local = local_verdict(collected.events, vars, policy);

  auto meta = meta_for(vars, policy);
  meta.runtime = stm_name;
  meta.window_mode = window_free ? "window-free" : "windowed";
  net::RemoteVerdict remote;
  ASSERT_TRUE(stream_to(port, collected.events, meta, remote));

  EXPECT_EQ(remote.certified, !local.has_value());
  EXPECT_EQ(remote.events, collected.events.size());
  if (local.has_value()) {
    ASSERT_TRUE(remote.violation.has_value());
    EXPECT_EQ(remote.violation->pos, local->pos);
    EXPECT_EQ(remote.violation->kind, local->kind);
  }
}

TEST(NetService, RemoteVerdictMatchesLocalAcrossRuntimesAndPolicies) {
  net::CertServer server({});
  ASSERT_TRUE(server.start()) << server.error();
  for (const char* stm_name : {"tl2", "dstm", "mv"}) {
    expect_remote_matches_local(stm_name, "commit-order", false,
                                server.port());
    expect_remote_matches_local(stm_name, "stamped-read", true, server.port());
  }
  server.stop();
  EXPECT_EQ(server.stats().streams_failed, 0u);
}

}  // namespace
