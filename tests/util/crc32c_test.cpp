// Differential fuzz for the CRC-32C kernels (util/crc32c.cpp).
//
// Three implementations must be bit-identical: the consteval-table
// byte-at-a-time oracle (`crc32c_reference`, kept precisely to be this
// test's ground truth), the slice-by-8 software kernel
// (`crc32c_portable`), and the hardware kernel (`crc32c_hw`, SSE4.2 /
// ARMv8 — exercised only where the CPU has it). The dispatched `crc32c`
// is checked too, since that is the symbol the log and the wire actually
// call. Lengths sweep 0..4097 so every head/word-loop/tail split in the
// 8-byte kernels is hit, at every alignment offset 0..7 so the unaligned
// prologue is exercised byte-for-byte.
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

namespace {

using namespace optm;

// RFC 3720 (iSCSI) appendix B.4 known-answer vectors: the polynomial and
// bit order are fixed by the spec, so these pin the algorithm itself,
// independent of our own oracle.
TEST(Crc32c, Rfc3720KnownAnswers) {
  std::array<unsigned char, 32> buf{};
  buf.fill(0x00);
  EXPECT_EQ(util::crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.fill(0xFF);
  EXPECT_EQ(util::crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  std::iota(buf.begin(), buf.end(), static_cast<unsigned char>(0));
  EXPECT_EQ(util::crc32c(buf.data(), buf.size()), 0x46DD794Eu);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(31 - i);
  }
  EXPECT_EQ(util::crc32c(buf.data(), buf.size()), 0x113FDB5Cu);

  const char* check = "123456789";
  EXPECT_EQ(util::crc32c(check, 9), 0xE3069283u);

  // The 48-byte iSCSI Read (10) PDU from the RFC — same length as one
  // core::Event, which is the payload unit every block CRC covers.
  const std::array<unsigned char, 48> pdu = {
      0x01, 0xC0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(util::crc32c(pdu.data(), pdu.size()), 0xD9963A56u);
}

TEST(Crc32c, BackendNameIsKnown) {
  const std::string name = util::crc32c_backend_name();
  EXPECT_TRUE(name == "sse4.2" || name == "armv8-crc" || name == "slice8")
      << name;
  if (util::crc32c_hw_available()) {
    EXPECT_NE(name, "slice8");
  } else {
    EXPECT_EQ(name, "slice8");
  }
}

// Every length 0..4097 at every alignment offset 0..7, random bytes:
// the dispatched kernel, the portable slice-by-8 kernel, and (where the
// CPU has it) the hardware kernel must all reproduce the oracle.
TEST(Crc32c, DifferentialSweepLengthsAndAlignments) {
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull);
  std::vector<unsigned char> arena(4097 + 8);
  for (auto& b : arena) {
    b = static_cast<unsigned char>(rng());
  }
  const bool hw = util::crc32c_hw_available();
  for (std::size_t offset = 0; offset < 8; ++offset) {
    const unsigned char* p = arena.data() + offset;
    for (std::size_t len = 0; len <= 4097; ++len) {
      const std::uint32_t want = util::crc32c_reference(p, len);
      ASSERT_EQ(util::crc32c(p, len), want)
          << "dispatch len=" << len << " off=" << offset;
      ASSERT_EQ(util::crc32c_portable(p, len), want)
          << "slice8 len=" << len << " off=" << offset;
      if (hw) {
        ASSERT_EQ(util::crc32c_hw(p, len), want)
            << "hw len=" << len << " off=" << offset;
      }
    }
  }
}

// Seed chaining: crc(a ++ b) == crc(b, seed = crc(a)) must hold for all
// kernels and all split points — the writer CRCs header and payload
// separately but nothing stops a future caller from chaining.
TEST(Crc32c, SeedChainingMatchesOneShot) {
  std::mt19937_64 rng(0xDEADBEEFCAFEF00Dull);
  const bool hw = util::crc32c_hw_available();
  std::vector<unsigned char> buf(1024);
  for (auto& b : buf) {
    b = static_cast<unsigned char>(rng());
  }
  const std::uint32_t whole = util::crc32c_reference(buf.data(), buf.size());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{63}, std::size_t{512},
                          std::size_t{1023}, std::size_t{1024}}) {
    const std::uint32_t head = util::crc32c(buf.data(), cut);
    ASSERT_EQ(util::crc32c(buf.data() + cut, buf.size() - cut, head), whole)
        << "dispatch cut=" << cut;
    const std::uint32_t head_p = util::crc32c_portable(buf.data(), cut);
    ASSERT_EQ(util::crc32c_portable(buf.data() + cut, buf.size() - cut,
                                    head_p),
              whole)
        << "slice8 cut=" << cut;
    if (hw) {
      const std::uint32_t head_h = util::crc32c_hw(buf.data(), cut);
      ASSERT_EQ(util::crc32c_hw(buf.data() + cut, buf.size() - cut, head_h),
                whole)
          << "hw cut=" << cut;
    }
  }
}

// Random buffers of random sizes — a broad cross-check beyond the
// systematic sweep, including large inputs that span many word-loop
// iterations.
TEST(Crc32c, RandomBuffersMatchOracle) {
  std::mt19937_64 rng(42);
  const bool hw = util::crc32c_hw_available();
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng() % 65536);
    std::vector<unsigned char> buf(len + 1);  // +1: valid data() at len==0
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<unsigned char>(rng());
    }
    const std::uint32_t want = util::crc32c_reference(buf.data(), len);
    ASSERT_EQ(util::crc32c(buf.data(), len), want) << "iter " << iter;
    ASSERT_EQ(util::crc32c_portable(buf.data(), len), want) << "iter " << iter;
    if (hw) {
      ASSERT_EQ(util::crc32c_hw(buf.data(), len), want) << "iter " << iter;
    }
  }
}

}  // namespace
