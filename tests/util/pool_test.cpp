// The verification thread pool: parallel_for must cover the index space
// exactly once, work with any pool size (including 1 on single-core CI),
// and survive reuse across batches.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/pool.hpp"

namespace optm::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ReusableAcrossBatchesAndEmptyBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 0);
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(17, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 170);
}

TEST(ThreadPool, MoreItemsThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

}  // namespace
}  // namespace optm::util
