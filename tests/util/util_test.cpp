#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bitset.hpp"
#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/spin.hpp"
#include "util/table.hpp"

namespace optm::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, StreamSeedsIndependent) {
  EXPECT_NE(stream_seed(1, 0), stream_seed(1, 1));
  EXPECT_NE(stream_seed(1, 0), stream_seed(2, 0));
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, EqualityAndHash) {
  DynamicBitset a(70), b(70);
  a.set(69);
  b.set(69);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(1);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, AllAndClear) {
  DynamicBitset b(3);
  b.set(0);
  b.set(1);
  b.set(2);
  EXPECT_TRUE(b.all());
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Table, RendersAlignedRows) {
  Table t({"algo", "k", "steps"});
  t.add_row({"dstm", "16", "17.5"});
  t.add_row({"tl2", "1024", "3.0"});
  const std::string s = t.str();
  EXPECT_NE(s.find("algo"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
  // Header and both rows present, plus 3 rules.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(Cli, ParsesFlagsAndDefaults) {
  Cli cli("prog", "test");
  cli.flag("threads", "4", "thread count");
  cli.flag("verbose", "false", "chatty");
  const char* argv[] = {"prog", "--threads=8", "--verbose"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("threads"), 8);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("prog", "test");
  cli.flag("threads", "4", "thread count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ParseIntAcceptsIntegers) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_int("-9223372036854775808"), INT64_MIN);
}

TEST(Cli, ParseIntRejectsGarbage) {
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("abc"));
  EXPECT_FALSE(parse_int("4x"));       // trailing garbage
  EXPECT_FALSE(parse_int("1.5"));      // not an integer
  EXPECT_FALSE(parse_int(" 4"));       // no leading whitespace
  EXPECT_FALSE(parse_int("--4"));      // stray sign
  EXPECT_FALSE(parse_int("9223372036854775808"));  // past int64
}

TEST(Cli, IntFlagRejectsMalformedValueAtParse) {
  for (const char* bad : {"--threads=abc", "--threads=4x", "--threads=",
                          "--threads=99999999999999999999"}) {
    Cli cli("prog", "test");
    cli.flag("threads", std::int64_t{4}, "thread count");
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(cli.parse(2, argv)) << bad;
  }
}

TEST(Cli, IntFlagAcceptsValidValueAndDefault) {
  Cli cli("prog", "test");
  cli.flag("threads", std::int64_t{4}, "thread count");
  cli.flag("seed", std::int64_t{-1}, "rng seed");
  const char* argv[] = {"prog", "--threads=8"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("threads"), 8);
  EXPECT_EQ(cli.get_int("seed"), -1);  // default untouched
}

TEST(Cli, BareIntFlagRejected) {
  // A bare boolean-style mention of an int flag has no integer value.
  Cli cli("prog", "test");
  cli.flag("threads", std::int64_t{4}, "thread count");
  const char* argv[] = {"prog", "--threads"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, EmptyValueAllowedForStringFlags) {
  Cli cli("prog", "test");
  cli.flag("log-dir", "", "output directory");
  const char* argv[] = {"prog", "--log-dir="};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get("log-dir").empty());
}

TEST(Cli, MissingPositionalFails) {
  Cli cli("prog", "test");
  cli.positional("dir", "input directory");
  const char* argv[] = {"prog"};
  EXPECT_FALSE(cli.parse(1, argv));
}

TEST(Cli, UnexpectedPositionalFails) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, GetIntThrowsOnUndeclaredNonInteger) {
  // The backstop for call sites reading a string-declared flag as int.
  Cli cli("prog", "test");
  cli.flag("mode", "fast", "mode name");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_int("mode"), std::invalid_argument);
}

TEST(Backoff, PausesWithoutHanging) {
  Backoff b(16);
  for (int i = 0; i < 10; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace optm::util
