// §6.2's progressiveness separation, as deterministic two-process
// interleavings driven from one OS thread:
//
//   "TL2 is not progressive: it may forcefully abort a transaction Ti that
//    conflicts with a concurrent transaction Tk, even if Ti invokes a
//    conflicting operation after Tk commits."
//
// The witness: T1 begins; T2 writes x and commits; T1 then invokes its
// FIRST read of x. There was never a moment at which T1 and a live
// conflicting transaction both accessed x — a progressive TM must let T1
// proceed. TL2 aborts it anyway (version > rv).
#include <gtest/gtest.h>

#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"

namespace optm::stm {
namespace {

struct Witness {
  bool read_ok = false;
  bool committed = false;
  std::uint64_t value = 0;
};

/// T1 begins and reads y (pinning its snapshot mid-execution); T2 writes
/// x=1 and commits; T1 then invokes its first read of x. Every runtime
/// samples its snapshot at the FIRST access (lazy rv — a begin-time
/// sample would predate the first event and break ≺_H), so the prior read
/// of y is what makes T1 genuinely "already running" when the conflict
/// materializes — exactly §6.2's scenario.
Witness run_witness(Stm& stm) {
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  Witness w;

  stm.begin(p1);
  std::uint64_t y = 0;
  EXPECT_TRUE(stm.read(p1, 1, y));  // pins T1's snapshot

  stm.begin(p2);
  EXPECT_TRUE(stm.write(p2, 0, 1));
  EXPECT_TRUE(stm.commit(p2));

  w.read_ok = stm.read(p1, 0, w.value);
  w.committed = w.read_ok && stm.commit(p1);
  return w;
}

TEST(Progressive, Tl2AbortsWithoutLiveConflict) {
  const auto stm = make_stm("tl2", 8);
  const Witness w = run_witness(*stm);
  EXPECT_FALSE(w.read_ok);  // the non-progressive abort
  EXPECT_FALSE(stm->properties().progressive);
}

TEST(Progressive, DstmProceeds) {
  const auto stm = make_stm("dstm", 8);
  const Witness w = run_witness(*stm);
  EXPECT_TRUE(w.read_ok);
  EXPECT_EQ(w.value, 1u);  // single-version: must return the latest value
  EXPECT_TRUE(w.committed);
  EXPECT_TRUE(stm->properties().progressive);
}

TEST(Progressive, VisibleReadProceeds) {
  const auto stm = make_stm("visible", 8);
  const Witness w = run_witness(*stm);
  EXPECT_TRUE(w.read_ok);
  EXPECT_EQ(w.value, 1u);
  EXPECT_TRUE(w.committed);
}

TEST(Progressive, NorecProceeds) {
  const auto stm = make_stm("norec", 8);
  const Witness w = run_witness(*stm);
  EXPECT_TRUE(w.read_ok);
  EXPECT_EQ(w.value, 1u);
  EXPECT_TRUE(w.committed);
}

TEST(Progressive, MvProceedsWithSnapshotValue) {
  // Multi-version: T1's snapshot was pinned by its read of y BEFORE T2
  // committed, so T1 reads the OLD x and still commits (read-only) — the
  // freedom H4 grants. (Had T1's first access come after T2's commit, the
  // lazy snapshot would return the new value, as ≺_H requires.)
  const auto stm = make_stm("mv", 8);
  const Witness w = run_witness(*stm);
  EXPECT_TRUE(w.read_ok);
  EXPECT_EQ(w.value, 0u);  // snapshot pinned before T2's commit
  EXPECT_TRUE(w.committed);
}

TEST(Progressive, WeakProceeds) {
  const auto stm = make_stm("weak", 8);
  const Witness w = run_witness(*stm);
  EXPECT_TRUE(w.read_ok);
  EXPECT_TRUE(w.committed);
}

// --- genuine conflicts must still abort someone ---------------------------------

TEST(Progressive, OverlappingConflictResolvedEverywhere) {
  // T1 reads x; T2 writes x and commits; T1 then writes x and tries to
  // commit. Committing both would violate opacity (T1 read the old value).
  // Every opaque STM must abort T1 somewhere along the way.
  for (const auto name : opaque_stm_names()) {
    const auto stm = make_stm(name, 8);
    sim::ThreadCtx p1(0);
    sim::ThreadCtx p2(1);

    stm->begin(p1);
    std::uint64_t v = 0;
    ASSERT_TRUE(stm->read(p1, 0, v)) << name;
    EXPECT_EQ(v, 0u) << name;

    stm->begin(p2);
    ASSERT_TRUE(stm->write(p2, 0, 7)) << name;
    ASSERT_TRUE(stm->commit(p2)) << name;

    const bool write_ok = stm->write(p1, 0, 8);
    const bool committed = write_ok && stm->commit(p1);
    EXPECT_FALSE(committed) << name << ": lost update admitted";
  }
}

TEST(Progressive, WriterWriterConflictResolved) {
  // Two live writers on the same variable: progressive STMs may abort one
  // of them (they DO conflict). Whoever survives commits; the final value
  // must be one of the two proposals, never a mix.
  for (const auto name : all_stm_names()) {
    const auto stm = make_stm(name, 4);
    sim::ThreadCtx p1(0);
    sim::ThreadCtx p2(1);

    stm->begin(p1);
    stm->begin(p2);
    const bool w1 = stm->write(p1, 0, 100);
    const bool w2 = stm->write(p2, 0, 200);
    const bool c1 = w1 && stm->commit(p1);
    const bool c2 = w2 && stm->commit(p2);
    EXPECT_TRUE(c1 || c2) << name << ": both writers died";

    sim::ThreadCtx p3(2);
    stm->begin(p3);
    std::uint64_t v = 0;
    ASSERT_TRUE(stm->read(p3, 0, v)) << name;
    ASSERT_TRUE(stm->commit(p3)) << name;
    if (c1 && c2) {
      EXPECT_TRUE(v == 100 || v == 200) << name;
    } else if (c1) {
      EXPECT_EQ(v, 100u) << name;
    } else {
      EXPECT_EQ(v, 200u) << name;
    }
  }
}

}  // namespace
}  // namespace optm::stm
