// AstmStm: acquisition modes, the adaptive policy, and the §6.2 claim that
// ASTM sits with DSTM on the tight side of Theorem 3.
#include <gtest/gtest.h>

#include <memory>

#include "core/opacity.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/astm.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

TEST(Astm, AdaptiveStartsLazy) {
  AstmStm stm(8);
  EXPECT_FALSE(stm.eager_mode(0));
  EXPECT_EQ(stm.mode_switches(0), 0u);
}

TEST(Astm, ForcedPoliciesPinTheMode) {
  AstmStm eager(8, nullptr, AcquirePolicy::kForceEager);
  AstmStm lazy(8, nullptr, AcquirePolicy::kForceLazy);
  EXPECT_TRUE(eager.eager_mode(0));
  EXPECT_FALSE(lazy.eager_mode(0));
}

TEST(Astm, LazyWritesCostNoSharedSteps) {
  // The defining property of lazy acquire: a write is process-local.
  AstmStm stm(8, nullptr, AcquirePolicy::kForceLazy);
  sim::ThreadCtx ctx(0);
  stm.begin(ctx);
  const std::uint64_t before = ctx.steps.total();
  ASSERT_TRUE(stm.write(ctx, 3, 42));
  EXPECT_EQ(ctx.steps.total(), before);
  ASSERT_TRUE(stm.commit(ctx));
}

TEST(Astm, EagerWritesAcquireImmediately) {
  AstmStm stm(8, nullptr, AcquirePolicy::kForceEager);
  sim::ThreadCtx ctx(0);
  stm.begin(ctx);
  const std::uint64_t rmws_before = ctx.steps.rmws;
  ASSERT_TRUE(stm.write(ctx, 3, 42));
  EXPECT_GT(ctx.steps.rmws, rmws_before);  // the ownership CAS
  ASSERT_TRUE(stm.commit(ctx));
}

TEST(Astm, EagerOwnershipBlocksRivalAtWriteTime) {
  // With eager acquire and the default aggressive CM, the second writer
  // steals ownership by aborting the first — conflict discovered at the
  // OPERATION, not at commit.
  AstmStm stm(8, nullptr, AcquirePolicy::kForceEager);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  ASSERT_TRUE(stm.write(p1, 0, 100));
  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 200));  // aggressive CM aborts p1
  EXPECT_FALSE(stm.commit(p1));        // p1 learns it lost
  EXPECT_TRUE(stm.commit(p2));

  sim::ThreadCtx p3(2);
  stm.begin(p3);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p3, 0, v));
  EXPECT_EQ(v, 200u);
  ASSERT_TRUE(stm.commit(p3));
}

TEST(Astm, LazyRivalsBothBufferBothCommitBlindWrites) {
  // Blind writes never conflict under lazy acquire until commit, and the
  // commits here do not overlap: both transactions commit (§3.6's point
  // that overlapping blind writers need not be serialized pessimistically).
  AstmStm stm(8, nullptr, AcquirePolicy::kForceLazy);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  stm.begin(p2);
  ASSERT_TRUE(stm.write(p1, 0, 100));
  ASSERT_TRUE(stm.write(p2, 0, 200));
  EXPECT_TRUE(stm.commit(p1));
  EXPECT_TRUE(stm.commit(p2));
}

TEST(Astm, TwoLateAbortsFlipLazyToEager) {
  AstmStm stm(8);  // adaptive, starts lazy
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  for (std::uint32_t round = 0; round < AstmStm::kLazyLossesToEager; ++round) {
    EXPECT_FALSE(stm.eager_mode(0)) << "flipped too early, round " << round;
    stm.begin(p1);
    std::uint64_t v = 0;
    ASSERT_TRUE(stm.read(p1, 0, v));  // rs = {x}

    stm.begin(p2);
    ASSERT_TRUE(stm.write(p2, 0, 10 + round));
    ASSERT_TRUE(stm.commit(p2));  // invalidates p1's read

    ASSERT_TRUE(stm.write(p1, 1, 7));  // lazy: buffers, cannot fail here
    EXPECT_FALSE(stm.commit(p1));      // commit-time (late) abort
  }
  EXPECT_TRUE(stm.eager_mode(0));
  EXPECT_EQ(stm.mode_switches(0), 1u);
}

TEST(Astm, CleanEagerStreakFlipsBackToLazy) {
  AstmStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  // Force the lazy -> eager flip (as in TwoLateAbortsFlipLazyToEager).
  for (std::uint32_t round = 0; round < AstmStm::kLazyLossesToEager; ++round) {
    stm.begin(p1);
    std::uint64_t v = 0;
    ASSERT_TRUE(stm.read(p1, 0, v));
    stm.begin(p2);
    ASSERT_TRUE(stm.write(p2, 0, 10 + round));
    ASSERT_TRUE(stm.commit(p2));
    ASSERT_TRUE(stm.write(p1, 1, 7));
    EXPECT_FALSE(stm.commit(p1));
  }
  ASSERT_TRUE(stm.eager_mode(0));

  // A streak of uncontended eager commits flips process 0 back.
  for (std::uint32_t i = 0; i < AstmStm::kEagerCleanToLazy; ++i) {
    EXPECT_TRUE(stm.eager_mode(0));
    stm.begin(p1);
    ASSERT_TRUE(stm.write(p1, 2, i));
    ASSERT_TRUE(stm.commit(p1));
  }
  EXPECT_FALSE(stm.eager_mode(0));
  EXPECT_EQ(stm.mode_switches(0), 2u);
}

TEST(Astm, MidOperationAbortDoesNotCountAsLateAbort) {
  // A read that fails incremental validation aborts AT the operation —
  // early discovery, exactly what lazy mode is supposed to be good at.
  AstmStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  for (int round = 0; round < 4; ++round) {
    stm.begin(p1);
    std::uint64_t v = 0;
    ASSERT_TRUE(stm.read(p1, 0, v));
    stm.begin(p2);
    ASSERT_TRUE(stm.write(p2, 0, 100u + static_cast<std::uint64_t>(round)));
    ASSERT_TRUE(stm.commit(p2));
    EXPECT_FALSE(stm.read(p1, 1, v));  // validation abort mid-operation
  }
  EXPECT_FALSE(stm.eager_mode(0));  // never flipped
  EXPECT_EQ(stm.mode_switches(0), 0u);
}

TEST(Astm, ProgressiveWitnessProceedsInBothModes) {
  // §6.2: T1 begins; T2 writes x and commits; T1's FIRST read of x must
  // proceed (and return the latest value — single-version).
  for (const auto policy :
       {AcquirePolicy::kForceLazy, AcquirePolicy::kForceEager}) {
    AstmStm stm(8, nullptr, policy);
    sim::ThreadCtx p1(0);
    sim::ThreadCtx p2(1);
    stm.begin(p1);
    stm.begin(p2);
    ASSERT_TRUE(stm.write(p2, 0, 1));
    ASSERT_TRUE(stm.commit(p2));
    std::uint64_t v = 0;
    EXPECT_TRUE(stm.read(p1, 0, v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(stm.commit(p1));
  }
}

TEST(Astm, FinalReadGrowsLinearlyLikeDstm) {
  // Theorem 3 tightness: ASTM pays Θ(m) on the adversarial final read in
  // BOTH acquisition modes (the mode only moves write-conflict discovery).
  for (const char* name : {"astm-lazy", "astm-eager"}) {
    const auto small_stm = make_stm(name, 17);
    const auto small = wl::lower_bound_probe(*small_stm, 16);
    const auto large_stm = make_stm(name, 257);
    const auto large = wl::lower_bound_probe(*large_stm, 256);
    EXPECT_TRUE(small.read_succeeded) << name;
    EXPECT_TRUE(large.read_succeeded) << name;
    EXPECT_TRUE(large.reader_committed) << name;
    EXPECT_GE(large.steps_final_read, 8 * small.steps_final_read) << name;
    EXPECT_GE(large.validation_steps_final_read, 250u) << name;
  }
}

TEST(Astm, PropertyFlagsMatchTheoremPremises) {
  AstmStm stm(1);
  const auto p = stm.properties();
  EXPECT_TRUE(p.invisible_reads);
  EXPECT_TRUE(p.single_version);
  EXPECT_TRUE(p.progressive);
  EXPECT_TRUE(p.opaque);
}

TEST(Astm, InvisibleReadsDoNoSharedWritesInEitherMode) {
  for (const char* name : {"astm-lazy", "astm-eager"}) {
    const auto stm = make_stm(name, 32);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    const std::uint64_t writes_before = ctx.steps.shared_writes();
    for (VarId v = 0; v < 32; ++v) {
      std::uint64_t out = 0;
      ASSERT_TRUE(stm->read(ctx, v, out));
    }
    EXPECT_EQ(ctx.steps.shared_writes(), writes_before) << name;
    EXPECT_TRUE(stm->commit(ctx));
  }
}

TEST(Astm, RecordedDeterministicInterleaveIsOpaque) {
  for (const char* name : {"astm", "astm-eager", "astm-lazy"}) {
    const auto stm = make_stm(name, 4);
    Recorder recorder(4);
    stm->set_recorder(&recorder);
    sim::ThreadCtx p1(0);
    sim::ThreadCtx p2(1);

    stm->begin(p1);
    std::uint64_t x = 0;
    const bool r1 = stm->read(p1, 0, x);
    stm->begin(p2);
    ASSERT_TRUE(stm->write(p2, 0, 1));
    ASSERT_TRUE(stm->write(p2, 1, 2));
    ASSERT_TRUE(stm->commit(p2));
    if (r1) {
      std::uint64_t y = 0;
      if (stm->read(p1, 1, y)) (void)stm->commit(p1);
    }

    const core::History h = recorder.history();
    std::string why;
    ASSERT_TRUE(h.well_formed(&why)) << name << ": " << why;
    EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kYes)
        << name << " produced a non-opaque history:\n"
        << h.str();
  }
}

TEST(Astm, AdaptiveBankConservesMoney) {
  const auto stm = make_stm("astm", 32);
  wl::BankParams params;
  params.threads = 4;
  params.accounts = 32;
  params.transfers_per_thread = 400;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total);
}

}  // namespace
}  // namespace optm::stm
