// The sharded recorder must be observationally identical to the original
// single-mutex recorder: on a deterministic schedule both engines
// reconstruct the same core::History and the same certificate ≪, and on
// concurrent schedules the sharded engine's stamp-merged linearization
// must pass the same checks the mutex engine's histories always passed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/opacity_graph.hpp"
#include "core/parallel_verify.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/rng.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

/// Drive the same deterministic two-process interleaving against `stm`
/// (T1 reads x, T2 commits x:=1 y:=2, T1 reads y, T1 tries to commit).
void drive_interleaved(Stm& stm) {
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  std::uint64_t x = 0;
  const bool r1 = stm.read(p1, 0, x);
  stm.begin(p2);
  (void)(stm.write(p2, 0, 1) && stm.write(p2, 1, 2) && stm.commit(p2));
  if (r1) {
    std::uint64_t y = 0;
    if (stm.read(p1, 1, y)) (void)stm.commit(p1);
  }
}

class RecorderEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(RecorderEquivalence, DeterministicScheduleSameLinearization) {
  const auto mutex_stm = make_stm(GetParam(), 4);
  MutexRecorder mutex_recorder(4);
  mutex_stm->set_recorder(&mutex_recorder);
  drive_interleaved(*mutex_stm);

  const auto sharded_stm = make_stm(GetParam(), 4);
  Recorder sharded_recorder(4);
  sharded_stm->set_recorder(&sharded_recorder);
  drive_interleaved(*sharded_stm);

  const core::History a = mutex_recorder.history();
  const core::History b = sharded_recorder.history();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "event " << i << ": " << core::to_string(a[i])
                          << " vs " << core::to_string(b[i]);
    // Event::operator== already covers these, but the stamp fields are
    // what the window-free certificate lives on — compare them explicitly
    // so a regression names the field, not just the event.
    EXPECT_EQ(a[i].stamp, b[i].stamp) << "event " << i;
    EXPECT_EQ(a[i].ver, b[i].ver) << "event " << i;
  }
  EXPECT_EQ(mutex_recorder.certificate_order(),
            sharded_recorder.certificate_order());
  EXPECT_EQ(mutex_recorder.num_events(), sharded_recorder.num_events());
}

INSTANTIATE_TEST_SUITE_P(Stms, RecorderEquivalence,
                         ::testing::Values("tl2", "tiny", "norec", "dstm",
                                           "astm", "visible", "mv"));

// Window-free mutex-vs-sharded equivalence, fuzzed over seeds: with no
// window taken at all, both engines must still record the same events with
// the same read-stamp pairs on a deterministic schedule — and the sharded
// drain() must carry the stamp fields through unchanged (the regression
// guard for Event gaining fields the drain path might forget).
class WindowFreeRecorderFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(WindowFreeRecorderFuzz, MutexAndShardedAgreeIncludingStamps) {
  std::size_t stamped_reads = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto mutex_stm = make_stm(GetParam(), 6);
    ASSERT_TRUE(mutex_stm->set_window_free(true));
    MutexRecorder mutex_recorder(6);
    mutex_stm->set_recorder(&mutex_recorder);

    const auto sharded_stm = make_stm(GetParam(), 6);
    ASSERT_TRUE(sharded_stm->set_window_free(true));
    Recorder sharded_recorder(6);
    sharded_stm->set_recorder(&sharded_recorder);

    // One logical process, seeded op mix — deterministic, so both engines
    // see the identical schedule.
    for (auto* stm : {static_cast<Stm*>(mutex_stm.get()),
                      static_cast<Stm*>(sharded_stm.get())}) {
      sim::ThreadCtx ctx(0);
      util::Xoshiro256 rng(seed);
      for (int t = 0; t < 6; ++t) {
        stm->begin(ctx);
        bool doomed = false;
        const auto ops = 1 + rng.below(3);
        for (std::uint64_t op = 0; op < ops && !doomed; ++op) {
          const auto var = static_cast<VarId>(rng.below(6));
          if (rng.chance(0.5)) {
            doomed = !stm->write(ctx, var, (seed << 20) | (t << 8) | (op + 1));
          } else {
            std::uint64_t v = 0;
            doomed = !stm->read(ctx, var, v);
          }
        }
        if (!doomed) (void)stm->commit(ctx);
      }
    }

    const core::History a = mutex_recorder.history();

    // Drain path (what live verification consumes), not history(): the
    // stamp fields must survive the chunked-lane copy and the k-way merge.
    EventBatch drained;
    while (sharded_recorder.drain(drained) > 0) {
    }
    ASSERT_EQ(a.size(), drained.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], drained[i]) << "seed " << seed << " event " << i;
      EXPECT_EQ(a[i].stamp, drained[i].stamp) << "seed " << seed << " event " << i;
      EXPECT_EQ(a[i].ver, drained[i].ver) << "seed " << seed << " event " << i;
      if (a[i].kind == core::EventKind::kResponse &&
          a[i].op == core::OpCode::kRead && a[i].stamp != 0) {
        ++stamped_reads;
        EXPECT_EQ(a[i].stamp % 2, 1u) << "read stamps are snapshots (2rv+1)";
      }
    }
    // The window-free drained stream certifies under the stamped policy.
    core::OnlineCertificateMonitor monitor(
        sharded_recorder.model(), core::VersionOrderPolicy::kStampedRead);
    EXPECT_TRUE(monitor.ingest(drained)) << "seed " << seed << ": "
                                         << monitor.violation()->reason;
  }
  // The fuzzed schedules must actually exercise stamped reads for the
  // field comparison to mean anything.
  EXPECT_GT(stamped_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Stms, WindowFreeRecorderFuzz,
                         ::testing::Values("tl2", "tiny", "norec", "dstm",
                                           "astm", "mv"));

class ShardedRecorderConcurrent : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedRecorderConcurrent, StampMergeIsALegalLinearization) {
  const auto stm = make_stm(GetParam(), 8);
  Recorder recorder(8);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 4;
  params.vars = 8;
  params.txs_per_thread = 100;
  params.seed = 99;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  ASSERT_EQ(h.size(), recorder.num_events());
  std::string why;
  EXPECT_TRUE(h.well_formed(&why)) << why;

  // The merged linearization must stream cleanly through the certificate
  // monitor — the Theorem-2 soundness of the window discipline.
  core::OnlineCertificateMonitor monitor(h.model());
  EXPECT_TRUE(monitor.ingest(h.events()));
  EXPECT_FALSE(monitor.violation().has_value())
      << monitor.violation()->reason << " at event "
      << monitor.violation()->pos;

  // ... and the recorded ≪ must verify as an opacity certificate.
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << why;

  // The sharded offline driver must agree with the streaming monitor on
  // this genuinely concurrent recording (differential check of the whole
  // record-merge-verify pipeline).
  core::ShardVerifyOptions options;
  options.num_shards = 4;
  options.num_threads = 2;
  const auto offline = core::verify_history_sharded(h, options);
  EXPECT_TRUE(offline.certified)
      << offline.violation->reason << " at event " << offline.violation->pos;
}

INSTANTIATE_TEST_SUITE_P(Stms, ShardedRecorderConcurrent,
                         ::testing::Values("tl2", "tiny", "norec", "visible",
                                           "mv"));

TEST(ShardedRecorder, DrainReconstructsHistoryIncrementally) {
  const auto stm = make_stm("tl2", 8);
  Recorder recorder(8);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 8;
  params.txs_per_thread = 60;
  params.seed = 7;
  (void)wl::run_random_mix(*stm, params);

  // Quiescent now: repeated drains must hand out the full linearization in
  // order, and agree with history() exactly.
  EventBatch drained;
  while (recorder.drain(drained) > 0) {
  }
  const core::History h = recorder.history();
  ASSERT_EQ(drained.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(drained[i], h[i]);
  // Nothing left.
  EXPECT_EQ(recorder.drain(drained), 0u);
}

TEST(ShardedRecorder, DrainWhileRecordingYieldsCompletePrefixes) {
  const auto stm = make_stm("norec", 8);
  Recorder recorder(8);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 8;
  params.txs_per_thread = 300;
  params.seed = 21;

  EventBatch drained;
  core::OnlineCertificateMonitor live(recorder.model());
  std::thread worker([&] { (void)wl::run_random_mix(*stm, params); });
  // Live pipeline: drain stamp-contiguous batches while the workload runs
  // and feed them straight into the monitor.
  for (int spin = 0; spin < 10000; ++spin) {
    const std::size_t before = drained.size();
    (void)recorder.drain(drained);
    (void)live.ingest(drained.span().subspan(before));
  }
  worker.join();
  const std::size_t before = drained.size();
  while (recorder.drain(drained) > 0) {
  }
  (void)live.ingest(drained.span().subspan(before));

  const core::History h = recorder.history();
  ASSERT_EQ(drained.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(drained[i], h[i]) << "drain diverged at event " << i;
  }
  EXPECT_TRUE(live.ok()) << live.violation()->reason;
  EXPECT_EQ(live.events_fed(), h.size());
}

TEST(ShardedRecorder, WindowFreeDrainWhileRecordingCertifiesStamped) {
  // The live pipeline with NO window lock at all: concurrent recording
  // threads, a drainer feeding the kStampedRead monitor mid-run. Records
  // may genuinely drift here; the stamps must carry the certificate.
  const auto stm = make_stm("tl2", 8);
  ASSERT_TRUE(stm->set_window_free(true));
  Recorder recorder(8);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 8;
  params.txs_per_thread = 300;
  params.seed = 77;

  EventBatch drained;
  core::OnlineCertificateMonitor live(recorder.model(),
                                      core::VersionOrderPolicy::kStampedRead);
  std::thread worker([&] { (void)wl::run_random_mix(*stm, params); });
  for (int spin = 0; spin < 10000; ++spin) {
    const std::size_t before = drained.size();
    (void)recorder.drain(drained);
    (void)live.ingest(drained.span().subspan(before));
  }
  worker.join();
  const std::size_t before = drained.size();
  while (recorder.drain(drained) > 0) {
  }
  (void)live.ingest(drained.span().subspan(before));

  EXPECT_TRUE(live.ok()) << live.violation()->reason << " at event "
                         << live.violation()->pos;
  EXPECT_EQ(live.events_fed(), recorder.num_events());
}

// --- batch stamping (Recorder::Options::stamp_batch) -------------------------

TEST(BatchStamping, AmortizesTicketsAndDrainsIdentically) {
  // The same deterministic single-thread schedule recorded per-event and
  // at batch grain 8: the drained streams must be byte-equal (batching
  // changes how many clock tickets are drawn, never what is recorded or
  // in which order), and the batch engine must have drawn strictly fewer
  // tickets than events.
  auto drive = [](Recorder& recorder) {
    const auto stm = make_stm("tl2", 6);
    ASSERT_TRUE(stm->set_window_free(true));
    stm->set_recorder(&recorder);
    sim::ThreadCtx ctx(0);
    util::Xoshiro256 rng(17);
    for (int t = 0; t < 40; ++t) {
      stm->begin(ctx);
      bool doomed = false;
      const auto ops = 1 + rng.below(4);
      for (std::uint64_t op = 0; op < ops && !doomed; ++op) {
        const auto var = static_cast<VarId>(rng.below(6));
        if (rng.chance(0.5)) {
          doomed = !stm->write(ctx, var, (t << 8) | (op + 1));
        } else {
          std::uint64_t v = 0;
          doomed = !stm->read(ctx, var, v);
        }
      }
      if (!doomed) (void)stm->commit(ctx);
    }
  };

  Recorder per_event(6);
  drive(per_event);
  Recorder batched(6, Recorder::Options{8});
  drive(batched);
  ASSERT_EQ(batched.stamp_batch(), 8u);

  EventBatch a;
  while (per_event.drain(a) > 0) {
  }
  EventBatch b;
  while (batched.drain(b) > 0) {
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "batch stamping diverged at event " << i << ": "
                          << core::to_string(a[i]) << " vs "
                          << core::to_string(b[i]);
  }

  // Per-event mode: one ticket per event, exactly. Batch mode: strictly
  // fewer (a single-thread schedule extends nearly every batch).
  EXPECT_EQ(per_event.tickets_issued(), per_event.num_events());
  EXPECT_LT(batched.tickets_issued(), batched.num_events());
  EXPECT_EQ(per_event.stamps_issued(), per_event.num_events());

  // stamps_issued() lags an OPEN batch (event-unit accounting counts a
  // batch when it closes); the owner's flush settles it.
  batched.flush_lane(0);
  EXPECT_EQ(batched.stamps_issued(), batched.num_events());
}

TEST(BatchStamping, OpenBatchGatesDrainUntilFlushed) {
  // Hand-driven pushes, exercising the drain-side gate: an open batch's
  // published prefix is emitted, but the merge parks on its ticket until
  // the batch closes — and retires the parked ticket on the next drain
  // (the earlier-drain stall must not wedge the merge forever).
  Recorder recorder(4, Recorder::Options{4});
  recorder.on_inv(0, 1, 0, core::OpCode::kRead, 0);
  recorder.on_inv(0, 1, 1, core::OpCode::kRead, 0);

  // Lane 0's batch (ticket 0) is open: both events drain (partial
  // emission keeps approx_pending honest), but ticket 0 stays parked.
  EventBatch out;
  EXPECT_EQ(recorder.drain(out), 2u);
  EXPECT_EQ(recorder.approx_pending(), 0u);
  EXPECT_EQ(recorder.tickets_issued(), 1u);

  // Lane 1 draws ticket 1; it cannot pass the parked open ticket 0.
  recorder.on_inv(1, 2, 0, core::OpCode::kRead, 0);
  EXPECT_EQ(recorder.drain(out), 0u);
  EXPECT_EQ(recorder.approx_pending(), 1u);

  // Closing lane 0's batch releases the merge; lane 1's event drains.
  recorder.flush_lane(0);
  EXPECT_EQ(recorder.drain(out), 1u);
  EXPECT_EQ(recorder.approx_pending(), 0u);
  ASSERT_EQ(out.size(), 3u);

  // A serial record (commit) closes its lane's batch at birth: no flush
  // needed for the merge to pass it.
  recorder.on_ret(1, 2, 0, core::OpCode::kRead, 0, 0);
  recorder.on_commit(1, 2, /*stamp=*/2);
  EXPECT_EQ(recorder.drain(out), 2u);
  EXPECT_EQ(recorder.approx_pending(), 0u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].kind, core::EventKind::kCommit);

  // history() (the collect path) agrees with the drained order.
  const core::History h = recorder.history();
  ASSERT_EQ(h.size(), out.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], out[i]);
}

TEST(BatchStamping, BatchOfOneIsPerEventMode) {
  // Options{1} must take the untouched per-event path: ticket count ==
  // event count, no flush needed, drain never parks.
  Recorder recorder(4, Recorder::Options{1});
  EXPECT_EQ(recorder.stamp_batch(), 1u);
  recorder.on_inv(0, 1, 0, core::OpCode::kRead, 0);
  recorder.on_inv(1, 2, 1, core::OpCode::kRead, 0);
  EventBatch out;
  EXPECT_EQ(recorder.drain(out), 2u);
  EXPECT_EQ(recorder.tickets_issued(), 2u);
  EXPECT_EQ(recorder.stamps_issued(), 2u);
  EXPECT_EQ(recorder.approx_pending(), 0u);
  // Clamping: 0 is nonsense and means "per event".
  Recorder clamped(4, Recorder::Options{0});
  EXPECT_EQ(clamped.stamp_batch(), 1u);
}

TEST(ShardedRecorder, BeginTxIdsAreUniqueAcrossThreads) {
  Recorder recorder(1);
  std::vector<std::vector<core::TxId>> ids(4);
  std::vector<std::thread> workers;
  workers.reserve(ids.size());
  for (auto& out : ids) {
    workers.emplace_back([&recorder, &out] {
      for (int i = 0; i < 1000; ++i) out.push_back(recorder.begin_tx());
    });
  }
  for (auto& w : workers) w.join();
  std::vector<core::TxId> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.front(), 1u);  // 0 is the §5.4 initializer
}

}  // namespace
}  // namespace optm::stm
