// TSortedList: transactional set over STM variables — unit semantics,
// composed multi-operation transactions, and concurrent stress with the
// structural invariant as oracle.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/tlist.hpp"
#include "util/rng.hpp"

namespace optm::stm {
namespace {

class TListTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::uint32_t kCapacity = 32;

  void SetUp() override {
    stm_ = make_stm(GetParam(), TSortedList::vars_needed(kCapacity));
    list_ = std::make_unique<TSortedList>(0, kCapacity);
    sim::ThreadCtx ctx(0);
    (void)atomically(*stm_, ctx, [&](TxHandle& tx) { list_->init(tx); });
  }

  std::unique_ptr<Stm> stm_;
  std::unique_ptr<TSortedList> list_;
};

TEST_P(TListTest, InsertContainsErase) {
  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    EXPECT_TRUE(list_->insert(tx, 5));
    EXPECT_TRUE(list_->insert(tx, 3));
    EXPECT_TRUE(list_->insert(tx, 8));
    EXPECT_FALSE(list_->insert(tx, 5));  // duplicate
    EXPECT_TRUE(list_->contains(tx, 3));
    EXPECT_FALSE(list_->contains(tx, 4));
    EXPECT_TRUE(list_->erase(tx, 3));
    EXPECT_FALSE(list_->erase(tx, 3));
    EXPECT_FALSE(list_->contains(tx, 3));
    EXPECT_EQ(list_->size(tx), 2u);
    EXPECT_TRUE(list_->invariant_holds(tx));
  });
}

TEST_P(TListTest, KeepsSortedOrderAndSum) {
  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    for (std::int64_t v : {9, 1, 7, 3, 5}) EXPECT_TRUE(list_->insert(tx, v));
    EXPECT_EQ(list_->sum(tx), 25);
    EXPECT_TRUE(list_->invariant_holds(tx));
  });
}

TEST_P(TListTest, NodeRecyclingAfterErase) {
  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    // Fill to capacity, drain, refill: the pool must recycle.
    for (std::uint32_t v = 0; v < kCapacity; ++v)
      EXPECT_TRUE(list_->insert(tx, v));
    EXPECT_THROW((void)list_->insert(tx, 1000), std::length_error);
    for (std::uint32_t v = 0; v < kCapacity; ++v)
      EXPECT_TRUE(list_->erase(tx, v));
    EXPECT_EQ(list_->size(tx), 0u);
    for (std::uint32_t v = 100; v < 100 + kCapacity; ++v)
      EXPECT_TRUE(list_->insert(tx, v));
    EXPECT_TRUE(list_->invariant_holds(tx));
  });
}

TEST_P(TListTest, AbortedTransactionLeavesNoTrace) {
  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) { list_->insert(tx, 1); });
  int entries = 0;
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    if (++entries == 1) {
      (void)list_->insert(tx, 2);
      tx.retry();  // abort: the insert must be undone
    }
  });
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    EXPECT_TRUE(list_->contains(tx, 1));
    EXPECT_FALSE(list_->contains(tx, 2));
    EXPECT_TRUE(list_->invariant_holds(tx));
  });
}

TEST_P(TListTest, ComposedOperationsAreAtomic) {
  // Move an element between two "accounts" of the same list atomically:
  // erase + insert in one transaction.
  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) { list_->insert(tx, 10); });
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    EXPECT_TRUE(list_->erase(tx, 10));
    EXPECT_TRUE(list_->insert(tx, 20));
  });
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    EXPECT_FALSE(list_->contains(tx, 10));
    EXPECT_TRUE(list_->contains(tx, 20));
  });
}

TEST_P(TListTest, ConcurrentInsertEraseKeepsInvariant) {
  constexpr std::uint32_t kThreads = 3;
  constexpr std::uint64_t kOpsPerThread = 400;
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::ThreadCtx ctx(t);
      util::Xoshiro256 rng(util::stream_seed(13, t));
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t value = rng.range(0, 15);
        const bool insert = rng.chance(0.55);
        (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
          if (insert) {
            (void)list_->insert(tx, value);
          } else {
            (void)list_->erase(tx, value);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  sim::ThreadCtx ctx(0);
  (void)atomically(*stm_, ctx, [&](TxHandle& tx) {
    EXPECT_TRUE(list_->invariant_holds(tx));
    EXPECT_LE(list_->size(tx), 16u);
  });
}

INSTANTIATE_TEST_SUITE_P(Stms, TListTest,
                         ::testing::Values("tl2", "tiny", "dstm", "astm", "visible",
                                           "mv", "norec", "glock", "twopl"),
                         [](const auto& inf) { return inf.param; });

TEST(TList, VarsNeeded) {
  EXPECT_EQ(TSortedList::vars_needed(0), 2u);
  EXPECT_EQ(TSortedList::vars_needed(10), 22u);
}

}  // namespace
}  // namespace optm::stm
