// Contention-manager policies: decision logic and end-to-end integrity.
#include <gtest/gtest.h>

#include "stm/contention.hpp"
#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

TEST(Cm, AggressiveAlwaysKills) {
  AggressiveCm cm;
  EXPECT_EQ(cm.resolve({}, {}, 0), CmDecision::kAbortOther);
  EXPECT_EQ(cm.resolve({}, {}, 100), CmDecision::kAbortOther);
}

TEST(Cm, PoliteWaitsThenKills) {
  PoliteCm cm(3);
  EXPECT_EQ(cm.resolve({}, {}, 0), CmDecision::kWait);
  EXPECT_EQ(cm.resolve({}, {}, 2), CmDecision::kWait);
  EXPECT_EQ(cm.resolve({}, {}, 3), CmDecision::kAbortOther);
}

TEST(Cm, TimidAlwaysYields) {
  TimidCm cm;
  EXPECT_EQ(cm.resolve({}, {}, 0), CmDecision::kAbortSelf);
}

TEST(Cm, KarmaFavorsMoreWork) {
  KarmaCm cm;
  CmTxView rich{.start_stamp = 1, .ops_executed = 100, .retries = 0};
  CmTxView poor{.start_stamp = 2, .ops_executed = 1, .retries = 0};
  EXPECT_EQ(cm.resolve(rich, poor, 0), CmDecision::kAbortOther);
  EXPECT_EQ(cm.resolve(poor, rich, 0), CmDecision::kWait);
  EXPECT_EQ(cm.resolve(poor, rich, 5), CmDecision::kAbortSelf);
}

TEST(Cm, GreedyFavorsOlder) {
  GreedyCm cm;
  CmTxView old_tx{.start_stamp = 1};
  CmTxView young_tx{.start_stamp = 9};
  EXPECT_EQ(cm.resolve(old_tx, young_tx, 0), CmDecision::kAbortOther);
  EXPECT_EQ(cm.resolve(young_tx, old_tx, 0), CmDecision::kAbortSelf);
}

TEST(Cm, FactoryByName) {
  EXPECT_EQ(make_contention_manager("aggressive")->name(), "aggressive");
  EXPECT_EQ(make_contention_manager("polite")->name(), "polite");
  EXPECT_EQ(make_contention_manager("timid")->name(), "timid");
  EXPECT_EQ(make_contention_manager("karma")->name(), "karma");
  EXPECT_EQ(make_contention_manager("greedy")->name(), "greedy");
  EXPECT_THROW((void)make_contention_manager("nope"), std::invalid_argument);
}

TEST(Cm, StmFactoryParsesCmSuffix) {
  EXPECT_NO_THROW((void)make_stm("dstm/greedy", 4));
  EXPECT_NO_THROW((void)make_stm("visible/karma", 4));
  EXPECT_THROW((void)make_stm("dstm/nope", 4), std::invalid_argument);
  EXPECT_THROW((void)make_stm("nope", 4), std::invalid_argument);
}

class CmIntegrity : public ::testing::TestWithParam<const char*> {};

TEST_P(CmIntegrity, BankConservesUnderEveryPolicy) {
  const auto stm = make_stm(std::string("dstm/") + GetParam(), 16);
  wl::BankParams params;
  params.threads = 3;
  params.accounts = 16;
  params.transfers_per_thread = 400;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Policies, CmIntegrity,
                         ::testing::Values("aggressive", "polite", "karma",
                                           "greedy"));

}  // namespace
}  // namespace optm::stm
