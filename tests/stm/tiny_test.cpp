// TinyStm: the timestamp-extension mechanism, and its place in the
// Theorem 3 trade-off — a progressive TL2 that PAYS the Ω(k) bound where
// TL2 escapes it by aborting.
#include <gtest/gtest.h>

#include "core/opacity.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/tiny.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

TEST(Tiny, ExtensionServesTheReadTl2WouldAbort) {
  // §6.2's schedule, run against both clock-based runtimes: T1 reads y
  // (pinning rv); T2 writes x and commits; T1 reads x.
  TinyStm tiny(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  tiny.begin(p1);
  std::uint64_t y = 0;
  ASSERT_TRUE(tiny.read(p1, 1, y));  // pins rv
  tiny.begin(p2);
  ASSERT_TRUE(tiny.write(p2, 0, 1));
  ASSERT_TRUE(tiny.commit(p2));

  std::uint64_t x = 0;
  EXPECT_TRUE(tiny.read(p1, 0, x));  // EXTENDS instead of aborting
  EXPECT_EQ(x, 1u);                  // single-version: the latest value
  EXPECT_EQ(tiny.extensions(0), 1u);
  EXPECT_TRUE(tiny.commit(p1));

  // TL2, same schedule: the non-progressive abort.
  const auto tl2 = make_stm("tl2", 8);
  sim::ThreadCtx q1(0);
  sim::ThreadCtx q2(1);
  tl2->begin(q1);
  ASSERT_TRUE(tl2->read(q1, 1, y));
  tl2->begin(q2);
  ASSERT_TRUE(tl2->write(q2, 0, 1));
  ASSERT_TRUE(tl2->commit(q2));
  EXPECT_FALSE(tl2->read(q1, 0, x));
}

TEST(Tiny, ExtensionFailsWhenSomethingReadWasOverwritten) {
  // T1 read x itself; T2 overwrites x and commits; T1 reads y (whose
  // version moved? no — y is old) — y is fine; then reads x again? x is
  // its own... Construct the genuine failure: T1 reads x; T2 overwrites
  // x AND y, commits; T1 reads y: y's version > rv, and the extension
  // revalidation finds x overwritten -> abort.
  TinyStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p1, 0, v));  // rs = {x}
  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 10));
  ASSERT_TRUE(stm.write(p2, 1, 20));
  ASSERT_TRUE(stm.commit(p2));
  EXPECT_FALSE(stm.read(p1, 1, v));  // extension fails: x was overwritten
  EXPECT_EQ(stm.extensions(0), 0u);
}

TEST(Tiny, RepeatedExtensionsAcrossManyRivalCommits) {
  TinyStm stm(8);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  stm.begin(reader);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(reader, 7, v));  // pins rv; var 7 never written
  for (std::uint64_t round = 0; round < 5; ++round) {
    stm.begin(writer);
    ASSERT_TRUE(stm.write(writer, static_cast<VarId>(round), round + 100));
    ASSERT_TRUE(stm.commit(writer));
    std::uint64_t out = 0;
    // Each read of the freshly-written variable forces one extension.
    ASSERT_TRUE(stm.read(reader, static_cast<VarId>(round), out));
    EXPECT_EQ(out, round + 100);
  }
  EXPECT_EQ(stm.extensions(0), 5u);
  EXPECT_TRUE(stm.commit(reader));
}

TEST(Tiny, EncounterTimeLockingStopsRivalWriters) {
  TinyStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  ASSERT_TRUE(stm.write(p1, 0, 1));  // encounter-time lock on x
  stm.begin(p2);
  std::uint64_t v = 0;
  EXPECT_FALSE(stm.write(p2, 0, 2));  // suicide against the live holder
  EXPECT_FALSE(stm.read(p2, 0, v));   // (already aborted)
  EXPECT_TRUE(stm.commit(p1));

  stm.begin(p2);
  ASSERT_TRUE(stm.read(p2, 0, v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(stm.commit(p2));
}

TEST(Tiny, AbortRestoresTheOldVersionWord) {
  TinyStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  ASSERT_TRUE(stm.write(p1, 0, 77));
  stm.abort(p1);  // lock released, version restored

  stm.begin(p2);
  std::uint64_t v = 99;
  ASSERT_TRUE(stm.read(p2, 0, v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(stm.commit(p2));
}

TEST(Tiny, FinalReadGrowsLinearlyAndSucceeds) {
  // THE Theorem 3 datapoint: tiny pays Θ(m) on the adversarial final read
  // (the extension revalidates the whole read set) and then SUCCEEDS and
  // commits — progressive, unlike TL2's O(1) abort.
  const auto small_stm = make_stm("tiny", 17);
  const auto small = wl::lower_bound_probe(*small_stm, 16);
  const auto large_stm = make_stm("tiny", 257);
  const auto large = wl::lower_bound_probe(*large_stm, 256);
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(small.reader_committed);
  EXPECT_TRUE(large.reader_committed);
  EXPECT_GE(large.steps_final_read, 8 * small.steps_final_read);
  EXPECT_GE(large.validation_steps_final_read, 250u);
}

TEST(Tiny, PropertyFlagsMatchTheoremPremises) {
  TinyStm stm(1);
  const auto p = stm.properties();
  EXPECT_TRUE(p.invisible_reads);
  EXPECT_TRUE(p.single_version);
  EXPECT_TRUE(p.progressive);
  EXPECT_TRUE(p.opaque);
}

TEST(Tiny, InvisibleReadsDoNoSharedWrites) {
  TinyStm stm(32);
  sim::ThreadCtx ctx(0);
  stm.begin(ctx);
  const std::uint64_t writes_before = ctx.steps.shared_writes();
  for (VarId v = 0; v < 32; ++v) {
    std::uint64_t out = 0;
    ASSERT_TRUE(stm.read(ctx, v, out));
  }
  EXPECT_EQ(ctx.steps.shared_writes(), writes_before);
  EXPECT_TRUE(stm.commit(ctx));
}

TEST(Tiny, RecordedExtensionHeavyRunIsOpaque) {
  // The H4-flavoured schedule with extensions: recorded and judged by
  // Definition 1 directly.
  const auto stm = make_stm("tiny", 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm->begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm->read(p1, 3, v));
  for (int round = 0; round < 3; ++round) {
    stm->begin(p2);
    ASSERT_TRUE(stm->write(p2, static_cast<VarId>(round),
                           static_cast<std::uint64_t>(round) + 50));
    ASSERT_TRUE(stm->commit(p2));
    ASSERT_TRUE(stm->read(p1, static_cast<VarId>(round), v));
  }
  ASSERT_TRUE(stm->commit(p1));

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kYes) << h.str();
}

TEST(Tiny, BankConservesMoney) {
  const auto stm = make_stm("tiny", 16);
  wl::BankParams params;
  params.threads = 4;
  params.accounts = 16;
  params.transfers_per_thread = 300;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total);
}

}  // namespace
}  // namespace optm::stm
