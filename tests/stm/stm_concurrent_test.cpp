// Multi-threaded integrity tests across all STM implementations: money
// conservation, exact counter totals, and workload plumbing.
#include <gtest/gtest.h>

#include <string>

#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

class ConcurrentStm : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrentStm, BankConservesMoney) {
  const auto stm = make_stm(GetParam(), 32);
  wl::BankParams params;
  params.threads = 4;
  params.accounts = 32;
  params.transfers_per_thread = 800;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total)
      << GetParam() << " lost or created money";
  EXPECT_GE(result.run.commits, 4u * 800u);  // every transfer eventually commits
}

TEST_P(ConcurrentStm, BankSingleThreadNoAborts) {
  const auto stm = make_stm(GetParam(), 16);
  wl::BankParams params;
  params.threads = 1;
  params.accounts = 16;
  params.transfers_per_thread = 500;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total);
  EXPECT_EQ(result.run.aborts, 0u) << GetParam();
}

TEST_P(ConcurrentStm, RegisterCounterExact) {
  // Read-inc-write encoding: contended, but atomically() retries until
  // committed, so the final value is exact.
  const auto stm = make_stm(GetParam(), 4);
  wl::CounterParams params;
  params.threads = 4;
  params.increments_per_thread = 300;
  params.semantic = false;
  const wl::CounterResult result = wl::run_counter(*stm, params);
  EXPECT_EQ(result.final_value, 4 * 300) << GetParam();
}

TEST_P(ConcurrentStm, SemanticCounterExactAndAbortFree) {
  // §3.4: the commutative counter never conflicts.
  const auto stm = make_stm(GetParam(), 4);
  wl::CounterParams params;
  params.threads = 4;
  params.increments_per_thread = 300;
  params.semantic = true;
  const wl::CounterResult result = wl::run_counter(*stm, params);
  EXPECT_EQ(result.final_value, 4 * 300) << GetParam();
  EXPECT_EQ(result.run.aborts, 0u)
      << GetParam() << ": commutative increments must not conflict";
}

TEST_P(ConcurrentStm, RandomMixTerminates) {
  const auto stm = make_stm(GetParam(), 8);
  wl::MixParams params;
  params.threads = 4;
  params.vars = 8;
  params.txs_per_thread = 250;
  const wl::RunResult run = wl::run_random_mix(*stm, params);
  EXPECT_GT(run.commits, 0u);
  EXPECT_GT(run.reads, 0u);
  EXPECT_GT(run.steps.total(), 0u);
}

TEST_P(ConcurrentStm, ReadMostlyScanTerminates) {
  const auto stm = make_stm(GetParam(), 64);
  wl::ReadMostlyParams params;
  params.reader_threads = 3;
  params.vars = 64;
  params.scan_length = 16;
  params.scans_per_thread = 150;
  params.writer_txs = 50;
  const wl::RunResult run = wl::run_read_mostly(*stm, params);
  EXPECT_GE(run.commits, 3u * 150u + 50u);  // all scans + writer txs commit
}

INSTANTIATE_TEST_SUITE_P(AllStms, ConcurrentStm,
                         ::testing::Values("tl2", "tiny", "dstm", "astm", "astm-eager",
                                           "astm-lazy", "visible", "mv",
                                           "norec", "weak", "sistm", "glock",
                                           "twopl", "dstm/karma",
                                           "dstm/polite", "visible/greedy",
                                           "astm/karma"),
                         [](const auto& inf) {
                           std::string name = inf.param;
                           for (auto& c : name)
                             if (c == '/' || c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace optm::stm
