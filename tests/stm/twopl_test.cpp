// TwoPlStm: strict two-phase locking semantics, wait-die arbitration, and
// the §3.6 relationship — every recorded 2PL history is RIGOROUS (hence
// opaque), while the optimistic STMs routinely produce histories that are
// opaque yet not rigorous.
#include <gtest/gtest.h>

#include <thread>

#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/rigorous.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/twopl.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

TEST(TwoPl, YoungerWriterDiesAgainstReader) {
  // p1 (older) read-locks x; p2 (younger) requests the write lock -> die.
  TwoPlStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p1, 0, v));
  stm.begin(p2);
  EXPECT_FALSE(stm.write(p2, 0, 7));  // wait-die: younger requester dies
  EXPECT_EQ(p2.stats.aborts, 1u);
  ASSERT_TRUE(stm.write(p1, 1, 1));  // p1 is unaffected
  EXPECT_TRUE(stm.commit(p1));
}

TEST(TwoPl, YoungerReaderDiesAgainstWriter) {
  TwoPlStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  ASSERT_TRUE(stm.write(p1, 0, 5));
  stm.begin(p2);
  std::uint64_t v = 0;
  EXPECT_FALSE(stm.read(p2, 0, v));  // younger reader dies
  EXPECT_TRUE(stm.commit(p1));

  // After p1 releases, a fresh transaction reads the committed value.
  stm.begin(p2);
  ASSERT_TRUE(stm.read(p2, 0, v));
  EXPECT_EQ(v, 5u);
  EXPECT_TRUE(stm.commit(p2));
}

TEST(TwoPl, NoWaitPolicyDiesEvenWhenOlder) {
  // Under kNoWait the OLDER requester also dies instead of spinning —
  // what makes the implementation drivable from one OS thread.
  TwoPlStm stm(8, WaitPolicy::kNoWait);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p2);  // p2 begins FIRST: p2 older than p1
  stm.begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p1, 0, v));  // p1 (younger) read-locks x
  EXPECT_FALSE(stm.write(p2, 0, 9));  // p2 older, would wait; no-wait: die
  EXPECT_TRUE(stm.commit(p1));
}

TEST(TwoPl, ReadersShareTheLock) {
  TwoPlStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  stm.begin(p2);
  std::uint64_t a = 1, b = 2;
  ASSERT_TRUE(stm.read(p1, 0, a));
  ASSERT_TRUE(stm.read(p2, 0, b));  // concurrent shared locks coexist
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0u);
  EXPECT_TRUE(stm.commit(p1));
  EXPECT_TRUE(stm.commit(p2));
}

TEST(TwoPl, UpgradeOwnSharedLock) {
  TwoPlStm stm(8);
  sim::ThreadCtx ctx(0);
  stm.begin(ctx);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(ctx, 0, v));
  ASSERT_TRUE(stm.write(ctx, 0, v + 1));  // read -> write upgrade, same tx
  ASSERT_TRUE(stm.read(ctx, 0, v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(stm.commit(ctx));

  stm.begin(ctx);
  ASSERT_TRUE(stm.read(ctx, 0, v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(stm.commit(ctx));
}

TEST(TwoPl, UpgradeDuelResolvedByWaitDie) {
  // Both hold shared locks on x; the younger upgrader dies, the older one
  // (under no-wait, which cannot spin) also dies — but never both commit
  // conflicting writes.
  TwoPlStm stm(8, WaitPolicy::kNoWait);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  stm.begin(p2);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p1, 0, v));
  ASSERT_TRUE(stm.read(p2, 0, v));
  const bool w1 = stm.write(p1, 0, 100);  // drain blocked by p2's bit: die
  EXPECT_FALSE(w1);
  const bool w2 = stm.write(p2, 0, 200);  // p1's locks were released: wins
  EXPECT_TRUE(w2);
  EXPECT_TRUE(stm.commit(p2));
}

TEST(TwoPl, WritesInvisibleUntilCommit) {
  // Buffered updates: a concurrent reader that sneaks in between abort and
  // re-read sees the OLD value after the writer dies.
  TwoPlStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  ASSERT_TRUE(stm.write(p1, 0, 77));
  stm.abort(p1);  // voluntary abort: nothing was installed

  stm.begin(p2);
  std::uint64_t v = 99;
  ASSERT_TRUE(stm.read(p2, 0, v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(stm.commit(p2));
}

TEST(TwoPl, CommitNeverFails) {
  // Strict 2PL has no commit-time validation: every reachable commit
  // succeeds. Drive 50 transactions with conflicts; every transaction that
  // REACHED tryC commits.
  TwoPlStm stm(4, WaitPolicy::kNoWait);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  std::uint64_t reached = 0, committed = 0;
  for (int i = 0; i < 50; ++i) {
    stm.begin(p1);
    stm.begin(p2);
    std::uint64_t v = 0;
    const bool r1 = stm.read(p1, static_cast<VarId>(i % 4), v);
    const bool w2 = stm.write(p2, static_cast<VarId>(i % 4), 1);
    if (r1) {
      ++reached;
      committed += stm.commit(p1) ? 1u : 0u;
    }
    if (w2) {
      ++reached;
      committed += stm.commit(p2) ? 1u : 0u;
    }
  }
  EXPECT_GT(reached, 0u);
  EXPECT_EQ(committed, reached);
}

TEST(TwoPl, VisibleReadsWriteSharedMemory) {
  TwoPlStm stm(32);
  sim::ThreadCtx ctx(0);
  stm.begin(ctx);
  for (VarId v = 0; v < 32; ++v) {
    std::uint64_t out = 0;
    ASSERT_TRUE(stm.read(ctx, v, out));
  }
  EXPECT_GE(ctx.steps.shared_writes(), 32u);  // one reader-bit RMW per read
  EXPECT_TRUE(stm.commit(ctx));
  const auto p = stm.properties();
  EXPECT_FALSE(p.invisible_reads);
  EXPECT_TRUE(p.progressive);
  EXPECT_TRUE(p.opaque);
}

TEST(TwoPl, PerOperationCostConstantInK) {
  // The visible-read escape from Theorem 3: the adversarial probe's final
  // read costs O(1) regardless of the read-set size.
  const auto small_stm = make_stm("twopl-nowait", 17);
  const auto small = wl::lower_bound_probe(*small_stm, 16);
  const auto large_stm = make_stm("twopl-nowait", 1025);
  const auto large = wl::lower_bound_probe(*large_stm, 1024);
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(large.reader_committed);
  EXPECT_LE(large.steps_final_read, small.steps_final_read + 2);
}

TEST(TwoPl, WaitDiePreventsDeadlockUnderOpposedLockOrders) {
  // The classic deadlock shape: two threads locking {x, y} in opposite
  // orders. Wait-die must keep both making progress to completion.
  TwoPlStm stm(2);
  auto worker = [&stm](std::uint32_t id, VarId first, VarId second) {
    sim::ThreadCtx ctx(id);
    for (int i = 0; i < 300; ++i) {
      (void)atomically(stm, ctx, [&](TxHandle& tx) {
        tx.write(first, tx.read(first) + 1);
        tx.write(second, tx.read(second) + 1);
      });
    }
  };
  std::thread t1(worker, 0, 0, 1);
  std::thread t2(worker, 1, 1, 0);
  t1.join();
  t2.join();

  sim::ThreadCtx audit(0);
  std::uint64_t x = 0, y = 0;
  (void)atomically(stm, audit, [&](TxHandle& tx) {
    x = tx.read(0);
    y = tx.read(1);
  });
  EXPECT_EQ(x, 600u);
  EXPECT_EQ(y, 600u);
}

TEST(TwoPl, BankConservesMoneyUnderContention) {
  const auto stm = make_stm("twopl", 16);
  wl::BankParams params;
  params.threads = 4;
  params.accounts = 16;
  params.transfers_per_thread = 300;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total);
}

// --- recorded histories: rigor and opacity ---------------------------------------

TEST(TwoPl, RecordedDeterministicHistoryIsRigorousAndOpaque) {
  const auto stm = make_stm("twopl-nowait", 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm->begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm->read(p1, 0, v));
  stm->begin(p2);
  (void)stm->write(p2, 0, 1);  // dies (younger, reader holds x)
  ASSERT_TRUE(stm->write(p1, 1, 2));
  ASSERT_TRUE(stm->commit(p1));
  stm->begin(p2);
  ASSERT_TRUE(stm->write(p2, 0, 3));
  ASSERT_TRUE(stm->commit(p2));

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(core::check_rigorous(h).holds);
  EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kYes);
}

TEST(TwoPl, ConcurrentMixIsRigorousAndCertificateOpaque) {
  const auto stm = make_stm("twopl", 6);
  Recorder recorder(6);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 6;
  params.txs_per_thread = 40;
  params.ops_per_tx = 4;
  params.seed = 21;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  const auto rig = core::check_rigorous(h);
  EXPECT_TRUE(rig.holds) << rig.reason;
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << why;
}

TEST(TwoPl, OptimisticStmsAreNotRigorousWhereTwoPlIs) {
  // The §3.6 separation, on live systems: invisible-read STMs let a writer
  // commit between a reader's read and its completion — opaque, NOT
  // rigorous. 2PL forbids the interleaving itself.
  const auto stm = make_stm("dstm", 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm->begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm->read(p1, 0, v));  // invisible read of x
  stm->begin(p2);
  ASSERT_TRUE(stm->write(p2, 0, 1));  // writes x while p1 (a reader) lives
  ASSERT_TRUE(stm->commit(p2));
  (void)stm->commit(p1);  // read-only: commits

  const core::History h = recorder.history();
  EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kYes);
  EXPECT_FALSE(core::check_rigorous(h).holds);  // update overlapped a reader
}

}  // namespace
}  // namespace optm::stm
