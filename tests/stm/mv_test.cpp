// Multi-version specifics: snapshot isolation of read-only transactions
// (the H4 optimization), version-ring eviction, and first-committer-wins
// validation for updates.
#include <gtest/gtest.h>

#include "sim/thread_ctx.hpp"
#include "stm/mv.hpp"

namespace optm::stm {
namespace {

TEST(MvStm, H4ScenarioLongReaderCommits) {
  // §5.2: "Multi-version TMs ... use such optimizations to allow long
  // read-only transactions to commit despite concurrent updates."
  // Faithful to H4's event order: T1's FIRST read precedes T2's commit
  // (the snapshot is pinned at the first access, LSA-style — a snapshot
  // predating the first event would violate the ≺_H-by-first-event rule).
  // T1 reads the old x; T2 commits x:=5, y:=5; T3 reads the NEW y; T1
  // then reads the OLD y and still commits.
  MvStm stm(2, /*depth=*/4);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  sim::ThreadCtx p3(2);

  stm.begin_read_only(p1);
  std::uint64_t x1 = 99, y1 = 99;
  ASSERT_TRUE(stm.read(p1, 0, x1));  // pins T1's snapshot (H4: read1(x,0))
  EXPECT_EQ(x1, 0u);

  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 5));
  ASSERT_TRUE(stm.write(p2, 1, 5));
  ASSERT_TRUE(stm.commit(p2));

  stm.begin(p3);
  std::uint64_t y3 = 0;
  ASSERT_TRUE(stm.read(p3, 1, y3));
  EXPECT_EQ(y3, 5u);  // T3's snapshot postdates T2
  ASSERT_TRUE(stm.commit(p3));

  ASSERT_TRUE(stm.read(p1, 1, y1));
  EXPECT_EQ(y1, 0u);  // the old, CONSISTENT snapshot — after T3 saw new y
  EXPECT_TRUE(stm.commit(p1));
}

TEST(MvStm, SnapshotSurvivesManyUpdatesWithinDepth) {
  MvStm stm(1, /*depth=*/4);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);

  stm.begin_read_only(reader);
  std::uint64_t v = 99;
  ASSERT_TRUE(stm.read(reader, 0, v));  // pins the snapshot
  EXPECT_EQ(v, 0u);
  for (std::uint64_t i = 1; i <= 3; ++i) {  // 3 updates < depth
    stm.begin(writer);
    ASSERT_TRUE(stm.write(writer, 0, i * 10));
    ASSERT_TRUE(stm.commit(writer));
  }
  v = 99;
  ASSERT_TRUE(stm.read(reader, 0, v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(stm.commit(reader));
}

TEST(MvStm, EvictionAbortsOverrunReader) {
  MvStm stm(1, /*depth=*/2);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);

  stm.begin_read_only(reader);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(reader, 0, v));  // pins the snapshot at version 0
  for (std::uint64_t i = 1; i <= 5; ++i) {  // 5 updates > depth
    stm.begin(writer);
    ASSERT_TRUE(stm.write(writer, 0, i * 10));
    ASSERT_TRUE(stm.commit(writer));
  }
  // A RE-read of the same variable finds the snapshot version evicted.
  EXPECT_FALSE(stm.read(reader, 0, v));
}

TEST(MvStm, FirstCommitterWinsForUpdates) {
  MvStm stm(1);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm.begin(p1);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p1, 0, v));

  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 1));
  ASSERT_TRUE(stm.commit(p2));

  ASSERT_TRUE(stm.write(p1, 0, 2));
  EXPECT_FALSE(stm.commit(p1));  // read version no longer newest
}

TEST(MvStm, DisjointUpdatesBothCommit) {
  MvStm stm(2);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm.begin(p1);
  stm.begin(p2);
  ASSERT_TRUE(stm.write(p1, 0, 1));
  ASSERT_TRUE(stm.write(p2, 1, 2));
  EXPECT_TRUE(stm.commit(p1));
  EXPECT_TRUE(stm.commit(p2));
}

TEST(MvStm, WriteInReadOnlyModeAborts) {
  MvStm stm(1);
  sim::ThreadCtx ctx(0);
  stm.begin_read_only(ctx);
  EXPECT_FALSE(stm.write(ctx, 0, 1));
}

TEST(MvStm, UpdateTransactionsUseFirstAccessSnapshot) {
  // Even update transactions read from their (first-access) snapshot:
  // their reads are consistent by construction (JVSTM-style).
  MvStm stm(2);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm.begin(p1);
  std::uint64_t x = 99, y = 99;
  ASSERT_TRUE(stm.read(p1, 0, x));  // pins snapshot S
  EXPECT_EQ(x, 0u);

  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 1));
  ASSERT_TRUE(stm.write(p2, 1, 2));
  ASSERT_TRUE(stm.commit(p2));

  ASSERT_TRUE(stm.read(p1, 1, y));
  EXPECT_EQ(y, 0u);  // never the torn (0, 2) pair
}

TEST(MvStm, DepthAccessor) {
  MvStm stm(1, 16);
  EXPECT_EQ(stm.depth(), 16u);
  MvStm stm0(1, 0);
  EXPECT_EQ(stm0.depth(), 1u);  // clamped
}

}  // namespace
}  // namespace optm::stm
