// Abort-path stamp soundness for the ownership-record runtimes: when a
// dstm/astm transaction loses an orec mid-flight (a contention-manager
// kill followed by a steal), its recorded events — stamped reads included
// — must never make a committed read validate against the stolen version.
//
// The mechanism under test (the orec-stamp story, stm/dstm.hpp): stealing
// requires the victim's status word to read kAborted, so the victim's C
// is never recorded and its buffered writes never become a version word.
// Value-unique writes make the check airtight on the recording itself: a
// committed transaction's read may only ever return a value written by a
// COMMITTED transaction (or the initializer), and the kStampedRead
// certificate — monitor, sharded driver and the exact checker agreeing
// via core::check_conformance — must certify the window-free recording.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/conformance.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/rng.hpp"

namespace optm::stm {
namespace {

/// Every committed transaction's non-local read must resolve to the
/// initializer or a committed writer — an aborted victim's buffered value
/// leaking into a committed read set would surface here by value
/// uniqueness. Returns the number of committed reads checked.
std::size_t assert_no_stolen_reads(const core::History& h,
                                   const std::string& label) {
  std::map<std::uint64_t, core::TxId> writer_of;  // value -> writing tx
  std::set<core::TxId> committed;
  for (const core::Event& e : h.events()) {
    if (e.kind == core::EventKind::kResponse &&
        e.op == core::OpCode::kWrite) {
      writer_of[e.arg] = e.tx;
    } else if (e.kind == core::EventKind::kCommit) {
      committed.insert(e.tx);
    }
  }
  std::size_t checked = 0;
  for (const core::Event& e : h.events()) {
    if (e.kind != core::EventKind::kResponse ||
        e.op != core::OpCode::kRead || committed.count(e.tx) == 0) {
      continue;
    }
    if (e.ret == 0) continue;  // the initializer's value
    ++checked;
    const auto w = writer_of.find(e.ret);
    EXPECT_TRUE(w != writer_of.end())
        << label << ": committed T" << e.tx << " read unwritten value "
        << e.ret << "\n" << h.str();
    if (w == writer_of.end()) continue;
    EXPECT_TRUE(committed.count(w->second) != 0)
        << label << ": committed T" << e.tx << " read " << e.ret
        << " buffered by ABORTED T" << w->second
        << " — a stolen orec's write leaked\n" << h.str();
  }
  return checked;
}

// The canonical steal, interleaved by hand: P1 acquires x at its write
// (dstm and astm-eager acquire eagerly), P2's conflicting write duels
// through the aggressive contention manager, kills P1 and steals the
// orec, then commits. P1 is doomed from the kill onward; the reader must
// see P2's value, never P1's buffered one.
class OrecStealHandBuilt : public ::testing::TestWithParam<std::string> {};

TEST_P(OrecStealHandBuilt, StolenOrecNeverValidatesForTheVictim) {
  const auto stm = make_stm(GetParam(), 4);
  ASSERT_TRUE(stm->set_window_free(true)) << GetParam();
  Recorder recorder(4);
  stm->set_recorder(&recorder);

  sim::ThreadCtx victim(0);
  sim::ThreadCtx rival(1);
  sim::ThreadCtx reader(2);

  stm->begin(victim);
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(victim, 1, out));     // a stamped read pre-kill
  ASSERT_TRUE(stm->write(victim, 0, 7));      // acquires x0's orec

  stm->begin(rival);
  ASSERT_TRUE(stm->write(rival, 0, 9));       // kill + steal via the CM
  ASSERT_TRUE(stm->commit(rival));

  // The victim lost its orec mid-flight: every further operation fails
  // (dstm notices through the validation status check; astm at commit).
  const bool survived_read = stm->read(victim, 2, out);
  if (survived_read) {
    EXPECT_FALSE(stm->commit(victim));
  }

  stm->begin(reader);
  ASSERT_TRUE(stm->read(reader, 0, out));
  EXPECT_EQ(out, 9u) << "the stolen orec's buffered value leaked";
  ASSERT_TRUE(stm->commit(reader));

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(h.is_committed(2));             // the rival
  EXPECT_TRUE(h.is_aborted(1));               // the victim
  EXPECT_TRUE(h.is_forcefully_aborted(1));
  EXPECT_GT(assert_no_stolen_reads(h, GetParam()), 0u);

  const core::ConformanceReport report = core::check_conformance(h);
  ASSERT_TRUE(report.ok) << report.divergence << "\n" << h.str();
  EXPECT_TRUE(report.certified(core::VersionOrderPolicy::kStampedRead))
      << h.str();
  EXPECT_EQ(report.exact, core::Verdict::kYes) << report.exact_reason;
}

INSTANTIATE_TEST_SUITE_P(Stms, OrecStealHandBuilt,
                         ::testing::Values("dstm", "astm-eager"),
                         [](const auto& inf) {
                           std::string name = inf.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// Fuzzed steal schedules: write-heavy deterministic interleavings where
// the aggressive CM keeps killing live owners mid-flight. Across the seed
// sweep the schedules must produce a healthy number of mid-flight kills
// of transactions that had already acquired orecs (the steal precursors),
// and every window-free recording must conform and certify under
// kStampedRead with the exact checker agreeing.
class OrecStealFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(OrecStealFuzz, KilledOwnersNeverLeakIntoCommittedReads) {
  constexpr std::uint32_t kProcs = 3;
  constexpr std::uint32_t kVars = 3;
  std::size_t owners_killed = 0;
  std::size_t committed_reads = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto stm = make_stm(GetParam(), kVars);
    ASSERT_TRUE(stm->set_window_free(true)) << GetParam();
    Recorder recorder(kVars);
    stm->set_recorder(&recorder);

    struct Proc {
      std::unique_ptr<sim::ThreadCtx> ctx;
      std::uint32_t txs_done = 0;
      std::uint32_t ops_left = 0;
      bool in_tx = false;
      bool wrote = false;  // acquired at least one orec this transaction
    };
    std::vector<Proc> procs(kProcs);
    for (std::uint32_t i = 0; i < kProcs; ++i) {
      procs[i].ctx = std::make_unique<sim::ThreadCtx>(i);
    }
    util::Xoshiro256 rng(seed);
    std::uint64_t unique = 0;
    for (;;) {
      std::vector<std::uint32_t> ready;
      for (std::uint32_t i = 0; i < kProcs; ++i) {
        if (procs[i].in_tx || procs[i].txs_done < 3) ready.push_back(i);
      }
      if (ready.empty()) break;
      Proc& p = procs[ready[rng.below(ready.size())]];
      sim::ThreadCtx& ctx = *p.ctx;
      if (!p.in_tx) {
        stm->begin(ctx);
        p.in_tx = true;
        p.wrote = false;
        p.ops_left = 1 + static_cast<std::uint32_t>(rng.below(3));
        continue;
      }
      if (p.ops_left > 0) {
        --p.ops_left;
        const auto var = static_cast<VarId>(rng.below(kVars));
        bool ok = false;
        if (rng.chance(0.7)) {  // write-heavy: force acquisition duels
          ok = stm->write(ctx, var, 1000 + ++unique);
          if (ok) p.wrote = true;
        } else {
          std::uint64_t out = 0;
          ok = stm->read(ctx, var, out);
        }
        if (!ok) {
          // Killed mid-flight; with orecs already acquired this is the
          // steal scenario the test is about.
          if (p.wrote) ++owners_killed;
          p.in_tx = false;
          ++p.txs_done;
        }
        continue;
      }
      (void)stm->commit(ctx);
      p.in_tx = false;
      ++p.txs_done;
    }

    const core::History h = recorder.history();
    std::string why;
    ASSERT_TRUE(h.well_formed(&why)) << GetParam() << " seed " << seed
                                     << ": " << why;
    committed_reads += assert_no_stolen_reads(
        h, GetParam() + std::string(" seed ") + std::to_string(seed));

    const core::ConformanceReport report = core::check_conformance(h);
    ASSERT_TRUE(report.ok) << GetParam() << " seed " << seed << ": "
                           << report.divergence << "\n" << h.str();
    EXPECT_TRUE(report.certified(core::VersionOrderPolicy::kStampedRead))
        << GetParam() << " seed " << seed << "\n" << h.str();
    if (report.exact != core::Verdict::kUnknown) {
      EXPECT_EQ(report.exact, core::Verdict::kYes)
          << GetParam() << " seed " << seed << ": " << report.exact_reason;
    }
  }
  // The sweep must actually exercise the path it claims to test (the
  // seeded schedules produce ~18 mid-flight owner kills per runtime).
  EXPECT_GE(owners_killed, 15u) << GetParam();
  EXPECT_GE(committed_reads, 30u) << GetParam();
}

// Eager acquirers only: mid-flight kills need a live owner for the rival
// to duel, and in deterministic single-thread driving a lazy acquirer
// holds orecs only inside commit() — which runs to completion atomically
// — so it can never be stolen from mid-flight. (Lazy and adaptive astm
// still record and certify these schedules; the conformance equivalence
// suite covers them.)
INSTANTIATE_TEST_SUITE_P(Stms, OrecStealFuzz,
                         ::testing::Values("dstm", "astm-eager"),
                         [](const auto& inf) {
                           std::string name = inf.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace optm::stm
