// SiStm: snapshot isolation as the paper's §1 example of trading opacity
// for performance — consistent live snapshots (no §2 zombies, unlike
// WeakStm), first-committer-wins writes, and the write-skew anomaly that
// costs it serializability of the committed part.
#include <gtest/gtest.h>

#include "core/opacity.hpp"
#include "core/phenomena.hpp"
#include "core/serializability.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sistm.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

TEST(SiStm, SnapshotReadsIgnoreLaterCommits) {
  SiStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  std::uint64_t v = 99;
  ASSERT_TRUE(stm.read(p1, 1, v));  // pins the snapshot (first access)
  stm.begin(p2);
  ASSERT_TRUE(stm.write(p2, 0, 7));
  ASSERT_TRUE(stm.commit(p2));
  ASSERT_TRUE(stm.read(p1, 0, v));
  EXPECT_EQ(v, 0u);  // the snapshot version, not p2's
  EXPECT_TRUE(stm.commit(p1));  // read-only: always commits
}

TEST(SiStm, SnapshotIsStableAcrossManyConcurrentCommits) {
  SiStm stm(4, /*depth=*/8);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  stm.begin(reader);
  std::uint64_t first = 1;
  ASSERT_TRUE(stm.read(reader, 0, first));
  for (int i = 0; i < 5; ++i) {
    stm.begin(writer);
    ASSERT_TRUE(stm.write(writer, 0, 100 + static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(stm.write(writer, 1, 200 + static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(stm.commit(writer));
  }
  std::uint64_t again = 1, other = 1;
  ASSERT_TRUE(stm.read(reader, 0, again));
  ASSERT_TRUE(stm.read(reader, 1, other));
  EXPECT_EQ(again, first);  // same snapshot, every time
  EXPECT_EQ(other, 0u);
  EXPECT_TRUE(stm.commit(reader));
}

TEST(SiStm, FirstCommitterWinsOnWriteWriteConflict) {
  SiStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  stm.begin(p2);
  // Writes pin the snapshots: both predate either commit.
  ASSERT_TRUE(stm.write(p1, 0, 100));
  ASSERT_TRUE(stm.write(p2, 0, 200));
  EXPECT_TRUE(stm.commit(p1));   // first committer
  EXPECT_FALSE(stm.commit(p2));  // rival committed past p2's snapshot

  sim::ThreadCtx p3(2);
  stm.begin(p3);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(p3, 0, v));
  EXPECT_EQ(v, 100u);
  ASSERT_TRUE(stm.commit(p3));
}

TEST(SiStm, LostUpdatePrevented) {
  // Both read x = 0 and write x + 1: overlapping write sets, so FCW kills
  // the second — SI does NOT admit lost updates.
  SiStm stm(8);
  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);
  stm.begin(p1);
  stm.begin(p2);
  std::uint64_t a = 0, b = 0;
  ASSERT_TRUE(stm.read(p1, 0, a));
  ASSERT_TRUE(stm.read(p2, 0, b));
  ASSERT_TRUE(stm.write(p1, 0, a + 1));
  ASSERT_TRUE(stm.write(p2, 0, b + 1));
  EXPECT_TRUE(stm.commit(p1));
  EXPECT_FALSE(stm.commit(p2));
}

TEST(SiStm, WriteSkewAdmitted) {
  // The canonical anomaly: invariant "x + y >= 1", both transactions check
  // it against the same snapshot and each zeroes a DIFFERENT variable.
  // Disjoint write sets -> FCW passes both -> the invariant breaks.
  SiStm stm(8);
  Recorder recorder(8);
  stm.set_recorder(&recorder);

  sim::ThreadCtx p0(0);
  stm.begin(p0);
  ASSERT_TRUE(stm.write(p0, 0, 1));  // x = 1
  ASSERT_TRUE(stm.write(p0, 1, 1));  // y = 1
  ASSERT_TRUE(stm.commit(p0));

  sim::ThreadCtx p1(1);
  sim::ThreadCtx p2(2);
  stm.begin(p1);
  stm.begin(p2);
  std::uint64_t x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  ASSERT_TRUE(stm.read(p1, 0, x1));
  ASSERT_TRUE(stm.read(p1, 1, y1));
  ASSERT_TRUE(stm.read(p2, 0, x2));
  ASSERT_TRUE(stm.read(p2, 1, y2));
  ASSERT_EQ(x1 + y1, 2u);
  ASSERT_EQ(x2 + y2, 2u);
  ASSERT_TRUE(stm.write(p1, 0, 0));  // p1: zero x (y keeps invariant alive)
  ASSERT_TRUE(stm.write(p2, 1, 0));  // p2: zero y (x keeps invariant alive)
  EXPECT_TRUE(stm.commit(p1));
  EXPECT_TRUE(stm.commit(p2));  // BOTH commit: snapshot isolation

  sim::ThreadCtx p3(3);
  stm.begin(p3);
  std::uint64_t x = 9, y = 9;
  ASSERT_TRUE(stm.read(p3, 0, x));
  ASSERT_TRUE(stm.read(p3, 1, y));
  ASSERT_TRUE(stm.commit(p3));
  EXPECT_EQ(x + y, 0u);  // invariant broken

  // The formal account of what just happened:
  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  // (a) committed transactions are NOT serializable,
  EXPECT_EQ(core::check_serializability(h).verdict, core::Verdict::kNo);
  // (b) hence the history is not opaque,
  EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kNo);
  // (c) yet NO transaction ever observed an inconsistent snapshot — the
  //     §2 zombie hazards cannot arise (contrast WeakStm),
  EXPECT_FALSE(core::find_inconsistent_snapshot(h).has_value());
  // (d) and the detector names the skewed pair.
  const auto skew = core::find_write_skew(h);
  ASSERT_TRUE(skew.has_value());
  EXPECT_TRUE((skew->tx_a == 2 && skew->tx_b == 3) ||
              (skew->tx_a == 3 && skew->tx_b == 2))
      << skew->explanation;
}

TEST(SiStm, ReadOnlyNeverAbortsUnderContention) {
  SiStm stm(4, /*depth=*/64);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  for (int round = 0; round < 20; ++round) {
    stm.begin(reader);
    std::uint64_t x = 0;
    ASSERT_TRUE(stm.read(reader, 0, x));
    stm.begin(writer);
    ASSERT_TRUE(stm.write(writer, 0, 1000 + static_cast<std::uint64_t>(round)));
    ASSERT_TRUE(stm.commit(writer));
    std::uint64_t y = 0;
    ASSERT_TRUE(stm.read(reader, 1, y));
    ASSERT_TRUE(stm.commit(reader));
  }
  EXPECT_EQ(reader.stats.aborts, 0u);
}

TEST(SiStm, EvictionFromBoundedRingAbortsOldReader) {
  SiStm stm(4, /*depth=*/1);  // single retained version
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  stm.begin(reader);
  std::uint64_t v = 0;
  ASSERT_TRUE(stm.read(reader, 1, v));  // pins the snapshot
  stm.begin(writer);
  ASSERT_TRUE(stm.write(writer, 0, 42));
  ASSERT_TRUE(stm.commit(writer));  // evicts the initial version of x0
  EXPECT_FALSE(stm.read(reader, 0, v));  // snapshot version gone: abort
}

TEST(SiStm, RecordedMixHasNoInconsistentSnapshotsEver) {
  // SI's defining strength on a real concurrent run: live transactions
  // only ever see consistent states, even though opacity does not hold in
  // general.
  const auto stm = make_stm("sistm", 6);
  Recorder recorder(6);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 4;
  params.vars = 6;
  params.txs_per_thread = 50;
  params.write_ratio = 0.5;
  params.seed = 11;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  const auto snapshot = core::find_inconsistent_snapshot(h);
  EXPECT_FALSE(snapshot.has_value()) << snapshot->explanation;
  const auto dirty = core::find_dirty_read(h);
  EXPECT_FALSE(dirty.has_value());
}

TEST(SiStm, BankConservesMoney) {
  // Transfers write BOTH accounts, so every conflicting pair overlaps on a
  // write: FCW serializes them and conservation survives even under SI.
  const auto stm = make_stm("sistm", 16);
  wl::BankParams params;
  params.threads = 4;
  params.accounts = 16;
  params.transfers_per_thread = 300;
  const wl::BankResult result = wl::run_bank(*stm, params);
  EXPECT_EQ(result.final_total, result.expected_total);
}

TEST(SiStm, PropertyFlagsDeclareTheTrade) {
  SiStm stm(1);
  const auto p = stm.properties();
  EXPECT_TRUE(p.invisible_reads);
  EXPECT_FALSE(p.single_version);
  EXPECT_FALSE(p.progressive);  // FCW aborts against already-committed rivals
  EXPECT_FALSE(p.opaque);       // write skew
}

}  // namespace
}  // namespace optm::stm
