// The loop the paper's whole framework enables: run a real STM, record the
// transactional events, and machine-check the resulting history against
// the formal criteria.
//
//  * Every opaque STM (tl2, tiny, dstm, astm, visible, mv, norec) must produce
//    certificate-verifiable histories (Theorem 2, polynomial check) on
//    concurrent workloads, and definitionally opaque histories on small
//    deterministic ones.
//  * WeakStm must produce (a) committed parts that are strictly
//    serializable, and (b) detectable opacity violations — the §2 zombies —
//    under the adversarial interleaving.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/phenomena.hpp"
#include "core/one_copy.hpp"
#include "core/serializability.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

class RecordedOpaqueStm : public ::testing::TestWithParam<std::string> {};

TEST_P(RecordedOpaqueStm, DeterministicInterleaveIsDefinitionallyOpaque) {
  // Two processes, interleaved by hand: T1 reads x, T2 commits x:=1 y:=2,
  // T1 reads y, T1 commits (or aborts). Whatever the STM decided, the
  // recorded history must be opaque.
  const auto stm = make_stm(GetParam(), 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);

  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm->begin(p1);
  std::uint64_t x1 = 0;
  const bool r1 = stm->read(p1, 0, x1);

  stm->begin(p2);
  ASSERT_TRUE(stm->write(p2, 0, 1));
  ASSERT_TRUE(stm->write(p2, 1, 2));
  ASSERT_TRUE(stm->commit(p2));

  if (r1) {
    std::uint64_t y1 = 0;
    if (stm->read(p1, 1, y1)) {
      (void)stm->commit(p1);
    }
  }

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  const auto result = core::check_opacity(h);
  EXPECT_EQ(result.verdict, core::Verdict::kYes)
      << GetParam() << " produced a non-opaque history:\n"
      << h.str();
}

TEST_P(RecordedOpaqueStm, ConcurrentMixPassesCertificate) {
  const auto stm = make_stm(GetParam(), 6);
  Recorder recorder(6);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 6;
  params.txs_per_thread = 60;
  params.ops_per_tx = 4;
  params.seed = 99;
  const wl::RunResult run = wl::run_random_mix(*stm, params);
  EXPECT_GT(run.commits, 0u);

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  ASSERT_TRUE(h.consistent(&why)) << GetParam() << ": " << why;
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << GetParam() << " failed opacity certificate: " << why;
}

TEST_P(RecordedOpaqueStm, HighContentionCertificate) {
  // Two variables, many writers: maximal conflict density.
  const auto stm = make_stm(GetParam(), 2);
  Recorder recorder(2);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 4;
  params.vars = 2;
  params.txs_per_thread = 40;
  params.ops_per_tx = 3;
  params.write_ratio = 0.7;
  params.seed = 3;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << GetParam() << ": " << why;
}

TEST_P(RecordedOpaqueStm, NoInconsistentSnapshotsEver) {
  const auto stm = make_stm(GetParam(), 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 4;
  params.txs_per_thread = 50;
  params.write_ratio = 0.6;
  params.seed = 17;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  const auto snapshot = core::find_inconsistent_snapshot(h);
  EXPECT_FALSE(snapshot.has_value())
      << GetParam() << ": " << snapshot->explanation;
}

INSTANTIATE_TEST_SUITE_P(OpaqueStms, RecordedOpaqueStm,
                         ::testing::Values("tl2", "tiny", "dstm", "astm",
                                           "visible", "mv", "norec"),
                         [](const auto& inf) { return inf.param; });

// --- the weak STM: §2 made executable -----------------------------------------

/// Drive WeakStm through the §2 interleaving: T1 reads x before, and y
/// after, T2's commit of {x:=1, y:=2}.
core::History weak_zombie_history(Recorder& recorder) {
  const auto stm = make_stm("weak", 2);
  stm->set_recorder(&recorder);

  sim::ThreadCtx p1(0);
  sim::ThreadCtx p2(1);

  stm->begin(p1);
  std::uint64_t x = 99;
  EXPECT_TRUE(stm->read(p1, 0, x));
  EXPECT_EQ(x, 0u);  // old x

  stm->begin(p2);
  EXPECT_TRUE(stm->write(p2, 0, 1));
  EXPECT_TRUE(stm->write(p2, 1, 2));
  EXPECT_TRUE(stm->commit(p2));

  std::uint64_t y = 99;
  EXPECT_TRUE(stm->read(p1, 1, y));
  EXPECT_EQ(y, 2u);  // new y: the torn snapshot, observed by live T1

  (void)stm->commit(p1);  // commit-time validation will abort T1
  return recorder.history();
}

TEST(RecordedWeakStm, ZombieObservesTornSnapshot) {
  Recorder recorder(2);
  const core::History h = weak_zombie_history(recorder);
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;

  // The recorded history is NOT opaque...
  EXPECT_EQ(core::check_opacity(h).verdict, core::Verdict::kNo);
  // ... the detector pinpoints the zombie ...
  const auto snapshot = core::find_inconsistent_snapshot(h);
  ASSERT_TRUE(snapshot.has_value());
  // ... and yet the committed part is perfectly strictly serializable,
  // which is why no §3 criterion catches this (the paper's central point).
  EXPECT_EQ(core::check_strict_serializability(h).verdict, core::Verdict::kYes);
}

TEST(RecordedWeakStm, CommitTimeValidationAbortsTheZombie) {
  Recorder recorder(2);
  const core::History h = weak_zombie_history(recorder);
  // T1 recorded first (tx id 1): it must have been aborted at commit.
  EXPECT_TRUE(h.is_aborted(1));
  EXPECT_TRUE(h.is_forcefully_aborted(1));
  EXPECT_TRUE(h.is_committed(2));
}

TEST(RecordedWeakStm, ConcurrentCommittedPartStaysSerializable) {
  const auto stm = make_stm("weak", 4);
  Recorder recorder(4);
  stm->set_recorder(&recorder);

  wl::MixParams params;
  params.threads = 3;
  params.vars = 4;
  params.txs_per_thread = 30;
  params.write_ratio = 0.6;
  params.seed = 5;
  (void)wl::run_random_mix(*stm, params);

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;
  // Committed transactions only: 1-copy/serializability machinery applies.
  const auto one_copy = core::verify_one_copy_certificate(
      h, recorder.certificate_order(), &why);
  EXPECT_TRUE(one_copy) << "weak committed part not serializable: " << why;
}

}  // namespace
}  // namespace optm::stm
