// Typed transactional variables and the §3.4 semantic counter.
#include <gtest/gtest.h>

#include "stm/factory.hpp"
#include "stm/tvar.hpp"

namespace optm::stm {
namespace {

TEST(TVar, IntegerRoundTrip) {
  const auto stm = make_stm("tl2", 4);
  sim::ThreadCtx ctx(0);
  TVar<std::int32_t> v(0);
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { v.write(tx, -12345); });
  std::int32_t got = 0;
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { got = v.read(tx); });
  EXPECT_EQ(got, -12345);
}

TEST(TVar, DoubleRoundTrip) {
  const auto stm = make_stm("tl2", 4);
  sim::ThreadCtx ctx(0);
  TVar<double> v(1);
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { v.write(tx, 3.25); });
  double got = 0;
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { got = v.read(tx); });
  EXPECT_DOUBLE_EQ(got, 3.25);
}

TEST(TVar, EnumRoundTrip) {
  enum class Color : std::uint8_t { kRed = 1, kBlue = 2 };
  const auto stm = make_stm("dstm", 4);
  sim::ThreadCtx ctx(0);
  TVar<Color> v(2);
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { v.write(tx, Color::kBlue); });
  Color got = Color::kRed;
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { got = v.read(tx); });
  EXPECT_EQ(got, Color::kBlue);
}

TEST(TVar, SmallStructRoundTrip) {
  struct Point {
    std::int16_t x;
    std::int16_t y;
  };
  const auto stm = make_stm("mv", 4);
  sim::ThreadCtx ctx(0);
  TVar<Point> v(3);
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { v.write(tx, {-7, 42}); });
  Point got{0, 0};
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { got = v.read(tx); });
  EXPECT_EQ(got.x, -7);
  EXPECT_EQ(got.y, 42);
}

TEST(TCounter, IncrementAndApply) {
  TCounter counter;
  sim::ThreadCtx ctx(0);
  counter.inc(ctx);
  counter.inc(ctx, 4);
  EXPECT_EQ(counter.value(), 0);  // buffered, not yet applied
  counter.apply_deltas(ctx);
  EXPECT_EQ(counter.value(), 5);
}

TEST(TCounter, DiscardDropsBufferedDelta) {
  TCounter counter;
  sim::ThreadCtx ctx(0);
  counter.inc(ctx, 10);
  counter.discard(ctx);
  counter.apply_deltas(ctx);
  EXPECT_EQ(counter.value(), 0);
}

TEST(TCounter, PerProcessBuffersIndependent) {
  TCounter counter;
  sim::ThreadCtx a(0);
  sim::ThreadCtx b(1);
  counter.inc(a, 1);
  counter.inc(b, 2);
  counter.apply_deltas(a);
  EXPECT_EQ(counter.value(), 1);
  counter.discard(b);
  counter.apply_deltas(b);
  EXPECT_EQ(counter.value(), 1);
}

TEST(TCounter, AtomicallyWithCounterAppliesOnCommitOnly) {
  const auto stm = make_stm("tl2", 2);
  sim::ThreadCtx ctx(0);
  TCounter counter;
  const auto attempts = atomically_with_counter(
      *stm, ctx, counter, [&ctx](TxHandle&, TCounter& c) { c.inc(ctx, 3); });
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(counter.value(), 3);
}

TEST(TCounter, AtomicallyWithCounterDiscardsOnVoluntaryRetry) {
  const auto stm = make_stm("tl2", 2);
  sim::ThreadCtx ctx(0);
  TCounter counter;
  int entry = 0;
  (void)atomically_with_counter(*stm, ctx, counter,
                                [&](TxHandle& tx, TCounter& c) {
                                  c.inc(ctx, 100);
                                  if (++entry == 1) tx.retry();
                                });
  EXPECT_EQ(counter.value(), 100);  // applied once, not twice
}

TEST(RegisterIncrement, ReadsThenWrites) {
  const auto stm = make_stm("tl2", 2);
  sim::ThreadCtx ctx(0);
  for (int i = 0; i < 5; ++i) {
    (void)atomically(*stm, ctx,
                     [](TxHandle& tx) { register_increment(tx, 0); });
  }
  std::uint64_t v = 0;
  (void)atomically(*stm, ctx, [&](TxHandle& tx) { v = tx.read(0); });
  EXPECT_EQ(v, 5u);
}

}  // namespace
}  // namespace optm::stm
