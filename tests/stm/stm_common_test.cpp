// Single-process semantics shared by every STM implementation, as a
// parameterized suite: the same behavioural contract, all runtimes.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/tvar.hpp"

namespace optm::stm {
namespace {

class StmContract : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] std::unique_ptr<Stm> make(std::size_t vars = 16) const {
    return make_stm(GetParam(), vars);
  }
};

TEST_P(StmContract, PropertiesDeclared) {
  const auto stm = make();
  const StmProperties p = stm->properties();
  EXPECT_FALSE(p.name.empty());
  EXPECT_EQ(stm->num_vars(), 16u);
}

TEST_P(StmContract, FreshVariablesReadZero) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  for (VarId v = 0; v < 16; ++v) {
    std::uint64_t out = 99;
    ASSERT_TRUE(stm->read(ctx, v, out));
    EXPECT_EQ(out, 0u);
  }
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, ReadYourOwnWrite) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  ASSERT_TRUE(stm->write(ctx, 3, 77));
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(ctx, 3, out));
  EXPECT_EQ(out, 77u);
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, SecondWriteWins) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  ASSERT_TRUE(stm->write(ctx, 3, 1));
  ASSERT_TRUE(stm->write(ctx, 3, 2));
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(ctx, 3, out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(stm->commit(ctx));
  stm->begin(ctx);
  ASSERT_TRUE(stm->read(ctx, 3, out));
  EXPECT_EQ(out, 2u);
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, CommittedWritesPersist) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  ASSERT_TRUE(stm->write(ctx, 0, 11));
  ASSERT_TRUE(stm->write(ctx, 1, 22));
  ASSERT_TRUE(stm->commit(ctx));

  stm->begin(ctx);
  std::uint64_t a = 0, b = 0;
  ASSERT_TRUE(stm->read(ctx, 0, a));
  ASSERT_TRUE(stm->read(ctx, 1, b));
  EXPECT_EQ(a, 11u);
  EXPECT_EQ(b, 22u);
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, VoluntaryAbortDiscardsWrites) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  ASSERT_TRUE(stm->write(ctx, 0, 123));
  stm->abort(ctx);

  stm->begin(ctx);
  std::uint64_t out = 99;
  ASSERT_TRUE(stm->read(ctx, 0, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, OperationsAfterAbortFail) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  stm->abort(ctx);
  std::uint64_t out = 0;
  EXPECT_FALSE(stm->read(ctx, 0, out));
  EXPECT_FALSE(stm->write(ctx, 0, 1));
  EXPECT_FALSE(stm->commit(ctx));
}

TEST_P(StmContract, SequentialTransactionsFromSameProcess) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    stm->begin(ctx);
    std::uint64_t out = 0;
    ASSERT_TRUE(stm->read(ctx, 5, out));
    EXPECT_EQ(out, i - 1);
    ASSERT_TRUE(stm->write(ctx, 5, i));
    ASSERT_TRUE(stm->commit(ctx));
  }
  EXPECT_EQ(ctx.stats.commits, 20u);
  EXPECT_EQ(ctx.stats.aborts, 0u);
}

TEST_P(StmContract, ReadOnlyTransactionCommits) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(ctx, 7, out));
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, AtomicallyRetriesAndSucceeds) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  const std::uint64_t attempts = atomically(*stm, ctx, [](TxHandle& tx) {
    tx.write(2, tx.read(2) + 5);
  });
  EXPECT_EQ(attempts, 1u);
  stm->begin(ctx);
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(ctx, 2, out));
  EXPECT_EQ(out, 5u);
  EXPECT_TRUE(stm->commit(ctx));
}

TEST_P(StmContract, TxHandleRetryAborts) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  int entries = 0;
  const std::uint64_t attempts = atomically(
      *stm, ctx,
      [&entries](TxHandle& tx) {
        ++entries;
        if (entries == 1) tx.retry();  // voluntary abort, then rerun
        tx.write(0, 1);
      },
      /*max_attempts=*/5);
  EXPECT_EQ(attempts, 2u);
  EXPECT_EQ(entries, 2);
}

TEST_P(StmContract, StatsCountBeginsCommitsReads) {
  const auto stm = make();
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(ctx, 0, out));
  ASSERT_TRUE(stm->write(ctx, 1, 9));
  ASSERT_TRUE(stm->commit(ctx));
  EXPECT_EQ(ctx.stats.begins, 1u);
  EXPECT_EQ(ctx.stats.commits, 1u);
  EXPECT_EQ(ctx.stats.reads, 1u);
  EXPECT_EQ(ctx.stats.writes, 1u);
}

TEST_P(StmContract, DistinctProcessesSeeEachOthersCommits) {
  const auto stm = make();
  sim::ThreadCtx p0(0);
  sim::ThreadCtx p1(1);
  stm->begin(p0);
  ASSERT_TRUE(stm->write(p0, 4, 44));
  ASSERT_TRUE(stm->commit(p0));

  stm->begin(p1);
  std::uint64_t out = 0;
  ASSERT_TRUE(stm->read(p1, 4, out));
  EXPECT_EQ(out, 44u);
  EXPECT_TRUE(stm->commit(p1));
}

INSTANTIATE_TEST_SUITE_P(AllStms, StmContract,
                         ::testing::Values("tl2", "tiny", "dstm", "astm",
                                           "astm-eager", "astm-lazy",
                                           "visible", "mv", "norec", "weak",
                                           "sistm", "glock", "twopl",
                                           "twopl-nowait"),
                         [](const auto& inf) {
                           std::string n = inf.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace optm::stm
