// Theorem 3, measured: per-operation step complexity under the adversarial
// schedule of the proof (§6.2).
//
//   T1 reads variables 0..m-1; T2 writes variable m and commits; T1 then
//   invokes a read of variable m.
//
// Because reads are invisible, T1's process cannot know T2 left its read
// set untouched: it must examine all m entries — and since nothing T1 read
// changed, progressiveness then forces it to LET T1 COMMIT, so the Ω(m)
// scan cannot be cut short. We assert the asymptotic SHAPE on real step
// counts:
//   dstm  : grows linearly in m, read succeeds, reader commits (tight Θ(m))
//   norec : grows linearly in m (value revalidation after the clock moved)
//   tl2   : O(1)                (escapes by not being progressive: aborts)
//   visible: O(1)               (escapes by visible reads)
//   mv    : bounded independent of m (escapes by multi-versioning)
//   weak  : O(1)                (escapes by giving up opacity)
#include <gtest/gtest.h>

#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {
namespace {

wl::LowerBoundProbe probe(const char* name, std::size_t m) {
  const auto stm = make_stm(name, m + 1);
  return wl::lower_bound_probe(*stm, m);
}

TEST(LowerBound, DstmFinalReadGrowsLinearly) {
  const auto small = probe("dstm", 16);
  const auto large = probe("dstm", 256);
  // Nothing T1 read was overwritten: the read returns and T1 commits
  // (progressiveness forbids aborting it).
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(small.reader_committed);
  EXPECT_TRUE(large.reader_committed);
  // Linear growth: 16x the read set, expect >= 8x the steps.
  EXPECT_GE(large.steps_final_read, 8 * small.steps_final_read);
  // The growth is validation (the Θ(k) term), not bookkeeping.
  EXPECT_GE(large.validation_steps_final_read, 250u);
}

TEST(LowerBound, DstmScalesThroughFourDoublings) {
  std::uint64_t prev = probe("dstm", 32).steps_final_read;
  for (std::size_t m = 64; m <= 512; m *= 2) {
    const std::uint64_t cur = probe("dstm", m).steps_final_read;
    EXPECT_GE(cur, prev + m / 2) << "no linear growth at m=" << m;
    prev = cur;
  }
}

TEST(LowerBound, NorecFinalReadGrowsLinearly) {
  const auto small = probe("norec", 16);
  const auto large = probe("norec", 256);
  // NOrec revalidates by VALUE; nothing changed, so the read succeeds and
  // the reader commits — after Θ(m) revalidation work.
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(small.reader_committed);
  EXPECT_TRUE(large.reader_committed);
  EXPECT_GE(large.steps_final_read, 8 * small.steps_final_read);
}

TEST(LowerBound, Tl2FinalReadConstant) {
  const auto small = probe("tl2", 16);
  const auto large = probe("tl2", 1024);
  EXPECT_FALSE(small.read_succeeded);  // the non-progressive abort
  EXPECT_FALSE(large.read_succeeded);
  EXPECT_LE(large.steps_final_read, small.steps_final_read + 2);
  EXPECT_LE(large.steps_final_read, 8u);
}

TEST(LowerBound, VisibleReadFinalReadConstant) {
  const auto small = probe("visible", 16);
  const auto large = probe("visible", 1024);
  // Visible readers would have been warned had anything they read been
  // acquired; nothing was, so the read succeeds in O(1) and T1 commits.
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(small.reader_committed);
  EXPECT_TRUE(large.reader_committed);
  EXPECT_LE(large.steps_final_read, small.steps_final_read + 2);
}

TEST(LowerBound, MvFinalReadBoundedIndependentOfK) {
  const auto small = probe("mv", 16);
  const auto large = probe("mv", 1024);
  // Multi-version: the reader's snapshot version of variable m is still in
  // the ring, so the read succeeds with the OLD value.
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_TRUE(small.reader_committed);
  EXPECT_TRUE(large.reader_committed);
  EXPECT_LE(large.steps_final_read, small.steps_final_read + 4);
}

TEST(LowerBound, WeakFinalReadConstant) {
  const auto small = probe("weak", 16);
  const auto large = probe("weak", 1024);
  // The weak STM does no per-read work at all.
  EXPECT_TRUE(small.read_succeeded);
  EXPECT_TRUE(large.read_succeeded);
  EXPECT_LE(large.steps_final_read, small.steps_final_read + 2);
}

TEST(LowerBound, DstmAbortsWhenReadSetWasOverwritten) {
  // The complementary schedule: T2 overwrites the whole read set. Now the
  // incremental validation may exit at the first mismatch (O(1) here), and
  // the read is answered by an abort — the other branch of the proof.
  const auto stm = make_stm("dstm", 65);
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  stm->begin(reader);
  for (VarId v = 0; v < 64; ++v) {
    std::uint64_t out = 0;
    ASSERT_TRUE(stm->read(reader, v, out));
  }
  stm->begin(writer);
  for (VarId v = 0; v < 65; ++v) ASSERT_TRUE(stm->write(writer, v, v + 1000));
  ASSERT_TRUE(stm->commit(writer));

  std::uint64_t out = 0;
  EXPECT_FALSE(stm->read(reader, 64, out));  // inconsistent: must abort
}

TEST(LowerBound, WholeTransactionQuadraticVsLinear) {
  // Θ(k²) total validation for a DSTM transaction reading k variables
  // (k reads × Θ(read set so far)) vs TL2's Θ(k).
  constexpr std::size_t k = 128;
  auto total_steps = [&](const char* name) {
    const auto stm = make_stm(name, k);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    for (std::size_t v = 0; v < k; ++v) {
      std::uint64_t out = 0;
      EXPECT_TRUE(stm->read(ctx, static_cast<VarId>(v), out));
    }
    EXPECT_TRUE(stm->commit(ctx));
    return ctx.steps.total();
  };
  const std::uint64_t dstm_steps = total_steps("dstm");
  const std::uint64_t tl2_steps = total_steps("tl2");
  // k²/2 = 8192 validation loads dominate DSTM; TL2 stays ~3k.
  EXPECT_GE(dstm_steps, static_cast<std::uint64_t>(k) * k / 4);
  EXPECT_LE(tl2_steps, 8 * k);
  EXPECT_GE(dstm_steps, 10 * tl2_steps);
}

TEST(LowerBound, InvisibleReadsDoNoSharedWrites) {
  // §6's definition 3: "no base shared object is modified when a
  // transaction performs a read-only operation". Measure it.
  constexpr std::size_t k = 64;
  for (const auto name : {"tl2", "tiny", "dstm", "astm", "norec", "weak",
                          "mv", "sistm"}) {
    const auto stm = make_stm(name, k);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    const std::uint64_t writes_before = ctx.steps.shared_writes();
    for (std::size_t v = 0; v < k; ++v) {
      std::uint64_t out = 0;
      ASSERT_TRUE(stm->read(ctx, static_cast<VarId>(v), out));
    }
    EXPECT_EQ(ctx.steps.shared_writes(), writes_before)
        << name << " claims invisible reads but wrote shared memory";
    EXPECT_TRUE(stm->commit(ctx));
  }
}

TEST(LowerBound, VisibleReadsWriteSharedMemoryPerRead) {
  constexpr std::size_t k = 64;
  const auto stm = make_stm("visible", k);
  sim::ThreadCtx ctx(0);
  stm->begin(ctx);
  for (std::size_t v = 0; v < k; ++v) {
    std::uint64_t out = 0;
    ASSERT_TRUE(stm->read(ctx, static_cast<VarId>(v), out));
  }
  EXPECT_GE(ctx.steps.shared_writes(), static_cast<std::uint64_t>(k));
  EXPECT_TRUE(stm->commit(ctx));
}

TEST(LowerBound, PropertyFlagsMatchTheoremPremises) {
  // The theorem's premise triple (invisible, single-version, progressive)
  // holds exactly for the STMs that exhibit Ω(k), and fails in at least
  // one coordinate for every O(1)/bounded implementation.
  auto premises = [](const char* name) {
    const auto stm = make_stm(name, 1);
    const auto p = stm->properties();
    return p.invisible_reads && p.single_version && p.progressive && p.opaque;
  };
  EXPECT_TRUE(premises("dstm"));
  EXPECT_TRUE(premises("astm"));
  EXPECT_TRUE(premises("tiny"));  // progressive TL2: pays the bound instead
  EXPECT_TRUE(premises("norec"));
  EXPECT_FALSE(premises("tl2"));      // not progressive
  EXPECT_FALSE(premises("visible"));  // not invisible
  EXPECT_FALSE(premises("mv"));       // not single-version
  EXPECT_FALSE(premises("weak"));     // not opaque
}

}  // namespace
}  // namespace optm::stm
