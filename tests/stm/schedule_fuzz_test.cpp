// Deterministic schedule fuzzing: drive three logical processes from ONE
// OS thread, interleaving at OPERATION granularity under a seeded RNG.
// Unlike the thread-based workloads (whose interleavings the OS chooses),
// every schedule here is exactly reproducible, and op-level interleaving
// reaches states thread preemption rarely hits (e.g. a process parked
// mid-transaction across dozens of rival commits).
//
// Every recorded run of every opaque non-blocking STM must pass BOTH the
// Theorem 2 certificate and the streaming certificate monitor — and the
// §2 phenomena detectors must stay silent.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/online.hpp"
#include "core/opacity_graph.hpp"
#include "core/phenomena.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/rng.hpp"

namespace optm::stm {
namespace {

constexpr std::uint32_t kProcs = 3;
constexpr std::size_t kVars = 5;
constexpr std::uint64_t kTotalSteps = 600;

/// One logical process's driver state.
struct Proc {
  std::unique_ptr<sim::ThreadCtx> ctx;
  bool active = false;
  std::uint32_t ops_in_tx = 0;
  std::uint64_t next_unique = 0;
};

class ScheduleFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ScheduleFuzz, RecordedRunPassesCertificateAndMonitor) {
  const auto& [name, seed] = GetParam();
  const auto stm = make_stm(name, kVars);
  Recorder recorder(kVars);
  stm->set_recorder(&recorder);

  util::Xoshiro256 rng(seed);
  Proc procs[kProcs];
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    procs[i].ctx = std::make_unique<sim::ThreadCtx>(i);
    procs[i].next_unique = (static_cast<std::uint64_t>(i) + 1) << 32;
  }

  for (std::uint64_t step = 0; step < kTotalSteps; ++step) {
    Proc& p = procs[rng.below(kProcs)];
    if (!p.active) {
      stm->begin(*p.ctx);
      p.active = true;
      p.ops_in_tx = 0;
      continue;
    }
    const std::uint64_t dice = rng.below(100);
    if (p.ops_in_tx >= 6 || dice < 20) {  // try to finish
      if (dice < 4) {
        stm->abort(*p.ctx);  // voluntary tryA
      } else {
        (void)stm->commit(*p.ctx);
      }
      p.active = false;
    } else if (dice < 60) {
      std::uint64_t out = 0;
      if (!stm->read(*p.ctx, static_cast<VarId>(rng.below(kVars)), out)) {
        p.active = false;  // forcefully aborted mid-operation
      }
      ++p.ops_in_tx;
    } else {
      if (!stm->write(*p.ctx, static_cast<VarId>(rng.below(kVars)),
                      ++p.next_unique)) {
        p.active = false;
      }
      ++p.ops_in_tx;
    }
  }
  // Wind down: finish every live transaction.
  for (Proc& p : procs) {
    if (p.active) (void)stm->commit(*p.ctx);
  }

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << name << ": " << why;
  ASSERT_TRUE(h.consistent(&why)) << name << ": " << why;

  // Theorem 2 certificate over the recorder's serialization order.
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << name << " seed " << seed << ": " << why;

  // Streaming certificate monitor, event by event.
  core::OnlineCertificateMonitor monitor(h.model());
  for (const core::Event& e : h.events()) (void)monitor.feed(e);
  EXPECT_TRUE(monitor.ok())
      << name << " seed " << seed << " at event " << monitor.violation()->pos
      << ": " << monitor.violation()->reason;

  // §2 phenomena must be absent from every opaque STM's run.
  const auto snapshot = core::find_inconsistent_snapshot(h);
  EXPECT_FALSE(snapshot.has_value()) << name << ": " << snapshot->explanation;
  const auto dirty = core::find_dirty_read(h);
  if (dirty.has_value()) {
    EXPECT_TRUE(dirty->writer_commit_pending) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpaqueStms, ScheduleFuzz,
    ::testing::Combine(::testing::Values("tl2", "tiny", "dstm", "astm", "astm-eager",
                                         "astm-lazy", "visible", "mv", "norec",
                                         "twopl-nowait"),
                       ::testing::Range<std::uint64_t>(1, 9)),
    [](const auto& inf) {
      std::string n = std::get<0>(inf.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_seed" + std::to_string(std::get<1>(inf.param));
    });

}  // namespace
}  // namespace optm::stm
