// Deterministic schedule fuzzing: drive three logical processes from ONE
// OS thread, interleaving at OPERATION granularity under a seeded RNG.
// Unlike the thread-based workloads (whose interleavings the OS chooses),
// every schedule here is exactly reproducible, and op-level interleaving
// reaches states thread preemption rarely hits (e.g. a process parked
// mid-transaction across dozens of rival commits).
//
// Every recorded run of every opaque non-blocking STM must pass BOTH the
// Theorem 2 certificate and the streaming certificate monitor — and the
// §2 phenomena detectors must stay silent.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/online.hpp"
#include "core/opacity_graph.hpp"
#include "core/parallel_verify.hpp"
#include "core/phenomena.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/mv.hpp"
#include "stm/recorder.hpp"
#include "util/rng.hpp"

namespace optm::stm {
namespace {

constexpr std::uint32_t kProcs = 3;
constexpr std::size_t kVars = 5;
constexpr std::uint64_t kTotalSteps = 600;

/// One logical process's driver state.
struct Proc {
  std::unique_ptr<sim::ThreadCtx> ctx;
  bool active = false;
  std::uint32_t ops_in_tx = 0;
  std::uint64_t next_unique = 0;
};

class ScheduleFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ScheduleFuzz, RecordedRunPassesCertificateAndMonitor) {
  const auto& [name, seed] = GetParam();
  const auto stm = make_stm(name, kVars);
  Recorder recorder(kVars);
  stm->set_recorder(&recorder);

  util::Xoshiro256 rng(seed);
  Proc procs[kProcs];
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    procs[i].ctx = std::make_unique<sim::ThreadCtx>(i);
    procs[i].next_unique = (static_cast<std::uint64_t>(i) + 1) << 32;
  }

  for (std::uint64_t step = 0; step < kTotalSteps; ++step) {
    Proc& p = procs[rng.below(kProcs)];
    if (!p.active) {
      stm->begin(*p.ctx);
      p.active = true;
      p.ops_in_tx = 0;
      continue;
    }
    const std::uint64_t dice = rng.below(100);
    if (p.ops_in_tx >= 6 || dice < 20) {  // try to finish
      if (dice < 4) {
        stm->abort(*p.ctx);  // voluntary tryA
      } else {
        (void)stm->commit(*p.ctx);
      }
      p.active = false;
    } else if (dice < 60) {
      std::uint64_t out = 0;
      if (!stm->read(*p.ctx, static_cast<VarId>(rng.below(kVars)), out)) {
        p.active = false;  // forcefully aborted mid-operation
      }
      ++p.ops_in_tx;
    } else {
      if (!stm->write(*p.ctx, static_cast<VarId>(rng.below(kVars)),
                      ++p.next_unique)) {
        p.active = false;
      }
      ++p.ops_in_tx;
    }
  }
  // Wind down: finish every live transaction.
  for (Proc& p : procs) {
    if (p.active) (void)stm->commit(*p.ctx);
  }

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << name << ": " << why;
  ASSERT_TRUE(h.consistent(&why)) << name << ": " << why;

  // Theorem 2 certificate over the recorder's serialization order.
  EXPECT_TRUE(core::verify_opacity_certificate(h, recorder.certificate_order(),
                                               {}, &why))
      << name << " seed " << seed << ": " << why;

  // Streaming certificate monitor, event by event.
  core::OnlineCertificateMonitor monitor(h.model());
  for (const core::Event& e : h.events()) (void)monitor.feed(e);
  EXPECT_TRUE(monitor.ok())
      << name << " seed " << seed << " at event " << monitor.violation()->pos
      << ": " << monitor.violation()->reason;

  // §2 phenomena must be absent from every opaque STM's run.
  const auto snapshot = core::find_inconsistent_snapshot(h);
  EXPECT_FALSE(snapshot.has_value()) << name << ": " << snapshot->explanation;
  const auto dirty = core::find_dirty_read(h);
  if (dirty.has_value()) {
    EXPECT_TRUE(dirty->writer_commit_pending) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpaqueStms, ScheduleFuzz,
    ::testing::Combine(::testing::Values("tl2", "tiny", "dstm", "astm", "astm-eager",
                                         "astm-lazy", "visible", "mv", "norec",
                                         "twopl-nowait"),
                       ::testing::Range<std::uint64_t>(1, 9)),
    [](const auto& inf) {
      std::string n = std::get<0>(inf.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_seed" + std::to_string(std::get<1>(inf.param));
    });

// ---------------------------------------------------------------------------
// MV snapshot-rank fuzz: MvStm at ring depths 2–8 with declared read-only
// transactions in the mix. The recorded histories stamp serialization
// points onto their C/A events (2·wv updates, 2·snapshot+1 snapshot
// transactions); the streaming monitor and the sharded driver must agree —
// and certify — under the SnapshotRank version-order policy, and the
// deterministic op-granularity schedules stay commit-order-certifiable
// too (the divergence histories live in core's random_mv_history fuzz,
// which simulates the window-free recorder this scheduler cannot express).
// ---------------------------------------------------------------------------

class MvSnapshotScheduleFuzz
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MvSnapshotScheduleFuzz, MonitorAndShardedDriverAgreeUnderSnapshotRank) {
  const auto& [depth, seed] = GetParam();
  MvStm stm(kVars, depth);
  Recorder recorder(kVars);
  stm.set_recorder(&recorder);

  util::Xoshiro256 rng(seed);
  Proc procs[kProcs];
  bool read_only[kProcs] = {};
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    procs[i].ctx = std::make_unique<sim::ThreadCtx>(i);
    procs[i].next_unique = (static_cast<std::uint64_t>(i) + 1) << 32;
  }

  for (std::uint64_t step = 0; step < kTotalSteps; ++step) {
    const std::uint32_t pi = static_cast<std::uint32_t>(rng.below(kProcs));
    Proc& p = procs[pi];
    if (!p.active) {
      if (rng.below(100) < 40) {
        stm.begin_read_only(*p.ctx);
        read_only[pi] = true;
      } else {
        stm.begin(*p.ctx);
        read_only[pi] = false;
      }
      p.active = true;
      p.ops_in_tx = 0;
      continue;
    }
    const std::uint64_t dice = rng.below(100);
    if (p.ops_in_tx >= 6 || dice < 20) {
      if (dice < 4) {
        stm.abort(*p.ctx);
      } else {
        (void)stm.commit(*p.ctx);
      }
      p.active = false;
    } else if (read_only[pi] || dice < 60) {
      std::uint64_t out = 0;
      if (!stm.read(*p.ctx, static_cast<VarId>(rng.below(kVars)), out)) {
        p.active = false;
      }
      ++p.ops_in_tx;
    } else {
      if (!stm.write(*p.ctx, static_cast<VarId>(rng.below(kVars)),
                     ++p.next_unique)) {
        p.active = false;
      }
      ++p.ops_in_tx;
    }
  }
  for (Proc& p : procs) {
    if (p.active) (void)stm.commit(*p.ctx);
  }

  const core::History h = recorder.history();
  std::string why;
  ASSERT_TRUE(h.well_formed(&why)) << why;

  // SnapshotRank: streaming monitor and sharded driver certify and agree.
  core::OnlineCertificateMonitor snap(h.model(),
                                      core::VersionOrderPolicy::kSnapshotRank);
  for (const core::Event& e : h.events()) (void)snap.feed(e);
  EXPECT_TRUE(snap.ok()) << "depth " << depth << " seed " << seed << " at "
                         << snap.violation()->pos << ": "
                         << snap.violation()->reason;
  core::ShardVerifyOptions options;
  options.policy = core::VersionOrderPolicy::kSnapshotRank;
  options.num_shards = 2;
  options.num_threads = 2;
  const core::ParallelVerifyResult driver =
      core::verify_history_sharded(h, options);
  EXPECT_EQ(driver.certified, snap.ok())
      << "depth " << depth << " seed " << seed
      << (driver.violation ? "\ndriver: " + driver.violation->reason : "");

  // Deterministic op-granularity schedules keep C records in stamp order,
  // so the commit-order monitor must stay clean on them as well.
  core::OnlineCertificateMonitor commit_order(h.model());
  for (const core::Event& e : h.events()) (void)commit_order.feed(e);
  EXPECT_TRUE(commit_order.ok())
      << "depth " << depth << " seed " << seed << ": "
      << commit_order.violation()->reason;
}

INSTANTIATE_TEST_SUITE_P(
    Depths, MvSnapshotScheduleFuzz,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 8),
                       ::testing::Range<std::uint64_t>(1, 7)),
    [](const auto& inf) {
      return "depth" + std::to_string(std::get<0>(inf.param)) + "_seed" +
             std::to_string(std::get<1>(inf.param));
    });

}  // namespace
}  // namespace optm::stm
