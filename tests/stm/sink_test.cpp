// Failure semantics of the sink layer: TeeSink tracks status PER SINK
// (one dead leg must not stop the others, and every sink keeps seeing
// every batch so transient failures can recover), and DrainPump reports
// how much of the recording the sink chain never saw when a total sink
// failure aborts the run.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <vector>

#include "core/event.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"

namespace optm::stm {
namespace {

/// Counts what it sees; optionally fails accept() from a given batch
/// ordinal on, and/or fails finish().
class ScriptedSink final : public EventSink {
 public:
  std::size_t fail_from_batch = static_cast<std::size_t>(-1);
  bool fail_finish = false;

  std::size_t batches_seen = 0;
  std::size_t events_seen = 0;
  bool finished = false;

  bool accept(std::span<const core::Event> batch) override {
    const bool ok = batches_seen < fail_from_batch;
    ++batches_seen;
    events_seen += batch.size();
    return ok;
  }
  bool finish() override {
    finished = true;
    return !fail_finish;
  }
};

[[nodiscard]] std::vector<core::Event> some_events(std::size_t n) {
  std::vector<core::Event> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(core::ev::inv(1, 0, core::OpCode::kWrite, 7));
  }
  return events;
}

/// Push one committed write transaction (4 stamps) on lane 0.
void push_writer(Recorder& rec, core::Value value) {
  const core::TxId tx = rec.begin_tx();
  rec.on_inv(0, tx, 0, core::OpCode::kWrite, value);
  rec.on_ret(0, tx, 0, core::OpCode::kWrite, value, core::kOk);
  rec.on_try_commit(0, tx);
  rec.on_commit(0, tx);
}

TEST(TeeSink, TracksStatusPerSinkAndKeepsFeedingFailedLegs) {
  ScriptedSink healthy;
  ScriptedSink flaky;
  flaky.fail_from_batch = 1;  // first batch ok, everything after fails
  TeeSink tee{&healthy, &flaky};

  const auto events = some_events(4);
  for (int i = 0; i < 3; ++i) {
    // One leg still consumes, so the tee reports the batch consumed.
    EXPECT_TRUE(tee.accept(events));
  }

  // Every sink saw every batch, the failed leg included.
  EXPECT_EQ(healthy.batches_seen, 3u);
  EXPECT_EQ(flaky.batches_seen, 3u);
  EXPECT_EQ(flaky.events_seen, 12u);

  EXPECT_FALSE(tee.ok());
  EXPECT_TRUE(tee.status(0).ok);
  EXPECT_FALSE(tee.status(1).ok);
  EXPECT_EQ(tee.status(1).first_failed_batch, 1u);
  ASSERT_TRUE(tee.first_failure().has_value());
  EXPECT_EQ(*tee.first_failure(), 1u);

  // finish() reaches every sink and reports the conjunction.
  EXPECT_FALSE(tee.finish());
  EXPECT_TRUE(healthy.finished);
  EXPECT_TRUE(flaky.finished);
}

TEST(TeeSink, EarliestFailureWins) {
  ScriptedSink late;
  late.fail_from_batch = 2;
  ScriptedSink early;
  early.fail_from_batch = 0;
  TeeSink tee{&late, &early};

  const auto events = some_events(2);
  for (int i = 0; i < 3; ++i) (void)tee.accept(events);

  ASSERT_TRUE(tee.first_failure().has_value());
  EXPECT_EQ(*tee.first_failure(), 1u);  // `early` failed at batch 0
  EXPECT_EQ(tee.status(0).first_failed_batch, 2u);
  EXPECT_EQ(tee.status(1).first_failed_batch, 0u);
}

TEST(TeeSink, AcceptFailsOnlyWhenEveryLegIsLost) {
  ScriptedSink a;
  a.fail_from_batch = 0;
  ScriptedSink b;
  b.fail_from_batch = 1;
  TeeSink tee{&a, &b};

  const auto events = some_events(1);
  EXPECT_TRUE(tee.accept(events));   // b still consumed batch 0
  EXPECT_FALSE(tee.accept(events));  // both legs down
  EXPECT_FALSE(tee.ok());
}

TEST(TeeSink, FinishOnlyFailureFallsBackToAddOrder) {
  ScriptedSink a;
  ScriptedSink b;
  b.fail_finish = true;
  TeeSink tee{&a, &b};

  const auto events = some_events(2);
  EXPECT_TRUE(tee.accept(events));
  EXPECT_FALSE(tee.finish());
  EXPECT_FALSE(tee.ok());
  ASSERT_TRUE(tee.first_failure().has_value());
  EXPECT_EQ(*tee.first_failure(), 1u);
  // No accept() ever failed, so no batch ordinal was latched.
  EXPECT_EQ(tee.status(1).first_failed_batch, static_cast<std::size_t>(-1));
}

/// Fails every accept, and models a producer racing the teardown: each
/// rejected batch is followed by more events arriving in the recorder, so
/// the pump aborts with work still pending.
class FailAndRefillSink final : public EventSink {
 public:
  explicit FailAndRefillSink(Recorder& rec) : rec_(&rec) {}
  bool accept(std::span<const core::Event>) override {
    push_writer(*rec_, 42);  // arrives after the drain the pump just fed us
    return false;
  }

 private:
  Recorder* rec_;
};

TEST(DrainPump, ReportsUndrainedEventsWhenSinkAborts) {
  Recorder recorder(4);
  for (int i = 0; i < 8; ++i) push_writer(recorder, i);

  FailAndRefillSink sink(recorder);
  DrainPump pump(recorder, sink);
  std::atomic<bool> done{true};
  const auto stats = pump.run(done);

  EXPECT_FALSE(stats.sink_ok);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.events, 32u);          // 8 txs * 4 stamps, all in batch 0
  EXPECT_EQ(stats.events_undrained, 4u); // the refill the sink never saw
}

TEST(DrainPump, CleanRunReportsNothingUndrained) {
  Recorder recorder(4);
  for (int i = 0; i < 8; ++i) push_writer(recorder, i);

  ScriptedSink sink;
  DrainPump pump(recorder, sink);
  std::atomic<bool> done{true};
  const auto stats = pump.run(done);

  EXPECT_TRUE(stats.sink_ok);
  EXPECT_EQ(stats.events, 32u);
  EXPECT_EQ(stats.events_undrained, 0u);
  EXPECT_TRUE(sink.finished);
}

TEST(DrainPump, TeeWithOneHealthyLegRunsToCompletion) {
  Recorder recorder(4);
  for (int i = 0; i < 8; ++i) push_writer(recorder, i);

  ScriptedSink healthy;
  ScriptedSink broken;
  broken.fail_from_batch = 0;
  TeeSink tee{&healthy, &broken};
  DrainPump pump(recorder, tee);
  std::atomic<bool> done{true};
  const auto stats = pump.run(done);

  // The run completes on the healthy leg; the failure still surfaces
  // through sink_ok (the finish() conjunction) and the per-sink status.
  EXPECT_FALSE(stats.sink_ok);
  EXPECT_EQ(stats.events_undrained, 0u);
  EXPECT_EQ(healthy.events_seen, 32u);
  EXPECT_EQ(broken.events_seen, 32u);
  EXPECT_TRUE(tee.status(0).ok);
  EXPECT_FALSE(tee.status(1).ok);
}

}  // namespace
}  // namespace optm::stm
