// The adaptive drain cadence (ROADMAP item, PR 5): the live consumer's
// poll threshold is derived from the recorder's measured ingest rate, so
// batches grow under bursts (amortizing the merge) while verdict latency —
// events between a violation being RECORDED and the monitor LATCHING it —
// stays under the configured bound, and quiet lanes are never busy-polled
// into the merge lock.
//
// The pacer is deliberately clock-free (all units are recorder stamps), so
// every property here is deterministic: convergence of the interval under
// a constant rate, growth under bursts, the idle-poll flush, and the
// end-to-end detection-latency bound through a real Recorder -> drain ->
// OnlineCertificateMonitor pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/online.hpp"
#include "stm/recorder.hpp"

namespace optm::stm {
namespace {

using Options = AdaptiveDrainPacer::Options;

/// Synthetic poll counters: `issued` is monotone across drives, exactly
/// like Recorder::stamps_issued().
struct PollState {
  std::uint64_t issued = 0;
  std::uint64_t drained = 0;
};

/// Drive the pacer with a synthetic poll schedule: `rate` new stamps per
/// poll, draining everything whenever it says so. Returns the interval
/// after `polls` polls.
[[nodiscard]] std::uint64_t drive_constant(AdaptiveDrainPacer& pacer,
                                           PollState& state,
                                           std::uint64_t rate,
                                           std::size_t polls) {
  for (std::size_t i = 0; i < polls; ++i) {
    state.issued += rate;
    if (pacer.should_drain(state.issued, state.issued - state.drained)) {
      pacer.on_drain();
      state.drained = state.issued;
    }
  }
  return pacer.interval();
}

TEST(AdaptiveDrainPacer, IntervalConvergesToTargetPollsTimesRate) {
  Options options;
  options.min_interval = 16;
  options.max_interval = 8192;
  options.max_pending = 16384;
  options.target_polls = 4;
  AdaptiveDrainPacer pacer(options);

  PollState state;
  const std::uint64_t rate = 50;
  const std::uint64_t interval = drive_constant(pacer, state, rate, 200);
  // EWMA of per-poll ingest -> rate; threshold -> target_polls * rate.
  EXPECT_NEAR(static_cast<double>(interval),
              static_cast<double>(options.target_polls * rate),
              static_cast<double>(rate) / 2);

  // And it STAYS there: another 100 polls at the same rate move nothing.
  const std::uint64_t again = drive_constant(pacer, state, rate, 100);
  EXPECT_EQ(interval, again);
}

TEST(AdaptiveDrainPacer, BurstsRaiseTheIntervalQuietShrinksIt) {
  Options options;
  options.min_interval = 16;
  options.max_interval = 8192;
  options.max_pending = 16384;
  AdaptiveDrainPacer pacer(options);

  PollState state;
  const std::uint64_t burst = drive_constant(pacer, state, 2000, 100);
  EXPECT_GE(burst, 4000u) << "a sustained burst should raise the threshold";
  EXPECT_LE(burst, options.max_interval);

  const std::uint64_t quiet = drive_constant(pacer, state, 2, 400);
  EXPECT_LE(quiet, 64u) << "a quiet stream should shrink it back down";
  EXPECT_GE(quiet, options.min_interval);
}

TEST(AdaptiveDrainPacer, IntervalNeverExceedsTheLatencyBound) {
  Options options;
  options.min_interval = 16;
  options.max_interval = 8192;
  options.max_pending = 300;  // the latency bound dominates max_interval
  AdaptiveDrainPacer pacer(options);
  PollState state;
  const std::uint64_t interval = drive_constant(pacer, state, 5000, 100);
  EXPECT_LE(interval, options.max_pending);
}

TEST(AdaptiveDrainPacer, IdlePollsFlushPendingTail) {
  Options options;
  options.min_interval = 64;
  options.idle_polls = 3;
  AdaptiveDrainPacer pacer(options);

  // A few events arrive (below every threshold), then the lanes go quiet.
  ASSERT_FALSE(pacer.should_drain(5, 5));
  std::uint32_t polls_until_flush = 0;
  bool flushed = false;
  for (; polls_until_flush < 10; ++polls_until_flush) {
    if (pacer.should_drain(5, 5)) {
      flushed = true;
      break;
    }
  }
  EXPECT_TRUE(flushed);
  EXPECT_LE(polls_until_flush, options.idle_polls);

  // Nothing pending -> never drain, however long it stays quiet.
  pacer.on_drain();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(pacer.should_drain(5, 0));
  }
}

// ---------------------------------------------------------------------------
// End-to-end: recorder -> paced drain -> monitor, violation latency
// ---------------------------------------------------------------------------

/// Push one committed write transaction (inv, ret, tryC, C = 5 stamps).
void push_writer(Recorder& rec, VarId var, core::Value value) {
  const core::TxId tx = rec.begin_tx();
  rec.on_inv(0, tx, var, core::OpCode::kWrite, value);
  rec.on_ret(0, tx, var, core::OpCode::kWrite, value, core::kOk);
  rec.on_try_commit(0, tx);
  rec.on_commit(0, tx);
}

/// Push a transaction whose read returns a value nobody ever wrote — the
/// certificate flags it (kUnwrittenValue) the moment it is ingested.
void push_poisoned_reader(Recorder& rec, VarId var) {
  const core::TxId tx = rec.begin_tx();
  rec.on_inv(0, tx, var, core::OpCode::kRead, 0);
  rec.on_ret(0, tx, var, core::OpCode::kRead, 0, core::Value{987654321});
}

TEST(AdaptiveDrainPipeline, ViolationDetectionLatencyStaysUnderBound) {
  Recorder recorder(8);
  core::OnlineCertificateMonitor monitor(recorder.model());

  Options options;
  options.min_interval = 16;
  options.max_interval = 2048;
  options.max_pending = 512;  // the configured verdict-latency bound
  options.idle_polls = 3;
  AdaptiveDrainPacer pacer(options);
  EventBatch batch;

  constexpr std::size_t kTxsPerPoll = 3;  // 15 stamps between polls
  constexpr std::size_t kStampsPerPoll = kTxsPerPoll * 5;

  std::uint64_t violation_stamp = 0;
  std::uint64_t detected_at = 0;
  core::Value next = 1;
  for (std::size_t poll = 0; poll < 400 && detected_at == 0; ++poll) {
    for (std::size_t t = 0; t < kTxsPerPoll; ++t) {
      push_writer(recorder, static_cast<VarId>(t % 8), next++);
    }
    if (poll == 250) {
      push_poisoned_reader(recorder, 0);
      violation_stamp = recorder.stamps_issued();
    }
    if (pacer.should_drain(recorder.stamps_issued(),
                           recorder.approx_pending())) {
      batch.clear();
      if (recorder.drain(batch) > 0) {
        pacer.on_drain();
        (void)monitor.ingest(batch.span());
        if (!monitor.ok() && detected_at == 0) {
          detected_at = recorder.stamps_issued();
        }
      }
    }
  }
  // Quiescent tail: the idle flush must deliver the violation even if the
  // loop above never crossed the threshold again.
  for (int i = 0; i < 20 && detected_at == 0; ++i) {
    if (pacer.should_drain(recorder.stamps_issued(),
                           recorder.approx_pending())) {
      batch.clear();
      if (recorder.drain(batch) > 0) {
        pacer.on_drain();
        (void)monitor.ingest(batch.span());
        if (!monitor.ok()) detected_at = recorder.stamps_issued();
      }
    }
  }

  ASSERT_FALSE(monitor.ok()) << "the poisoned read was never flagged";
  EXPECT_EQ(monitor.violation()->kind, core::CertFlagKind::kUnwrittenValue);
  ASSERT_NE(violation_stamp, 0u);
  ASSERT_NE(detected_at, 0u);
  // Verdict latency in events: everything issued after the violation
  // until the drain that delivered it. Bounded by the configured
  // max_pending plus one poll's worth of slack.
  EXPECT_LE(detected_at - violation_stamp,
            options.max_pending + kStampsPerPoll)
      << "verdict latency exceeded the configured bound";
}

TEST(AdaptiveDrainPipeline, BatchCapacityStabilizesAcrossDrains) {
  Recorder recorder(4);
  EventBatch batch;
  core::Value next = 1;
  std::size_t high_water = 0;
  for (int round = 0; round < 50; ++round) {
    for (int t = 0; t < 40; ++t) {
      push_writer(recorder, static_cast<VarId>(t % 4), next++);
    }
    batch.clear();
    (void)recorder.drain(batch);
    if (round == 25) high_water = batch.capacity();
  }
  // Steady state: the reusable buffer stopped growing long ago.
  EXPECT_EQ(batch.capacity(), high_water);
}

}  // namespace
}  // namespace optm::stm
