// The §6.1 substrate: step accounting on instrumented base objects.
#include <gtest/gtest.h>

#include "sim/base_object.hpp"
#include "sim/step_counter.hpp"
#include "sim/thread_ctx.hpp"

namespace optm::sim {
namespace {

TEST(StepCounts, ArithmeticAndTotals) {
  StepCounts a{.loads = 3, .stores = 2, .rmws = 1};
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.shared_writes(), 3u);
  StepCounts b{.loads = 1, .stores = 1, .rmws = 0};
  const StepCounts d = a - b;
  EXPECT_EQ(d.loads, 2u);
  EXPECT_EQ(d.total(), 4u);
  StepCounts c;
  c += a;
  c += b;
  EXPECT_EQ(c.total(), 8u);
}

TEST(BaseWord, LoadIsCharged) {
  ThreadCtx ctx(0);
  BaseWord w(42);
  EXPECT_EQ(w.load(ctx), 42u);
  EXPECT_EQ(ctx.steps.loads, 1u);
  EXPECT_EQ(ctx.steps.total(), 1u);
}

TEST(BaseWord, StoreIsCharged) {
  ThreadCtx ctx(0);
  BaseWord w;
  w.store(ctx, 7);
  EXPECT_EQ(ctx.steps.stores, 1u);
  EXPECT_EQ(w.peek(), 7u);
}

TEST(BaseWord, CasIsChargedOnceRegardlessOfOutcome) {
  ThreadCtx ctx(0);
  BaseWord w(1);
  std::uint64_t expected = 1;
  EXPECT_TRUE(w.cas(ctx, expected, 2));
  expected = 1;  // stale
  EXPECT_FALSE(w.cas(ctx, expected, 3));
  EXPECT_EQ(expected, 2u);  // updated to observed value
  EXPECT_EQ(ctx.steps.rmws, 2u);
}

TEST(BaseWord, FetchOpsCharged) {
  ThreadCtx ctx(0);
  BaseWord w(0);
  EXPECT_EQ(w.fetch_add(ctx, 5), 0u);
  EXPECT_EQ(w.fetch_or(ctx, 0b1010), 5u);
  EXPECT_EQ(w.fetch_and(ctx, 0b0010), 15u);
  EXPECT_EQ(w.peek(), 2u);
  EXPECT_EQ(ctx.steps.rmws, 3u);
}

TEST(BaseWord, PeekAndInitAreUninstrumented) {
  ThreadCtx ctx(0);
  BaseWord w;
  w.init(9);
  EXPECT_EQ(w.peek(), 9u);
  EXPECT_EQ(ctx.steps.total(), 0u);
}

TEST(GlobalClock, MonotoneAndCharged) {
  ThreadCtx ctx(0);
  GlobalClock clock;
  EXPECT_EQ(clock.read(ctx), 0u);
  EXPECT_EQ(clock.advance(ctx), 1u);
  EXPECT_EQ(clock.advance(ctx), 2u);
  EXPECT_EQ(clock.read(ctx), 2u);
  EXPECT_EQ(ctx.steps.loads, 2u);
  EXPECT_EQ(ctx.steps.rmws, 2u);
}

TEST(ThreadCtx, IdentityAndStats) {
  ThreadCtx ctx(5);
  EXPECT_EQ(ctx.id(), 5u);
  ctx.stats.commits = 3;
  ctx.on_load();
  ctx.on_store();
  ctx.on_rmw();
  EXPECT_EQ(ctx.steps.total(), 3u);
}

TEST(Padding, BaseWordsDoNotShareCacheLines) {
  static_assert(sizeof(util::Padded<BaseWord>) >= util::kCacheLine);
  static_assert(alignof(util::Padded<BaseWord>) == util::kCacheLine);
  SUCCEED();
}

}  // namespace
}  // namespace optm::sim
