// Pipelined-writer corpus: byte identity against the synchronous writer,
// and crash artifacts at every pipeline stage.
//
// The pipelined writer (WriterOptions::pipeline) keeps segment N+1
// created, pre-sized and header-less while N fills, and defers the
// sealed segment's msync to the background thread. A kill can therefore
// leave on-disk states the synchronous writer never produces — most
// importantly a trailing full-size all-zero segment whose header was
// never written. Each test below reconstructs one such state exactly as
// a kill at that stage would leave it and asserts the recovery taxonomy:
// the reader yields an exact prefix of the recording (or reports a torn
// tail) and NEVER certifies fabricated history; headerless files
// anywhere but the tail stay hard errors.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "log/format.hpp"
#include "log/log_sink.hpp"
#include "log/reader.hpp"
#include "log/writer.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace optm;
namespace fs = std::filesystem;

fs::path scratch_root() {
  return fs::path(::testing::TempDir()) /
         ("optm_log_pipe_" + std::to_string(::getpid()));
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = scratch_root() / tag;
  fs::remove_all(dir);
  return dir;
}

std::vector<core::Event> make_events(std::size_t n) {
  std::vector<core::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(core::ev::try_commit(static_cast<core::TxId>(i + 1)));
  }
  return events;
}

/// Write `events` in fixed-size appends into a small-segment log.
std::uint64_t write_log(const fs::path& dir, bool pipeline,
                        const std::vector<core::Event>& events,
                        std::size_t chunk = 200) {
  log::WriterOptions wopt;
  wopt.directory = dir.string();
  wopt.segment_bytes = 16 * 1024;
  wopt.pipeline = pipeline;
  wopt.metadata.runtime = "tl2";
  wopt.metadata.policy = "commit-order";
  wopt.metadata.window_mode = "windowed";
  wopt.metadata.num_vars = 8;
  log::LogWriter writer(wopt);
  for (std::size_t i = 0; i < events.size(); i += chunk) {
    const std::size_t n = std::min(chunk, events.size() - i);
    EXPECT_TRUE(writer.append({events.data() + i, n})) << writer.error();
  }
  EXPECT_TRUE(writer.close()) << writer.error();
  return writer.segments_written();
}

std::vector<fs::path> sorted_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<char> slurp(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

struct ReplayOutcome {
  bool reader_ok = false;
  bool torn = false;
  std::vector<core::Event> events;
};

ReplayOutcome replay(const fs::path& dir) {
  ReplayOutcome out;
  log::LogReader reader;
  if (!reader.open(dir.string())) return out;
  for (auto batch = reader.next(); !batch.empty(); batch = reader.next()) {
    out.events.insert(out.events.end(), batch.begin(), batch.end());
  }
  out.reader_ok = reader.ok();
  out.torn = reader.tail_dropped();
  return out;
}

void expect_prefix_of(const ReplayOutcome& out,
                      const std::vector<core::Event>& orig) {
  ASSERT_LE(out.events.size(), orig.size());
  for (std::size_t i = 0; i < out.events.size(); ++i) {
    ASSERT_EQ(out.events[i], orig[i]) << "diverges from recording at " << i;
  }
}

/// Drop a pre-sized, headerless segment file — the artifact the prep
/// thread leaves when the process dies before the segment is taken.
void add_stub(const fs::path& dir, std::uint64_t index, std::size_t bytes) {
  std::ofstream out(dir / log::segment_file_name(index), std::ios::binary);
  if (bytes != 0) {
    const std::vector<char> zeros(bytes, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
}

void flip_byte(const fs::path& file, std::uintmax_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  ASSERT_TRUE(f.good());
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
  ASSERT_TRUE(f.good());
}

/// Zero file content starting at `from` — a page the kernel never wrote
/// back before the kill.
void zero_from(const fs::path& file, std::uintmax_t from) {
  const auto size = fs::file_size(file);
  ASSERT_LT(from, size);
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  const std::vector<char> zeros(static_cast<std::size_t>(size - from), 0);
  f.seekp(static_cast<std::streamoff>(from));
  f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  ASSERT_TRUE(f.good());
}

// --- byte identity -----------------------------------------------------------

// The pipeline is a scheduling change, not a format change: the same
// appends must produce the same file names with the same bytes. This is
// the acceptance gate that lets the pipeline default to on.
TEST(LogPipeline, ByteIdenticalToSynchronousWriter) {
  const auto events = make_events(2500);  // several rotations at 16 KiB
  const fs::path on = fresh_dir("ident_on");
  const fs::path off = fresh_dir("ident_off");
  const std::uint64_t segs_on = write_log(on, /*pipeline=*/true, events);
  const std::uint64_t segs_off = write_log(off, /*pipeline=*/false, events);
  EXPECT_EQ(segs_on, segs_off);
  ASSERT_GE(segs_on, 3u);

  const auto files_on = sorted_files(on);
  const auto files_off = sorted_files(off);
  ASSERT_EQ(files_on.size(), files_off.size());
  for (std::size_t i = 0; i < files_on.size(); ++i) {
    EXPECT_EQ(files_on[i].filename(), files_off[i].filename());
    const auto a = slurp(files_on[i]);
    const auto b = slurp(files_off[i]);
    ASSERT_EQ(a.size(), b.size()) << files_on[i];
    EXPECT_EQ(a, b) << "byte mismatch in " << files_on[i];
  }
  fs::remove_all(on);
  fs::remove_all(off);
}

TEST(LogPipeline, StatsReportEnabledAndClose) {
  const auto events = make_events(1500);
  const fs::path dir = fresh_dir("stats");
  log::WriterOptions wopt;
  wopt.directory = dir.string();
  wopt.segment_bytes = 16 * 1024;
  log::LogWriter writer(wopt);
  ASSERT_TRUE(writer.append(events)) << writer.error();
  ASSERT_TRUE(writer.close()) << writer.error();
  const auto stats = writer.pipeline_stats();
  EXPECT_TRUE(stats.enabled);
  // Stalls and lag are load-dependent; only their presence is asserted
  // elsewhere (recorded_soak surfaces them). Here: close() drained, so
  // the numbers are final and readable.
  (void)stats.prep_stalls;
  (void)stats.flush_lag_peak;

  log::WriterOptions off = wopt;
  off.directory = fresh_dir("stats_off").string();
  off.pipeline = false;
  log::LogWriter wsync(off);
  ASSERT_TRUE(wsync.close());
  EXPECT_FALSE(wsync.pipeline_stats().enabled);
  fs::remove_all(dir);
  fs::remove_all(off.directory);
}

// --- kill-stage artifacts ----------------------------------------------------
//
// Build one clean multi-segment log, then reconstruct the exact on-disk
// state a kill at each pipeline stage would leave and assert recovery.

struct Corpus {
  fs::path dir;
  std::vector<core::Event> events;
  std::vector<fs::path> files;
  std::uint64_t segments = 0;
};

Corpus build_corpus(const std::string& tag) {
  Corpus c;
  c.dir = fresh_dir(tag);
  c.events = make_events(2500);
  c.segments = write_log(c.dir, /*pipeline=*/true, c.events);
  c.files = sorted_files(c.dir);
  EXPECT_GE(c.segments, 3u);
  return c;
}

// Kill between the prep thread's open() and sizing: zero-byte trailing
// file. Recovered; the real segments read in full.
TEST(LogPipeline, KillAfterCreateLeavesZeroByteStub) {
  const Corpus c = build_corpus("kill_create");
  add_stub(c.dir, c.segments, 0);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);  // the stub is reported as a (empty) torn tail
  EXPECT_EQ(out.events.size(), c.events.size());
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// Kill mid-sizing: trailing file shorter than a segment header.
TEST(LogPipeline, KillDuringSizingLeavesShortStub) {
  const Corpus c = build_corpus("kill_sizing");
  add_stub(c.dir, c.segments, log::kSegmentHeaderBytes / 2);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.events.size(), c.events.size());
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// Kill after sizing + dir fsync, before the writer took the segment:
// full-size all-zero file — the pipelined writer's steady-state crash
// artifact (the next segment is ALWAYS prepared while the current fills).
TEST(LogPipeline, KillAfterPrepareLeavesFullSizeZeroStub) {
  const Corpus c = build_corpus("kill_prepared");
  add_stub(c.dir, c.segments, 16 * 1024);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.events.size(), c.events.size());
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// Kill after rotation but before the FINAL segment's header page hit the
// disk (writeback may flush block pages first, so the file can hold
// stray nonzero bytes past the zeroed header): the whole final segment
// is dropped — nothing in it was ever reported durable — and the log
// recovers to the prefix that precedes it, even with the prepared next
// segment's stub also present.
TEST(LogPipeline, KillBeforeHeaderWritebackDropsFinalSegment) {
  const Corpus c = build_corpus("kill_header");
  zero_from(c.files.back(), 0);  // header page lost; tail already truncated
  add_stub(c.dir, c.segments, 16 * 1024);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_LT(out.events.size(), c.events.size());
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// Kill mid-block in the final real segment, prepared stub also present:
// the classic torn tail plus the pipeline's extra trailing file. The
// stub must not mask the torn-tail recovery of the segment before it.
TEST(LogPipeline, TornBlockTailBehindTrailingStubRecovers) {
  const Corpus c = build_corpus("kill_midblock");
  const auto size = fs::file_size(c.files.back());
  ASSERT_GT(size, log::kSegmentHeaderBytes + sizeof(log::BlockHeader) + 24);
  flip_byte(c.files.back(), size - 24);  // corrupt the last block's payload
  add_stub(c.dir, c.segments, 16 * 1024);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_LT(out.events.size(), c.events.size());
  EXPECT_GT(out.events.size(), 0u);
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// A headerless file in the MIDDLE of the log is not a pipeline artifact
// (only the last file can be a prepared-but-unwritten segment): it means
// a durable segment was destroyed, and certifying across it would gap
// the history. Hard error.
TEST(LogPipeline, MidLogStubIsHardError) {
  const Corpus c = build_corpus("mid_stub");
  ASSERT_GE(c.files.size(), 3u);
  zero_from(c.files[1], 0);  // destroy a mid-log segment's header
  const auto out = replay(c.dir);
  EXPECT_FALSE(out.reader_ok);
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// Two trailing headerless files are byte-indistinguishable from the
// legitimate crash-after-rotation state (the just-swapped-to segment
// whose header page never hit the disk, followed by the prepared next
// segment) — so recovery drops both. Nothing in either file was ever
// reported durable, so no history is fabricated.
TEST(LogPipeline, DoubleTrailingStubRecovers) {
  const Corpus c = build_corpus("double_stub");
  add_stub(c.dir, c.segments, 16 * 1024);
  add_stub(c.dir, c.segments + 1, 16 * 1024);
  const auto out = replay(c.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.events.size(), c.events.size());
  expect_prefix_of(out, c.events);
  fs::remove_all(c.dir);
}

// A log that is ONLY a stub — kill before the first segment was ever
// taken by the writer — recovers to the empty prefix, reported torn:
// zero events were acked durable, and zero events is what comes back.
TEST(LogPipeline, LoneStubReadsAsEmptyTornLog) {
  const fs::path dir = fresh_dir("lone_stub");
  fs::create_directories(dir);
  add_stub(dir, 0, 16 * 1024);
  log::LogReader reader;
  ASSERT_TRUE(reader.open(dir.string())) << reader.error();
  EXPECT_TRUE(reader.next().empty());
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.events_read(), 0u);
  EXPECT_TRUE(reader.tail_dropped());
  fs::remove_all(dir);
}

// --- concurrency -------------------------------------------------------------

// The pipelined writer under the real drain pump, recording threads
// running concurrently: the TSan leg of CI runs this binary, so the
// prep/seal thread's handoff with the appending pump thread is checked
// for races, and the result must still read back as the full recording.
TEST(LogPipeline, ConcurrentPipelinedWriterUnderDrainPump) {
  const fs::path dir = fresh_dir("pump");
  const std::uint32_t vars = 16;
  auto stm = stm::make_stm("tl2", vars);
  stm::Recorder recorder(vars);
  stm->set_recorder(&recorder);

  log::WriterOptions wopt;
  wopt.directory = dir.string();
  wopt.segment_bytes = 64 * 1024;
  wopt.pipeline = true;
  wopt.metadata.runtime = "tl2";
  wopt.metadata.num_vars = vars;
  log::LogWriter writer(wopt);
  log::LogWriterSink log_sink(writer);

  std::atomic<bool> done{false};
  stm::DrainPump pump(recorder, log_sink);
  stm::DrainPump::Stats stats;
  std::thread pumper([&] { stats = pump.run(done); });

  wl::MixParams mix;
  mix.threads = 3;
  mix.vars = vars;
  mix.txs_per_thread = 400;
  mix.ops_per_tx = 4;
  mix.seed = 77;
  (void)wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  pumper.join();

  ASSERT_TRUE(stats.sink_ok) << writer.error();
  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_GE(writer.segments_written(), 2u);
  EXPECT_TRUE(writer.pipeline_stats().enabled);

  const auto out = replay(dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_FALSE(out.torn);
  EXPECT_EQ(out.events.size(), recorder.num_events());
  fs::remove_all(dir);
}

}  // namespace
