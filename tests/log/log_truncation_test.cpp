// Torn-write / truncation corpus for the segmented event log reader.
//
// One pristine multi-segment log is built once; every case then damages a
// fresh copy (truncate at, or flip a byte at, offsets covering each
// boundary class: segment header, block header, payload interior, block
// boundary, segment boundary, tail) and replays it through LogReader and
// the bounded-memory certifier. The contract under test:
//
//   - the reader NEVER crashes on damaged input;
//   - damage confined to the final segment's tail is recovered — the
//     events that survive are an exact prefix of the original recording,
//     reported as torn (dropped_bytes > 0) unless the cut landed exactly
//     on a block boundary;
//   - any other damage (non-final segment, header, CRC-passing stamp
//     discontinuity) is a hard error — never a silent mis-certification.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/stream_verify.hpp"
#include "log/format.hpp"
#include "log/reader.hpp"
#include "log/writer.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace optm;
namespace fs = std::filesystem;

fs::path scratch_root() {
  return fs::path(::testing::TempDir()) /
         ("optm_log_trunc_" + std::to_string(::getpid()));
}

/// Record a small tl2 mix and write it to a pristine log with tiny
/// segments (16 KiB) and small blocks (256 events), so the corpus gets
/// several segments and several blocks per segment to aim at.
struct Pristine {
  fs::path dir;
  std::vector<core::Event> events;
  std::vector<fs::path> files;  // sorted segment files
};

const Pristine& pristine() {
  static const Pristine p = [] {
    Pristine out;
    out.dir = scratch_root() / "pristine";
    fs::remove_all(out.dir);

    const std::uint32_t vars = 8;
    auto stm = stm::make_stm("tl2", vars);
    stm::Recorder recorder(vars);
    stm->set_recorder(&recorder);
    wl::MixParams mix;
    mix.threads = 2;
    mix.vars = vars;
    mix.txs_per_thread = 300;
    mix.ops_per_tx = 4;
    mix.seed = 4242;
    (void)wl::run_random_mix(*stm, mix);

    stm::EventBatch batch;
    (void)recorder.drain(batch);
    out.events.assign(batch.begin(), batch.end());

    log::WriterOptions wopt;
    wopt.directory = out.dir.string();
    wopt.segment_bytes = 16 * 1024;
    wopt.metadata.runtime = "tl2";
    wopt.metadata.policy = "commit-order";
    wopt.metadata.window_mode = "windowed";
    wopt.metadata.num_vars = vars;
    wopt.metadata.threads = mix.threads;
    log::LogWriter writer(wopt);
    const std::size_t kBlock = 256;
    for (std::size_t i = 0; i < out.events.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, out.events.size() - i);
      EXPECT_TRUE(writer.append({out.events.data() + i, n}));
    }
    EXPECT_TRUE(writer.close()) << writer.error();
    EXPECT_GE(writer.segments_written(), 3u);

    for (const auto& entry : fs::directory_iterator(out.dir)) {
      out.files.push_back(entry.path());
    }
    std::sort(out.files.begin(), out.files.end());
    return out;
  }();
  return p;
}

/// Copy the pristine log into a fresh directory for one damage case.
fs::path fresh_copy(const std::string& tag) {
  const fs::path dir = scratch_root() / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& f : pristine().files) {
    fs::copy_file(f, dir / f.filename());
  }
  return dir;
}

void truncate_file(const fs::path& file, std::uintmax_t new_size) {
  fs::resize_file(file, new_size);
}

void flip_byte(const fs::path& file, std::uintmax_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  ASSERT_TRUE(f.good());
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
  ASSERT_TRUE(f.good());
}

struct ReplayOutcome {
  bool reader_ok = false;        // full read completed without hard error
  bool torn = false;             // tail reported dropped
  std::vector<core::Event> events;
};

/// Read the damaged log to completion. The absence-of-crash property is
/// implicit: any segfault fails the test binary outright.
ReplayOutcome replay(const fs::path& dir) {
  ReplayOutcome out;
  log::LogReader reader;
  if (!reader.open(dir.string())) return out;
  for (auto batch = reader.next(); !batch.empty(); batch = reader.next()) {
    out.events.insert(out.events.end(), batch.begin(), batch.end());
  }
  out.reader_ok = reader.ok();
  out.torn = reader.tail_dropped();
  return out;
}

/// The never-mis-certify core: whatever the damage, a completed read must
/// yield an exact prefix of the original recording.
void expect_prefix_of_pristine(const ReplayOutcome& out) {
  const auto& orig = pristine().events;
  ASSERT_LE(out.events.size(), orig.size());
  for (std::size_t i = 0; i < out.events.size(); ++i) {
    ASSERT_EQ(out.events[i], orig[i]) << "diverges from recording at " << i;
  }
}

/// Certifying the damaged log must never crash either; when the reader
/// hard-fails mid-stream the certifier just sees a shorter stream, and
/// the caller (checker_tool) turns !reader.ok() into an operational
/// error — which this helper mirrors.
void certify_never_crashes(const fs::path& dir) {
  log::LogReader reader;
  if (!reader.open(dir.string())) return;
  core::StreamVerifyOptions options;
  options.window_events = 512;  // force the streaming-monitor path too
  const auto model = core::ObjectModel::registers(8, 0);
  (void)core::verify_event_stream(
      model, [&reader] { return reader.next(); }, options);
}

std::uintmax_t last_file_size() {
  return fs::file_size(pristine().files.back());
}

TEST(LogTruncation, PristineBaselineReadsClean) {
  const auto out = replay(pristine().dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_FALSE(out.torn);
  ASSERT_EQ(out.events.size(), pristine().events.size());
  expect_prefix_of_pristine(out);
}

// --- truncation of the FINAL segment: always recoverable -------------------

TEST(LogTruncation, TruncateFinalSegmentEveryBoundaryClass) {
  const std::uintmax_t size = last_file_size();
  // Offsets covering: inside the header page, exactly at the header end,
  // inside the first block header, inside payload, near mid-file, and
  // every byte of the last 32 (tail / block-boundary straddles).
  std::vector<std::uintmax_t> cuts = {
      0,
      1,
      log::kSegmentHeaderBytes / 2,
      log::kSegmentHeaderBytes,
      log::kSegmentHeaderBytes + 1,
      log::kSegmentHeaderBytes + sizeof(log::BlockHeader) - 1,
      log::kSegmentHeaderBytes + sizeof(log::BlockHeader),
      log::kSegmentHeaderBytes + sizeof(log::BlockHeader) + 17,
      size / 2,
      size - 1,
  };
  for (std::uintmax_t tail = 2; tail <= 32; ++tail) {
    if (size >= tail) cuts.push_back(size - tail);
  }
  int case_id = 0;
  for (const auto cut : cuts) {
    if (cut >= size) continue;
    SCOPED_TRACE("truncate final segment to " + std::to_string(cut));
    const fs::path dir = fresh_copy("cut" + std::to_string(case_id++));
    truncate_file(dir / pristine().files.back().filename(), cut);

    const auto out = replay(dir);
    if (cut < log::kSegmentHeaderBytes) {
      // Header itself is gone: the whole final segment is the torn tail.
      EXPECT_TRUE(out.reader_ok);
      EXPECT_TRUE(out.torn);
    } else {
      EXPECT_TRUE(out.reader_ok);
      // Anything short of the full file drops at least the cut block; a
      // cut exactly on a block boundary reads as a clean (shorter) log.
    }
    expect_prefix_of_pristine(out);
    certify_never_crashes(dir);
    fs::remove_all(dir);
  }
}

// --- byte flips in the FINAL segment: recovered or flagged, never wrong ----

TEST(LogTruncation, FlipBytesInFinalSegment) {
  const std::uintmax_t size = last_file_size();
  const std::uintmax_t flips[] = {
      // Header page: magic, middle, CRC field region.
      0, 8, 100, log::kSegmentHeaderBytes - 1,
      // First block header and payload.
      log::kSegmentHeaderBytes + 1,
      log::kSegmentHeaderBytes + sizeof(log::BlockHeader) + 5,
      size / 2,
      size - 1,
  };
  int case_id = 0;
  for (const auto offset : flips) {
    if (offset >= size) continue;
    SCOPED_TRACE("flip final-segment byte " + std::to_string(offset));
    const fs::path dir = fresh_copy("flip" + std::to_string(case_id++));
    flip_byte(dir / pristine().files.back().filename(), offset);

    const auto out = replay(dir);
    if (out.reader_ok) {
      // Recovered: events must still be a true prefix, and unless the
      // flip hit bytes past the last block (zeroed tail), something must
      // have been dropped.
      expect_prefix_of_pristine(out);
      if (out.events.size() < pristine().events.size()) {
        EXPECT_TRUE(out.torn);
      }
    }
    // else: flagged as a hard error — acceptable (header damage).
    certify_never_crashes(dir);
    fs::remove_all(dir);
  }
}

// --- damage to a NON-FINAL segment: always a hard error --------------------

TEST(LogTruncation, DamageToNonFinalSegmentIsHardError) {
  ASSERT_GE(pristine().files.size(), 3u);
  const fs::path victim_name = pristine().files[1].filename();
  const std::uintmax_t size = fs::file_size(pristine().files[1]);

  int case_id = 0;
  // Flips in a non-final segment's covered bytes (header, block header,
  // payload) must hard-fail — never silently recover: the tail-drop rule
  // applies only to the last segment. (Bytes past the end-of-segment
  // seal are zero padding the reader never consults.)
  const std::uintmax_t covered_flips[] = {
      4, log::kSegmentHeaderBytes + 3,
      log::kSegmentHeaderBytes + sizeof(log::BlockHeader) + 11, size / 2};
  for (const std::uintmax_t offset : covered_flips) {
    SCOPED_TRACE("flip non-final byte " + std::to_string(offset));
    const fs::path dir = fresh_copy("mid_flip" + std::to_string(case_id++));
    flip_byte(dir / victim_name, offset);
    const auto out = replay(dir);
    EXPECT_FALSE(out.reader_ok);
    expect_prefix_of_pristine(out);
    certify_never_crashes(dir);
    fs::remove_all(dir);
  }
  // Truncating a non-final segment must hard-fail too.
  const std::uintmax_t mid_cuts[] = {0, log::kSegmentHeaderBytes + 7, size / 2};
  for (const std::uintmax_t cut : mid_cuts) {
    SCOPED_TRACE("truncate non-final to " + std::to_string(cut));
    const fs::path dir = fresh_copy("mid_cut" + std::to_string(case_id++));
    truncate_file(dir / victim_name, cut);
    const auto out = replay(dir);
    EXPECT_FALSE(out.reader_ok);
    expect_prefix_of_pristine(out);
    certify_never_crashes(dir);
    fs::remove_all(dir);
  }
}

// --- a deleted middle segment is a stamp discontinuity: hard error ---------

TEST(LogTruncation, MissingMiddleSegmentIsHardError) {
  ASSERT_GE(pristine().files.size(), 3u);
  const fs::path dir = fresh_copy("missing_mid");
  fs::remove(dir / pristine().files[1].filename());
  const auto out = replay(dir);
  EXPECT_FALSE(out.reader_ok);
  expect_prefix_of_pristine(out);
  certify_never_crashes(dir);
  fs::remove_all(dir);
}

// --- sub-header residual of a full-packed segment ---------------------------

/// Build a log whose rotated segments pack completely full, leaving a
/// 16-byte all-zero residual — shorter than a BlockHeader — before each
/// rotation (the residue class 2 MiB and 8 MiB segments land in: the
/// 4 KiB header is 16 mod 24 and blocks are 24+48n bytes).
struct ResidualLog {
  fs::path dir;
  std::size_t per_segment = 0;  // events in each full-packed segment
  std::size_t total_events = 0;
  std::uint64_t segment_bytes = 0;
  std::vector<fs::path> files;  // sorted segment files
};

ResidualLog build_residual_log(const std::string& tag) {
  ResidualLog out;
  out.dir = scratch_root() / tag;
  fs::remove_all(out.dir);
  out.per_segment = 40;
  log::WriterOptions wopt;
  wopt.directory = out.dir.string();
  wopt.segment_bytes = log::kSegmentHeaderBytes + sizeof(log::BlockHeader) +
                       out.per_segment * sizeof(core::Event) + 16;
  out.segment_bytes = wopt.segment_bytes;
  log::LogWriter writer(wopt);
  std::vector<core::Event> events;
  for (std::size_t i = 0; i < 2 * out.per_segment + 10; ++i) {
    events.push_back(core::ev::try_commit(static_cast<core::TxId>(i)));
  }
  EXPECT_TRUE(writer.append(events)) << writer.error();
  EXPECT_TRUE(writer.close()) << writer.error();
  EXPECT_EQ(writer.segments_written(), 3u);
  out.total_events = events.size();
  for (const auto& entry : fs::directory_iterator(out.dir)) {
    out.files.push_back(entry.path());
  }
  std::sort(out.files.begin(), out.files.end());
  return out;
}

TEST(LogTruncation, ZeroSubHeaderResidualReadsClean) {
  const ResidualLog rlog = build_residual_log("residual_clean");
  const auto out = replay(rlog.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_FALSE(out.torn);
  EXPECT_EQ(out.events.size(), rlog.total_events);
  fs::remove_all(rlog.dir);
}

TEST(LogTruncation, NonzeroSubHeaderResidualInNonFinalSegmentIsHardError) {
  const ResidualLog rlog = build_residual_log("residual_nonfinal");
  // A nonzero byte inside a rotated segment's residual is damage in a
  // non-final segment: hard error, never silent recovery.
  flip_byte(rlog.files[0], rlog.segment_bytes - 8);
  const auto out = replay(rlog.dir);
  EXPECT_FALSE(out.reader_ok);
  certify_never_crashes(rlog.dir);
  fs::remove_all(rlog.dir);
}

TEST(LogTruncation, NonzeroSubHeaderResidualInFinalSegmentIsTornTail) {
  const ResidualLog rlog = build_residual_log("residual_final");
  // Drop the tail segment so a full-packed residual segment becomes
  // final, then dirty its residual: recovered as a torn tail with every
  // event before the residual intact.
  fs::remove(rlog.files[2]);
  flip_byte(rlog.files[1], rlog.segment_bytes - 8);
  const auto out = replay(rlog.dir);
  EXPECT_TRUE(out.reader_ok);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.events.size(), 2 * rlog.per_segment);
  certify_never_crashes(rlog.dir);
  fs::remove_all(rlog.dir);
}

TEST(LogTruncation, EmptyDirectoryIsOperationalError) {
  const fs::path dir = scratch_root() / "empty_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  log::LogReader reader;
  EXPECT_FALSE(reader.open(dir.string()));
  fs::remove_all(dir);
}

}  // namespace
