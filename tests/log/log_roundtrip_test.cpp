// Round-trip tests for the durable segmented event log (src/log/):
// record → drain through a live LogWriterSink → read back → byte-equal
// events, plus verdict/flag-position equivalence between disk-streamed
// and in-RAM verification across all four version-order policies.
//
// The writer runs LIVE on the pump thread while the mix records (that is
// the production shape, and it is what the TSan job exercises here).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/stream_verify.hpp"
#include "log/log_sink.hpp"
#include "log/reader.hpp"
#include "log/writer.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace optm;

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("optm_log_rt_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct Recording {
  core::History history;   // the in-RAM ground truth
  std::string dir;         // the log written live next to it
  std::uint64_t segments = 0;
};

/// Run a recorded mix with the drain pump tee'ing every batch into BOTH
/// an in-RAM history and a live log writer (segment_bytes small enough to
/// force rotation), concurrently with the recording threads.
Recording record_with_live_log(const std::string& stm_name, bool window_free,
                               std::uint64_t seed, const std::string& tag,
                               std::uint32_t threads = 3,
                               std::uint64_t txs_per_thread = 400) {
  Recording out;
  out.dir = fresh_dir(tag);

  const std::uint32_t vars = 16;
  auto stm = stm::make_stm(stm_name, vars);
  if (window_free) {
    EXPECT_TRUE(stm->set_window_free(true));
  }
  stm::Recorder recorder(vars);
  stm->set_recorder(&recorder);

  log::WriterOptions wopt;
  wopt.directory = out.dir;
  wopt.segment_bytes = 64 * 1024;  // ~1300 events/segment: many segments
  wopt.metadata.runtime = stm_name;
  wopt.metadata.policy = "commit-order";
  wopt.metadata.window_mode = window_free ? "window-free" : "windowed";
  wopt.metadata.num_vars = vars;
  wopt.metadata.threads = threads;
  log::LogWriter writer(wopt);
  log::LogWriterSink log_sink(writer);

  core::History ram(recorder.model());
  stm::HistoryAppendSink ram_sink(ram);
  stm::TeeSink tee{&ram_sink, &log_sink};

  std::atomic<bool> done{false};
  stm::DrainPump pump(recorder, tee);
  stm::DrainPump::Stats stats;
  std::thread pumper([&] { stats = pump.run(done); });

  wl::MixParams mix;
  mix.threads = threads;
  mix.vars = vars;
  mix.txs_per_thread = txs_per_thread;
  mix.ops_per_tx = 4;
  mix.seed = seed;
  (void)wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  pumper.join();

  EXPECT_TRUE(stats.sink_ok) << writer.error();
  EXPECT_EQ(stats.events, recorder.num_events());
  out.history = recorder.history();
  out.segments = writer.segments_written();
  return out;
}

std::vector<core::Event> read_all(const std::string& dir,
                                  log::LogReader& reader) {
  std::vector<core::Event> events;
  EXPECT_TRUE(reader.open(dir)) << reader.error();
  for (auto batch = reader.next(); !batch.empty(); batch = reader.next()) {
    events.insert(events.end(), batch.begin(), batch.end());
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  return events;
}

TEST(LogRoundTrip, DirectoryFsyncCoversEverySegmentAndTheClose) {
  // Durability regression: each segment's directory entry must be fsync'd
  // when the segment is created (a crash after rotation must not lose a
  // fully-msync'd mid-log segment to a vanished entry — recovery would
  // hard-fail on the hole), and close() must seal the directory once more
  // after the tail truncation. The counter is the observable: one dir
  // fsync per segment created, plus one at close.
  const std::string dir = fresh_dir("dirsync");
  log::WriterOptions wopt;
  wopt.directory = dir;
  wopt.segment_bytes = 64 * 1024;  // force rotation
  wopt.metadata.num_vars = 4;
  log::LogWriter writer(wopt);
  ASSERT_TRUE(writer.ok()) << writer.error();
  EXPECT_EQ(writer.dir_fsyncs(), 0u);  // nothing durable yet

  std::vector<core::Event> batch;
  for (int i = 0; i < 128; ++i) {
    batch.push_back(core::ev::commit(static_cast<core::TxId>(i + 1)));
  }
  while (writer.segments_written() < 3) {
    ASSERT_TRUE(writer.append(batch)) << writer.error();
  }
  // Every segment creation sync'd the directory entry before any block
  // landed in the segment.
  EXPECT_EQ(writer.dir_fsyncs(), writer.segments_written());

  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_EQ(writer.dir_fsyncs(), writer.segments_written() + 1);

  // The log still reads back clean (the fsyncs changed durability, not
  // content).
  log::LogReader reader;
  const auto events = read_all(dir, reader);
  EXPECT_EQ(events.size(), writer.events_written());
  std::filesystem::remove_all(dir);
}

TEST(LogRoundTrip, LiveWriterByteEqualAcrossRuntimes) {
  struct Config {
    const char* stm;
    bool window_free;
  };
  const Config configs[] = {
      {"tl2", false}, {"tl2", true}, {"mv", true}, {"dstm", true},
      {"norec", false},
  };
  int tag = 0;
  for (const Config& c : configs) {
    SCOPED_TRACE(std::string(c.stm) +
                 (c.window_free ? "/window-free" : "/windowed"));
    const Recording rec = record_with_live_log(
        c.stm, c.window_free, /*seed=*/77 + tag, "br" + std::to_string(tag));
    ++tag;
    EXPECT_GE(rec.segments, 2u) << "rotation not exercised";

    log::LogReader reader;
    const std::vector<core::Event> from_disk = read_all(rec.dir, reader);
    ASSERT_EQ(from_disk.size(), rec.history.size());
    for (std::size_t i = 0; i < from_disk.size(); ++i) {
      ASSERT_EQ(from_disk[i], rec.history[i]) << "event " << i;
    }
    EXPECT_FALSE(reader.tail_dropped());
    EXPECT_EQ(reader.metadata().runtime, c.stm);
    EXPECT_EQ(reader.metadata().num_vars, 16u);
    std::filesystem::remove_all(rec.dir);
  }
}

TEST(LogRoundTrip, VerdictEquivalenceDiskVsRamAllPolicies) {
  // Two corpora: a clean clock run, and an mv window-free run whose C
  // records drift — the commit-order policy flags the latter, so the
  // equivalence is exercised on both verdicts.
  struct Corpus {
    const char* stm;
    bool window_free;
  };
  const Corpus corpora[] = {{"tl2", false}, {"mv", true}};
  const core::VersionOrderPolicy policies[] = {
      core::VersionOrderPolicy::kCommitOrder,
      core::VersionOrderPolicy::kBlindWriteSmart,
      core::VersionOrderPolicy::kSnapshotRank,
      core::VersionOrderPolicy::kStampedRead,
  };
  int tag = 0;
  for (const Corpus& c : corpora) {
    const Recording rec = record_with_live_log(c.stm, c.window_free,
                                               /*seed=*/1234 + tag,
                                               "vd" + std::to_string(tag));
    ++tag;
    for (const auto policy : policies) {
      SCOPED_TRACE(std::string(c.stm) + " under " + to_string(policy));

      // In-RAM baseline: the streaming monitor over the ground truth.
      core::OnlineCertificateMonitor ram_monitor(rec.history.model(), policy);
      (void)ram_monitor.ingest(rec.history.events());

      // Disk-streamed, windows far smaller than the recording so the
      // bounded-memory monitor path runs.
      log::LogReader streamed;
      ASSERT_TRUE(streamed.open(rec.dir)) << streamed.error();
      core::StreamVerifyOptions small;
      small.policy = policy;
      small.window_events = 512;
      const auto via_stream = core::verify_event_stream(
          rec.history.model(), [&streamed] { return streamed.next(); }, small);
      EXPECT_TRUE(streamed.ok()) << streamed.error();
      EXPECT_FALSE(via_stream.used_sharded_driver);

      // Disk-streamed again with a window larger than the log, so the
      // sharded parallel driver path runs instead.
      log::LogReader buffered;
      ASSERT_TRUE(buffered.open(rec.dir)) << buffered.error();
      core::StreamVerifyOptions big;
      big.policy = policy;
      big.window_events = rec.history.size() + 1;
      big.num_shards = 4;
      const auto via_driver = core::verify_event_stream(
          rec.history.model(), [&buffered] { return buffered.next(); }, big);
      EXPECT_TRUE(buffered.ok()) << buffered.error();
      EXPECT_TRUE(via_driver.used_sharded_driver);

      for (const auto* disk : {&via_stream, &via_driver}) {
        EXPECT_EQ(disk->events, rec.history.size());
        EXPECT_EQ(disk->certified, ram_monitor.ok());
        ASSERT_EQ(disk->violation.has_value(),
                  ram_monitor.violation().has_value());
        if (disk->violation.has_value()) {
          EXPECT_EQ(disk->violation->pos, ram_monitor.violation()->pos);
          EXPECT_EQ(disk->violation->kind, ram_monitor.violation()->kind);
        }
      }
    }
    std::filesystem::remove_all(rec.dir);
  }
}

TEST(LogRoundTrip, FullPackedSegmentSubHeaderResidualReadsClean) {
  // The 4 KiB segment header is 16 mod 24 and blocks are 24+48n bytes, so
  // a segment whose capacity is 16 mod 24 past the header can pack FULL,
  // leaving a 16-byte zeroed residual — shorter than a BlockHeader.
  // Production sizes land in this residue class (2 MiB, the documented
  // 8 MiB --segment-bytes example); rotated segments with such a residual
  // must read back clean, not be rejected as a torn tail.
  const std::string dir = fresh_dir("residual");
  const std::size_t per_segment = 100;  // events in a full-packed segment
  log::WriterOptions wopt;
  wopt.directory = dir;
  wopt.segment_bytes = log::kSegmentHeaderBytes + sizeof(log::BlockHeader) +
                       per_segment * sizeof(core::Event) + 16;
  log::LogWriter writer(wopt);

  std::vector<core::Event> events;
  for (std::size_t i = 0; i < 2 * per_segment + per_segment / 2; ++i) {
    events.push_back(core::ev::try_commit(static_cast<core::TxId>(i)));
  }
  ASSERT_TRUE(writer.append(events)) << writer.error();
  ASSERT_TRUE(writer.close()) << writer.error();
  // Two full-packed rotated segments (16-byte residual each) + the tail.
  EXPECT_EQ(writer.segments_written(), 3u);

  log::LogReader reader;
  const std::vector<core::Event> from_disk = read_all(dir, reader);
  ASSERT_EQ(from_disk.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(from_disk[i], events[i]) << "event " << i;
  }
  EXPECT_FALSE(reader.tail_dropped());
  EXPECT_EQ(reader.dropped_bytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(LogRoundTrip, EmptyLogKeepsMetadata) {
  const std::string dir = fresh_dir("empty");
  {
    log::WriterOptions wopt;
    wopt.directory = dir;
    wopt.metadata.runtime = "tl2";
    wopt.metadata.policy = "stamped-read";
    wopt.metadata.window_mode = "window-free";
    wopt.metadata.num_vars = 8;
    log::LogWriter writer(wopt);
    EXPECT_TRUE(writer.close());
  }
  log::LogReader reader;
  ASSERT_TRUE(reader.open(dir)) << reader.error();
  EXPECT_TRUE(reader.next().empty());
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.events_read(), 0u);
  EXPECT_EQ(reader.metadata().runtime, "tl2");
  EXPECT_EQ(reader.metadata().policy, "stamped-read");
  EXPECT_EQ(reader.metadata().window_mode, "window-free");
  EXPECT_EQ(reader.metadata().num_vars, 8u);
  std::filesystem::remove_all(dir);
}

// A LogWriter pointed at a directory that already holds segments must
// refuse up front rather than clobber or interleave with the old log:
// the reader sorts by name, so a silent second writer would splice two
// histories into one stream.
TEST(LogRoundTrip, RefusesExistingLogDirectory) {
  const std::string dir = fresh_dir("refuse");
  {
    log::WriterOptions wopt;
    wopt.directory = dir;
    log::LogWriter writer(wopt);
    const core::Event e = core::ev::try_commit(1);
    ASSERT_TRUE(writer.append({&e, 1}));
    ASSERT_TRUE(writer.close()) << writer.error();
  }
  for (const bool pipeline : {true, false}) {
    log::WriterOptions wopt;
    wopt.directory = dir;
    wopt.pipeline = pipeline;
    log::LogWriter writer(wopt);
    EXPECT_FALSE(writer.ok()) << "pipeline=" << pipeline;
    EXPECT_NE(writer.error().find("refusing to overwrite existing log"),
              std::string::npos)
        << writer.error();
    const core::Event e = core::ev::try_commit(2);
    EXPECT_FALSE(writer.append({&e, 1}));
  }
  // The original log is untouched and still reads back.
  log::LogReader reader;
  ASSERT_TRUE(reader.open(dir)) << reader.error();
  EXPECT_EQ(reader.next().size(), 1u);
  EXPECT_TRUE(reader.ok()) << reader.error();
  std::filesystem::remove_all(dir);
}

TEST(LogRoundTrip, AppendAfterCloseFails) {
  const std::string dir = fresh_dir("closed");
  log::WriterOptions wopt;
  wopt.directory = dir;
  log::LogWriter writer(wopt);
  const core::Event e = core::ev::try_commit(1);
  EXPECT_TRUE(writer.append({&e, 1}));
  EXPECT_TRUE(writer.close());
  EXPECT_FALSE(writer.append({&e, 1}));
  std::filesystem::remove_all(dir);
}

}  // namespace
