# Empty dependencies file for online_monitor_demo.
# This may be replaced when dependencies are built.
