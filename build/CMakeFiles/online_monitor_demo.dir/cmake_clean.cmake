file(REMOVE_RECURSE
  "CMakeFiles/online_monitor_demo.dir/examples/online_monitor_demo.cpp.o"
  "CMakeFiles/online_monitor_demo.dir/examples/online_monitor_demo.cpp.o.d"
  "online_monitor_demo"
  "online_monitor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_monitor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
