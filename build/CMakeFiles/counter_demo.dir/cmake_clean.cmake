file(REMOVE_RECURSE
  "CMakeFiles/counter_demo.dir/examples/counter_demo.cpp.o"
  "CMakeFiles/counter_demo.dir/examples/counter_demo.cpp.o.d"
  "counter_demo"
  "counter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
