# Empty dependencies file for counter_demo.
# This may be replaced when dependencies are built.
