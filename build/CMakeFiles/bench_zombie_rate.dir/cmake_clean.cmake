file(REMOVE_RECURSE
  "CMakeFiles/bench_zombie_rate.dir/bench/bench_zombie_rate.cpp.o"
  "CMakeFiles/bench_zombie_rate.dir/bench/bench_zombie_rate.cpp.o.d"
  "bench_zombie_rate"
  "bench_zombie_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zombie_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
