# Empty dependencies file for bench_zombie_rate.
# This may be replaced when dependencies are built.
