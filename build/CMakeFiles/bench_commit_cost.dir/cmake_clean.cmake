file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_cost.dir/bench/bench_commit_cost.cpp.o"
  "CMakeFiles/bench_commit_cost.dir/bench/bench_commit_cost.cpp.o.d"
  "bench_commit_cost"
  "bench_commit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
