# Empty dependencies file for bench_commit_cost.
# This may be replaced when dependencies are built.
