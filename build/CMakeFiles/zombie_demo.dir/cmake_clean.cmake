file(REMOVE_RECURSE
  "CMakeFiles/zombie_demo.dir/examples/zombie_demo.cpp.o"
  "CMakeFiles/zombie_demo.dir/examples/zombie_demo.cpp.o.d"
  "zombie_demo"
  "zombie_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zombie_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
