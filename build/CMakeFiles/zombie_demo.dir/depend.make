# Empty dependencies file for zombie_demo.
# This may be replaced when dependencies are built.
