file(REMOVE_RECURSE
  "CMakeFiles/bench_contention_managers.dir/bench/bench_contention_managers.cpp.o"
  "CMakeFiles/bench_contention_managers.dir/bench/bench_contention_managers.cpp.o.d"
  "bench_contention_managers"
  "bench_contention_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
