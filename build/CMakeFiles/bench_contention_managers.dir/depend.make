# Empty dependencies file for bench_contention_managers.
# This may be replaced when dependencies are built.
