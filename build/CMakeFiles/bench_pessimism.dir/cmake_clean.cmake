file(REMOVE_RECURSE
  "CMakeFiles/bench_pessimism.dir/bench/bench_pessimism.cpp.o"
  "CMakeFiles/bench_pessimism.dir/bench/bench_pessimism.cpp.o.d"
  "bench_pessimism"
  "bench_pessimism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pessimism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
