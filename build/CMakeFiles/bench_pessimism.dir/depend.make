# Empty dependencies file for bench_pessimism.
# This may be replaced when dependencies are built.
