file(REMOVE_RECURSE
  "CMakeFiles/nesting_demo.dir/examples/nesting_demo.cpp.o"
  "CMakeFiles/nesting_demo.dir/examples/nesting_demo.cpp.o.d"
  "nesting_demo"
  "nesting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nesting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
