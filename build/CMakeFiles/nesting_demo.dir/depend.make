# Empty dependencies file for nesting_demo.
# This may be replaced when dependencies are built.
