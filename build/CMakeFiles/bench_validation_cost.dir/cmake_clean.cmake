file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_cost.dir/bench/bench_validation_cost.cpp.o"
  "CMakeFiles/bench_validation_cost.dir/bench/bench_validation_cost.cpp.o.d"
  "bench_validation_cost"
  "bench_validation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
