# Empty dependencies file for bench_validation_cost.
# This may be replaced when dependencies are built.
