# Empty dependencies file for bench_multiversion_readers.
# This may be replaced when dependencies are built.
