file(REMOVE_RECURSE
  "CMakeFiles/bench_multiversion_readers.dir/bench/bench_multiversion_readers.cpp.o"
  "CMakeFiles/bench_multiversion_readers.dir/bench/bench_multiversion_readers.cpp.o.d"
  "bench_multiversion_readers"
  "bench_multiversion_readers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiversion_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
