file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_aborts.dir/bench/bench_progressive_aborts.cpp.o"
  "CMakeFiles/bench_progressive_aborts.dir/bench/bench_progressive_aborts.cpp.o.d"
  "bench_progressive_aborts"
  "bench_progressive_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
