# Empty dependencies file for bench_progressive_aborts.
# This may be replaced when dependencies are built.
