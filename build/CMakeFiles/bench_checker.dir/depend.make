# Empty dependencies file for bench_checker.
# This may be replaced when dependencies are built.
