file(REMOVE_RECURSE
  "CMakeFiles/bench_checker.dir/bench/bench_checker.cpp.o"
  "CMakeFiles/bench_checker.dir/bench/bench_checker.cpp.o.d"
  "bench_checker"
  "bench_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
