# Empty dependencies file for multiversion_demo.
# This may be replaced when dependencies are built.
