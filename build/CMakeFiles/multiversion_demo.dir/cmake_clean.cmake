file(REMOVE_RECURSE
  "CMakeFiles/multiversion_demo.dir/examples/multiversion_demo.cpp.o"
  "CMakeFiles/multiversion_demo.dir/examples/multiversion_demo.cpp.o.d"
  "multiversion_demo"
  "multiversion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiversion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
