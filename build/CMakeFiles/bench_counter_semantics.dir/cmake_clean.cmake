file(REMOVE_RECURSE
  "CMakeFiles/bench_counter_semantics.dir/bench/bench_counter_semantics.cpp.o"
  "CMakeFiles/bench_counter_semantics.dir/bench/bench_counter_semantics.cpp.o.d"
  "bench_counter_semantics"
  "bench_counter_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
