# Empty dependencies file for bench_counter_semantics.
# This may be replaced when dependencies are built.
