# Empty dependencies file for checker_tool.
# This may be replaced when dependencies are built.
