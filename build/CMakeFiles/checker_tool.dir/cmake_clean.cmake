file(REMOVE_RECURSE
  "CMakeFiles/checker_tool.dir/examples/checker_tool.cpp.o"
  "CMakeFiles/checker_tool.dir/examples/checker_tool.cpp.o.d"
  "checker_tool"
  "checker_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
