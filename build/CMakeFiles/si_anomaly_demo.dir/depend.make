# Empty dependencies file for si_anomaly_demo.
# This may be replaced when dependencies are built.
