file(REMOVE_RECURSE
  "CMakeFiles/si_anomaly_demo.dir/examples/si_anomaly_demo.cpp.o"
  "CMakeFiles/si_anomaly_demo.dir/examples/si_anomaly_demo.cpp.o.d"
  "si_anomaly_demo"
  "si_anomaly_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_anomaly_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
