# Empty dependencies file for bench_adaptive.
# This may be replaced when dependencies are built.
