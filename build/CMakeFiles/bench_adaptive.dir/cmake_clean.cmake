file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive.dir/bench/bench_adaptive.cpp.o"
  "CMakeFiles/bench_adaptive.dir/bench/bench_adaptive.cpp.o.d"
  "bench_adaptive"
  "bench_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
