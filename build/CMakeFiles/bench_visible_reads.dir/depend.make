# Empty dependencies file for bench_visible_reads.
# This may be replaced when dependencies are built.
