file(REMOVE_RECURSE
  "CMakeFiles/bench_visible_reads.dir/bench/bench_visible_reads.cpp.o"
  "CMakeFiles/bench_visible_reads.dir/bench/bench_visible_reads.cpp.o.d"
  "bench_visible_reads"
  "bench_visible_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_visible_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
