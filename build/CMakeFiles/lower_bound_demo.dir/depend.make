# Empty dependencies file for lower_bound_demo.
# This may be replaced when dependencies are built.
