file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_demo.dir/examples/lower_bound_demo.cpp.o"
  "CMakeFiles/lower_bound_demo.dir/examples/lower_bound_demo.cpp.o.d"
  "lower_bound_demo"
  "lower_bound_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
