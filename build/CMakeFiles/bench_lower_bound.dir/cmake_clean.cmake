file(REMOVE_RECURSE
  "CMakeFiles/bench_lower_bound.dir/bench/bench_lower_bound.cpp.o"
  "CMakeFiles/bench_lower_bound.dir/bench/bench_lower_bound.cpp.o.d"
  "bench_lower_bound"
  "bench_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
