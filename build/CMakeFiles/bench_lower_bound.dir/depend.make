# Empty dependencies file for bench_lower_bound.
# This may be replaced when dependencies are built.
