file(REMOVE_RECURSE
  "CMakeFiles/bench_online_checker.dir/bench/bench_online_checker.cpp.o"
  "CMakeFiles/bench_online_checker.dir/bench/bench_online_checker.cpp.o.d"
  "bench_online_checker"
  "bench_online_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
