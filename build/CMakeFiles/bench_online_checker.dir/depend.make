# Empty dependencies file for bench_online_checker.
# This may be replaced when dependencies are built.
