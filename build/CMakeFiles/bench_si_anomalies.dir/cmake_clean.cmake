file(REMOVE_RECURSE
  "CMakeFiles/bench_si_anomalies.dir/bench/bench_si_anomalies.cpp.o"
  "CMakeFiles/bench_si_anomalies.dir/bench/bench_si_anomalies.cpp.o.d"
  "bench_si_anomalies"
  "bench_si_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_si_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
