# Empty dependencies file for bench_si_anomalies.
# This may be replaced when dependencies are built.
