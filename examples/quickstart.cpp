// Quickstart: concurrent bank transfers over the STM public API.
//
//   build/examples/quickstart --stm=tl2 --threads=4 --accounts=32
//
// Shows the three layers of the library in ~100 lines:
//   1. pick an STM implementation (stm::make_stm),
//   2. run transactions with stm::atomically + TxHandle,
//   3. (optionally) record the execution and let the opacity machinery
//      verify it (core::verify_opacity_certificate) — the paper's
//      Theorem 2 as a runtime checker.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/opacity_graph.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  optm::util::Cli cli("quickstart", "concurrent bank transfers on an STM");
  cli.flag("stm", "tl2",
           "tl2 | tiny | dstm | astm | visible | mv | sistm | norec | weak "
           "| glock | twopl");
  cli.flag("threads", std::int64_t{4}, "worker threads");
  cli.flag("accounts", std::int64_t{32}, "number of accounts");
  cli.flag("transfers", std::int64_t{2000}, "transfers per thread");
  cli.flag("verify", "false", "record the run and certificate-check opacity");
  if (!cli.parse(argc, argv)) return 1;

  const auto threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  const auto accounts = static_cast<std::uint32_t>(cli.get_int("accounts"));
  const auto transfers = static_cast<std::uint64_t>(cli.get_int("transfers"));
  constexpr std::uint64_t kInitialBalance = 1000;

  const auto stm = optm::stm::make_stm(cli.get("stm"), accounts);
  optm::stm::Recorder recorder(accounts);
  if (cli.get_bool("verify")) stm->set_recorder(&recorder);

  // Fund the accounts in one priming transaction.
  {
    optm::sim::ThreadCtx ctx(0);
    (void)optm::stm::atomically(*stm, ctx, [&](optm::stm::TxHandle& tx) {
      for (optm::stm::VarId a = 0; a < accounts; ++a)
        tx.write(a, kInitialBalance);
    });
  }

  // Concurrent random transfers.
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      optm::sim::ThreadCtx ctx(i);
      optm::util::Xoshiro256 rng(optm::util::stream_seed(7, i));
      for (std::uint64_t t = 0; t < transfers; ++t) {
        const auto from = static_cast<optm::stm::VarId>(rng.below(accounts));
        auto to = static_cast<optm::stm::VarId>(rng.below(accounts));
        if (to == from) to = (to + 1) % accounts;
        const std::uint64_t amount = rng.below(20) + 1;
        (void)optm::stm::atomically(*stm, ctx, [&](optm::stm::TxHandle& tx) {
          const std::uint64_t balance = tx.read(from);
          if (balance < amount) return;  // commit as a read-only no-op
          tx.write(from, balance - amount);
          tx.write(to, tx.read(to) + amount);
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  // Audit: total money must be conserved.
  std::uint64_t total = 0;
  {
    optm::sim::ThreadCtx ctx(0);
    (void)optm::stm::atomically(*stm, ctx, [&](optm::stm::TxHandle& tx) {
      total = 0;
      for (optm::stm::VarId a = 0; a < accounts; ++a) total += tx.read(a);
    });
  }
  const std::uint64_t expected = static_cast<std::uint64_t>(accounts) * kInitialBalance;
  std::printf("stm=%s threads=%u accounts=%u transfers/thread=%llu\n",
              cli.get("stm").c_str(), threads, accounts,
              static_cast<unsigned long long>(transfers));
  std::printf("total money: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected),
              total == expected ? "CONSERVED" : "VIOLATED");

  if (cli.get_bool("verify")) {
    // Note: bank balances are not value-unique, so the certificate checker
    // cannot resolve reads-from here; we verify well-formedness and report
    // the recorded size. For full opacity verification see checker_tool
    // (unique-value workloads) and the recorded_opacity tests.
    const auto history = recorder.history();
    std::string why;
    std::printf("recorded %zu events; well-formed: %s\n", history.size(),
                history.well_formed(&why) ? "yes" : why.c_str());
  }
  return total == expected ? 0 : 2;
}
