// Streaming opacity monitoring — §5.2's "at each time the history of all
// events issued so far must be opaque", live.
//
//   build/online_monitor_demo --stm=weak
//
// Attaches a recorder to an STM, replays the §2 zombie interleaving, and
// feeds the recorded events one at a time into BOTH online monitors. For
// an opaque STM the stream stays clean; for WeakStm the monitors flag the
// exact read response at which the live transaction's snapshot tore.
// Afterwards, the paper's own Figure 1 history is streamed through the
// definitional monitor for comparison, and finally the full recorded-mode
// pipeline runs at scale: a multi-threaded mix records into the sharded
// recorder while a verifier thread drains stamp-contiguous batches into
// the certificate monitor, and the same history is re-checked offline by
// the sharded parallel driver.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/paper.hpp"
#include "core/parallel_verify.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/cli_flags.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

namespace {

void report(const char* label,
            const std::optional<optm::core::OnlineViolation>& violation,
            const optm::core::History& h) {
  if (!violation) {
    std::printf("%-24s clean (%zu events)\n", label, h.size());
    return;
  }
  std::printf("%-24s VIOLATION at event %zu: %s\n", label, violation->pos,
              violation->reason.c_str());
  std::printf("%-24s   offending event: %s\n", label,
              optm::core::to_string(h[violation->pos]).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  optm::util::Cli cli("online_monitor_demo", "streaming opacity monitors");
  optm::stm::RunFlags defaults;
  defaults.stm = "weak";
  optm::stm::add_run_flags(cli, defaults);
  if (!cli.parse(argc, argv)) return 1;
  const auto flags = optm::stm::parse_run_flags(cli);
  if (!flags) return 1;

  // The §2 interleaving: T1 reads x before, and y after, T2's commit.
  const auto stm = optm::stm::make_run_stm(*flags, 2);
  if (stm == nullptr) return 1;
  optm::stm::Recorder recorder(2,
                               optm::stm::Recorder::Options{flags->stamp_batch});
  stm->set_recorder(&recorder);
  {
    optm::sim::ThreadCtx p1(0);
    optm::sim::ThreadCtx p2(1);
    stm->begin(p1);
    std::uint64_t x = 0;
    const bool r1 = stm->read(p1, 0, x);
    stm->begin(p2);
    (void)(stm->write(p2, 0, 1) && stm->write(p2, 1, 2) && stm->commit(p2));
    if (r1) {
      std::uint64_t y = 0;
      if (stm->read(p1, 1, y)) (void)stm->commit(p1);
    }
  }
  const optm::core::History h = recorder.history();
  std::printf("--- recorded run of '%s' (%zu events) ---\n",
              cli.get("stm").c_str(), h.size());

  optm::core::OnlineDefinitionalMonitor definitional(h.model());
  optm::core::OnlineCertificateMonitor certificate(h.model());
  for (const optm::core::Event& e : h.events()) {
    (void)definitional.feed(e);
    (void)certificate.feed(e);
  }
  report("definitional monitor:", definitional.violation(), h);
  report("certificate monitor:", certificate.violation(), h);

  // The paper's Figure 1, streamed: global atomicity and recoverability
  // hold, yet the prefix ending at T2's second read is already non-opaque.
  const optm::core::History h1 = optm::core::paper::fig1_h1();
  std::printf("--- paper Figure 1 (H1, %zu events) ---\n", h1.size());
  optm::core::OnlineDefinitionalMonitor fig1(h1.model());
  for (const optm::core::Event& e : h1.events()) (void)fig1.feed(e);
  report("definitional monitor:", fig1.violation(), h1);

  // The recorded-mode pipeline at scale: record a multi-threaded mix into
  // the sharded recorder while draining batches into the certificate
  // monitor, live.
  std::printf("--- live verified mix (tl2, 4 threads) ---\n");
  const auto live_stm = optm::stm::make_stm("tl2", 32);
  optm::stm::Recorder live_recorder(32);
  live_stm->set_recorder(&live_recorder);
  optm::core::OnlineCertificateMonitor live_monitor(live_recorder.model(),
                                                    flags->policy);
  // The shared drain loop: MonitorSink adapts the monitor to the
  // EventSink interface and DrainPump runs the self-paced poll/drain
  // cadence (same pump the soak driver and the log writer use).
  optm::stm::MonitorSink live_sink(live_monitor);
  optm::stm::DrainPump pump(live_recorder, live_sink);
  std::atomic<bool> done{false};
  optm::stm::DrainPump::Stats pump_stats;
  std::thread verifier([&] { pump_stats = pump.run(done); });
  optm::wl::MixParams mix;
  mix.threads = 4;
  mix.vars = 32;
  mix.txs_per_thread = 2000;
  mix.seed = 7;
  (void)optm::wl::run_random_mix(*live_stm, mix);
  done.store(true, std::memory_order_release);
  verifier.join();
  std::printf("live certificate:        %s (%zu events in %zu batches)\n",
              live_monitor.ok() ? "clean" : "VIOLATION",
              live_monitor.events_fed(), pump_stats.batches);

  // ... and the same history re-verified offline by the sharded parallel
  // driver (register shards checked concurrently, ranks precomputed).
  const optm::core::History big = live_recorder.history();
  optm::core::ShardVerifyOptions options;
  options.num_shards = 4;
  const auto offline = optm::core::verify_history_sharded(big, options);
  std::printf("sharded offline driver:  %s (%zu events, %zu shards)\n",
              offline.certified ? "certified" : "FLAGGED", offline.events,
              offline.shards_used);
  return 0;
}
