// H4's multi-version optimization (§5.2), across the whole design space:
//
//   build/examples/multiversion_demo --vars=8 --writer-rounds=4
//
// A long read-only transaction scans all variables while a writer
// overwrites everything between every two reads. The paper: "Multi-version
// TMs ... use such optimizations to allow long read-only transactions to
// commit despite concurrent updates." Single-version TMs must abort the
// reader; the pessimistic 2PL baseline blocks the writers instead.
#include <cstdio>

#include "stm/factory.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
  optm::util::Cli cli("multiversion_demo", "the H4 long-reader probe");
  cli.flag("vars", std::int64_t{8}, "variables scanned by the long reader");
  cli.flag("writer-rounds", std::int64_t{4}, "writer generations during the scan");
  if (!cli.parse(argc, argv)) return 1;

  const auto vars = static_cast<std::uint32_t>(cli.get_int("vars"));
  const auto rounds = static_cast<std::uint64_t>(cli.get_int("writer-rounds"));

  std::printf("%-14s %-10s %-10s %-12s %s\n", "stm", "reads-ok", "committed",
              "writer-txs", "snapshot");
  for (const char* name : {"tl2", "tiny", "dstm", "astm", "norec",
                           "visible", "mv", "sistm", "weak",
                           "twopl-nowait"}) {
    const auto stm = optm::stm::make_stm(name, vars);
    const optm::wl::LongReaderProbe probe =
        optm::wl::long_reader_probe(*stm, vars, rounds);
    std::printf("%-14s %-10s %-10s %-12llu %s\n", name,
                probe.reads_succeeded ? "yes" : "ABORTED",
                probe.reader_committed ? "yes" : "no",
                static_cast<unsigned long long>(probe.writer_commits),
                !probe.reads_succeeded      ? "-"
                : probe.snapshot_consistent ? "consistent (old)"
                                            : "TORN");
  }
  std::printf(
      "\nmv/sistm serve the begin-time snapshot (H4); single-version TMs\n"
      "abort the reader; weak returns torn values; twopl kills the writers.\n");
  return 0;
}
