// §3.4 of the paper: why the TM model must admit objects richer than
// read/write registers.
//
// k threads increment one shared counter. Two encodings of "increment":
//   register encoding  — read x; write x+1  (every pair of increments
//                        conflicts; under contention, aborts and retries)
//   semantic encoding  — a commutative counter increment (never conflicts;
//                        zero aborts, regardless of contention)
//
//   build/examples/counter_demo --threads=4 --increments=20000
#include <cstdio>

#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/tvar.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/workloads.hpp"

namespace {

/// §3.4's conflict, deterministically: two transactions increment the same
/// counter concurrently. With the register encoding both read the same
/// value, so only one may commit; with the semantic encoding both commit.
void deterministic_conflict() {
  std::printf("[deterministic §3.4 schedule] two concurrent increments:\n");

  // Register encoding: read x, write x+1, interleaved.
  {
    const auto stm = optm::stm::make_stm("tl2", 1);
    optm::sim::ThreadCtx p1(0);
    optm::sim::ThreadCtx p2(1);
    stm->begin(p1);
    stm->begin(p2);
    std::uint64_t v1 = 0, v2 = 0;
    (void)stm->read(p1, 0, v1);  // both read 0
    (void)stm->read(p2, 0, v2);
    (void)stm->write(p1, 0, v1 + 1);
    (void)stm->write(p2, 0, v2 + 1);
    const bool c1 = stm->commit(p1);
    const bool c2 = stm->commit(p2);
    std::printf("  register encoding: T1 %s, T2 %s (both read 0 -> only one "
                "may commit)\n",
                c1 ? "committed" : "ABORTED", c2 ? "committed" : "ABORTED");
  }

  // Semantic encoding: commutative deltas, no shared read, no conflict.
  {
    const auto stm = optm::stm::make_stm("tl2", 1);
    optm::stm::TCounter counter;
    optm::sim::ThreadCtx p1(0);
    optm::sim::ThreadCtx p2(1);
    stm->begin(p1);
    stm->begin(p2);
    counter.inc(p1);
    counter.inc(p2);
    const bool c1 = stm->commit(p1);
    const bool c2 = stm->commit(p2);
    if (c1) counter.apply_deltas(p1);
    if (c2) counter.apply_deltas(p2);
    std::printf("  semantic encoding: T1 %s, T2 %s, final value %lld "
                "(inc commutes -> no conflict)\n\n",
                c1 ? "committed" : "ABORTED", c2 ? "committed" : "ABORTED",
                static_cast<long long>(counter.value()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  optm::util::Cli cli("counter_demo",
                      "semantic vs register counter increments (§3.4)");
  cli.flag("threads", std::int64_t{4}, "incrementing threads");
  cli.flag("increments", std::int64_t{5000}, "increments per thread");
  if (!cli.parse(argc, argv)) return 1;

  const auto threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  const auto increments = static_cast<std::uint64_t>(cli.get_int("increments"));

  deterministic_conflict();

  optm::util::Table table({"stm", "encoding", "final value", "commits",
                           "aborts", "abort ratio"});
  bool all_exact = true;

  for (const auto stm_name : {"tl2", "dstm", "visible"}) {
    for (const bool semantic : {false, true}) {
      const auto stm = optm::stm::make_stm(stm_name, 2);
      optm::wl::CounterParams params;
      params.threads = threads;
      params.increments_per_thread = increments;
      params.semantic = semantic;
      const auto result = optm::wl::run_counter(*stm, params);

      const auto expected =
          static_cast<std::int64_t>(threads) * static_cast<std::int64_t>(increments);
      all_exact &= result.final_value == expected;
      table.add_row({std::string(stm_name),
                     semantic ? "semantic inc" : "register r/w",
                     optm::util::Table::num(result.final_value),
                     optm::util::Table::num(result.run.commits),
                     optm::util::Table::num(result.run.aborts),
                     optm::util::Table::num(result.run.abort_ratio(), 3)});
    }
  }

  std::printf("%u threads x %llu increments (expected total: %llu)\n\n",
              threads, static_cast<unsigned long long>(increments),
              static_cast<unsigned long long>(threads * increments));
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nThe semantic rows abort 0 times: commutative increments never\n"
      "conflict (§3.4) — yet strict recoverability would forbid exactly\n"
      "this concurrency (§3.5), which is why opacity, not recoverability,\n"
      "is the right TM correctness criterion.\n");
  return all_exact ? 0 : 2;
}
