// §2 of the paper, live: why opacity matters even for transactions that
// will abort.
//
// Invariants: y == x² and x >= 2, maintained by every writer transaction.
// The victim transaction computes 1/(y - x) — safe under the invariant
// (x >= 2 implies y - x = x(x-1) >= 2) — and would loop from x to y.
// Under a non-opaque STM ("weak") a live transaction can observe the old x
// with the new y; with x == y the division traps and the loop runs away.
//
// Part 1 replays the exact §2 schedule deterministically (two logical
// processes, one OS thread): T2 reads x; T1 commits {x:=2, y:=4}; T2 reads
// y. Part 2 races a writer thread against victim transactions (with a
// yield between the two reads to widen the window on small machines).
//
//   build/examples/zombie_demo --stm=weak     # observe zombies
//   build/examples/zombie_demo --stm=tl2      # opacity precludes them
#include <cstdio>
#include <thread>

#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "util/cli.hpp"

namespace {

constexpr optm::stm::VarId kX = 0;
constexpr optm::stm::VarId kY = 1;

struct ZombieStats {
  std::uint64_t victim_runs = 0;
  std::uint64_t zombies = 0;           // inconsistent (x, y) observed live
  std::uint64_t would_divide_by_zero = 0;
  std::uint64_t runaway_loop_bounds = 0;
};

/// The paper's schedule, move for move. Returns true if the LIVE victim
/// observed a state violating y == x².
bool deterministic_zombie(optm::stm::Stm& stm) {
  optm::sim::ThreadCtx writer(0);
  optm::sim::ThreadCtx victim(1);

  // Initially x = 4, y = 16 (the §2 premise).
  (void)optm::stm::atomically(stm, writer, [](optm::stm::TxHandle& tx) {
    tx.write(kX, 4);
    tx.write(kY, 16);
  });

  stm.begin(victim);
  std::uint64_t x = 0, y = 0;
  const bool read_x = stm.read(victim, kX, x);  // sees the old x = 4

  // T1: x := 2; y := 4; commit  (invariant preserved transactionally)
  (void)optm::stm::atomically(stm, writer, [](optm::stm::TxHandle& tx) {
    tx.write(kX, 2);
    tx.write(kY, 4);
  });

  const bool read_y = read_x && stm.read(victim, kY, y);
  const bool zombie = read_y && y != x * x;
  if (zombie) {
    std::printf("  LIVE victim observed x=%llu, y=%llu:\n",
                static_cast<unsigned long long>(x),
                static_cast<unsigned long long>(y));
    if (y == x) {
      std::printf("    computing 1/(y-x) divides by ZERO\n");
    }
    std::printf("    loop 'for t in [x, y)' would execute %lld iterations\n",
                static_cast<long long>(y) - static_cast<long long>(x));
  } else if (!read_y) {
    std::printf("  victim was aborted instead of being shown the torn state\n");
  } else {
    std::printf("  victim saw a consistent snapshot (x=%llu, y=%llu)\n",
                static_cast<unsigned long long>(x),
                static_cast<unsigned long long>(y));
  }
  if (read_y) (void)stm.commit(victim);
  return zombie;
}

}  // namespace

int main(int argc, char** argv) {
  optm::util::Cli cli("zombie_demo", "§2's inconsistent-view hazard, live");
  cli.flag("stm", "weak",
           "weak (non-opaque) | sistm | tl2 | tiny | dstm | astm | visible "
           "| mv | norec | twopl");
  cli.flag("rounds", std::int64_t{20000}, "victim transactions for the racy part");
  if (!cli.parse(argc, argv)) return 1;

  const auto rounds = static_cast<std::uint64_t>(cli.get_int("rounds"));
  const auto stm = optm::stm::make_stm(cli.get("stm"), 2);
  const auto props = stm->properties();
  std::printf("stm=%s (opaque: %s)\n\n", cli.get("stm").c_str(),
              props.opaque ? "yes" : "NO");

  std::printf("[part 1] the exact §2 schedule, deterministically:\n");
  const bool deterministic = deterministic_zombie(*stm);

  std::printf("\n[part 2] racing %llu victim transactions against a writer:\n",
              static_cast<unsigned long long>(rounds));
  const auto racy_stm = optm::stm::make_stm(cli.get("stm"), 2);
  {
    optm::sim::ThreadCtx ctx(0);
    (void)optm::stm::atomically(*racy_stm, ctx, [](optm::stm::TxHandle& tx) {
      tx.write(kX, 4);
      tx.write(kY, 16);
    });
  }
  std::thread writer([&] {
    optm::sim::ThreadCtx ctx(1);
    for (std::uint64_t i = 0; i < rounds; ++i) {
      const bool small = (i & 1) != 0;
      (void)optm::stm::atomically(*racy_stm, ctx, [&](optm::stm::TxHandle& tx) {
        tx.write(kX, small ? 2 : 4);
        tx.write(kY, small ? 4 : 16);
      });
    }
  });

  ZombieStats stats;
  {
    optm::sim::ThreadCtx ctx(0);
    for (std::uint64_t i = 0; i < rounds; ++i) {
      racy_stm->begin(ctx);
      std::uint64_t x = 0, y = 0;
      if (!racy_stm->read(ctx, kX, x)) continue;
      std::this_thread::yield();  // widen the race window
      if (!racy_stm->read(ctx, kY, y)) continue;
      ++stats.victim_runs;
      if (y != x * x) {  // the victim is LIVE here: §2's damage is done
        ++stats.zombies;
        if (y == x) ++stats.would_divide_by_zero;
        if (y < x * (x - 1)) ++stats.runaway_loop_bounds;
      }
      (void)racy_stm->commit(ctx);
    }
  }
  writer.join();

  std::printf("  victim transactions completed: %llu\n",
              static_cast<unsigned long long>(stats.victim_runs));
  std::printf("  zombie observations (live):    %llu\n",
              static_cast<unsigned long long>(stats.zombies));
  std::printf("    -> 1/(y-x) would trap:       %llu\n",
              static_cast<unsigned long long>(stats.would_divide_by_zero));
  std::printf("    -> runaway loop bounds:      %llu\n",
              static_cast<unsigned long long>(stats.runaway_loop_bounds));

  if (props.opaque && (deterministic || stats.zombies != 0)) {
    std::printf("\nERROR: an allegedly opaque STM exposed an inconsistent view\n");
    return 2;
  }
  if (!props.opaque && deterministic) {
    std::printf(
        "\nThe §2 hazard is real: this STM is strictly serializable for\n"
        "committed transactions, satisfies every §3 criterion, and still\n"
        "handed a live transaction an impossible state. Only opacity (§5)\n"
        "rules this out.\n");
  }
  return 0;
}
