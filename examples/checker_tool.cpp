// The opacity checker as a tool: evaluate every correctness criterion of
// §3 and §5 on the paper's worked histories (or on a freshly recorded STM
// execution), printing the comparison matrix the paper develops in prose.
//
//   build/examples/checker_tool                    # all paper histories
//   build/examples/checker_tool --history=h1       # Figure 1 only
//   build/examples/checker_tool --record=weak      # record + judge a run
//   build/examples/checker_tool --dot=h5           # OPG in Graphviz form
#include <cstdio>
#include <string>

#include "core/criteria.hpp"
#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/paper.hpp"
#include "core/phenomena.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

namespace {

using optm::core::History;

History paper_history(const std::string& name) {
  namespace paper = optm::core::paper;
  if (name == "h1" || name == "fig1") return paper::fig1_h1();
  if (name == "h2") return paper::h2();
  if (name == "h3") return paper::h3();
  if (name == "h4") return paper::h4();
  if (name == "h5" || name == "fig2") return paper::fig2_h5();
  if (name == "zombie") return paper::section2_zombie();
  if (name == "counter") return paper::counter_increments(3);
  if (name == "blind") return paper::blind_overlapping_writes(3);
  throw std::invalid_argument("unknown history: " + name);
}

void judge(const std::string& label, const History& h) {
  std::printf("=== %s ===\n", label.c_str());
  std::fputs(h.timeline().c_str(), stdout);
  std::fputs("\n", stdout);

  const auto report = optm::core::evaluate_criteria(h);
  std::fputs(report.table().c_str(), stdout);

  if (const auto snapshot = optm::core::find_inconsistent_snapshot(h)) {
    std::printf("  phenomenon: %s\n", snapshot->explanation.c_str());
  }
  if (const auto result = optm::core::check_opacity(h); result.witness) {
    std::fputs("  witness serialization: ", stdout);
    for (std::size_t i = 0; i < result.witness->order.size(); ++i) {
      std::printf("T%u%s ", result.witness->order[i],
                  result.witness->roles[i] == optm::core::Role::kCommitted
                      ? "(C)"
                      : "(A)");
    }
    std::fputs("\n", stdout);
  }
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  optm::util::Cli cli("checker_tool",
                      "judge histories against every §3/§5 criterion");
  cli.flag("history", "all",
           "h1|h2|h3|h4|h5|zombie|counter|blind|all (paper histories)");
  cli.flag("record", "",
           "instead: record a run of this STM (tl2|dstm|...|weak) and judge it");
  cli.flag("dot", "", "print the opacity graph of this history as Graphviz");
  if (!cli.parse(argc, argv)) return 1;

  if (!cli.get("dot").empty()) {
    const History h = paper_history(cli.get("dot"));
    // Natural order and the full commit-pending set as V.
    std::vector<optm::core::TxId> order;
    std::vector<optm::core::TxId> v;
    for (const auto tx : h.transactions()) {
      order.push_back(tx);
      if (h.is_commit_pending(tx)) v.push_back(tx);
    }
    std::fputs(optm::core::build_opg(h, order, v).dot().c_str(), stdout);
    return 0;
  }

  if (!cli.get("record").empty()) {
    const auto stm = optm::stm::make_stm(cli.get("record"), 4);
    optm::stm::Recorder recorder(4);
    stm->set_recorder(&recorder);
    optm::wl::MixParams params;
    params.threads = 2;
    params.vars = 4;
    params.txs_per_thread = 6;
    params.ops_per_tx = 3;
    (void)optm::wl::run_random_mix(*stm, params);
    judge("recorded " + cli.get("record") + " run", recorder.history());
    return 0;
  }

  const std::string which = cli.get("history");
  if (which != "all") {
    judge(which, paper_history(which));
    return 0;
  }
  judge("Figure 1 / H1 — global atomicity + recoverability, NOT opaque",
        paper_history("h1"));
  judge("H4 — commit-pending duality (§5.2), opaque", paper_history("h4"));
  judge("Figure 2 / H5 — the paper's worked opaque history",
        paper_history("h5"));
  judge("§2 zombie — y=x² invariant torn", paper_history("zombie"));
  judge("§3.4 counter — concurrent commutative increments",
        paper_history("counter"));
  judge("§3.6 blind writes — opaque but not rigorous", paper_history("blind"));
  return 0;
}
