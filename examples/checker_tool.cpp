// The opacity checker as a subcommand tool.
//
//   checker_tool certify                     # judge all paper histories
//   checker_tool certify --history=h1        # Figure 1 only
//   checker_tool certify --record=weak       # record + judge a live run
//   checker_tool certify --dot=h5            # OPG in Graphviz form
//   checker_tool certify-log <dir>           # certify a segment log from disk
//   checker_tool inspect-log <dir>           # header + per-segment stats
//   checker_tool serve --port=0              # networked certification service
//   checker_tool certify-remote <dir> --connect=host:port  # replay to a server
//
// `certify` evaluates every correctness criterion of §3 and §5 on the
// paper's worked histories (or on a freshly recorded STM execution),
// printing the comparison matrix the paper develops in prose.
//
// `certify-log` streams a durable segmented binary log (written by
// recorded_soak --log-dir, format: src/log/format.hpp) through the
// bounded-memory verification front-end (core/stream_verify.hpp): logs
// that fit --window-events are verified by the sharded parallel driver,
// larger ones fall over to a streaming engine — the parallel streaming
// certifier with --stream-threads > 1, the serial certificate monitor
// otherwise — so a multi-segment log far larger than RAM certifies with
// peak memory bounded by the window, with the same verdict and flag
// position the in-RAM monitor produces. The policy defaults to the one
// recorded in the segment headers.
//
// Bare legacy invocations (checker_tool --history=h2) still work: no
// subcommand means `certify`.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <string>

#include "core/criteria.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/paper.hpp"
#include "core/phenomena.hpp"
#include "core/stream_verify.hpp"
#include "log/reader.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

namespace {

using optm::core::History;

History paper_history(const std::string& name) {
  namespace paper = optm::core::paper;
  if (name == "h1" || name == "fig1") return paper::fig1_h1();
  if (name == "h2") return paper::h2();
  if (name == "h3") return paper::h3();
  if (name == "h4") return paper::h4();
  if (name == "h5" || name == "fig2") return paper::fig2_h5();
  if (name == "zombie") return paper::section2_zombie();
  if (name == "counter") return paper::counter_increments(3);
  if (name == "blind") return paper::blind_overlapping_writes(3);
  throw std::invalid_argument("unknown history: " + name);
}

void judge(const std::string& label, const History& h) {
  std::printf("=== %s ===\n", label.c_str());
  std::fputs(h.timeline().c_str(), stdout);
  std::fputs("\n", stdout);

  const auto report = optm::core::evaluate_criteria(h);
  std::fputs(report.table().c_str(), stdout);

  if (const auto snapshot = optm::core::find_inconsistent_snapshot(h)) {
    std::printf("  phenomenon: %s\n", snapshot->explanation.c_str());
  }
  if (const auto result = optm::core::check_opacity(h); result.witness) {
    std::fputs("  witness serialization: ", stdout);
    for (std::size_t i = 0; i < result.witness->order.size(); ++i) {
      std::printf("T%u%s ", result.witness->order[i],
                  result.witness->roles[i] == optm::core::Role::kCommitted
                      ? "(C)"
                      : "(A)");
    }
    std::fputs("\n", stdout);
  }
  std::fputs("\n", stdout);
}

int cmd_certify(int argc, char** argv) {
  optm::util::Cli cli("checker_tool certify",
                      "judge histories against every §3/§5 criterion");
  cli.flag("history", "all",
           "h1|h2|h3|h4|h5|zombie|counter|blind|all (paper histories)");
  cli.flag("record", "",
           "instead: record a run of this STM (tl2|dstm|...|weak) and judge it");
  cli.flag("dot", "", "print the opacity graph of this history as Graphviz");
  if (!cli.parse(argc, argv)) return 1;

  if (!cli.get("dot").empty()) {
    const History h = paper_history(cli.get("dot"));
    // Natural order and the full commit-pending set as V.
    std::vector<optm::core::TxId> order;
    std::vector<optm::core::TxId> v;
    for (const auto tx : h.transactions()) {
      order.push_back(tx);
      if (h.is_commit_pending(tx)) v.push_back(tx);
    }
    std::fputs(optm::core::build_opg(h, order, v).dot().c_str(), stdout);
    return 0;
  }

  if (!cli.get("record").empty()) {
    const auto stm = optm::stm::make_stm(cli.get("record"), 4);
    optm::stm::Recorder recorder(4);
    stm->set_recorder(&recorder);
    optm::wl::MixParams params;
    params.threads = 2;
    params.vars = 4;
    params.txs_per_thread = 6;
    params.ops_per_tx = 3;
    (void)optm::wl::run_random_mix(*stm, params);
    judge("recorded " + cli.get("record") + " run", recorder.history());
    return 0;
  }

  const std::string which = cli.get("history");
  if (which != "all") {
    judge(which, paper_history(which));
    return 0;
  }
  judge("Figure 1 / H1 — global atomicity + recoverability, NOT opaque",
        paper_history("h1"));
  judge("H4 — commit-pending duality (§5.2), opaque", paper_history("h4"));
  judge("Figure 2 / H5 — the paper's worked opaque history",
        paper_history("h5"));
  judge("§2 zombie — y=x² invariant torn", paper_history("zombie"));
  judge("§3.4 counter — concurrent commutative increments",
        paper_history("counter"));
  judge("§3.6 blind writes — opaque but not rigorous", paper_history("blind"));
  return 0;
}

int cmd_certify_log(int argc, char** argv) {
  optm::util::Cli cli("checker_tool certify-log",
                      "stream a segmented binary event log from disk through "
                      "the bounded-memory certifier");
  cli.positional("dir", "log directory written by recorded_soak --log-dir");
  cli.flag("policy", "",
           "version-order policy override (default: the policy recorded "
           "in the segment headers)");
  cli.flag("window-events", std::int64_t{1'048'576},
           "materialization window: logs up to this many events use the "
           "sharded parallel driver, larger ones stream through the "
           "monitor in windows of this size");
  cli.flag("shards", std::int64_t{4}, "register shards when the sharded driver runs");
  cli.flag("stream-threads", std::int64_t{1},
           "verification threads (0 = auto): >1 runs the sharded driver "
           "multi-threaded, and streams oversized logs through the parallel "
           "certifier instead of the serial monitor");
  if (!cli.parse(argc, argv)) return 1;

  optm::log::LogReader reader;
  if (!reader.open(cli.get("dir"))) {
    std::fprintf(stderr, "certify-log: %s\n", reader.error().c_str());
    return 2;
  }
  const optm::log::LogMetadata& meta = reader.metadata();
  std::string policy_name =
      cli.get("policy").empty() ? meta.policy : cli.get("policy");
  const auto policy = optm::core::parse_version_order_policy(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "certify-log: unknown policy '%s' (override with --policy=)\n",
                 policy_name.c_str());
    return 2;
  }
  if (meta.num_vars == 0) {
    std::fprintf(stderr, "certify-log: log metadata has num_vars == 0\n");
    return 2;
  }

  std::printf("certlog.dir=%s\n", cli.get("dir").c_str());
  std::printf("certlog.stm=%s\n", meta.runtime.c_str());
  std::printf("certlog.window_mode=%s\n", meta.window_mode.c_str());
  std::printf("certlog.policy=%s\n", to_string(*policy));
  std::printf("certlog.segments=%zu\n", reader.num_segments());

  optm::core::StreamVerifyOptions options;
  options.policy = *policy;
  options.window_events =
      static_cast<std::size_t>(cli.get_int("window-events"));
  options.num_shards = static_cast<std::size_t>(cli.get_int("shards"));
  options.num_threads = static_cast<std::size_t>(cli.get_int("stream-threads"));
  const auto model =
      optm::core::ObjectModel::registers(meta.num_vars, 0);
  const auto result = optm::core::verify_event_stream(
      model, [&reader] { return reader.next(); }, options);

  if (!reader.ok()) {
    std::fprintf(stderr, "certify-log: %s\n", reader.error().c_str());
    return 2;
  }
  if (reader.tail_dropped()) {
    std::printf("certlog.torn_tail_bytes_dropped=%llu\n",
                static_cast<unsigned long long>(reader.dropped_bytes()));
  }
  std::printf("certlog.events=%zu\n", result.events);
  std::printf("certlog.engine=%s\n",
              result.used_sharded_driver
                  ? "sharded-driver"
                  : (result.used_parallel_certifier ? "parallel-certifier"
                                                    : "streaming-monitor"));
  std::printf("certlog.threads=%zu\n", result.threads_used);
  if (result.used_sharded_driver || result.used_parallel_certifier) {
    std::printf("certlog.shards=%zu\n", result.shards_used);
  }
  if (!result.used_sharded_driver) {
    std::printf("certlog.windows=%zu\n", result.windows);
  }
  std::printf("certlog.verdict=%s\n",
              result.certified ? "certified" : "FLAGGED");
  if (!result.certified) {
    std::printf("certlog.flag_pos=%zu\n", result.violation->pos);
    std::printf("certlog.flag_reason=%s\n", result.violation->reason.c_str());
    return 1;
  }
  return 0;
}

int cmd_inspect_log(int argc, char** argv) {
  optm::util::Cli cli("checker_tool inspect-log",
                      "print a segment log's metadata and per-segment stats");
  cli.positional("dir", "log directory written by recorded_soak --log-dir");
  if (!cli.parse(argc, argv)) return 1;

  optm::log::LogReader reader;
  if (!reader.open(cli.get("dir"))) {
    std::fprintf(stderr, "inspect-log: %s\n", reader.error().c_str());
    return 2;
  }
  // Walk the whole log so every segment's block/event counts are exact
  // (and every CRC actually checked).
  while (!reader.next().empty()) {
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "inspect-log: %s\n", reader.error().c_str());
    return 2;
  }
  const optm::log::LogMetadata& meta = reader.metadata();
  std::printf("log.dir=%s\n", cli.get("dir").c_str());
  std::printf("log.stm=%s\n", meta.runtime.c_str());
  std::printf("log.policy=%s\n", meta.policy.c_str());
  std::printf("log.window_mode=%s\n", meta.window_mode.c_str());
  std::printf("log.vars=%u\n", meta.num_vars);
  std::printf("log.threads=%u\n", meta.threads);
  std::printf("log.segments=%zu\n", reader.num_segments());
  std::printf("log.events=%llu\n",
              static_cast<unsigned long long>(reader.events_read()));
  if (reader.tail_dropped()) {
    std::printf("log.torn_tail_bytes_dropped=%llu\n",
                static_cast<unsigned long long>(reader.dropped_bytes()));
  }
  for (const auto& seg : reader.segments()) {
    std::printf(
        "log.segment index=%llu first_stamp=%llu events=%llu blocks=%llu "
        "bytes=%llu%s\n",
        static_cast<unsigned long long>(seg.index),
        static_cast<unsigned long long>(seg.first_stamp),
        static_cast<unsigned long long>(seg.events),
        static_cast<unsigned long long>(seg.blocks),
        static_cast<unsigned long long>(seg.file_bytes),
        seg.dropped_bytes != 0 ? " TORN-TAIL" : "");
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void on_signal(int) { g_stop_requested = 1; }

int cmd_serve(int argc, char** argv) {
  optm::util::Cli cli("checker_tool serve",
                      "run the networked certification service: one "
                      "connection-private engine per client stream");
  cli.flag("bind", "127.0.0.1", "IPv4 address to listen on");
  cli.flag("port", std::int64_t{0},
           "TCP port (0 = ephemeral; the bound port is printed)");
  cli.flag("stream-threads", std::int64_t{1},
           "certification threads per stream: >1 gives each connection a "
           "parallel streaming certifier where its policy can shard");
  cli.flag("credit-events", std::int64_t{1} << 16,
           "per-stream in-flight credit window, in events");
  cli.flag("max-connections", std::int64_t{256},
           "concurrent tenant connections accepted");
  if (!cli.parse(argc, argv)) return 1;

  optm::net::ServerOptions options;
  options.bind_address = cli.get("bind");
  options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  options.stream_threads = static_cast<std::size_t>(cli.get_int("stream-threads"));
  options.credit_events = static_cast<std::uint64_t>(cli.get_int("credit-events"));
  options.max_connections = static_cast<std::size_t>(cli.get_int("max-connections"));

  optm::net::CertServer server(options);
  if (!server.start()) {
    std::fprintf(stderr, "serve: %s\n", server.error().c_str());
    return 2;
  }
  std::printf("serve.bind=%s\n", options.bind_address.c_str());
  std::printf("serve.port=%u\n", server.port());
  std::printf("serve.stream_threads=%zu\n", options.stream_threads);
  std::fflush(stdout);  // scripts scrape serve.port before connecting

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop_requested == 0) {
    ::poll(nullptr, 0, 200);  // EINTR on signal; the flag does the rest
  }
  server.stop();
  const auto stats = server.stats();
  std::printf("serve.connections=%llu\n",
              static_cast<unsigned long long>(stats.connections_accepted));
  std::printf("serve.streams_completed=%llu\n",
              static_cast<unsigned long long>(stats.streams_completed));
  std::printf("serve.streams_flagged=%llu\n",
              static_cast<unsigned long long>(stats.streams_flagged));
  std::printf("serve.streams_failed=%llu\n",
              static_cast<unsigned long long>(stats.streams_failed));
  std::printf("serve.events=%llu\n",
              static_cast<unsigned long long>(stats.events_ingested));
  return 0;
}

int cmd_certify_remote(int argc, char** argv) {
  optm::util::Cli cli("checker_tool certify-remote",
                      "replay an on-disk segment log against a running "
                      "certification service (checker_tool serve)");
  cli.positional("dir", "log directory written by recorded_soak --log-dir");
  cli.flag("connect", "127.0.0.1:7444", "host:port of the service");
  cli.flag("policy", "",
           "version-order policy override (default: the policy recorded "
           "in the segment headers)");
  cli.flag("net-timeout-ms", std::int64_t{30'000},
           "connect/send/recv deadline (0 = no deadline); an expired "
           "deadline is an operational error (exit 2), not a hang");
  if (!cli.parse(argc, argv)) return 1;

  std::string host;
  std::uint16_t port = 0;
  if (!optm::net::parse_host_port(cli.get("connect"), host, port)) {
    std::fprintf(stderr, "certify-remote: bad --connect '%s' (want host:port)\n",
                 cli.get("connect").c_str());
    return 2;
  }
  optm::log::LogReader reader;
  if (!reader.open(cli.get("dir"))) {
    std::fprintf(stderr, "certify-remote: %s\n", reader.error().c_str());
    return 2;
  }
  optm::log::LogMetadata meta = reader.metadata();
  if (!cli.get("policy").empty()) meta.policy = cli.get("policy");

  optm::net::ClientOptions client_options;
  client_options.timeout_ms = static_cast<int>(cli.get_int("net-timeout-ms"));
  optm::net::CertClient client(client_options);
  if (!client.connect(host, port, optm::net::make_hello(meta))) {
    std::fprintf(stderr, "certify-remote: %s\n", client.error().c_str());
    return 2;
  }
  std::printf("certremote.dir=%s\n", cli.get("dir").c_str());
  std::printf("certremote.connect=%s:%u\n", host.c_str(), port);
  std::printf("certremote.policy=%s\n", meta.policy.c_str());
  std::printf("certremote.window=%llu\n",
              static_cast<unsigned long long>(client.window()));

  for (;;) {
    const auto batch = reader.next();
    if (batch.empty()) break;
    if (!client.send_events(batch)) {
      std::fprintf(stderr, "certify-remote: %s\n", client.error().c_str());
      return 2;
    }
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "certify-remote: %s\n", reader.error().c_str());
    return 2;
  }
  if (!client.finish()) {
    std::fprintf(stderr, "certify-remote: %s\n", client.error().c_str());
    return 2;
  }
  const auto& verdict = client.verdict();
  std::printf("certremote.events=%llu\n",
              static_cast<unsigned long long>(verdict.events));
  std::printf("certremote.verdict=%s\n",
              verdict.certified ? "certified" : "FLAGGED");
  if (!verdict.certified) {
    std::printf("certremote.flag_pos=%zu\n", verdict.violation->pos);
    std::printf("certremote.flag_reason=%s\n",
                verdict.violation->reason.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* sub = argc > 1 ? argv[1] : "";
  // Subcommands consume argv[1]; bare flags fall through to `certify`
  // so pre-redesign invocations keep working.
  if (std::strcmp(sub, "certify") == 0) return cmd_certify(argc - 1, argv + 1);
  if (std::strcmp(sub, "certify-log") == 0) {
    return cmd_certify_log(argc - 1, argv + 1);
  }
  if (std::strcmp(sub, "inspect-log") == 0) {
    return cmd_inspect_log(argc - 1, argv + 1);
  }
  if (std::strcmp(sub, "serve") == 0) return cmd_serve(argc - 1, argv + 1);
  if (std::strcmp(sub, "certify-remote") == 0) {
    return cmd_certify_remote(argc - 1, argv + 1);
  }
  if (sub[0] != '\0' && sub[0] != '-') {
    std::fprintf(stderr,
                 "unknown subcommand '%s'\n"
                 "usage: checker_tool <certify|certify-log|inspect-log|serve|"
                 "certify-remote> [flags]\n",
                 sub);
    return 1;
  }
  return cmd_certify(argc, argv);
}
