// §7's nesting extensions: closed vs open nesting, reduced to the flat
// model and judged by the ordinary opacity machinery.
//
//   build/examples/nesting_demo
//
// The same nested execution — a parent logs through a nested child — is
// flattened both ways. Closed nesting ties the child's fate to the
// parent: when the parent aborts, the log entry vanishes. Open nesting
// publishes the child's commit immediately: the log entry survives the
// parent's abort (the basis of Moss-style transactional boosting).
#include <cstdio>

#include "core/builder.hpp"
#include "core/nesting.hpp"
#include "core/opacity.hpp"

int main() {
  using namespace optm::core;

  // Parent T1 updates x but ultimately aborts; nested child T10 appends a
  // log record to y and commits; auditor T2 later reads the log.
  const History h = HistoryBuilder::registers(2)
                        .write(1, 0, 1)    // parent's in-flight update
                        .write(10, 1, 2)   // child logs
                        .commit_now(10)    // child commits
                        .trya(1)
                        .abort(1)          // parent aborts
                        .read(2, 1, 2)     // auditor sees the log entry
                        .commit_now(2)
                        .build();
  const NestingForest forest{{10, 1}};

  std::printf("nested execution:\n%s\n", h.timeline().c_str());

  const History open = flatten_open_nesting(h, forest);
  const auto open_verdict = check_opacity(open);
  std::printf("open nesting:   child survives the parent's abort -> %s\n",
              to_string(open_verdict.verdict));

  const History closed = flatten_closed_nesting(h, forest);
  const auto closed_verdict = check_opacity(closed);
  std::printf("closed nesting: child merges into the aborted parent -> %s\n",
              to_string(closed_verdict.verdict));
  std::printf("  (%s)\n", closed_verdict.reason.c_str());

  // The child-sees-parent rule: an open-nested child may read its parent's
  // uncommitted state; the reduction treats that read as nest-local.
  const History pending = HistoryBuilder::registers(2)
                              .write(1, 0, 7)
                              .read(10, 0, 7)  // parent's pending write
                              .write(10, 1, 9)
                              .commit_now(10)
                              .commit_now(1)
                              .build();
  const History reduced = flatten_open_nesting(pending, forest);
  std::printf(
      "\nchild read of parent's pending write: raw prefix %s, reduced %s\n",
      first_non_opaque_prefix(pending) ? "condemned" : "clean",
      to_string(check_opacity(reduced).verdict));
  return 0;
}
