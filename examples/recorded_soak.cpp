// Recorded-mode soak: the full pipeline — multi-threaded mix recording
// into the sharded recorder, a verifier thread draining stamp-contiguous
// batches into the streaming certificate monitor, and the sharded offline
// driver re-verifying the complete history — at soak scale (>= 1M events),
// reporting events/sec for each stage. CI runs this nightly and uploads
// the numbers next to the bench-smoke timing artifacts, so recorded-mode
// throughput regressions show up in the artifact history.
//
//   build/recorded_soak --stm=tl2 --events=1200000 --threads=4
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/parallel_verify.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double events_per_sec(std::size_t events, Clock::time_point t0,
                                    Clock::time_point t1) {
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return secs > 0 ? static_cast<double>(events) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  optm::util::Cli cli("recorded_soak",
                      "recorded-mode soak: sharded recorder -> live monitor -> "
                      "sharded offline driver");
  cli.flag("stm", "tl2", "STM runtime to drive");
  cli.flag("events", "1200000", "target number of recorded events (>= 1M soak)");
  cli.flag("threads", "4", "recording threads");
  cli.flag("vars", "64", "shared registers");
  cli.flag("ops-per-tx", "4", "operations per transaction");
  cli.flag("shards", "4", "register shards for the offline driver");
  cli.flag("policy", "commit-order",
           "version-order policy for the live monitor and the offline "
           "driver (commit-order | snapshot-rank | stamped-read)");
  cli.flag("window-free", "0",
           "drop the recorder windows and trust the runtime's stamps "
           "(stamping runtimes only; pair with --policy=stamped-read)");
  cli.flag("json", "",
           "also write the soak metrics as a machine-readable JSON object "
           "to this file (the perf-trajectory artifact schema)");
  if (!cli.parse(argc, argv)) return 1;

  optm::core::VersionOrderPolicy policy =
      optm::core::VersionOrderPolicy::kCommitOrder;
  if (cli.get("policy") == "snapshot-rank") {
    policy = optm::core::VersionOrderPolicy::kSnapshotRank;
  } else if (cli.get("policy") == "stamped-read") {
    policy = optm::core::VersionOrderPolicy::kStampedRead;
  } else if (cli.get("policy") != "commit-order") {
    std::fprintf(stderr, "unknown --policy=%s\n%s", cli.get("policy").c_str(),
                 cli.usage().c_str());
    return 1;
  }

  const std::size_t target_events =
      static_cast<std::size_t>(cli.get_int("events"));
  const std::uint32_t threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  const std::uint32_t vars = static_cast<std::uint32_t>(cli.get_int("vars"));
  const std::uint32_t ops = static_cast<std::uint32_t>(cli.get_int("ops-per-tx"));

  const auto stm = optm::stm::make_stm(cli.get("stm"), vars);
  if (cli.get_bool("window-free") && !stm->set_window_free(true)) {
    std::fprintf(stderr,
                 "--window-free=1: %s does not stamp its reads and stays "
                 "windowed (use tl2, tiny, norec, dstm, astm or mv)\n",
                 cli.get("stm").c_str());
    return 1;
  }
  optm::stm::Recorder recorder(vars);
  stm->set_recorder(&recorder);

  // ~2 events per op (inv+ret) plus lifecycle events per transaction;
  // sized low (aborted transactions record fewer events) so the run clears
  // the target rather than undershooting it.
  const std::uint64_t events_per_tx = 2ull * ops;
  optm::wl::MixParams mix;
  mix.threads = threads;
  mix.vars = vars;
  mix.ops_per_tx = ops;
  mix.seed = 20260730;
  mix.txs_per_thread =
      target_events / (static_cast<std::uint64_t>(threads) * events_per_tx) + 1;

  // Record + live-verify: drain stamp-contiguous batches into the
  // streaming certificate monitor while the mix runs. The monitor is
  // pre-sized for the soak (dense slab + flat version table), the batch
  // buffer is reused across drains, and the drain cadence is derived from
  // the measured ingest rate (AdaptiveDrainPacer) instead of a fixed poll
  // interval.
  optm::core::OnlineCertificateMonitor monitor(recorder.model(), policy);
  // Versions are one per write response: ~a quarter of the events at the
  // mix's default write ratio (the table grows geometrically past it).
  monitor.reserve(/*num_txs=*/mix.txs_per_thread * threads + 16,
                  /*num_versions=*/target_events / 3 + vars + 16);
  std::atomic<bool> done{false};
  std::size_t batches = 0;
  const auto record_t0 = Clock::now();
  std::thread verifier([&] {
    optm::stm::EventBatch batch;
    optm::stm::AdaptiveDrainPacer pacer;
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      if (finished || pacer.should_drain(recorder.stamps_issued(),
                                         recorder.approx_pending())) {
        batch.clear();
        if (recorder.drain(batch) > 0) {
          ++batches;
          pacer.on_drain();
          (void)monitor.ingest(batch.span());
          continue;
        }
        if (finished) return;
      }
      std::this_thread::yield();
    }
  });
  (void)optm::wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  verifier.join();
  const auto record_t1 = Clock::now();

  const std::size_t recorded = recorder.num_events();
  std::printf("soak.stm=%s\n", cli.get("stm").c_str());
  // Self-describing artifacts: which window mode and resolver policy this
  // run used, so soak_*.txt files are comparable across CI runs.
  std::printf("soak.window_mode=%s\n",
              stm->window_free() ? "window-free" : "windowed");
  std::printf("soak.policy=%s\n", to_string(policy));
  std::printf("soak.recorded_events=%zu\n", recorded);
  std::printf("soak.live_pipeline_events_per_sec=%.0f\n",
              events_per_sec(recorded, record_t0, record_t1));
  std::printf("soak.live_batches=%zu\n", batches);
  std::printf("soak.live_monitor=%s\n", monitor.ok() ? "clean" : "VIOLATION");
  if (!monitor.ok()) {
    std::printf("soak.live_monitor_reason=%s\n",
                monitor.violation()->reason.c_str());
    return 1;
  }

  // Offline: the sharded parallel driver over the complete history.
  const optm::core::History h = recorder.history();
  optm::core::ShardVerifyOptions options;
  options.num_shards = static_cast<std::size_t>(cli.get_int("shards"));
  options.policy = policy;
  const auto offline_t0 = Clock::now();
  const auto offline = optm::core::verify_history_sharded(h, options);
  const auto offline_t1 = Clock::now();
  std::printf("soak.offline_policy=%s\n", to_string(options.policy));
  std::printf("soak.offline_shards=%zu\n", offline.shards_used);
  std::printf("soak.offline_events_per_sec=%.0f\n",
              events_per_sec(offline.events, offline_t0, offline_t1));
  std::printf("soak.offline=%s\n", offline.certified ? "certified" : "FLAGGED");
  if (!offline.certified) {
    std::printf("soak.offline_reason=%s\n", offline.violation->reason.c_str());
    return 1;
  }
  if (recorded < target_events) {
    std::printf("soak.warning=recorded fewer events than the %zu target\n",
                target_events);
  }

  // Machine-readable artifact (the perf trajectory schema consumed by
  // tools/soak_trend.py and archived next to BENCH_5.json).
  if (!cli.get("json").empty()) {
    std::FILE* f = std::fopen(cli.get("json").c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json=%s\n", cli.get("json").c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"optm-soak-v1\",\n"
        "  \"tool\": \"recorded_soak\",\n"
        "  \"stm\": \"%s\",\n"
        "  \"policy\": \"%s\",\n"
        "  \"window_mode\": \"%s\",\n"
        "  \"threads\": %u,\n"
        "  \"recorded_events\": %zu,\n"
        "  \"live_pipeline_events_per_sec\": %.0f,\n"
        "  \"live_batches\": %zu,\n"
        "  \"offline_events_per_sec\": %.0f,\n"
        "  \"offline_shards\": %zu\n"
        "}\n",
        cli.get("stm").c_str(), to_string(policy),
        stm->window_free() ? "window-free" : "windowed", threads, recorded,
        events_per_sec(recorded, record_t0, record_t1), batches,
        events_per_sec(offline.events, offline_t0, offline_t1),
        offline.shards_used);
    std::fclose(f);
  }
  return 0;
}
