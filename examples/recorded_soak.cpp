// Recorded-mode soak: the full pipeline — multi-threaded mix recording
// into the sharded recorder, a verifier thread draining stamp-contiguous
// batches into the streaming certificate monitor (and optionally a
// durable segment log), and the sharded offline driver re-verifying the
// complete history — at soak scale (>= 1M events), reporting events/sec
// for each stage. CI runs this nightly and uploads the numbers next to
// the bench-smoke timing artifacts, so recorded-mode throughput
// regressions show up in the artifact history.
//
// A thin CLI wrapper: the pipeline itself is stm::SoakDriver
// (src/stm/soak_driver.hpp); this file only parses flags, wires in the
// optional log::LogWriterSink, and prints/serializes the results.
//
//   build/recorded_soak --stm=tl2 --events=1200000 --threads=4
//   build/recorded_soak --window-free=1 --policy=stamped-read
//       --log-dir=/tmp/soaklog --segment-bytes=8388608
#include <cstdio>
#include <memory>

#include "log/log_sink.hpp"
#include "log/writer.hpp"
#include "net/socket_sink.hpp"
#include "stm/cli_flags.hpp"
#include "stm/soak_driver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  optm::util::Cli cli("recorded_soak",
                      "recorded-mode soak: sharded recorder -> live monitor "
                      "(+ optional segment log) -> sharded offline driver");
  optm::stm::add_run_flags(cli);
  cli.flag("events", std::int64_t{1'200'000}, "target number of recorded events (>= 1M soak)");
  cli.flag("threads", std::int64_t{4}, "recording threads");
  cli.flag("vars", std::int64_t{64}, "shared registers");
  cli.flag("ops-per-tx", std::int64_t{4}, "operations per transaction");
  cli.flag("shards", std::int64_t{4}, "register shards for the offline driver");
  cli.flag("stream-threads", std::int64_t{1},
           "live certification threads: 1 = serial monitor, >1 = parallel "
           "streaming certifier (same verdict, same flag position)");
  cli.flag("log-dir", "",
           "also append every drained batch to a segmented binary log in "
           "this directory (re-certify with: checker_tool certify-log)");
  cli.flag("segment-bytes", std::int64_t{67'108'864}, "log segment capacity (with --log-dir)");
  optm::stm::add_log_pipeline_flag(cli);
  cli.flag("connect", "",
           "also stream every drained batch to a networked certification "
           "service at host:port (checker_tool serve)");
  cli.flag("net-timeout-ms", std::int64_t{30'000},
           "connect/send/recv deadline for --connect (0 = no deadline)");
  cli.flag("json", "",
           "also write the soak metrics as a machine-readable JSON object "
           "to this file (the perf-trajectory artifact schema)");
  if (!cli.parse(argc, argv)) return 1;

  const auto flags = optm::stm::parse_run_flags(cli);
  if (!flags) return 1;

  optm::stm::SoakOptions options;
  options.run = *flags;
  options.target_events = static_cast<std::size_t>(cli.get_int("events"));
  options.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  options.vars = static_cast<std::uint32_t>(cli.get_int("vars"));
  options.ops_per_tx = static_cast<std::uint32_t>(cli.get_int("ops-per-tx"));
  options.shards = static_cast<std::size_t>(cli.get_int("shards"));
  options.live_stream_threads =
      static_cast<std::size_t>(cli.get_int("stream-threads"));

  optm::log::LogMetadata meta;
  meta.runtime = flags->stm;
  meta.policy = flags->policy_name();
  meta.window_mode = flags->window_mode();
  meta.num_vars = options.vars;
  meta.threads = options.threads;

  const auto log_pipeline = optm::stm::parse_log_pipeline_flag(cli);
  if (!log_pipeline) return 1;

  std::unique_ptr<optm::log::LogWriter> log_writer;
  std::unique_ptr<optm::log::LogWriterSink> log_sink;
  if (!cli.get("log-dir").empty()) {
    optm::log::WriterOptions wopt;
    wopt.directory = cli.get("log-dir");
    wopt.segment_bytes = static_cast<std::size_t>(cli.get_int("segment-bytes"));
    wopt.pipeline = *log_pipeline;
    wopt.metadata = meta;
    log_writer = std::make_unique<optm::log::LogWriter>(wopt);
    log_sink = std::make_unique<optm::log::LogWriterSink>(*log_writer);
    options.extra_sink = log_sink.get();
  }

  // --connect: a remote certification service rides the same drain as the
  // log sink; with both set they tee (every batch goes to both legs).
  optm::net::ClientOptions remote_options;
  remote_options.timeout_ms = static_cast<int>(cli.get_int("net-timeout-ms"));
  optm::net::CertClient remote(remote_options);
  std::unique_ptr<optm::stm::SocketSink> socket_sink;
  optm::stm::TeeSink extra_tee;
  if (!cli.get("connect").empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!optm::net::parse_host_port(cli.get("connect"), host, port)) {
      std::fprintf(stderr, "bad --connect '%s' (want host:port)\n",
                   cli.get("connect").c_str());
      return 1;
    }
    // Reserve hints: the target event count bounds both distinct
    // transactions and written versions.
    const auto hint = static_cast<std::uint64_t>(options.target_events);
    if (!remote.connect(host, port, optm::net::make_hello(meta, hint, hint))) {
      std::fprintf(stderr, "cannot reach certification service: %s\n",
                   remote.error().c_str());
      return 1;
    }
    socket_sink = std::make_unique<optm::stm::SocketSink>(remote);
    if (options.extra_sink != nullptr) {
      extra_tee.add(options.extra_sink).add(socket_sink.get());
      options.extra_sink = &extra_tee;
    } else {
      options.extra_sink = socket_sink.get();
    }
  }

  optm::stm::SoakResult result;
  try {
    result = optm::stm::SoakDriver(options).run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("soak.stm=%s\n", result.stm.c_str());
  // Self-describing artifacts: which window mode and resolver policy this
  // run used, so soak_*.txt files are comparable across CI runs.
  std::printf("soak.window_mode=%s\n", result.window_mode.c_str());
  std::printf("soak.policy=%s\n", to_string(result.policy));
  std::printf("soak.stamp_batch=%u\n", flags->stamp_batch);
  std::printf("soak.recorded_events=%zu\n", result.recorded_events);
  std::printf("soak.live_pipeline_events_per_sec=%.0f\n",
              result.live_events_per_sec);
  std::printf("soak.live_batches=%zu\n", result.live_batches);
  std::printf("soak.live_certifier=%s\n",
              result.live_parallel ? "parallel" : "serial");
  std::printf("soak.live_threads=%zu\n", result.live_threads_used);
  std::printf("soak.live_shards=%zu\n", result.live_shards_used);
  std::printf("soak.live_monitor=%s\n", result.live_ok ? "clean" : "VIOLATION");
  if (!result.live_ok) {
    std::printf("soak.live_monitor_reason=%s\n",
                result.live_violation->reason.c_str());
    return 1;
  }
  if (log_writer != nullptr) {
    std::printf("soak.log_segments=%llu\n",
                static_cast<unsigned long long>(log_writer->segments_written()));
    std::printf("soak.log_blocks=%llu\n",
                static_cast<unsigned long long>(log_writer->blocks_written()));
    std::printf("soak.log_bytes=%llu\n",
                static_cast<unsigned long long>(log_writer->bytes_written()));
    // Pipeline health: prep_stalls counts rotations where the drain had
    // to wait for the background thread (sustained nonzero = the drain
    // outruns segment prep), flush_lag the peak count of sealed segments
    // whose deferred msync had not yet finished.
    const auto pstats = log_writer->pipeline_stats();
    std::printf("soak.log_pipeline=%s\n", pstats.enabled ? "on" : "off");
    std::printf("soak.log_prep_stalls=%llu\n",
                static_cast<unsigned long long>(pstats.prep_stalls));
    std::printf("soak.log_flush_lag_segments=%llu\n",
                static_cast<unsigned long long>(pstats.flush_lag_peak));
    if (!result.sink_ok) {
      std::printf("soak.log_error=%s\n", log_writer->error().c_str());
      return 1;
    }
  }
  if (socket_sink != nullptr) {
    std::printf("soak.remote_events_sent=%llu\n",
                static_cast<unsigned long long>(remote.events_sent()));
    if (!remote.error().empty()) {
      std::printf("soak.remote_error=%s\n", remote.error().c_str());
      return 1;
    }
    const auto& verdict = remote.verdict();
    std::printf("soak.remote_verdict=%s\n",
                verdict.certified ? "certified" : "FLAGGED");
    if (!verdict.certified) {
      std::printf("soak.remote_flag_pos=%zu\n", verdict.violation->pos);
      std::printf("soak.remote_flag_reason=%s\n",
                  verdict.violation->reason.c_str());
      return 1;
    }
  }
  std::printf("soak.offline_policy=%s\n", to_string(result.policy));
  std::printf("soak.offline_shards=%zu\n", result.offline_shards);
  std::printf("soak.offline_events_per_sec=%.0f\n",
              result.offline_events_per_sec);
  std::printf("soak.offline=%s\n", result.offline_ok ? "certified" : "FLAGGED");
  if (!result.offline_ok) {
    std::printf("soak.offline_reason=%s\n",
                result.offline_violation->reason.c_str());
    return 1;
  }
  if (result.recorded_events < options.target_events) {
    std::printf("soak.warning=recorded fewer events than the %zu target\n",
                options.target_events);
  }

  // Machine-readable artifact (the perf trajectory schema consumed by
  // tools/soak_trend.py and archived next to BENCH_5.json).
  if (!cli.get("json").empty()) {
    std::FILE* f = std::fopen(cli.get("json").c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json=%s\n", cli.get("json").c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"optm-soak-v1\",\n"
        "  \"tool\": \"recorded_soak\",\n"
        "  \"stm\": \"%s\",\n"
        "  \"policy\": \"%s\",\n"
        "  \"window_mode\": \"%s\",\n"
        "  \"stamp_batch\": %u,\n"
        "  \"threads\": %u,\n"
        "  \"recorded_events\": %zu,\n"
        "  \"live_pipeline_events_per_sec\": %.0f,\n"
        "  \"live_batches\": %zu,\n"
        "  \"live_certifier\": \"%s\",\n"
        "  \"live_threads\": %zu,\n"
        "  \"live_shards\": %zu,\n"
        "  \"offline_events_per_sec\": %.0f,\n"
        "  \"offline_shards\": %zu",
        result.stm.c_str(), to_string(result.policy),
        result.window_mode.c_str(), flags->stamp_batch, options.threads,
        result.recorded_events,
        result.live_events_per_sec, result.live_batches,
        result.live_parallel ? "parallel" : "serial", result.live_threads_used,
        result.live_shards_used, result.offline_events_per_sec,
        result.offline_shards);
    if (log_writer != nullptr) {
      const auto pstats = log_writer->pipeline_stats();
      std::fprintf(f,
                   ",\n"
                   "  \"log_pipeline\": \"%s\",\n"
                   "  \"log_prep_stalls\": %llu,\n"
                   "  \"log_flush_lag_segments\": %llu",
                   pstats.enabled ? "on" : "off",
                   static_cast<unsigned long long>(pstats.prep_stalls),
                   static_cast<unsigned long long>(pstats.flush_lag_peak));
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }
  return 0;
}
