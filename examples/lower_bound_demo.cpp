// Theorem 3 at the terminal: the Ω(k) per-operation cost of invisible
// reads, printed as the table the paper argues in prose.
//
//   build/examples/lower_bound_demo --max-k=4096
//
// For each STM and each k, runs the adversarial schedule from the proof of
// Theorem 3 (T1 reads k variables, T2 overwrites them and commits, T1
// reads once more) and prints the steps the final read operation cost.
#include <cstdio>
#include <vector>

#include "stm/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
  optm::util::Cli cli("lower_bound_demo", "Theorem 3's Ω(k) bound, measured");
  cli.flag("max-k", std::int64_t{4096}, "largest read-set size to probe");
  if (!cli.parse(argc, argv)) return 1;

  const auto max_k = static_cast<std::size_t>(cli.get_int("max-k"));
  std::vector<std::size_t> ks;
  for (std::size_t k = 16; k <= max_k; k *= 4) ks.push_back(k);

  std::vector<std::string> header{"stm", "invisible", "single-v", "progressive"};
  for (const std::size_t k : ks) header.push_back("k=" + std::to_string(k));
  optm::util::Table table(header);

  for (const auto name : optm::stm::all_stm_names()) {
    const auto props = optm::stm::make_stm(name, 1)->properties();
    std::vector<std::string> row{std::string(name),
                                 props.invisible_reads ? "yes" : "no",
                                 props.single_version ? "yes" : "no",
                                 props.progressive ? "yes" : "no"};
    for (const std::size_t k : ks) {
      const auto stm = optm::stm::make_stm(name, k + 1);
      const auto probe = optm::wl::lower_bound_probe(*stm, k);
      row.push_back(optm::util::Table::num(probe.steps_final_read));
    }
    table.add_row(std::move(row));
  }

  std::printf("Steps executed by the reading process for ONE read operation\n"
              "after a conflicting commit (Theorem 3's adversarial schedule):\n\n");
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading the table against Theorem 3 (§6):\n"
      "  dstm/norec — all three premises hold -> steps grow linearly in k;\n"
      "  tl2        — not progressive          -> O(1) (it just aborts);\n"
      "  visible    — reads are visible        -> O(1) (writer warned it);\n"
      "  mv         — multi-version            -> bounded independent of k;\n"
      "  weak       — not opaque               -> O(1), but admits zombies.\n");
  return 0;
}
