// Write skew under snapshot isolation — §1's "trade safety for
// performance" made visible, and the formal account of why it is NOT an
// opacity violation of the §2 zombie kind.
//
//   build/examples/si_anomaly_demo --stm=sistm --rounds=50
//
// Two withdrawers share the invariant x + y >= 1. Each reads BOTH
// accounts and zeroes ONE of them if the total permits. The schedule
// fully overlaps them. A serializable TM aborts one withdrawer per round;
// snapshot isolation commits both — their write sets are disjoint, so
// first-committer-wins never fires — and the invariant breaks.
#include <cstdio>

#include "core/opacity.hpp"
#include "core/phenomena.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "util/cli.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
  optm::util::Cli cli("si_anomaly_demo", "write skew under snapshot isolation");
  cli.flag("stm", "sistm", "non-blocking STM name (try tl2, dstm, sistm)");
  cli.flag("rounds", std::int64_t{50}, "overlapped withdraw rounds");
  if (!cli.parse(argc, argv)) return 1;

  const auto stm = optm::stm::make_stm(cli.get("stm"), 2);
  optm::wl::WriteSkewParams params;
  params.rounds = static_cast<std::uint64_t>(cli.get_int("rounds"));

  const optm::wl::WriteSkewResult result = optm::wl::run_write_skew(*stm, params);
  std::printf("stm=%s rounds=%llu both-committed=%llu skew(x+y==0)=%llu\n",
              cli.get("stm").c_str(),
              static_cast<unsigned long long>(result.rounds_played),
              static_cast<unsigned long long>(result.both_committed_rounds),
              static_cast<unsigned long long>(result.skew_rounds));

  // The formal account, on one recorded round: SI yields consistent live
  // snapshots (no §2 zombies!) yet a non-opaque history — the two faces of
  // the correctness trade, which is why the paper needs ONE criterion that
  // rules out both failure modes.
  const auto recorded = optm::stm::make_stm(cli.get("stm"), 2);
  optm::stm::Recorder recorder(2);
  recorded->set_recorder(&recorder);
  {
    optm::sim::ThreadCtx coordinator(2);
    (void)optm::stm::atomically(*recorded, coordinator,
                                [](optm::stm::TxHandle& tx) {
                                  tx.write(0, 0x101);
                                  tx.write(1, 0x101);
                                });
    optm::sim::ThreadCtx p0(0);
    optm::sim::ThreadCtx p1(1);
    recorded->begin(p0);
    recorded->begin(p1);
    std::uint64_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    bool a0 = recorded->read(p0, 0, x0) && recorded->read(p0, 1, y0);
    bool a1 = recorded->read(p1, 0, x1) && recorded->read(p1, 1, y1);
    if (a0) a0 = recorded->write(p0, 0, 0x200);
    if (a1) a1 = recorded->write(p1, 1, 0x300);
    const bool c0 = a0 && recorded->commit(p0);
    const bool c1 = a1 && recorded->commit(p1);
    std::printf("recorded round: withdrawer0 %s, withdrawer1 %s\n",
                c0 ? "committed" : "aborted", c1 ? "committed" : "aborted");
  }

  const optm::core::History h = recorder.history();
  const auto opacity = optm::core::check_opacity(h);
  std::printf("opacity:                %s\n",
              optm::core::to_string(opacity.verdict));
  const auto snapshot = optm::core::find_inconsistent_snapshot(h);
  std::printf("inconsistent snapshot:  %s\n",
              snapshot ? snapshot->explanation.c_str() : "none (no zombies)");
  const auto skew = optm::core::find_write_skew(h);
  std::printf("write skew:             %s\n",
              skew ? skew->explanation.c_str() : "none");
  return 0;
}
