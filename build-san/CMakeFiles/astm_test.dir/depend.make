# Empty dependencies file for astm_test.
# This may be replaced when dependencies are built.
