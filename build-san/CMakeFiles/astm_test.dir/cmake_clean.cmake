file(REMOVE_RECURSE
  "CMakeFiles/astm_test.dir/tests/stm/astm_test.cpp.o"
  "CMakeFiles/astm_test.dir/tests/stm/astm_test.cpp.o.d"
  "astm_test"
  "astm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
