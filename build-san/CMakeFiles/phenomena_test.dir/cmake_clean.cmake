file(REMOVE_RECURSE
  "CMakeFiles/phenomena_test.dir/tests/core/phenomena_test.cpp.o"
  "CMakeFiles/phenomena_test.dir/tests/core/phenomena_test.cpp.o.d"
  "phenomena_test"
  "phenomena_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phenomena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
