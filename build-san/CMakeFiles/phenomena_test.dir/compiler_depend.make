# Empty compiler generated dependencies file for phenomena_test.
# This may be replaced when dependencies are built.
