file(REMOVE_RECURSE
  "CMakeFiles/event_test.dir/tests/core/event_test.cpp.o"
  "CMakeFiles/event_test.dir/tests/core/event_test.cpp.o.d"
  "event_test"
  "event_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
