# Empty compiler generated dependencies file for event_test.
# This may be replaced when dependencies are built.
