# Empty compiler generated dependencies file for object_opacity_test.
# This may be replaced when dependencies are built.
