file(REMOVE_RECURSE
  "CMakeFiles/object_opacity_test.dir/tests/core/object_opacity_test.cpp.o"
  "CMakeFiles/object_opacity_test.dir/tests/core/object_opacity_test.cpp.o.d"
  "object_opacity_test"
  "object_opacity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_opacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
