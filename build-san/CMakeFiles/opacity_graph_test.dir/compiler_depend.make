# Empty compiler generated dependencies file for opacity_graph_test.
# This may be replaced when dependencies are built.
