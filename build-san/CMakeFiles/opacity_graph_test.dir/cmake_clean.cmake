file(REMOVE_RECURSE
  "CMakeFiles/opacity_graph_test.dir/tests/core/opacity_graph_test.cpp.o"
  "CMakeFiles/opacity_graph_test.dir/tests/core/opacity_graph_test.cpp.o.d"
  "opacity_graph_test"
  "opacity_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opacity_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
