# Empty dependencies file for recoverability_test.
# This may be replaced when dependencies are built.
