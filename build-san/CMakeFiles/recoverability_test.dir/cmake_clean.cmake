file(REMOVE_RECURSE
  "CMakeFiles/recoverability_test.dir/tests/core/recoverability_test.cpp.o"
  "CMakeFiles/recoverability_test.dir/tests/core/recoverability_test.cpp.o.d"
  "recoverability_test"
  "recoverability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
