# Empty dependencies file for pool_test.
# This may be replaced when dependencies are built.
