file(REMOVE_RECURSE
  "CMakeFiles/pool_test.dir/tests/util/pool_test.cpp.o"
  "CMakeFiles/pool_test.dir/tests/util/pool_test.cpp.o.d"
  "pool_test"
  "pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
