# Empty dependencies file for optm_core.
# This may be replaced when dependencies are built.
