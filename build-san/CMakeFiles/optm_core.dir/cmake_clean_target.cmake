file(REMOVE_RECURSE
  "liboptm_core.a"
)
