# Empty dependencies file for optm_util.
# This may be replaced when dependencies are built.
