file(REMOVE_RECURSE
  "CMakeFiles/optm_util.dir/src/util/cli.cpp.o"
  "CMakeFiles/optm_util.dir/src/util/cli.cpp.o.d"
  "CMakeFiles/optm_util.dir/src/util/table.cpp.o"
  "CMakeFiles/optm_util.dir/src/util/table.cpp.o.d"
  "liboptm_util.a"
  "liboptm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
