file(REMOVE_RECURSE
  "liboptm_util.a"
)
