# Empty dependencies file for stm_concurrent_test.
# This may be replaced when dependencies are built.
