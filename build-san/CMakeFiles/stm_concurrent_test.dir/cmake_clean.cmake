file(REMOVE_RECURSE
  "CMakeFiles/stm_concurrent_test.dir/tests/stm/stm_concurrent_test.cpp.o"
  "CMakeFiles/stm_concurrent_test.dir/tests/stm/stm_concurrent_test.cpp.o.d"
  "stm_concurrent_test"
  "stm_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
