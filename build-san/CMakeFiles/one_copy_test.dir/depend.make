# Empty dependencies file for one_copy_test.
# This may be replaced when dependencies are built.
