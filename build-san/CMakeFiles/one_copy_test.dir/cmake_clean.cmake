file(REMOVE_RECURSE
  "CMakeFiles/one_copy_test.dir/tests/core/one_copy_test.cpp.o"
  "CMakeFiles/one_copy_test.dir/tests/core/one_copy_test.cpp.o.d"
  "one_copy_test"
  "one_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
