# Empty compiler generated dependencies file for random_history_test.
# This may be replaced when dependencies are built.
