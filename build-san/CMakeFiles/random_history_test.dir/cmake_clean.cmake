file(REMOVE_RECURSE
  "CMakeFiles/random_history_test.dir/tests/core/random_history_test.cpp.o"
  "CMakeFiles/random_history_test.dir/tests/core/random_history_test.cpp.o.d"
  "random_history_test"
  "random_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
