# Empty compiler generated dependencies file for opacity_test.
# This may be replaced when dependencies are built.
