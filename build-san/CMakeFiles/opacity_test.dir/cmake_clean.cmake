file(REMOVE_RECURSE
  "CMakeFiles/opacity_test.dir/tests/core/opacity_test.cpp.o"
  "CMakeFiles/opacity_test.dir/tests/core/opacity_test.cpp.o.d"
  "opacity_test"
  "opacity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
