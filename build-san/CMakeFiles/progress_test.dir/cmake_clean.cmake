file(REMOVE_RECURSE
  "CMakeFiles/progress_test.dir/tests/core/progress_test.cpp.o"
  "CMakeFiles/progress_test.dir/tests/core/progress_test.cpp.o.d"
  "progress_test"
  "progress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
