# Empty compiler generated dependencies file for progress_test.
# This may be replaced when dependencies are built.
