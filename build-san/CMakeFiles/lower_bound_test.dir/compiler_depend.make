# Empty compiler generated dependencies file for lower_bound_test.
# This may be replaced when dependencies are built.
