file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_test.dir/tests/stm/lower_bound_test.cpp.o"
  "CMakeFiles/lower_bound_test.dir/tests/stm/lower_bound_test.cpp.o.d"
  "lower_bound_test"
  "lower_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
