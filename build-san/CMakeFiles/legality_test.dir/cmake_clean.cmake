file(REMOVE_RECURSE
  "CMakeFiles/legality_test.dir/tests/core/legality_test.cpp.o"
  "CMakeFiles/legality_test.dir/tests/core/legality_test.cpp.o.d"
  "legality_test"
  "legality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
