# Empty compiler generated dependencies file for legality_test.
# This may be replaced when dependencies are built.
