# Empty dependencies file for sharded_recorder_test.
# This may be replaced when dependencies are built.
