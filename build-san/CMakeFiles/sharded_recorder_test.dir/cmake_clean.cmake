file(REMOVE_RECURSE
  "CMakeFiles/sharded_recorder_test.dir/tests/stm/sharded_recorder_test.cpp.o"
  "CMakeFiles/sharded_recorder_test.dir/tests/stm/sharded_recorder_test.cpp.o.d"
  "sharded_recorder_test"
  "sharded_recorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
