file(REMOVE_RECURSE
  "CMakeFiles/mv_test.dir/tests/stm/mv_test.cpp.o"
  "CMakeFiles/mv_test.dir/tests/stm/mv_test.cpp.o.d"
  "mv_test"
  "mv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
