# Empty compiler generated dependencies file for mv_test.
# This may be replaced when dependencies are built.
