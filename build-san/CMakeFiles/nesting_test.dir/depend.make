# Empty dependencies file for nesting_test.
# This may be replaced when dependencies are built.
