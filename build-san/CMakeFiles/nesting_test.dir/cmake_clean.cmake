file(REMOVE_RECURSE
  "CMakeFiles/nesting_test.dir/tests/core/nesting_test.cpp.o"
  "CMakeFiles/nesting_test.dir/tests/core/nesting_test.cpp.o.d"
  "nesting_test"
  "nesting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nesting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
