# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for recorded_opacity_test.
