file(REMOVE_RECURSE
  "CMakeFiles/recorded_opacity_test.dir/tests/stm/recorded_opacity_test.cpp.o"
  "CMakeFiles/recorded_opacity_test.dir/tests/stm/recorded_opacity_test.cpp.o.d"
  "recorded_opacity_test"
  "recorded_opacity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recorded_opacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
