# Empty compiler generated dependencies file for recorded_opacity_test.
# This may be replaced when dependencies are built.
