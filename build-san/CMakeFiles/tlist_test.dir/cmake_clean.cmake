file(REMOVE_RECURSE
  "CMakeFiles/tlist_test.dir/tests/stm/tlist_test.cpp.o"
  "CMakeFiles/tlist_test.dir/tests/stm/tlist_test.cpp.o.d"
  "tlist_test"
  "tlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
