# Empty compiler generated dependencies file for tlist_test.
# This may be replaced when dependencies are built.
