# Empty dependencies file for stm_common_test.
# This may be replaced when dependencies are built.
