file(REMOVE_RECURSE
  "CMakeFiles/stm_common_test.dir/tests/stm/stm_common_test.cpp.o"
  "CMakeFiles/stm_common_test.dir/tests/stm/stm_common_test.cpp.o.d"
  "stm_common_test"
  "stm_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
