# Empty compiler generated dependencies file for twopl_test.
# This may be replaced when dependencies are built.
