file(REMOVE_RECURSE
  "CMakeFiles/twopl_test.dir/tests/stm/twopl_test.cpp.o"
  "CMakeFiles/twopl_test.dir/tests/stm/twopl_test.cpp.o.d"
  "twopl_test"
  "twopl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twopl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
