file(REMOVE_RECURSE
  "liboptm_stm.a"
)
