# Empty dependencies file for optm_stm.
# This may be replaced when dependencies are built.
