file(REMOVE_RECURSE
  "CMakeFiles/optm_stm.dir/src/stm/astm.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/astm.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/contention.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/contention.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/dstm.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/dstm.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/factory.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/factory.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/glock.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/glock.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/mv.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/mv.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/norec.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/norec.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/sistm.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/sistm.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/tiny.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/tiny.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/tl2.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/tl2.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/twopl.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/twopl.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/visible.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/visible.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/stm/weak.cpp.o"
  "CMakeFiles/optm_stm.dir/src/stm/weak.cpp.o.d"
  "CMakeFiles/optm_stm.dir/src/workload/workloads.cpp.o"
  "CMakeFiles/optm_stm.dir/src/workload/workloads.cpp.o.d"
  "liboptm_stm.a"
  "liboptm_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optm_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
