# Empty dependencies file for tiny_test.
# This may be replaced when dependencies are built.
