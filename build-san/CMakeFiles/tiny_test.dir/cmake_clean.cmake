file(REMOVE_RECURSE
  "CMakeFiles/tiny_test.dir/tests/stm/tiny_test.cpp.o"
  "CMakeFiles/tiny_test.dir/tests/stm/tiny_test.cpp.o.d"
  "tiny_test"
  "tiny_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
