# Empty compiler generated dependencies file for history_test.
# This may be replaced when dependencies are built.
