file(REMOVE_RECURSE
  "CMakeFiles/history_test.dir/tests/core/history_test.cpp.o"
  "CMakeFiles/history_test.dir/tests/core/history_test.cpp.o.d"
  "history_test"
  "history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
