# Empty dependencies file for schedule_fuzz_test.
# This may be replaced when dependencies are built.
