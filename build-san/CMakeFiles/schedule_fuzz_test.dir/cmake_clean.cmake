file(REMOVE_RECURSE
  "CMakeFiles/schedule_fuzz_test.dir/tests/stm/schedule_fuzz_test.cpp.o"
  "CMakeFiles/schedule_fuzz_test.dir/tests/stm/schedule_fuzz_test.cpp.o.d"
  "schedule_fuzz_test"
  "schedule_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
