# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for schedule_fuzz_test.
