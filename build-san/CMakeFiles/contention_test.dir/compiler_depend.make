# Empty compiler generated dependencies file for contention_test.
# This may be replaced when dependencies are built.
