file(REMOVE_RECURSE
  "CMakeFiles/contention_test.dir/tests/stm/contention_test.cpp.o"
  "CMakeFiles/contention_test.dir/tests/stm/contention_test.cpp.o.d"
  "contention_test"
  "contention_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
