# Empty compiler generated dependencies file for tvar_test.
# This may be replaced when dependencies are built.
