file(REMOVE_RECURSE
  "CMakeFiles/tvar_test.dir/tests/stm/tvar_test.cpp.o"
  "CMakeFiles/tvar_test.dir/tests/stm/tvar_test.cpp.o.d"
  "tvar_test"
  "tvar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
