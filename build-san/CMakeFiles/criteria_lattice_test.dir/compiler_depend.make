# Empty compiler generated dependencies file for criteria_lattice_test.
# This may be replaced when dependencies are built.
