file(REMOVE_RECURSE
  "CMakeFiles/criteria_lattice_test.dir/tests/core/criteria_lattice_test.cpp.o"
  "CMakeFiles/criteria_lattice_test.dir/tests/core/criteria_lattice_test.cpp.o.d"
  "criteria_lattice_test"
  "criteria_lattice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteria_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
