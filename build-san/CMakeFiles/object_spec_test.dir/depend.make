# Empty dependencies file for object_spec_test.
# This may be replaced when dependencies are built.
