file(REMOVE_RECURSE
  "CMakeFiles/object_spec_test.dir/tests/core/object_spec_test.cpp.o"
  "CMakeFiles/object_spec_test.dir/tests/core/object_spec_test.cpp.o.d"
  "object_spec_test"
  "object_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
