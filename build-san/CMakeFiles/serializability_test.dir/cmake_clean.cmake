file(REMOVE_RECURSE
  "CMakeFiles/serializability_test.dir/tests/core/serializability_test.cpp.o"
  "CMakeFiles/serializability_test.dir/tests/core/serializability_test.cpp.o.d"
  "serializability_test"
  "serializability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
