# Empty compiler generated dependencies file for serializability_test.
# This may be replaced when dependencies are built.
