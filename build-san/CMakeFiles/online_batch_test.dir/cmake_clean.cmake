file(REMOVE_RECURSE
  "CMakeFiles/online_batch_test.dir/tests/core/online_batch_test.cpp.o"
  "CMakeFiles/online_batch_test.dir/tests/core/online_batch_test.cpp.o.d"
  "online_batch_test"
  "online_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
