file(REMOVE_RECURSE
  "CMakeFiles/sistm_test.dir/tests/stm/sistm_test.cpp.o"
  "CMakeFiles/sistm_test.dir/tests/stm/sistm_test.cpp.o.d"
  "sistm_test"
  "sistm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sistm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
