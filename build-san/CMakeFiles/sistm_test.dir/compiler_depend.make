# Empty compiler generated dependencies file for sistm_test.
# This may be replaced when dependencies are built.
