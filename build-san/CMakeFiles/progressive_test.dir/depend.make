# Empty dependencies file for progressive_test.
# This may be replaced when dependencies are built.
