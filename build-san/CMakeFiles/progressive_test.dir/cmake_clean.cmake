file(REMOVE_RECURSE
  "CMakeFiles/progressive_test.dir/tests/stm/progressive_test.cpp.o"
  "CMakeFiles/progressive_test.dir/tests/stm/progressive_test.cpp.o.d"
  "progressive_test"
  "progressive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
