# Empty dependencies file for paper_histories_test.
# This may be replaced when dependencies are built.
