file(REMOVE_RECURSE
  "CMakeFiles/paper_histories_test.dir/tests/core/paper_histories_test.cpp.o"
  "CMakeFiles/paper_histories_test.dir/tests/core/paper_histories_test.cpp.o.d"
  "paper_histories_test"
  "paper_histories_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_histories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
