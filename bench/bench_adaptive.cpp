// EXPERIMENT E15 — ASTM's acquisition-policy ablation (§6.2).
//
// The paper names DSTM and ASTM together as the tight Θ(k) witnesses of
// Theorem 3: the acquisition policy (eager at the write vs lazy at commit)
// does not change the §6 design-space coordinates. This bench pins that
// claim and shows what the policy DOES move:
//
//   1. FinalReadSteps      — the Theorem 3 quantity is Θ(m) in BOTH modes
//                            (and matches DSTM's shape).
//   2. WritePathSteps      — eager pays the ownership CAS at the write
//                            (Θ(1) shared steps per first write); lazy
//                            writes are process-local (ZERO shared steps).
//   3. CommitSteps         — lazy pays the whole acquisition batch at
//                            commit: Θ(W) there, vs eager's write-back-only
//                            commit. Total work is the same; only its
//                            placement differs — the classic early-vs-late
//                            conflict-detection trade ASTM adapts across.
#include "bench_common.hpp"

#include "sim/thread_ctx.hpp"

namespace optm::bench {
namespace {

void BM_FinalReadSteps(benchmark::State& state, const char* name) {
  const auto m = static_cast<std::size_t>(state.range(0));
  wl::LowerBoundProbe probe;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, m + 1);
    probe = wl::lower_bound_probe(*stm, m);
    benchmark::DoNotOptimize(probe.steps_final_read);
  }
  state.counters["steps_final_read"] =
      static_cast<double>(probe.steps_final_read);
  state.counters["steps_per_k"] = static_cast<double>(probe.steps_final_read) /
                                  static_cast<double>(m);
}

/// Shared-memory steps spent in the WRITE operations of one transaction
/// writing W distinct variables (then committing).
void BM_WritePathSteps(benchmark::State& state, const char* name) {
  const auto w = static_cast<std::size_t>(state.range(0));
  std::uint64_t write_steps = 0;
  std::uint64_t commit_steps = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, w);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    const std::uint64_t before_writes = ctx.steps.total();
    for (std::size_t v = 0; v < w; ++v) {
      (void)stm->write(ctx, static_cast<stm::VarId>(v), v + 1);
    }
    const std::uint64_t before_commit = ctx.steps.total();
    (void)stm->commit(ctx);
    write_steps = before_commit - before_writes;
    commit_steps = ctx.steps.total() - before_commit;
    benchmark::DoNotOptimize(write_steps);
  }
  state.counters["write_steps"] = static_cast<double>(write_steps);
  state.counters["commit_steps"] = static_cast<double>(commit_steps);
  state.counters["write_steps_per_var"] =
      static_cast<double>(write_steps) / static_cast<double>(w);
}

}  // namespace

#define ADAPTIVE_BENCH(fn, label, name)                \
  BENCHMARK_CAPTURE(fn, label, name)                   \
      ->RangeMultiplier(4)                             \
      ->Range(16, 1024)                                \
      ->Unit(benchmark::kMicrosecond)

ADAPTIVE_BENCH(BM_FinalReadSteps, astm_eager, "astm-eager");
ADAPTIVE_BENCH(BM_FinalReadSteps, astm_lazy, "astm-lazy");
ADAPTIVE_BENCH(BM_FinalReadSteps, dstm, "dstm");

ADAPTIVE_BENCH(BM_WritePathSteps, astm_eager, "astm-eager");
ADAPTIVE_BENCH(BM_WritePathSteps, astm_lazy, "astm-lazy");
ADAPTIVE_BENCH(BM_WritePathSteps, dstm, "dstm");
ADAPTIVE_BENCH(BM_WritePathSteps, tl2, "tl2");

#undef ADAPTIVE_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
