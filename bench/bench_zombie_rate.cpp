// EXPERIMENT E5 — §2's motivation, quantified: how often does a TM without
// opacity expose inconsistent state to LIVE transactions?
//
// Workload: an invariant-carrying pair (x, y) with y == 2x maintained by
// writer transactions; reader transactions read x then y and check the
// invariant INSIDE the transaction (as §2's 1/(y-x) computation would).
// Reported: invariant violations observed by live transactions per 10k
// reader transactions. Opaque STMs: always 0. WeakStm: > 0 under
// contention — each of those is a potential division-by-zero / runaway
// loop in real code.
#include "bench_common.hpp"

#include <thread>

namespace optm::bench {
namespace {

void BM_ZombieRate(benchmark::State& state, const char* name) {
  constexpr std::uint64_t kReaderTxs = 10000;
  std::uint64_t violations = 0;
  std::uint64_t committed_violations = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 2);
    violations = 0;
    committed_violations = 0;

    std::thread writer([&stm] {
      sim::ThreadCtx ctx(1);
      for (std::uint64_t i = 1; i <= kReaderTxs; ++i) {
        (void)stm::atomically(*stm, ctx, [&](stm::TxHandle& tx) {
          tx.write(0, i);      // x := i
          tx.write(1, 2 * i);  // y := 2x, preserving the invariant
        });
      }
    });

    sim::ThreadCtx ctx(0);
    for (std::uint64_t i = 0; i < kReaderTxs; ++i) {
      stm->begin(ctx);
      std::uint64_t x = 0, y = 0;
      const bool rx = stm->read(ctx, 0, x);
      const bool ry = rx && stm->read(ctx, 1, y);
      bool violated = false;
      if (ry && y != 2 * x) {
        // A LIVE transaction just observed an impossible state (§2: this
        // is where 1/(y-x) would trap or the loop would run away).
        ++violations;
        violated = true;
      }
      if (ry && stm->commit(ctx) && violated) ++committed_violations;
    }
    writer.join();
  }
  state.counters["live_violations_per_10k"] = static_cast<double>(violations);
  state.counters["committed_violations"] =
      static_cast<double>(committed_violations);
  state.counters["opaque_claimed"] =
      stm::make_stm(name, 1)->properties().opaque ? 1 : 0;
}

/// The same §2 hazard, driven deterministically from one OS thread (the
/// racy variant above depends on true parallelism; on a single-core host
/// the adversarial window rarely opens). Schedule per round: the reader
/// reads x, the writer commits {x := i, y := 2i}, the reader reads y and
/// checks the invariant — the exact Figure-from-§2 interleaving. WeakStm
/// hands the live reader a torn pair every round; every opaque STM either
/// aborts the reader's second read or serves a consistent snapshot; SiStm
/// serves the OLD consistent pair (no zombie, despite not being opaque).
void BM_ZombieDeterministic(benchmark::State& state, const char* name) {
  constexpr std::uint64_t kRounds = 10000;
  std::uint64_t violations = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 2);
    sim::ThreadCtx reader(0);
    sim::ThreadCtx writer(1);
    violations = 0;
    for (std::uint64_t i = 1; i <= kRounds; ++i) {
      stm->begin(reader);
      std::uint64_t x = 0, y = 0;
      const bool rx = stm->read(reader, 0, x);

      (void)stm::atomically(*stm, writer, [&](stm::TxHandle& tx) {
        tx.write(0, i);
        tx.write(1, 2 * i);
      });

      const bool ry = rx && stm->read(reader, 1, y);
      if (ry && ((x == 0 && y != 0) || (x != 0 && y != 2 * x))) ++violations;
      if (ry) {
        (void)stm->commit(reader);
      } else if (rx) {
        stm->abort(reader);
      }
    }
  }
  state.counters["live_violations_per_10k"] = static_cast<double>(violations);
  state.counters["opaque_claimed"] =
      stm::make_stm(name, 1)->properties().opaque ? 1 : 0;
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define ZOMBIE_BENCH(name)                                            \
  BENCHMARK_CAPTURE(BM_ZombieRate, name, #name)          \
      ->Unit(benchmark::kMillisecond)->Iterations(1);    \
  BENCHMARK_CAPTURE(BM_ZombieDeterministic, name, #name) \
      ->Unit(benchmark::kMillisecond)->Iterations(1)

ZOMBIE_BENCH(weak);
ZOMBIE_BENCH(sistm);
ZOMBIE_BENCH(tl2);
ZOMBIE_BENCH(tiny);
ZOMBIE_BENCH(astm);
ZOMBIE_BENCH(dstm);
ZOMBIE_BENCH(visible);
ZOMBIE_BENCH(mv);
ZOMBIE_BENCH(norec);

#undef ZOMBIE_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
