// EXPERIMENT E16 — pessimistic (database-style) vs optimistic TMs.
//
// The paper's §2/§6 framing: databases fully isolate transactional code
// (locks, sandboxing), general TM frameworks cannot. This bench quantifies
// the cost structure on the bank-transfer workload as contention varies
// (fewer accounts = hotter): strict 2PL (wait-die) never aborts at commit
// but dies at lock acquisition; the optimistic STMs speculate and abort at
// validation; the global lock serializes everything. Who wins flips with
// contention — low contention favours optimism, extreme contention the
// coarse lock.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_BankContention(benchmark::State& state, const char* name) {
  const auto accounts = static_cast<std::uint32_t>(state.range(0));
  wl::BankParams params;
  params.threads = 4;
  params.accounts = accounts;
  params.transfers_per_thread = 2000;

  wl::BankResult result;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, accounts);
    result = wl::run_bank(*stm, params);
    if (result.final_total != result.expected_total) {
      state.SkipWithError("money not conserved");
      return;
    }
    benchmark::DoNotOptimize(result.run.commits);
  }
  report_run(state, result.run);
  state.counters["transfers_per_sec"] = benchmark::Counter(
      static_cast<double>(params.threads * params.transfers_per_thread),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

#define BANK_BENCH(label, name)                       \
  BENCHMARK_CAPTURE(BM_BankContention, label, name)   \
      ->Arg(2)                                        \
      ->Arg(8)                                        \
      ->Arg(64)                                       \
      ->Unit(benchmark::kMillisecond)                 \
      ->MeasureProcessCPUTime()                       \
      ->UseRealTime()

BANK_BENCH(tl2, "tl2");
BANK_BENCH(dstm, "dstm");
BANK_BENCH(astm, "astm");
BANK_BENCH(visible, "visible");
BANK_BENCH(mv, "mv");
BANK_BENCH(norec, "norec");
BANK_BENCH(twopl, "twopl");
BANK_BENCH(glock, "glock");

#undef BANK_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
