// EXPERIMENT E10 — Theorem 3 tightness (§6.2): whole-transaction cost.
//
//   "DSTM and ASTM ... require, in the worst case, Θ(k) steps to complete
//    a single operation (or, in other words, Θ(k²) steps to execute a
//    transaction that accesses k objects)."
//
// A single transaction reads k variables (uncontended). Reported: total
// steps for the whole transaction. DSTM's incremental validation makes it
// quadratic in k; TL2/visible/weak stay linear (O(1) per read); NOrec is
// linear here because the clock never moves (its Θ(k²) needs concurrent
// commits — bench_lower_bound covers that); MV pays the ring scan.
#include "bench_common.hpp"

#include "stm/recorder.hpp"

namespace optm::bench {
namespace {

void BM_ScanTransaction(benchmark::State& state, const char* name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::uint64_t total_steps = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, k);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    for (std::size_t v = 0; v < k; ++v) {
      std::uint64_t out = 0;
      if (!stm->read(ctx, static_cast<stm::VarId>(v), out)) break;
      benchmark::DoNotOptimize(out);
    }
    benchmark::DoNotOptimize(stm->commit(ctx));
    total_steps = ctx.steps.total();
  }
  state.counters["tx_steps"] = static_cast<double>(total_steps);
  state.counters["steps_per_k2"] =
      static_cast<double>(total_steps) / (static_cast<double>(k) * static_cast<double>(k));
  state.counters["steps_per_k"] =
      static_cast<double>(total_steps) / static_cast<double>(k);
}

// Same scan with a recorder attached: the per-read price of verification
// mode (stamping + the sampling window) on top of the Theorem 3 quantity.
// The sharded engine's goal is that this overhead stays flat in k and per
// event — compare time/op against the unrecorded BM_ScanTransaction rows.
template <typename RecorderT>
void BM_ScanTransactionRecorded(benchmark::State& state, const char* name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, k);
    RecorderT recorder(k);
    stm->set_recorder(&recorder);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    for (std::size_t v = 0; v < k; ++v) {
      std::uint64_t out = 0;
      if (!stm->read(ctx, static_cast<stm::VarId>(v), out)) break;
      benchmark::DoNotOptimize(out);
    }
    benchmark::DoNotOptimize(stm->commit(ctx));
    benchmark::DoNotOptimize(recorder.num_events());
  }
  state.counters["events_per_tx"] = static_cast<double>(2 * k + 2);
}

void BM_ScanRecordedSharded(benchmark::State& state) {
  BM_ScanTransactionRecorded<stm::Recorder>(state, "tl2");
}
void BM_ScanRecordedMutex(benchmark::State& state) {
  BM_ScanTransactionRecorded<stm::MutexRecorder>(state, "tl2");
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define SCAN_BENCH(name)                                                  \
  BENCHMARK_CAPTURE(BM_ScanTransaction, name, #name)         \
      ->RangeMultiplier(2)                                                \
      ->Range(32, 1024)                                                   \
      ->Unit(benchmark::kMicrosecond)

SCAN_BENCH(dstm);
SCAN_BENCH(astm);
SCAN_BENCH(tiny);
SCAN_BENCH(tl2);
SCAN_BENCH(visible);
SCAN_BENCH(mv);
SCAN_BENCH(norec);
SCAN_BENCH(weak);

#undef SCAN_BENCH

BENCHMARK(BM_ScanRecordedSharded)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_ScanRecordedMutex)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace optm::bench

BENCHMARK_MAIN();
