// EXPERIMENT E19 — commit-path cost vs write-set size (ablation).
//
// Theorem 3 bounds the READ path; this bench completes the per-operation
// cost picture on the WRITE/commit path: shared-memory steps a solo
// transaction pays to commit W buffered writes. All runtimes are Θ(W) at
// commit (write-back or version install), but the constants differ by
// design: TL2 locks + validates + writes back + releases; DSTM already
// owns everything (write-back only); ASTM-lazy acquires the whole batch
// at commit; MV/SI install fresh versions; 2PL installs and releases
// read+write locks; the global lock pays nothing per variable beyond the
// write-back itself.
#include "bench_common.hpp"

#include "sim/thread_ctx.hpp"

namespace optm::bench {
namespace {

void BM_CommitSteps(benchmark::State& state, const char* name) {
  const auto w = static_cast<std::size_t>(state.range(0));
  std::uint64_t commit_steps = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, w);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    for (std::size_t v = 0; v < w; ++v) {
      (void)stm->write(ctx, static_cast<stm::VarId>(v), v + 1);
    }
    const std::uint64_t before = ctx.steps.total();
    (void)stm->commit(ctx);
    commit_steps = ctx.steps.total() - before;
    benchmark::DoNotOptimize(commit_steps);
  }
  state.counters["commit_steps"] = static_cast<double>(commit_steps);
  state.counters["commit_steps_per_var"] =
      static_cast<double>(commit_steps) / static_cast<double>(w);
}

}  // namespace

#define COMMIT_BENCH(label, name)                   \
  BENCHMARK_CAPTURE(BM_CommitSteps, label, name)    \
      ->RangeMultiplier(4)                          \
      ->Range(16, 1024)                             \
      ->Unit(benchmark::kMicrosecond)

COMMIT_BENCH(tl2, "tl2");
COMMIT_BENCH(dstm, "dstm");
COMMIT_BENCH(astm_lazy, "astm-lazy");
COMMIT_BENCH(astm_eager, "astm-eager");
COMMIT_BENCH(visible, "visible");
COMMIT_BENCH(mv, "mv");
COMMIT_BENCH(sistm, "sistm");
COMMIT_BENCH(norec, "norec");
COMMIT_BENCH(twopl, "twopl");
COMMIT_BENCH(glock, "glock");

#undef COMMIT_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
