// Shared helpers for the benchmark binaries.
//
// Conventions: each binary regenerates one experiment from EXPERIMENTS.md
// (one paper figure, theorem or worked example). Deterministic quantities —
// steps per operation, abort counts — are exported as google-benchmark
// counters so the table the paper's claim lives in is directly visible in
// the benchmark output; wall-clock time is reported as usual alongside.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::bench {

inline void report_run(benchmark::State& state, const wl::RunResult& run) {
  state.counters["commits"] = static_cast<double>(run.commits);
  state.counters["aborts"] = static_cast<double>(run.aborts);
  state.counters["abort_ratio"] = run.abort_ratio();
  state.counters["steps"] = static_cast<double>(run.steps.total());
  state.counters["validation_steps"] = static_cast<double>(run.validation_steps);
}

}  // namespace optm::bench
