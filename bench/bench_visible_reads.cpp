// EXPERIMENT E12 — §6's invisible-vs-visible trade-off on the read path.
//
//   "A practical advantage of invisible reads is that pk, while executing
//    op, does not invalidate any processor cache lines."
//
// Measured: shared-memory WRITES (stores + RMWs) issued on the read path
// of a k-variable read-only scan — the §6 cache-traffic analog. Invisible
// designs score 0; the visible-read design pays exactly one RMW per read.
// Wall-clock time of the scan is reported alongside.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_ReadPathSharedWrites(benchmark::State& state, const char* name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::uint64_t shared_writes = 0;
  std::uint64_t reads = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, k);
    sim::ThreadCtx ctx(0);
    stm->begin(ctx);
    const std::uint64_t before = ctx.steps.shared_writes();
    for (std::size_t v = 0; v < k; ++v) {
      std::uint64_t out = 0;
      if (!stm->read(ctx, static_cast<stm::VarId>(v), out)) break;
      benchmark::DoNotOptimize(out);
    }
    shared_writes = ctx.steps.shared_writes() - before;
    reads = ctx.stats.reads;
    benchmark::DoNotOptimize(stm->commit(ctx));
  }
  state.counters["read_path_shared_writes"] = static_cast<double>(shared_writes);
  state.counters["shared_writes_per_read"] =
      reads > 0 ? static_cast<double>(shared_writes) / static_cast<double>(reads)
                : 0.0;
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define VIS_BENCH(name)                                                       \
  BENCHMARK_CAPTURE(BM_ReadPathSharedWrites, name, #name)        \
      ->Arg(256)                                                              \
      ->Unit(benchmark::kMicrosecond)

VIS_BENCH(visible);
VIS_BENCH(twopl);
VIS_BENCH(tl2);
VIS_BENCH(tiny);
VIS_BENCH(astm);
VIS_BENCH(dstm);
VIS_BENCH(mv);
VIS_BENCH(norec);
VIS_BENCH(weak);

#undef VIS_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
