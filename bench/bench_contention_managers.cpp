// EXPERIMENT (ablation) — contention-management policies under conflict.
//
// The paper defers progress to contention managers ([9]/[27] in its
// bibliography) and notes the Θ(k) tightness of DSTM holds "with most
// contention managers". This ablation sweeps the shipped policies over a
// contended bank and reports throughput and abort ratios per policy.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_CmBank(benchmark::State& state, const char* stm_name) {
  wl::BankResult result;
  for (auto _ : state) {
    const auto stm = stm::make_stm(stm_name, 8);
    wl::BankParams params;
    params.threads = 4;
    params.accounts = 8;  // hot
    params.transfers_per_thread = 1000;
    result = wl::run_bank(*stm, params);
  }
  report_run(state, result.run);
  state.counters["commits_per_sec"] = result.run.commits_per_second();
  state.counters["money_conserved"] =
      result.final_total == result.expected_total ? 1 : 0;
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define CM_BENCH(policy)                                                      \
  BENCHMARK_CAPTURE(BM_CmBank, dstm_##policy, "dstm/" #policy)   \
      ->Unit(benchmark::kMillisecond);                                        \
  BENCHMARK_CAPTURE(BM_CmBank, visible_##policy,                 \
                    "visible/" #policy)                                       \
      ->Unit(benchmark::kMillisecond)

CM_BENCH(aggressive);
CM_BENCH(polite);
CM_BENCH(karma);
CM_BENCH(greedy);

#undef CM_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
