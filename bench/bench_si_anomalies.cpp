// EXPERIMENT E17 — the snapshot-isolation trade (§1):
//
//   "There are indeed TM implementations that do not ensure opacity;
//    these, however, explicitly trade safety guarantees ... for improved
//    performance."
//
// The deterministic fully-overlapped withdraw schedule (two transactions
// read {x,y} and zero disjoint halves). Counters per STM:
//   both_committed — rounds where BOTH withdrawers committed (SI's
//                    "performance": no aborts, twice the commit rate)
//   skew_rounds    — rounds ending with the invariant broken (SI's "cost")
// Serializable TMs show both_committed = skew = 0: one withdrawer pays
// with an abort every round.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_WriteSkew(benchmark::State& state, const char* name) {
  wl::WriteSkewParams params;
  params.rounds = static_cast<std::uint64_t>(state.range(0));
  wl::WriteSkewResult result;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 2);
    result = wl::run_write_skew(*stm, params);
    benchmark::DoNotOptimize(result.skew_rounds);
  }
  state.counters["rounds"] = static_cast<double>(result.rounds_played);
  state.counters["both_committed"] =
      static_cast<double>(result.both_committed_rounds);
  state.counters["skew_rounds"] = static_cast<double>(result.skew_rounds);
}

}  // namespace

#define SKEW_BENCH(label, name)                   \
  BENCHMARK_CAPTURE(BM_WriteSkew, label, name)    \
      ->Arg(100)                                  \
      ->Unit(benchmark::kMillisecond)

SKEW_BENCH(sistm, "sistm");
SKEW_BENCH(tl2, "tl2");
SKEW_BENCH(dstm, "dstm");
SKEW_BENCH(astm, "astm");
SKEW_BENCH(mv, "mv");
SKEW_BENCH(norec, "norec");
SKEW_BENCH(weak, "weak");
SKEW_BENCH(twopl_nowait, "twopl-nowait");

#undef SKEW_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
