// EXPERIMENT E9 — Theorem 3 (§6): the Ω(k) lower bound, measured.
//
// The hard instance of the proof: T1 reads m variables; T2 writes ONE
// fresh variable and commits; T1 then reads that variable. T1's process
// cannot know (invisible reads) that its snapshot survived, so it must
// examine all m read-set entries — and, nothing having changed, a
// progressive TM must then let T1 commit: the Ω(m) scan has no early
// exit. The benchmark reports `steps_final_read` — base-shared-object
// accesses T1's process performs for that single operation — as a
// function of m, for every STM in the design space.
//
// Paper-claimed shape:
//   dstm    : Θ(m)  (tight witness — incremental validation)
//   tiny    : Θ(m)  (tight witness — snapshot extension, then SUCCEEDS)
//   norec   : Θ(m)  (value revalidation; premises of the theorem hold)
//   tl2     : O(1)  (escapes: not progressive)
//   visible : O(1)  (escapes: visible reads)
//   mv      : O(1) in k (escapes: multi-version; cost tracks ring depth)
//   weak    : O(1)  (escapes: not opaque — and admits the zombie)
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_FinalReadSteps(benchmark::State& state, const char* name) {
  const auto m = static_cast<std::size_t>(state.range(0));
  wl::LowerBoundProbe probe;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, m + 1);
    probe = wl::lower_bound_probe(*stm, m);
    benchmark::DoNotOptimize(probe.steps_final_read);
  }
  state.counters["steps_final_read"] =
      static_cast<double>(probe.steps_final_read);
  state.counters["validation_steps"] =
      static_cast<double>(probe.validation_steps_final_read);
  state.counters["read_succeeded"] = probe.read_succeeded ? 1 : 0;
  state.counters["steps_per_k"] = static_cast<double>(probe.steps_final_read) /
                                  static_cast<double>(m);
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define PROBE_BENCH(name)                                                   \
  BENCHMARK_CAPTURE(BM_FinalReadSteps, name, #name)            \
      ->RangeMultiplier(4)                                                  \
      ->Range(16, 4096)                                                     \
      ->Unit(benchmark::kMicrosecond)

PROBE_BENCH(dstm);
PROBE_BENCH(tiny);
PROBE_BENCH(norec);
PROBE_BENCH(tl2);
PROBE_BENCH(visible);
PROBE_BENCH(mv);
PROBE_BENCH(weak);

#undef PROBE_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
