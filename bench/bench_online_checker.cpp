// EXPERIMENT E18 — online monitoring cost (§5.2's prefix discipline).
//
// The definitional prefix checker re-solves an NP-hard problem per
// response; the streaming certificate monitor is amortized O(1) per event.
// This bench makes the gap concrete: events/second for each backend as the
// recorded history grows, plus the certificate monitor alone on long runs
// the definitional backend could never touch.
#include "bench_common.hpp"

#include "core/online.hpp"
#include "stm/recorder.hpp"

namespace optm::bench {
namespace {

/// Record a mix run of the given size on an opaque STM.
core::History recorded_mix(std::uint64_t txs_per_thread) {
  const auto stm = stm::make_stm("tl2", 8);
  stm::Recorder recorder(8);
  stm->set_recorder(&recorder);
  wl::MixParams params;
  params.threads = 3;
  params.vars = 8;
  params.txs_per_thread = txs_per_thread;
  params.seed = 4242;
  (void)wl::run_random_mix(*stm, params);
  return recorder.history();
}

void BM_CertificateMonitor(benchmark::State& state) {
  const core::History h = recorded_mix(static_cast<std::uint64_t>(state.range(0)));
  bool clean = true;
  for (auto _ : state) {
    core::OnlineCertificateMonitor monitor(h.model());
    for (const core::Event& e : h.events()) (void)monitor.feed(e);
    clean = monitor.ok();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("certificate violation on an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DefinitionalMonitor(benchmark::State& state) {
  // The exact backend re-runs Definition 1 per response: only small
  // prefixes are feasible (it subsumes view-serializability).
  const core::History h = recorded_mix(static_cast<std::uint64_t>(state.range(0)));
  bool clean = true;
  for (auto _ : state) {
    core::OnlineDefinitionalMonitor monitor(h.model());
    for (const core::Event& e : h.events()) (void)monitor.feed(e);
    clean = monitor.ok();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("definitional violation on an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(BM_CertificateMonitor)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DefinitionalMonitor)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond);

}  // namespace optm::bench

BENCHMARK_MAIN();
