// EXPERIMENT E18 — online monitoring cost (§5.2's prefix discipline).
//
// The definitional prefix checker re-solves an NP-hard problem per
// response; the streaming certificate monitor is amortized O(1) per event.
// This bench makes the gap concrete: events/second for each backend as the
// recorded history grows, plus the certificate monitor alone on long runs
// the definitional backend could never touch.
//
// It also measures the RECORDING side of the pipeline: events/second of a
// live multi-threaded mix with the original single-mutex recorder vs the
// sharded per-lane recorder (same workload, same run), the batch-ingestion
// path fed by the sharded recorder's drain(), and the sharded offline
// verification driver across shard counts.
#include "bench_common.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <span>
#include <thread>

#include "core/online.hpp"
#include "core/parallel_stream.hpp"
#include "core/parallel_verify.hpp"
#include "log/log_sink.hpp"
#include "log/writer.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"
#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/pool.hpp"

namespace optm::bench {
namespace {

/// Record a mix run of the given size on an opaque STM.
core::History recorded_mix(std::uint64_t txs_per_thread) {
  const auto stm = stm::make_stm("tl2", 8);
  stm::Recorder recorder(8);
  stm->set_recorder(&recorder);
  wl::MixParams params;
  params.threads = 3;
  params.vars = 8;
  params.txs_per_thread = txs_per_thread;
  params.seed = 4242;
  (void)wl::run_random_mix(*stm, params);
  return recorder.history();
}

void BM_CertificateMonitor(benchmark::State& state) {
  const core::History h = recorded_mix(static_cast<std::uint64_t>(state.range(0)));
  bool clean = true;
  for (auto _ : state) {
    core::OnlineCertificateMonitor monitor(h.model());
    for (const core::Event& e : h.events()) (void)monitor.feed(e);
    clean = monitor.ok();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("certificate violation on an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DefinitionalMonitor(benchmark::State& state) {
  // The exact backend re-runs Definition 1 per response: only small
  // prefixes are feasible (it subsumes view-serializability).
  const core::History h = recorded_mix(static_cast<std::uint64_t>(state.range(0)));
  bool clean = true;
  for (auto _ : state) {
    core::OnlineDefinitionalMonitor monitor(h.model());
    for (const core::Event& e : h.events()) (void)monitor.feed(e);
    clean = monitor.ok();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("definitional violation on an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

// --- recorded-mode throughput: single-mutex vs sharded recorder ---------------

/// Run the same mix with `Threads` workers and the given recorder engine;
/// report recorded events/second. The per-thread transaction count is held
/// constant, so the threads axis scales offered load with parallelism.
/// `window_free` drops the recorder windows entirely (stamped recording);
/// the delta against the windowed run is the price of the window lock.
/// `stm_name` picks the stamp source (tl2's clock vs dstm's orec story).
template <typename RecorderT>
void BM_RecordedMix(benchmark::State& state, bool window_free = false,
                    const char* stm_name = "tl2",
                    std::uint32_t stamp_batch = 1) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  wl::MixParams params;
  params.threads = threads;
  params.vars = 64;
  params.txs_per_thread = 400;
  params.ops_per_tx = 8;
  params.write_ratio = 0.25;
  params.seed = 4242;

  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(stm_name, params.vars);
    (void)stm->set_window_free(window_free);
    RecorderT recorder(params.vars, stm::Recorder::Options{stamp_batch});
    stm->set_recorder(&recorder);
    (void)wl::run_random_mix(*stm, params);
    events = recorder.num_events();
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}

// --- recorded-mode live verification: the ISSUE's collapse scenario ----------
//
// §5.2 demands a verdict on every prefix: the monitor must run WHILE the
// mix records. With the single-mutex recorder the only way to observe the
// stream is to snapshot history() — an O(n) copy under the global mutex
// that stalls every recording thread, done once per poll interval, so the
// pipeline is quadratic in the run length. The sharded recorder's drain()
// hands the monitor each stamp-contiguous batch exactly once. Same
// workload, same monitor, same verdicts; the architecture is the only
// difference, and it grows without bound in the run length.

constexpr std::size_t kPollInterval = 1024;

template <typename Pipeline>
void live_verified_mix(benchmark::State& state, Pipeline&& pipeline) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  wl::MixParams params;
  params.threads = threads;
  params.vars = 64;
  params.txs_per_thread = 12000 / threads;
  params.ops_per_tx = 8;
  params.write_ratio = 0.25;
  params.seed = 4242;

  std::uint64_t events = 0;
  bool clean = true;
  for (auto _ : state) {
    const auto stm = stm::make_stm("tl2", params.vars);
    clean = pipeline(*stm, params, events);
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("live monitor flagged an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_LiveVerifiedMixMutex(benchmark::State& state) {
  live_verified_mix(state, [](stm::Stm& stm, const wl::MixParams& params,
                              std::uint64_t& events) {
    stm::MutexRecorder recorder(params.vars);
    stm.set_recorder(&recorder);
    core::OnlineCertificateMonitor monitor(
        core::ObjectModel::registers(params.vars, 0));
    std::atomic<bool> done{false};
    std::thread verifier([&] {
      std::size_t fed = 0;
      for (;;) {
        const bool finished = done.load(std::memory_order_acquire);
        if (finished || recorder.num_events() - fed >= kPollInterval) {
          // The old API's only window into the stream: a full snapshot.
          const core::History h = recorder.history();
          (void)monitor.ingest(
              std::span<const core::Event>(h.events()).subspan(fed));
          fed = h.size();
          if (finished && fed == recorder.num_events()) return;
        } else {
          std::this_thread::yield();
        }
      }
    });
    (void)wl::run_random_mix(stm, params);
    done.store(true, std::memory_order_release);
    verifier.join();
    events = monitor.events_fed();
    return monitor.ok();
  });
}

/// The sharded drain/ingest pipeline; `policy` lets the window-free
/// variant feed the kStampedRead monitor (windowed feeds the default).
/// The consumer is the production shape: reusable EventBatch, pre-sized
/// monitor, and the self-pacing AdaptiveDrainPacer instead of the old
/// fixed poll interval.
void live_verified_sharded(benchmark::State& state, bool window_free,
                           core::VersionOrderPolicy policy) {
  live_verified_mix(state, [&](stm::Stm& stm, const wl::MixParams& params,
                               std::uint64_t& events) {
    (void)stm.set_window_free(window_free);
    stm::Recorder recorder(params.vars);
    stm.set_recorder(&recorder);
    core::OnlineCertificateMonitor monitor(recorder.model(), policy);
    monitor.reserve(params.threads * params.txs_per_thread + 16,
                    params.txs_per_thread * params.threads *
                            params.ops_per_tx / 2 +
                        params.vars + 16);
    std::atomic<bool> done{false};
    std::thread verifier([&] {
      stm::EventBatch batch;
      stm::AdaptiveDrainPacer pacer;
      for (;;) {
        const bool finished = done.load(std::memory_order_acquire);
        if (finished || pacer.should_drain(recorder.stamps_issued(),
                                           recorder.approx_pending())) {
          batch.clear();
          if (recorder.drain(batch) > 0) {
            pacer.on_drain();
            (void)monitor.ingest(batch.span());
            continue;
          }
          if (finished) return;
        }
        std::this_thread::yield();
      }
    });
    (void)wl::run_random_mix(stm, params);
    done.store(true, std::memory_order_release);
    verifier.join();
    events = monitor.events_fed();
    return monitor.ok();
  });
}

// --- batch ingestion fed by the sharded recorder ------------------------------

void BM_BatchCertificateMonitor(benchmark::State& state) {
  const core::History h = recorded_mix(2048);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  bool clean = true;
  for (auto _ : state) {
    core::OnlineCertificateMonitor monitor(h.model());
    const std::span<const core::Event> events(h.events());
    for (std::size_t i = 0; i < events.size(); i += batch) {
      (void)monitor.ingest(
          events.subspan(i, std::min(batch, events.size() - i)));
    }
    clean = monitor.ok();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("certificate violation on an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

// --- parallel streaming certification -----------------------------------------

/// The parallel streaming certifier (core/parallel_stream.hpp) over the
/// same recorded history the monitor benches consume, swept across shard
/// counts (range(0) register shards -> range(0)+1 pipeline threads). The
/// 1-shard point prices the pipeline itself (channels, barriers, the
/// extra pass-0 thread) against BM_BatchCertificateMonitor; higher shard
/// counts show how certification scales once the scan is the bottleneck.
/// On a single-core CI runner the whole sweep degenerates to serialized
/// context switching — read the shape, not the absolute numbers.
void BM_ParallelStreamMonitor(benchmark::State& state) {
  const core::History h = recorded_mix(4096);
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kIngestChunk = 8192;
  bool clean = true;
  for (auto _ : state) {
    core::ParallelStreamCertifier::Options options;
    options.num_shards = shards;
    core::ParallelStreamCertifier cert(h.model(),
                                       core::VersionOrderPolicy::kCommitOrder,
                                       options);
    cert.reserve(/*num_txs=*/16384, /*num_versions=*/h.size() / 3 + 64);
    const std::span<const core::Event> events(h.events());
    for (std::size_t i = 0; i < events.size(); i += kIngestChunk) {
      (void)cert.ingest(
          events.subspan(i, std::min(kIngestChunk, events.size() - i)));
    }
    clean = cert.finish();
    benchmark::DoNotOptimize(clean);
  }
  if (!clean) {
    state.SkipWithError("parallel certifier flagged an opaque STM's run");
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

// --- sharded offline verification ---------------------------------------------

void BM_ParallelOfflineVerify(benchmark::State& state) {
  const core::History h = recorded_mix(4096);
  const auto shards = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(shards);
  bool certified = false;
  std::string first_flag;
  for (auto _ : state) {
    core::ShardVerifyOptions options;
    options.num_shards = shards;
    const auto result = core::verify_history_sharded(h, pool, options);
    certified = result.certified;
    if (!certified && first_flag.empty() && result.violation.has_value()) {
      first_flag = "pos " + std::to_string(result.violation->pos) + ": " +
                   result.violation->reason;
    }
    benchmark::DoNotOptimize(certified);
  }
  if (!certified) {
    state.SkipWithError(
        ("sharded driver flagged an opaque STM's run — " + first_flag).c_str());
    return;
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(BM_CertificateMonitor)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DefinitionalMonitor)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond);

void BM_RecordedMixMutex(benchmark::State& state) {
  BM_RecordedMix<optm::stm::MutexRecorder>(state);
}
void BM_RecordedMixSharded(benchmark::State& state) {
  BM_RecordedMix<optm::stm::Recorder>(state);
}
void BM_RecordedMixTl2WindowFree(benchmark::State& state) {
  BM_RecordedMix<optm::stm::Recorder>(state, /*window_free=*/true);
}
void BM_RecordedMixDstmWindowFree(benchmark::State& state) {
  // The orec stamp source: per-read whole-read-set validation draws the
  // snapshot, commits ticket through kCommitting. The delta against
  // BM_RecordedMixTl2WindowFree is the Θ(k) validation, not the recorder.
  BM_RecordedMix<optm::stm::Recorder>(state, /*window_free=*/true, "dstm");
}
void BM_RecordedMixShardedBatch(benchmark::State& state) {
  // Batch-stamped recording (windowed): one global-clock ticket per 8
  // events where the seqlock admits it. The delta against
  // BM_RecordedMixSharded is the amortized fetch_add traffic.
  BM_RecordedMix<optm::stm::Recorder>(state, /*window_free=*/false, "tl2",
                                      /*stamp_batch=*/8);
}
void BM_RecordedMixTl2WindowFreeBatch(benchmark::State& state) {
  BM_RecordedMix<optm::stm::Recorder>(state, /*window_free=*/true, "tl2",
                                      /*stamp_batch=*/8);
}
void BM_LiveVerifiedMixSharded(benchmark::State& state) {
  live_verified_sharded(state, /*window_free=*/false,
                        core::VersionOrderPolicy::kCommitOrder);
}
void BM_LiveVerifiedMixTl2WindowFree(benchmark::State& state) {
  live_verified_sharded(state, /*window_free=*/true,
                        core::VersionOrderPolicy::kStampedRead);
}

BENCHMARK(BM_RecordedMixMutex)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_RecordedMixSharded)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_RecordedMixTl2WindowFree)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_RecordedMixDstmWindowFree)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_RecordedMixShardedBatch)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_RecordedMixTl2WindowFreeBatch)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_LiveVerifiedMixMutex)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_LiveVerifiedMixSharded)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_LiveVerifiedMixTl2WindowFree)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_BatchCertificateMonitor)
    ->RangeMultiplier(8)
    ->Range(1, 4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ParallelStreamMonitor)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ParallelOfflineVerify)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sink overhead: the durable segment-log sink vs the in-RAM append baseline
// ---------------------------------------------------------------------------

namespace {

/// Push a pre-recorded history through a sink in drain-sized chunks —
/// the consumption side of the pipeline isolated from recording noise.
void sink_append_chunks(const core::History& h, stm::EventSink& sink,
                        std::size_t chunk) {
  std::span<const core::Event> rest(h.events());
  while (!rest.empty()) {
    const std::size_t take = std::min(rest.size(), chunk);
    if (!sink.accept(rest.first(take))) break;
    rest = rest.subspan(take);
  }
  (void)sink.finish();
}

constexpr std::size_t kSinkChunkEvents = 8192;

/// Baseline: the same chunks appended to an in-RAM History
/// (History::append_batch via HistoryAppendSink).
void BM_RamAppendDrain(benchmark::State& state) {
  const core::History h = recorded_mix(4096);
  for (auto _ : state) {
    core::History out(h.model());
    stm::HistoryAppendSink sink(out);
    sink_append_chunks(h, sink, kSinkChunkEvents);
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// The durable leg: identical chunks through log::LogWriterSink into a
/// fresh multi-segment mmap-backed log per iteration (CRC framing,
/// rotation and the final seal included). The delta against
/// BM_RamAppendDrain is the cost of durability in the drain loop; the
/// pipelined/synchronous pair isolates what the background prep/seal
/// thread buys on top of the hardware CRC.
void log_append_drain(benchmark::State& state, bool pipeline) {
  const core::History h = recorded_mix(4096);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("optm_bench_log_" + std::to_string(::getpid()));
  std::uint64_t segments = 0;
  for (auto _ : state) {
    log::WriterOptions options;
    options.directory = dir.string();
    options.segment_bytes = std::size_t{2} << 20;  // force rotation
    options.pipeline = pipeline;
    options.metadata.runtime = "tl2";
    options.metadata.policy = "record-only";
    options.metadata.window_mode = "windowed";
    options.metadata.num_vars = 8;
    log::LogWriter writer(options);
    log::LogWriterSink sink(writer);
    sink_append_chunks(h, sink, kSinkChunkEvents);
    if (!writer.ok()) {
      state.SkipWithError(writer.error().c_str());
      return;
    }
    segments = writer.segments_written();
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["segments"] = static_cast<double>(segments);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(h.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_LogAppendDrain(benchmark::State& state) {
  log_append_drain(state, /*pipeline=*/false);
}

void BM_LogAppendDrainPipelined(benchmark::State& state) {
  log_append_drain(state, /*pipeline=*/true);
}

/// The checksum kernel alone (util::crc32c as dispatched — hardware
/// where the CPU has it), at a block-header-ish size, the drain-chunk
/// payload scale, and a streaming megabyte. The label records which
/// backend actually ran so archived numbers are comparable across hosts.
void BM_Crc32c(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<unsigned char> buf(bytes);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& b : buf) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<unsigned char>(x);
  }
  std::uint32_t crc = 0;
  for (auto _ : state) {
    crc = util::crc32c(buf.data(), buf.size(), crc);
    benchmark::DoNotOptimize(crc);
  }
  state.SetLabel(util::crc32c_backend_name());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["events"] = static_cast<double>(bytes);  // bytes per iter
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(bytes),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(BM_RamAppendDrain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogAppendDrain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogAppendDrainPipelined)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// --json=FILE: the machine-readable perf artifact (BENCH_5.json schema)
// ---------------------------------------------------------------------------
//
// CI's bench-smoke job archives this next to the google-benchmark JSON so
// the repository accumulates an events/sec trajectory per
// runtime x policy x window mode instead of free-form console logs.

namespace {

/// Static metadata keyed by benchmark-name prefix (longest match wins).
/// "record-only" marks pure recording benches (no monitor in the loop).
struct BenchMeta {
  const char* prefix;
  const char* runtime;
  const char* policy;
  const char* window_mode;
};
constexpr BenchMeta kBenchMeta[] = {
    {"BM_CertificateMonitor", "tl2", "commit-order", "windowed"},
    {"BM_DefinitionalMonitor", "tl2", "definitional", "windowed"},
    {"BM_BatchCertificateMonitor", "tl2", "commit-order", "windowed"},
    {"BM_ParallelStreamMonitor", "tl2", "commit-order", "windowed"},
    {"BM_ParallelOfflineVerify", "tl2", "commit-order", "windowed"},
    {"BM_RecordedMixMutex", "tl2", "record-only", "windowed"},
    {"BM_RecordedMixSharded", "tl2", "record-only", "windowed"},
    {"BM_RecordedMixTl2WindowFree", "tl2", "record-only", "window-free"},
    {"BM_RecordedMixDstmWindowFree", "dstm", "record-only", "window-free"},
    {"BM_RecordedMixShardedBatch", "tl2", "record-only", "windowed"},
    {"BM_RecordedMixTl2WindowFreeBatch", "tl2", "record-only", "window-free"},
    {"BM_LiveVerifiedMixMutex", "tl2", "commit-order", "windowed"},
    {"BM_LiveVerifiedMixSharded", "tl2", "commit-order", "windowed"},
    {"BM_LiveVerifiedMixTl2WindowFree", "tl2", "stamped-read", "window-free"},
    {"BM_RamAppendDrain", "tl2", "record-only", "windowed"},
    {"BM_LogAppendDrain", "tl2", "record-only", "windowed"},
    {"BM_LogAppendDrainPipelined", "tl2", "record-only", "windowed"},
    {"BM_Crc32c", "tl2", "record-only", "windowed"},
};

[[nodiscard]] const BenchMeta* meta_of(const std::string& name) {
  const BenchMeta* best = nullptr;
  std::size_t best_len = 0;
  for (const BenchMeta& m : kBenchMeta) {
    const std::size_t len = std::char_traits<char>::length(m.prefix);
    if (name.compare(0, len, m.prefix) == 0 && len > best_len) {
      best = &m;
      best_len = len;
    }
  }
  return best;
}

struct CapturedRun {
  std::string name;
  double events = 0;
  double events_per_sec = 0;
  double real_time_sec = 0;
  std::int64_t iterations = 0;
};

/// Console output as usual, plus a side capture of every run for --json.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Runs that errored/skipped never set their counters — keying on the
      // events counter also keeps this portable across google-benchmark
      // versions (Run::error_occurred became Run::skipped in 1.8).
      const auto ev = run.counters.find("events");
      if (ev == run.counters.end()) continue;
      CapturedRun c;
      c.name = run.benchmark_name();
      c.iterations = run.iterations;
      c.real_time_sec =
          run.iterations > 0 ? run.real_accumulated_time / run.iterations : 0;
      c.events = ev->second.value;
      if (c.real_time_sec > 0) c.events_per_sec = c.events / c.real_time_sec;
      captured_.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<CapturedRun>& captured() const noexcept {
    return captured_;
  }

 private:
  std::vector<CapturedRun> captured_;
};

[[nodiscard]] bool write_bench_json(const std::string& path,
                                    const std::vector<CapturedRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"optm-bench-v1\",\n"
               "  \"tool\": \"bench_online_checker\",\n"
               "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CapturedRun& r = runs[i];
    const BenchMeta* m = meta_of(r.name);
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"runtime\": \"%s\", \"policy\": \"%s\", "
        "\"window_mode\": \"%s\", \"events\": %.0f, "
        "\"events_per_sec\": %.0f, \"real_time_sec\": %.9f, "
        "\"iterations\": %lld}%s\n",
        r.name.c_str(), m != nullptr ? m->runtime : "?",
        m != nullptr ? m->policy : "?", m != nullptr ? m->window_mode : "?",
        r.events, r.events_per_sec, r.real_time_sec,
        static_cast<long long>(r.iterations), i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

}  // namespace optm::bench

int main(int argc, char** argv) {
  // Strip our --json=FILE flag before google-benchmark sees (and rejects)
  // it.
  const std::string json_path =
      optm::util::extract_flag(argc, argv, "json").value_or("");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  optm::bench::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !optm::bench::write_bench_json(json_path, reporter.captured())) {
    std::fprintf(stderr, "cannot write --json=%s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
