// EXPERIMENTS E8/E14 — the cost of deciding opacity.
//
// Three checking regimes over the same histories:
//   definitional  — Definition 1's memoized search (exponential worst case)
//   graph search  — Theorem 2 by exhaustive (≪, V) enumeration
//   certificate   — Theorem 2 with a given ≪ (polynomial), the regime an
//                   STM run enables by exporting its commit order
//
// Reported: wall time per check and search effort counters, versus the
// number of transactions. This is the practical payoff of Theorem 2: the
// certificate column scales to long recorded executions; the other two do
// not.
#include <benchmark/benchmark.h>

#include "core/opacity.hpp"
#include "core/opacity_graph.hpp"
#include "core/paper.hpp"
#include "core/random_history.hpp"
#include "stm/factory.hpp"
#include "stm/recorder.hpp"
#include "workload/workloads.hpp"

namespace optm::bench {
namespace {

core::History coherent_history(std::size_t txs, std::uint64_t seed) {
  core::RandomHistoryParams params;
  params.seed = seed;
  params.num_txs = txs;
  params.num_objects = 4;
  params.max_ops_per_tx = 4;
  return core::random_history(params);
}

void BM_DefinitionalChecker(benchmark::State& state) {
  const auto txs = static_cast<std::size_t>(state.range(0));
  const core::History h = coherent_history(txs, 11);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = core::check_opacity(h);
    benchmark::DoNotOptimize(result.verdict);
    states = result.states_explored;
  }
  state.counters["txs"] = static_cast<double>(txs);
  state.counters["states_explored"] = static_cast<double>(states);
}
BENCHMARK(BM_DefinitionalChecker)->DenseRange(4, 12, 2);

void BM_GraphSearchChecker(benchmark::State& state) {
  const auto txs = static_cast<std::size_t>(state.range(0));
  const core::History h = coherent_history(txs, 11);
  std::uint64_t graphs = 0;
  for (auto _ : state) {
    const auto result = core::check_opacity_via_graph(h, /*max_txs=*/8);
    benchmark::DoNotOptimize(result.verdict);
    graphs = result.graphs_examined;
  }
  state.counters["txs"] = static_cast<double>(txs);
  state.counters["graphs_examined"] = static_cast<double>(graphs);
}
BENCHMARK(BM_GraphSearchChecker)->DenseRange(4, 8, 1);

void BM_CertificateChecker(benchmark::State& state) {
  // Recorded TL2 runs of growing length; certificate verification.
  const auto txs_per_thread = static_cast<std::uint64_t>(state.range(0));
  const auto stm = stm::make_stm("tl2", 8);
  stm::Recorder recorder(8);
  stm->set_recorder(&recorder);
  wl::MixParams params;
  params.threads = 2;
  params.vars = 8;
  params.txs_per_thread = txs_per_thread;
  params.seed = 21;
  (void)wl::run_random_mix(*stm, params);
  const core::History h = recorder.history();
  const auto order = recorder.certificate_order();

  bool ok = false;
  for (auto _ : state) {
    ok = core::verify_opacity_certificate(h, order, {});
    benchmark::DoNotOptimize(ok);
  }
  state.counters["events"] = static_cast<double>(h.size());
  state.counters["verified"] = ok ? 1 : 0;
}
BENCHMARK(BM_CertificateChecker)->RangeMultiplier(4)->Range(64, 4096);

void BM_PaperHistories(benchmark::State& state) {
  // The worked examples end-to-end: all checkers on H1 and H5.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_opacity(core::paper::fig1_h1()).verdict);
    benchmark::DoNotOptimize(core::check_opacity(core::paper::fig2_h5()).verdict);
    benchmark::DoNotOptimize(
        core::check_opacity_via_graph(core::paper::h4()).verdict);
  }
}
BENCHMARK(BM_PaperHistories);

}  // namespace
}  // namespace optm::bench

BENCHMARK_MAIN();
