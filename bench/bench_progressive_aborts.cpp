// EXPERIMENT E11 — §6.2: TL2's non-progressiveness, counted.
//
//   "TL2 is not progressive: it may forcefully abort a transaction Ti that
//    conflicts with a concurrent transaction Tk, even if Ti invokes a
//    conflicting operation after Tk commits."
//
// Schedule (deterministic, two logical processes): T1 begins and reads y
// (pinning its lazily-sampled snapshot — §6.2's Ti must already be
// running); T2 writes x and commits; T1 reads x for the first time and
// tries to commit. There is never a live-live conflicting access on x, so
// a progressive TM commits T1 every round; TL2 aborts every round (stale
// rv), and tiny — TL2 plus snapshot extension — commits every round at the
// Θ(read set) extension price. Reported: aborts per 1000 rounds.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_PostCommitConflict(benchmark::State& state, const char* name) {
  constexpr std::uint64_t kRounds = 1000;
  std::uint64_t aborted = 0;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 2);
    sim::ThreadCtx p1(0);
    sim::ThreadCtx p2(1);
    aborted = 0;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      stm->begin(p1);
      std::uint64_t v = 0;
      (void)stm->read(p1, 1, v);  // pins T1's snapshot

      stm->begin(p2);
      (void)stm->write(p2, 0, round * 2 + 1);
      (void)stm->commit(p2);

      const bool ok = stm->read(p1, 0, v) && stm->commit(p1);
      aborted += ok ? 0 : 1;
    }
  }
  state.counters["aborts_per_1000"] = static_cast<double>(aborted);
  state.counters["progressive_claimed"] =
      stm::make_stm(name, 1)->properties().progressive ? 1 : 0;
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define PROG_BENCH(name)                                                     \
  BENCHMARK_CAPTURE(BM_PostCommitConflict, name, #name)         \
      ->Unit(benchmark::kMillisecond)

PROG_BENCH(tl2);
PROG_BENCH(tiny);
PROG_BENCH(astm);
PROG_BENCH(dstm);
PROG_BENCH(visible);
PROG_BENCH(mv);
PROG_BENCH(norec);

#undef PROG_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
