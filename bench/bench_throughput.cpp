// EXPERIMENT E13 — throughput cross-section over the design space.
//
// The paper's motivation (§1, §6): the safety/performance trade-offs of
// opacity mechanisms show up as throughput differences under read-mostly
// and contended workloads. Reported: commits/second and abort ratios for
// all six implementations on (a) read-dominated scans and (b) a contended
// bank. Absolute numbers are machine-specific; the interesting shape is
// the ordering and the abort ratios.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_ReadMostly(benchmark::State& state, const char* name) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  wl::RunResult run;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 256);
    wl::ReadMostlyParams params;
    params.reader_threads = threads;
    params.vars = 256;
    params.scan_length = 32;
    params.scans_per_thread = 300;
    params.writer_txs = 100;
    run = wl::run_read_mostly(*stm, params);
  }
  report_run(state, run);
  state.counters["commits_per_sec"] = run.commits_per_second();
  state.counters["shared_writes_per_read"] =
      run.reads > 0 ? static_cast<double>(run.steps.shared_writes()) /
                          static_cast<double>(run.reads)
                    : 0.0;
}

void BM_ContendedBank(benchmark::State& state, const char* name) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  wl::BankResult result;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 16);
    wl::BankParams params;
    params.threads = threads;
    params.accounts = 16;  // small: high contention
    params.transfers_per_thread = 1500;
    result = wl::run_bank(*stm, params);
  }
  report_run(state, result.run);
  state.counters["commits_per_sec"] = result.run.commits_per_second();
  state.counters["money_conserved"] =
      result.final_total == result.expected_total ? 1 : 0;
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define THROUGHPUT_BENCH(name)                                             \
  BENCHMARK_CAPTURE(BM_ReadMostly, name, #name)               \
      ->Arg(2)                                                             \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(BM_ContendedBank, name, #name)            \
      ->Arg(2)                                                             \
      ->Unit(benchmark::kMillisecond)

THROUGHPUT_BENCH(tl2);
THROUGHPUT_BENCH(tiny);
THROUGHPUT_BENCH(astm);
THROUGHPUT_BENCH(dstm);
THROUGHPUT_BENCH(visible);
THROUGHPUT_BENCH(mv);
THROUGHPUT_BENCH(norec);
THROUGHPUT_BENCH(weak);
THROUGHPUT_BENCH(sistm);
THROUGHPUT_BENCH(twopl);

#undef THROUGHPUT_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
