// EXPERIMENT E4 — §5.2 / H4: the multi-version read-only optimization.
//
//   "Multi-version TMs, like JVSTM and LSA-STM, indeed use such
//    optimizations to allow long read-only transactions to commit despite
//    concurrent updates performed by other transactions."
//
// Schedule (two logical processes, deterministic): a long read-only
// transaction T1 starts scanning k variables; between every two of its
// reads, a writer transaction commits an update to an already-scanned
// variable. Reported: did T1 commit, and how many attempts the scan took
// per algorithm. The multi-version STM commits on the first try; every
// single-version opaque STM keeps aborting the reader.
#include "bench_common.hpp"

#include "stm/mv.hpp"

namespace optm::bench {
namespace {

struct Outcome {
  std::uint64_t reader_attempts = 0;
  std::uint64_t reader_commits = 0;
  std::uint64_t reader_aborts = 0;
};

Outcome hostile_scan(stm::Stm& stm, std::size_t k, std::uint64_t max_attempts) {
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);
  Outcome out;
  std::uint64_t stamp = 1;

  for (std::uint64_t attempt = 1; attempt <= max_attempts; ++attempt) {
    ++out.reader_attempts;
    if (auto* mv = dynamic_cast<stm::MvStm*>(&stm)) {
      mv->begin_read_only(reader);
    } else {
      stm.begin(reader);
    }
    bool ok = true;
    for (std::size_t v = 0; v < k && ok; ++v) {
      std::uint64_t value = 0;
      ok = stm.read(reader, static_cast<stm::VarId>(v), value);
      // The hostile writer: one transaction overwriting a variable the
      // reader already saw AND the one it will read next — any
      // single-version opaque STM must now abort the reader.
      stm.begin(writer);
      (void)stm.write(writer, static_cast<stm::VarId>(v / 2), stamp++);
      if (v + 1 < k) {
        (void)stm.write(writer, static_cast<stm::VarId>(v + 1), stamp++);
      }
      (void)stm.commit(writer);
    }
    if (ok && stm.commit(reader)) {
      ++out.reader_commits;
      return out;
    }
    ++out.reader_aborts;
  }
  return out;
}

void BM_HostileScan(benchmark::State& state, const char* name) {
  constexpr std::size_t k = 64;
  constexpr std::uint64_t kMaxAttempts = 50;
  Outcome out;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, k);
    out = hostile_scan(*stm, k, kMaxAttempts);
  }
  state.counters["reader_committed"] = out.reader_commits > 0 ? 1 : 0;
  state.counters["attempts_needed"] = static_cast<double>(out.reader_attempts);
  state.counters["reader_aborts"] = static_cast<double>(out.reader_aborts);
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define HOSTILE_BENCH(name)                                              \
  BENCHMARK_CAPTURE(BM_HostileScan, name, #name)            \
      ->Unit(benchmark::kMillisecond)

HOSTILE_BENCH(mv);
HOSTILE_BENCH(tl2);
HOSTILE_BENCH(dstm);
HOSTILE_BENCH(visible);
HOSTILE_BENCH(norec);

#undef HOSTILE_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
