// EXPERIMENT E6 — §3.4: semantic objects vs read/write encodings.
//
//   "In a system that supports only read and write operations ... among
//    the transactions that read the same value from x, only one can
//    commit. ... when the system recognizes the semantics of the inc
//    operation, there is no reason why the transactions could not proceed
//    and commit concurrently."
//
// k threads each perform N counter increments. Two encodings:
//   register  — read x; write x+1 (conflicts, retries, aborts)
//   semantic  — commutative TCounter increment (zero conflicts)
// Reported: abort counts and throughput. The registered encoding's abort
// count grows with contention; the semantic encoding's is exactly 0.
#include "bench_common.hpp"

namespace optm::bench {
namespace {

void BM_CounterIncrements(benchmark::State& state, const char* name,
                          bool semantic) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  wl::CounterResult result;
  for (auto _ : state) {
    const auto stm = stm::make_stm(name, 2);
    wl::CounterParams params;
    params.threads = threads;
    params.increments_per_thread = 2000;
    params.semantic = semantic;
    result = wl::run_counter(*stm, params);
  }
  report_run(state, result.run);
  state.counters["final_value"] = static_cast<double>(result.final_value);
  state.counters["increments_per_sec"] = result.run.commits_per_second();
}

}  // namespace
}  // namespace optm::bench

namespace optm::bench {

#define COUNTER_BENCH(name)                                                    \
  BENCHMARK_CAPTURE(BM_CounterIncrements, name##_register, #name, \
                    false)                                                     \
      ->Arg(1)                                                                 \
      ->Arg(4)                                                                 \
      ->Unit(benchmark::kMillisecond);                                         \
  BENCHMARK_CAPTURE(BM_CounterIncrements, name##_semantic, #name, \
                    true)                                                      \
      ->Arg(1)                                                                 \
      ->Arg(4)                                                                 \
      ->Unit(benchmark::kMillisecond)

COUNTER_BENCH(tl2);
COUNTER_BENCH(dstm);
COUNTER_BENCH(visible);

#undef COUNTER_BENCH

}  // namespace optm::bench

BENCHMARK_MAIN();
