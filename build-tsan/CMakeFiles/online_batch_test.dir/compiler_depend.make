# Empty compiler generated dependencies file for online_batch_test.
# This may be replaced when dependencies are built.
