
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/criteria.cpp" "CMakeFiles/optm_core.dir/src/core/criteria.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/criteria.cpp.o.d"
  "/root/repo/src/core/event.cpp" "CMakeFiles/optm_core.dir/src/core/event.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/event.cpp.o.d"
  "/root/repo/src/core/history.cpp" "CMakeFiles/optm_core.dir/src/core/history.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/history.cpp.o.d"
  "/root/repo/src/core/legality.cpp" "CMakeFiles/optm_core.dir/src/core/legality.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/legality.cpp.o.d"
  "/root/repo/src/core/nesting.cpp" "CMakeFiles/optm_core.dir/src/core/nesting.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/nesting.cpp.o.d"
  "/root/repo/src/core/object_spec.cpp" "CMakeFiles/optm_core.dir/src/core/object_spec.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/object_spec.cpp.o.d"
  "/root/repo/src/core/one_copy.cpp" "CMakeFiles/optm_core.dir/src/core/one_copy.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/one_copy.cpp.o.d"
  "/root/repo/src/core/online.cpp" "CMakeFiles/optm_core.dir/src/core/online.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/online.cpp.o.d"
  "/root/repo/src/core/opacity.cpp" "CMakeFiles/optm_core.dir/src/core/opacity.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/opacity.cpp.o.d"
  "/root/repo/src/core/opacity_graph.cpp" "CMakeFiles/optm_core.dir/src/core/opacity_graph.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/opacity_graph.cpp.o.d"
  "/root/repo/src/core/paper.cpp" "CMakeFiles/optm_core.dir/src/core/paper.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/paper.cpp.o.d"
  "/root/repo/src/core/parallel_verify.cpp" "CMakeFiles/optm_core.dir/src/core/parallel_verify.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/parallel_verify.cpp.o.d"
  "/root/repo/src/core/phenomena.cpp" "CMakeFiles/optm_core.dir/src/core/phenomena.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/phenomena.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "CMakeFiles/optm_core.dir/src/core/progress.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/progress.cpp.o.d"
  "/root/repo/src/core/random_history.cpp" "CMakeFiles/optm_core.dir/src/core/random_history.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/random_history.cpp.o.d"
  "/root/repo/src/core/recoverability.cpp" "CMakeFiles/optm_core.dir/src/core/recoverability.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/recoverability.cpp.o.d"
  "/root/repo/src/core/rigorous.cpp" "CMakeFiles/optm_core.dir/src/core/rigorous.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/rigorous.cpp.o.d"
  "/root/repo/src/core/serializability.cpp" "CMakeFiles/optm_core.dir/src/core/serializability.cpp.o" "gcc" "CMakeFiles/optm_core.dir/src/core/serializability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/optm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
