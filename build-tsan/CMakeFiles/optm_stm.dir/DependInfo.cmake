
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stm/astm.cpp" "CMakeFiles/optm_stm.dir/src/stm/astm.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/astm.cpp.o.d"
  "/root/repo/src/stm/contention.cpp" "CMakeFiles/optm_stm.dir/src/stm/contention.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/contention.cpp.o.d"
  "/root/repo/src/stm/dstm.cpp" "CMakeFiles/optm_stm.dir/src/stm/dstm.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/dstm.cpp.o.d"
  "/root/repo/src/stm/factory.cpp" "CMakeFiles/optm_stm.dir/src/stm/factory.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/factory.cpp.o.d"
  "/root/repo/src/stm/glock.cpp" "CMakeFiles/optm_stm.dir/src/stm/glock.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/glock.cpp.o.d"
  "/root/repo/src/stm/mv.cpp" "CMakeFiles/optm_stm.dir/src/stm/mv.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/mv.cpp.o.d"
  "/root/repo/src/stm/norec.cpp" "CMakeFiles/optm_stm.dir/src/stm/norec.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/norec.cpp.o.d"
  "/root/repo/src/stm/sistm.cpp" "CMakeFiles/optm_stm.dir/src/stm/sistm.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/sistm.cpp.o.d"
  "/root/repo/src/stm/tiny.cpp" "CMakeFiles/optm_stm.dir/src/stm/tiny.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/tiny.cpp.o.d"
  "/root/repo/src/stm/tl2.cpp" "CMakeFiles/optm_stm.dir/src/stm/tl2.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/tl2.cpp.o.d"
  "/root/repo/src/stm/twopl.cpp" "CMakeFiles/optm_stm.dir/src/stm/twopl.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/twopl.cpp.o.d"
  "/root/repo/src/stm/visible.cpp" "CMakeFiles/optm_stm.dir/src/stm/visible.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/visible.cpp.o.d"
  "/root/repo/src/stm/weak.cpp" "CMakeFiles/optm_stm.dir/src/stm/weak.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/stm/weak.cpp.o.d"
  "/root/repo/src/workload/workloads.cpp" "CMakeFiles/optm_stm.dir/src/workload/workloads.cpp.o" "gcc" "CMakeFiles/optm_stm.dir/src/workload/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/optm_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/optm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
