// Workload harness: the executable scenarios behind the tests, benchmarks
// and examples. Every runner drives an abstract stm::Stm, so each scenario
// sweeps identically across all implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/step_counter.hpp"
#include "stm/api.hpp"

namespace optm::wl {

/// Aggregated outcome of a multi-threaded run.
struct RunResult {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  sim::StepCounts steps;               // summed over all processes
  std::uint64_t validation_steps = 0;  // summed (Theorem 3 quantity)
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double seconds = 0.0;

  [[nodiscard]] double commits_per_second() const noexcept {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0.0;
  }
  [[nodiscard]] double abort_ratio() const noexcept {
    const auto attempts = commits + aborts;
    return attempts > 0 ? static_cast<double>(aborts) / static_cast<double>(attempts)
                        : 0.0;
  }
  [[nodiscard]] double steps_per_read() const noexcept {
    return reads > 0 ? static_cast<double>(steps.total()) / static_cast<double>(reads)
                     : 0.0;
  }
};

// --- bank transfers (quickstart / integrity workload) ------------------------

struct BankParams {
  std::uint32_t threads = 2;
  std::uint32_t accounts = 64;
  std::uint64_t transfers_per_thread = 1000;
  std::uint64_t initial_balance = 1000;
  std::uint64_t seed = 42;
};

/// Random transfers between accounts. Money conservation is the integrity
/// oracle: final_total must equal accounts * initial_balance.
struct BankResult {
  RunResult run;
  std::uint64_t final_total = 0;
  std::uint64_t expected_total = 0;
};
[[nodiscard]] BankResult run_bank(stm::Stm& stm, const BankParams& params);

// --- random register mix (recorder / verification workload) -------------------

struct MixParams {
  std::uint32_t threads = 2;
  std::uint32_t vars = 8;
  std::uint64_t txs_per_thread = 50;
  std::uint32_t ops_per_tx = 4;
  double write_ratio = 0.5;
  std::uint64_t seed = 1;
  /// Abort a fraction of transactions voluntarily (tryA).
  double voluntary_abort_ratio = 0.05;
};

/// Random reads and value-unique writes — the workload used with the
/// Recorder: its histories satisfy the §5.4 preconditions, so recorded runs
/// can be certificate-verified for opacity.
[[nodiscard]] RunResult run_random_mix(stm::Stm& stm, const MixParams& params);

// --- read-mostly scan (invisible vs visible reads, §6) -------------------------

struct ReadMostlyParams {
  std::uint32_t reader_threads = 3;
  std::uint32_t vars = 128;
  std::uint32_t scan_length = 32;
  std::uint64_t scans_per_thread = 500;
  std::uint64_t writer_txs = 100;  // executed by one extra writer thread
  std::uint64_t seed = 7;
};

/// Readers repeatedly scan a random window; one writer sprinkles updates.
/// The §6 comparison: invisible reads do zero shared writes on the read
/// path (steps.shared_writes), visible reads pay one RMW per read.
[[nodiscard]] RunResult run_read_mostly(stm::Stm& stm,
                                        const ReadMostlyParams& params);

// --- §3.4 counter increments -----------------------------------------------------

struct CounterParams {
  std::uint32_t threads = 4;
  std::uint64_t increments_per_thread = 1000;
  bool semantic = true;  // TCounter (commutative) vs register read-inc-write
};

struct CounterResult {
  RunResult run;
  std::int64_t final_value = 0;
};
[[nodiscard]] CounterResult run_counter(stm::Stm& stm, const CounterParams& params);

// --- write skew (the SI anomaly; §1's "trade safety for performance") --------------

struct WriteSkewParams {
  std::uint64_t rounds = 200;  // reset + overlapped-withdraw rounds
  std::uint64_t initial = 1;   // per-account balance at each reset
};

/// The classic two-account invariant game: the invariant is x + y >= 1;
/// two withdrawers each read BOTH accounts and, if the total permits,
/// zero ONE of them (withdrawer i zeroes account i). The schedule is
/// driven deterministically from one OS thread as two interleaved logical
/// processes (begin/begin, read/read, write/write, commit/commit), so the
/// overlap is total and reproducible. Serializable TMs preserve the
/// invariant in every round (one withdrawer aborts); snapshot isolation
/// commits both against the same snapshot and the total drops to 0 — the
/// write-skew anomaly, counted per round. Requires a non-blocking STM
/// (use "twopl-nowait" rather than "twopl"; "glock" cannot interleave).
struct WriteSkewResult {
  std::uint64_t rounds_played = 0;
  std::uint64_t skew_rounds = 0;  // rounds ending with x + y == 0
  std::uint64_t both_committed_rounds = 0;
};
[[nodiscard]] WriteSkewResult run_write_skew(stm::Stm& stm,
                                             const WriteSkewParams& params);

// --- the H4 long-reader probe (§5.2's multi-version optimization) -------------------

struct LongReaderProbe {
  /// Did every read of the long read-only transaction succeed?
  bool reads_succeeded = false;
  /// Did the long reader commit?
  bool reader_committed = false;
  /// Number of writer transactions that committed during the scan.
  std::uint64_t writer_commits = 0;
  /// True if the reader observed a single consistent snapshot (all values
  /// from the same writer generation).
  bool snapshot_consistent = false;
};

/// H4 in executable form, driven deterministically from one OS thread:
/// a read-only transaction scans all `vars` variables; between every two
/// reads a writer transaction overwrites ALL variables and commits. A
/// single-version TM must abort the reader (or the reader's commit); a
/// multi-version TM serves the begin-time snapshot and commits it — the
/// paper's "long read-only transactions commit despite concurrent
/// updates". The first read happens BEFORE the first writer commit, so
/// serving the old snapshot is legitimate (cf. ≺_H and lazy snapshots).
[[nodiscard]] LongReaderProbe long_reader_probe(stm::Stm& stm,
                                                std::uint32_t vars,
                                                std::uint64_t writer_rounds);

// --- the §6 adversarial schedule (Theorem 3) ----------------------------------------

struct LowerBoundProbe {
  /// Steps the reading process executed for the final read operation alone.
  std::uint64_t steps_final_read = 0;
  /// ... of which spent in read-set validation.
  std::uint64_t validation_steps_final_read = 0;
  /// Did the final read return a value (true) or abort the reader (false)?
  bool read_succeeded = false;
  /// Did the reader transaction ultimately commit?
  bool reader_committed = false;
};

/// The hard instance of Theorem 3's proof, driven deterministically from
/// one OS thread with two logical processes:
///   T1 reads variables 0..m-1; then T2 writes variable m (ONLY) and
///   commits; then T1 invokes a read of variable m.
/// With invisible reads, T1's process cannot know that T2 left the read
/// set untouched: it must examine all m entries to decide between aborting
/// and proceeding — and since nothing changed, a progressive single-version
/// TM must then let T1 commit, so the Ω(m) scan admits no early exit.
/// The system has k >= m+1 variables.
[[nodiscard]] LowerBoundProbe lower_bound_probe(stm::Stm& stm, std::size_t m);

}  // namespace optm::wl
