#include "workload/workloads.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "sim/thread_ctx.hpp"
#include "stm/tvar.hpp"
#include "util/rng.hpp"

namespace optm::wl {

namespace {

using Clock = std::chrono::steady_clock;

/// Spawn `n` workers, each with its own ThreadCtx, run `body(ctx, index)`,
/// join, and aggregate stats into a RunResult.
template <typename Body>
RunResult run_threads(std::uint32_t n, Body&& body) {
  std::vector<std::unique_ptr<sim::ThreadCtx>> ctxs;
  ctxs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    ctxs.push_back(std::make_unique<sim::ThreadCtx>(i));

  const auto t0 = Clock::now();
  if (n == 1) {
    body(*ctxs[0], 0u);  // avoid thread overhead for single-process runs
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] { body(*ctxs[i], i); });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& ctx : ctxs) {
    result.commits += ctx->stats.commits;
    result.aborts += ctx->stats.aborts;
    result.reads += ctx->stats.reads;
    result.writes += ctx->stats.writes;
    result.validation_steps += ctx->stats.validation_steps;
    result.steps += ctx->steps;
  }
  return result;
}

}  // namespace

BankResult run_bank(stm::Stm& stm, const BankParams& params) {
  BankResult result;
  result.expected_total =
      static_cast<std::uint64_t>(params.accounts) * params.initial_balance;

  // Seed the accounts from a priming transaction.
  {
    sim::ThreadCtx init_ctx(0);
    stm.begin(init_ctx);
    for (stm::VarId a = 0; a < params.accounts; ++a) {
      if (!stm.write(init_ctx, a, params.initial_balance)) break;
    }
    if (!stm.commit(init_ctx)) {
      return result;  // cannot happen: no concurrency yet
    }
  }

  result.run = run_threads(params.threads, [&](sim::ThreadCtx& ctx, std::uint32_t i) {
    util::Xoshiro256 rng(util::stream_seed(params.seed, i));
    for (std::uint64_t t = 0; t < params.transfers_per_thread; ++t) {
      const auto from = static_cast<stm::VarId>(rng.below(params.accounts));
      auto to = static_cast<stm::VarId>(rng.below(params.accounts));
      if (to == from) to = (to + 1) % params.accounts;
      const std::uint64_t amount = rng.below(10) + 1;
      (void)stm::atomically(stm, ctx, [&](stm::TxHandle& tx) {
        const std::uint64_t a = tx.read(from);
        const std::uint64_t b = tx.read(to);
        if (a < amount) return;  // insufficient funds: read-only this time
        tx.write(from, a - amount);
        tx.write(to, b + amount);
      });
    }
  });

  // Post-run audit scan (no concurrency left).
  {
    sim::ThreadCtx audit_ctx(0);
    std::uint64_t total = 0;
    (void)stm::atomically(stm, audit_ctx, [&](stm::TxHandle& tx) {
      total = 0;
      for (stm::VarId a = 0; a < params.accounts; ++a) total += tx.read(a);
    });
    result.final_total = total;
  }
  return result;
}

RunResult run_random_mix(stm::Stm& stm, const MixParams& params) {
  return run_threads(params.threads, [&](sim::ThreadCtx& ctx, std::uint32_t i) {
    util::Xoshiro256 rng(util::stream_seed(params.seed, i));
    for (std::uint64_t t = 0; t < params.txs_per_thread; ++t) {
      // Value-unique writes: (thread, sequence) encoded in the value.
      const bool voluntary_abort = rng.chance(params.voluntary_abort_ratio);
      std::uint64_t unique = (static_cast<std::uint64_t>(i + 1) << 40) |
                             ((t + 1) << 8);
      stm.begin(ctx);
      bool doomed = false;
      for (std::uint32_t op = 0; op < params.ops_per_tx && !doomed; ++op) {
        const auto var = static_cast<stm::VarId>(rng.below(params.vars));
        if (rng.chance(params.write_ratio)) {
          doomed = !stm.write(ctx, var, unique + op);
        } else {
          std::uint64_t v = 0;
          doomed = !stm.read(ctx, var, v);
        }
      }
      if (doomed) continue;  // forcefully aborted mid-transaction
      if (voluntary_abort) {
        stm.abort(ctx);
      } else {
        (void)stm.commit(ctx);
      }
    }
  });
}

RunResult run_read_mostly(stm::Stm& stm, const ReadMostlyParams& params) {
  const std::uint32_t total_threads = params.reader_threads + 1;
  return run_threads(total_threads, [&](sim::ThreadCtx& ctx, std::uint32_t i) {
    util::Xoshiro256 rng(util::stream_seed(params.seed, i));
    if (i == params.reader_threads) {
      // The writer: short update transactions.
      for (std::uint64_t t = 0; t < params.writer_txs; ++t) {
        const auto var = static_cast<stm::VarId>(rng.below(params.vars));
        (void)stm::atomically(stm, ctx, [&](stm::TxHandle& tx) {
          tx.write(var, (static_cast<std::uint64_t>(i + 1) << 40) | (t + 1));
        });
      }
      return;
    }
    // Readers: scan a random window of scan_length variables.
    for (std::uint64_t t = 0; t < params.scans_per_thread; ++t) {
      const std::uint32_t start = static_cast<std::uint32_t>(
          rng.below(params.vars - params.scan_length + 1));
      (void)stm::atomically(stm, ctx, [&](stm::TxHandle& tx) {
        std::uint64_t sum = 0;
        for (std::uint32_t v = 0; v < params.scan_length; ++v) {
          sum += tx.read(start + v);
        }
        (void)sum;
      });
    }
  });
}

CounterResult run_counter(stm::Stm& stm, const CounterParams& params) {
  CounterResult result;
  if (params.semantic) {
    stm::TCounter counter;
    result.run =
        run_threads(params.threads, [&](sim::ThreadCtx& ctx, std::uint32_t) {
          for (std::uint64_t t = 0; t < params.increments_per_thread; ++t) {
            // The commutative inc touches no shared object inside the
            // transaction: nothing to conflict on, nothing to abort (§3.4).
            (void)stm::atomically_with_counter(
                stm, ctx, counter,
                [&ctx](stm::TxHandle&, stm::TCounter& c) { c.inc(ctx); });
          }
        });
    result.final_value = counter.value();
    return result;
  }
  // Read-modify-write register encoding (§3.4): all increments conflict.
  result.run =
      run_threads(params.threads, [&](sim::ThreadCtx& ctx, std::uint32_t) {
        for (std::uint64_t t = 0; t < params.increments_per_thread; ++t) {
          (void)stm::atomically(stm, ctx, [&](stm::TxHandle& tx) {
            stm::register_increment(tx, 0);
          });
        }
      });
  {
    sim::ThreadCtx audit_ctx(0);
    (void)stm::atomically(stm, audit_ctx, [&](stm::TxHandle& tx) {
      result.final_value = static_cast<std::int64_t>(tx.read(0));
    });
  }
  return result;
}

WriteSkewResult run_write_skew(stm::Stm& stm, const WriteSkewParams& params) {
  WriteSkewResult result;
  sim::ThreadCtx p0(0);
  sim::ThreadCtx p1(1);
  sim::ThreadCtx coordinator(2);

  for (std::uint64_t round = 0; round < params.rounds; ++round) {
    // Reset both accounts (value-encoding: the round in the high bits
    // keeps writes value-unique; the low byte is the balance).
    const std::uint64_t full = ((round + 1) << 8) | params.initial;
    if (stm::atomically(stm, coordinator, [&](stm::TxHandle& tx) {
          tx.write(0, full);
          tx.write(1, full);
        }) == 0) {
      continue;
    }

    // The fully-overlapped deterministic schedule: two logical
    // withdrawers advance in lock-step phases.
    struct Step {
      bool alive = true;
      std::uint64_t x = 0, y = 0;
    };
    Step s0, s1;
    // Withdrawer 0 zeroes account 0, withdrawer 1 zeroes account 1. The
    // markers keep the zero-balance writes value-unique (low byte 0).
    const auto run0 = [&](int phase) {
      switch (phase) {
        case 0: stm.begin(p0); break;
        case 1: s0.alive = stm.read(p0, 0, s0.x); break;
        case 2: s0.alive = s0.alive && stm.read(p0, 1, s0.y); break;
        case 3:
          if (!s0.alive) break;
          if ((s0.x & 0xff) == 0 || (s0.y & 0xff) == 0) {
            stm.abort(p0);
            s0.alive = false;
            break;
          }
          s0.alive = stm.write(p0, 0, ((round + 1) << 32) | 0x100);
          break;
        case 4: s0.alive = s0.alive && stm.commit(p0); break;
        default: break;
      }
    };
    const auto run1 = [&](int phase) {
      switch (phase) {
        case 0: stm.begin(p1); break;
        case 1: s1.alive = stm.read(p1, 0, s1.x); break;
        case 2: s1.alive = s1.alive && stm.read(p1, 1, s1.y); break;
        case 3:
          if (!s1.alive) break;
          if ((s1.x & 0xff) == 0 || (s1.y & 0xff) == 0) {
            stm.abort(p1);
            s1.alive = false;
            break;
          }
          s1.alive = stm.write(p1, 1, ((round + 1) << 32) | 0x200);
          break;
        case 4: s1.alive = s1.alive && stm.commit(p1); break;
        default: break;
      }
    };
    for (int phase = 0; phase <= 4; ++phase) {
      run0(phase);
      run1(phase);
    }
    // Audit the round.
    std::uint64_t x = 0, y = 0;
    if (stm::atomically(stm, coordinator, [&](stm::TxHandle& tx) {
          x = tx.read(0);
          y = tx.read(1);
        }) == 0) {
      continue;
    }
    ++result.rounds_played;
    if (s0.alive && s1.alive) ++result.both_committed_rounds;
    if ((x & 0xff) == 0 && (y & 0xff) == 0) ++result.skew_rounds;
  }
  return result;
}

LongReaderProbe long_reader_probe(stm::Stm& stm, std::uint32_t vars,
                                  std::uint64_t writer_rounds) {
  LongReaderProbe probe;
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);

  // Generation g writes value (g << 20) | var to every variable.
  const auto value_of = [](std::uint64_t gen, std::uint32_t var) {
    return (gen << 20) | var;
  };
  const auto generation_of = [](std::uint64_t value) { return value >> 20; };

  stm.begin(reader);
  std::vector<std::uint64_t> seen;
  seen.reserve(vars);
  probe.reads_succeeded = true;
  for (std::uint32_t v = 0; v < vars && probe.reads_succeeded; ++v) {
    std::uint64_t out = 0;
    if (!stm.read(reader, v, out)) {
      probe.reads_succeeded = false;
      break;
    }
    seen.push_back(out);

    // A writer generation lands between every two reads.
    if (probe.writer_commits < writer_rounds) {
      stm.begin(writer);
      bool ok = true;
      for (std::uint32_t w = 0; w < vars && ok; ++w) {
        ok = stm.write(writer, w, value_of(probe.writer_commits + 1, w));
      }
      if (ok && stm.commit(writer)) ++probe.writer_commits;
    }
  }
  probe.reader_committed = probe.reads_succeeded && stm.commit(reader);

  if (probe.reads_succeeded && !seen.empty()) {
    probe.snapshot_consistent = true;
    const std::uint64_t gen = generation_of(seen.front());
    for (const std::uint64_t value : seen) {
      if (generation_of(value) != gen) probe.snapshot_consistent = false;
    }
  }
  return probe;
}

LowerBoundProbe lower_bound_probe(stm::Stm& stm, std::size_t m) {
  LowerBoundProbe probe;
  sim::ThreadCtx reader(0);
  sim::ThreadCtx writer(1);

  // T1 reads variables 0..m-1.
  stm.begin(reader);
  for (std::size_t v = 0; v < m; ++v) {
    std::uint64_t out = 0;
    if (!stm.read(reader, static_cast<stm::VarId>(v), out)) return probe;
  }

  // T2 writes ONLY variable m and commits. This is the hard instance of
  // Theorem 3's proof: with invisible reads T1's process cannot know that
  // T2 left the read set alone, so it must examine all m entries to decide
  // between "abort now" and "let T1 commit" — and because nothing T1 read
  // actually changed, a progressive TM must then LET IT COMMIT, so there is
  // no early exit. (Overwriting the read set instead would let incremental
  // validation bail out at the first mismatch in O(1).)
  stm.begin(writer);
  if (!stm.write(writer, static_cast<stm::VarId>(m), 1000)) return probe;
  if (!stm.commit(writer)) return probe;

  // T1's final read: the process must now decide, alone, whether its m
  // earlier reads are still a consistent snapshot.
  const std::uint64_t steps_before = reader.steps.total();
  const std::uint64_t validation_before = reader.stats.validation_steps;
  std::uint64_t out = 0;
  probe.read_succeeded = stm.read(reader, static_cast<stm::VarId>(m), out);
  probe.steps_final_read = reader.steps.total() - steps_before;
  probe.validation_steps_final_read =
      reader.stats.validation_steps - validation_before;
  probe.reader_committed = probe.read_succeeded && stm.commit(reader);
  return probe;
}

}  // namespace optm::wl
