// Fundamental identifier and value types of the TM model (paper §4).
#pragma once

#include <cstdint>
#include <limits>

namespace optm::core {

/// Transaction identifier. The paper's transactions are T1, T2, ...;
/// by convention Tx 0 is the initializing transaction T0 of §5.4 that
/// writes the initial value of every object and commits first.
using TxId = std::uint32_t;
inline constexpr TxId kNoTx = std::numeric_limits<TxId>::max();
inline constexpr TxId kInitTx = 0;

/// Shared-object identifier (index into the history's ObjectModel).
using ObjId = std::uint32_t;
inline constexpr ObjId kNoObj = std::numeric_limits<ObjId>::max();

/// Operation arguments and return values. A single 64-bit integer is
/// enough for every object class the paper discusses (registers, counters,
/// queues, sets, ...); richer payloads can be interned by the caller.
using Value = std::int64_t;

/// Conventional return value of void operations ("ok" in the paper).
inline constexpr Value kOk = 0;

/// Conventional return value of partial operations applied outside their
/// domain (dequeue/pop on empty, remove of absent element, ...).
inline constexpr Value kEmpty = std::numeric_limits<Value>::min();

/// Operation codes. The set is the union over all object classes; each
/// sequential specification supports a subset (ObjectSpec::supports).
enum class OpCode : std::uint8_t {
  kRead,      // register: () -> value
  kWrite,     // register: (v) -> ok
  kInc,       // counter: () -> ok            (commutative, §3.4)
  kDec,       // counter: () -> ok
  kGet,       // counter: () -> value
  kFetchAdd,  // faa counter: (d) -> old value
  kEnq,       // queue: (v) -> ok
  kDeq,       // queue: () -> front | kEmpty
  kPush,      // stack: (v) -> ok
  kPop,       // stack: () -> top | kEmpty
  kInsert,    // set: (v) -> 1 if inserted, 0 if present
  kErase,     // set: (v) -> 1 if erased, 0 if absent
  kContains,  // set: (v) -> 0/1
};

[[nodiscard]] constexpr const char* to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::kRead: return "read";
    case OpCode::kWrite: return "write";
    case OpCode::kInc: return "inc";
    case OpCode::kDec: return "dec";
    case OpCode::kGet: return "get";
    case OpCode::kFetchAdd: return "fetch_add";
    case OpCode::kEnq: return "enq";
    case OpCode::kDeq: return "deq";
    case OpCode::kPush: return "push";
    case OpCode::kPop: return "pop";
    case OpCode::kInsert: return "insert";
    case OpCode::kErase: return "erase";
    case OpCode::kContains: return "contains";
  }
  return "?";
}

}  // namespace optm::core
