#include "core/online.hpp"

#include <stdexcept>

#include "core/object_spec.hpp"

namespace optm::core {

// ---------------------------------------------------------------------------
// OnlineDefinitionalMonitor
// ---------------------------------------------------------------------------

OnlineDefinitionalMonitor::OnlineDefinitionalMonitor(ObjectModel model,
                                                     OpacityOptions options)
    : h_(std::move(model)), options_(options) {}

bool OnlineDefinitionalMonitor::feed(const Event& e) {
  h_.append(e);
  if (violation_.has_value()) return false;

  std::string why;
  if (!h_.well_formed(&why)) {
    violation_ = OnlineViolation{h_.size() - 1, "not well-formed: " + why};
    return false;
  }
  // Invocations cannot break an opaque prefix: they add no return values
  // and complete no transaction, so the previous witness serialization
  // still serves (the new invocation is simply pending).
  if (e.is_invocation()) return true;

  const OpacityResult result = check_opacity(h_, options_);
  if (result.verdict != Verdict::kYes) {
    violation_ = OnlineViolation{
        h_.size() - 1, result.verdict == Verdict::kNo
                           ? "prefix not opaque: " + result.reason
                           : "search budget exhausted: " + result.reason};
    return false;
  }
  return true;
}

bool OnlineDefinitionalMonitor::ingest(std::span<const Event> batch) {
  bool ok = true;
  for (const Event& e : batch) ok = feed(e);
  return ok && !violation_.has_value();
}

// ---------------------------------------------------------------------------
// OnlineCertificateMonitor
// ---------------------------------------------------------------------------

OnlineCertificateMonitor::OnlineCertificateMonitor(ObjectModel model)
    : model_(std::move(model)) {
  current_.resize(model_.size());
  holders_.resize(model_.size());
  for (ObjId r = 0; r < model_.size(); ++r) {
    const auto* reg = dynamic_cast<const RegisterSpec*>(&model_.spec(r));
    if (reg == nullptr) {
      throw std::invalid_argument(
          "online certificate monitor: register histories only");
    }
    // The initializer's version of every register: open from rank 0.
    const auto key = std::make_pair(r, reg->initial_value());
    versions_[key] = VersionRec{kInitTx, 0, kOpen};
    current_[r] = key;
  }
}

bool OnlineCertificateMonitor::fail(const std::string& reason) {
  violation_ = OnlineViolation{pos_, reason};
  return false;
}

namespace {

/// Failure tags are built lazily: the hot path must not allocate a string
/// per event (batch ingestion feeds millions of them).
[[nodiscard]] std::string tx_tag(TxId tx) { return "T" + std::to_string(tx); }

}  // namespace

bool OnlineCertificateMonitor::on_operation_response(const Event& e,
                                                     TxState& tx) {
  if (e.op == OpCode::kWrite) {
    // Value-unique writes underpin reads-from resolution (§5.4).
    const auto key = std::make_pair(e.obj, e.arg);
    const auto [it, inserted] = versions_.emplace(key, VersionRec{e.tx, 0, 0});
    if (!inserted && it->second.writer != e.tx) {
      return fail(tx_tag(e.tx) + " rewrote value " + std::to_string(e.arg) + " of x" +
                  std::to_string(e.obj) + " (value-unique writes required)");
    }
    it->second.writer = e.tx;  // ranks assigned at commit
    tx.has_write = true;
    tx.writes[e.obj] = e.arg;
    return true;
  }

  // Read response. Local reads must return the transaction's own latest
  // write and do not touch the window.
  const auto own = tx.writes.find(e.obj);
  if (own != tx.writes.end()) {
    if (own->second != e.ret) {
      return fail(tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                  std::to_string(e.ret) + " despite its own write of " +
                  std::to_string(own->second) + " (local consistency)");
    }
    return true;
  }

  const auto v = versions_.find({e.obj, e.ret});
  if (v == versions_.end()) {
    return fail(tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) + ", a value never written");
  }
  const VersionRec& rec = v->second;
  if (rec.writer == e.tx) {
    return fail(tx_tag(e.tx) + " read back its own value without a prior write");
  }
  if (rec.writer != kInitTx) {
    const auto w = txs_.find(rec.writer);
    if (w == txs_.end() || !w->second.committed) {
      // Possibly the H4 commit-pending case — conservative (see header).
      return fail(tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                  std::to_string(e.ret) + " from non-committed T" +
                  std::to_string(rec.writer));
    }
  }

  // Intersect the snapshot window with the version's validity interval.
  if (rec.open_rank > tx.lo) tx.lo = rec.open_rank;
  if (rec.close_rank < tx.hi) tx.hi = rec.close_rank;
  if (rec.close_rank == kOpen) holders_[e.obj].push_back(e.tx);

  if (tx.lo >= tx.hi) {
    return fail(tx_tag(e.tx) + "'s reads form no consistent snapshot (window empty " +
                "after reading x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) + ")");
  }
  if (tx.hi <= tx.birth_rank) {
    return fail(tx_tag(e.tx) + " read the outdated x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) +
                ", overwritten before the transaction's first event "
                "(real-time order)");
  }
  return true;
}

bool OnlineCertificateMonitor::on_commit(TxState& tx, TxId id) {
  // Serialization-point checks BEFORE installing this commit's writes.
  if (tx.has_write) {
    // Update transactions serialize at their commit rank: every read
    // version must still be open (SiStm's write skew dies here).
    if (tx.hi != kOpen) {
      return fail(tx_tag(id) + " committed updates although a version it read was "
                        "overwritten (reads not current at commit)");
    }
  } else {
    if (tx.lo >= tx.hi || tx.hi <= tx.birth_rank) {
      return fail(tx_tag(id) + " (read-only) committed with no serialization point "
                        "compatible with real-time order");
    }
  }

  tx.committed = true;
  if (!tx.has_write) return true;

  // Install: one rank for the whole commit; each written register's
  // previous version closes here.
  ++rank_;
  for (const auto& [obj, value] : tx.writes) {
    auto& prev_key = current_[obj];
    versions_[prev_key].close_rank = rank_;
    for (const TxId holder : holders_[obj]) {
      auto h = txs_.find(holder);
      if (h != txs_.end() && rank_ < h->second.hi) h->second.hi = rank_;
    }
    holders_[obj].clear();

    const auto key = std::make_pair(obj, value);
    VersionRec& rec = versions_[key];
    rec.writer = id;
    rec.open_rank = rank_;
    rec.close_rank = kOpen;
    prev_key = key;
  }
  return true;
}

bool OnlineCertificateMonitor::feed(const Event& e) {
  if (violation_.has_value()) {
    ++pos_;
    return false;
  }
  TxState& tx = txs_[e.tx];
  if (!tx.born) {
    tx.born = true;
    tx.birth_rank = rank_;
  }

  bool ok = true;
  switch (e.kind) {
    case EventKind::kInvoke:
      if (tx.phase != Phase::kIdle) {
        ok = fail(tx_tag(e.tx) + " invoked an operation while not idle (well-formedness)");
      } else if (!model_.contains(e.obj)) {
        ok = fail(tx_tag(e.tx) + " invoked an operation on unknown object x" +
                  std::to_string(e.obj));
      } else {
        tx.phase = Phase::kOpPending;
        tx.pending = e;
      }
      break;
    case EventKind::kResponse:
      if (tx.phase != Phase::kOpPending || !tx.pending.matches(e)) {
        ok = fail(tx_tag(e.tx) + " received a response with no matching invocation "
                        "(well-formedness)");
      } else {
        tx.phase = Phase::kIdle;
        ok = on_operation_response(e, tx);
      }
      break;
    case EventKind::kTryCommit:
      if (tx.phase != Phase::kIdle) {
        ok = fail(tx_tag(e.tx) + " issued tryC while not idle (well-formedness)");
      } else {
        tx.phase = Phase::kCommitPending;
      }
      break;
    case EventKind::kCommit:
      if (tx.phase != Phase::kCommitPending) {
        ok = fail(tx_tag(e.tx) + " committed without tryC (well-formedness)");
      } else {
        tx.phase = Phase::kDone;
        ok = on_commit(tx, e.tx);
      }
      break;
    case EventKind::kTryAbort:
      if (tx.phase != Phase::kIdle) {
        ok = fail(tx_tag(e.tx) + " issued tryA while not idle (well-formedness)");
      } else {
        tx.phase = Phase::kAbortPending;
      }
      break;
    case EventKind::kAbort:
      // A answers tryA, tryC, or a pending operation invocation.
      if (tx.phase == Phase::kDone) {
        ok = fail(tx_tag(e.tx) + " aborted after completing (well-formedness)");
      } else {
        tx.phase = Phase::kDone;  // aborted: writes never install
      }
      break;
  }
  ++pos_;
  return ok;
}

bool OnlineCertificateMonitor::ingest(std::span<const Event> batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (violation_.has_value()) {
      // Sticky: the rest of the batch is recorded (events_fed) in one step
      // instead of churning through feed() per event.
      pos_ += batch.size() - i;
      return false;
    }
    (void)feed(batch[i]);
  }
  return !violation_.has_value();
}

}  // namespace optm::core
