#include "core/online.hpp"

#include <stdexcept>

#include "core/object_spec.hpp"

namespace optm::core {

// ---------------------------------------------------------------------------
// OnlineDefinitionalMonitor
// ---------------------------------------------------------------------------

OnlineDefinitionalMonitor::OnlineDefinitionalMonitor(ObjectModel model,
                                                     OpacityOptions options)
    : h_(std::move(model)), options_(options) {}

bool OnlineDefinitionalMonitor::feed(const Event& e) {
  h_.append(e);
  if (violation_.has_value()) return false;

  std::string why;
  if (!h_.well_formed(&why)) {
    violation_ = OnlineViolation{h_.size() - 1, "not well-formed: " + why,
                                 CertFlagKind::kNotWellFormed};
    return false;
  }
  // Invocations cannot break an opaque prefix: they add no return values
  // and complete no transaction, so the previous witness serialization
  // still serves (the new invocation is simply pending).
  if (e.is_invocation()) return true;

  const OpacityResult result = check_opacity(h_, options_);
  if (result.verdict != Verdict::kYes) {
    violation_ = OnlineViolation{
        h_.size() - 1,
        result.verdict == Verdict::kNo
            ? "prefix not opaque: " + result.reason
            : "search budget exhausted: " + result.reason,
        result.verdict == Verdict::kNo ? CertFlagKind::kNotOpaque
                                       : CertFlagKind::kBudgetExhausted};
    return false;
  }
  return true;
}

bool OnlineDefinitionalMonitor::ingest(std::span<const Event> batch) {
  bool ok = true;
  for (const Event& e : batch) ok = feed(e);
  return ok && !violation_.has_value();
}

// ---------------------------------------------------------------------------
// OnlineCertificateMonitor
// ---------------------------------------------------------------------------

OnlineCertificateMonitor::OnlineCertificateMonitor(ObjectModel model,
                                                   VersionOrderPolicy policy)
    : model_(std::move(model)), policy_(policy), resolver_(policy) {
  current_.resize(model_.size());
  holders_.resize(model_.size());
  versions_.reserve(model_.size() + 16);
  if (policy_ == VersionOrderPolicy::kBlindWriteSmart) {
    retained_ = History(model_);
  }
  for (ObjId r = 0; r < model_.size(); ++r) {
    const auto* reg = dynamic_cast<const RegisterSpec*>(&model_.spec(r));
    if (reg == nullptr) {
      throw std::invalid_argument(
          "online certificate monitor: register histories only");
    }
    // The initializer's version of every register: open from rank 0.
    const Value init = reg->initial_value();
    versions_.slot(r, init) = VersionRec{kInitTx, 0, kOpen};
    current_[r] = {r, init};
  }
}

void OnlineCertificateMonitor::reserve(std::size_t num_txs,
                                       std::size_t num_versions,
                                       std::size_t holders_per_register) {
  txs_.reserve(num_txs);
  versions_.reserve(num_versions);
  if (holders_per_register > 0) {
    for (auto& h : holders_) h.reserve(holders_per_register);
  }
}

bool OnlineCertificateMonitor::fail(CertFlagKind kind,
                                    const std::string& reason) {
  if (policy_ == VersionOrderPolicy::kBlindWriteSmart && !search_mode_ &&
      reorder_repairable(kind)) {
    // The flag is a statement about the commit order only; §3.6 permits
    // other version orders. Search them before condemning the prefix.
    if (try_retro_order()) return true;
  }
  violation_ = OnlineViolation{pos_, reason, kind};
  return false;
}

namespace {

/// Failure tags are built lazily: the hot path must not allocate a string
/// per event (batch ingestion feeds millions of them).
[[nodiscard]] std::string tx_tag(TxId tx) { return "T" + std::to_string(tx); }

}  // namespace

bool OnlineCertificateMonitor::try_retro_order() {
  SmartReorderOptions options;
  options.prioritize = cur_tx_;
  SmartReorderResult found = smart_reorder_search(retained_, options);
  if (!found.certified) return false;
  // A §3.6 reordering certifies the prefix exactly: the retro-ordered
  // version re-opened the window the commit order had closed. The
  // incremental rank state is stale from here on — keep streaming by
  // replaying prefixes through the bounded search. This event's prefix is
  // already verified; feed() must not run the search a second time.
  witness_ = std::move(found.order);
  search_mode_ = true;
  prefix_verified_ = true;
  return true;
}

bool OnlineCertificateMonitor::search_verify() {
  // Incremental replay: the witness that certified the last prefix,
  // extended with the transactions that appeared since, is tried before
  // the bounded search — in the common case one exact pass re-verifies
  // the suffix past the last certified anchor.
  SmartReorderOptions options;
  options.prioritize = cur_tx_;
  options.hint = witness_.empty() ? nullptr : &witness_;
  SmartReorderResult found = smart_reorder_search(retained_, options);
  if (found.certified) {
    witness_ = std::move(found.order);
    return true;
  }
  violation_ = OnlineViolation{
      pos_,
      "no bounded smart reordering certifies the prefix (" +
          std::to_string(found.candidates_tried) + " candidate orders tried)",
      CertFlagKind::kSmartReorderFailed};
  return false;
}

bool OnlineCertificateMonitor::on_operation_response(const Event& e,
                                                     TxState& tx) {
  if (e.op == OpCode::kWrite) {
    // Value-unique writes underpin reads-from resolution (§5.4).
    bool inserted = false;
    VersionRec& wrec = versions_.slot(e.obj, e.arg, &inserted);
    if (inserted) {
      wrec.open_rank = 0;
      wrec.close_rank = 0;  // uninstalled: the empty [0, 0) interval
    } else if (wrec.writer != e.tx) {
      return fail(CertFlagKind::kValueNotUnique,
                  tx_tag(e.tx) + " rewrote value " + std::to_string(e.arg) + " of x" +
                  std::to_string(e.obj) + " (value-unique writes required)");
    }
    wrec.writer = e.tx;  // ranks assigned at commit
    tx.has_write = true;
    tx.writes.set(e.obj, e.arg, spill_pool_);
    return true;
  }

  // Read response. Local reads must return the transaction's own latest
  // write and do not touch the window.
  const bool stamped =
      policy_ == VersionOrderPolicy::kStampedRead && e.stamp != 0;
  if (stamped && e.stamp > tx.max_read_stamp) tx.max_read_stamp = e.stamp;
  if (const Value* own = tx.writes.find(e.obj)) {
    if (*own != e.ret) {
      return fail(CertFlagKind::kLocalInconsistency,
                  tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                  std::to_string(e.ret) + " despite its own write of " +
                  std::to_string(*own) + " (local consistency)");
    }
    return true;
  }

  const VersionRec* v = versions_.find(e.obj, e.ret);
  if (v == nullptr) {
    return fail(CertFlagKind::kUnwrittenValue,
                tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) + ", a value never written");
  }
  const VersionRec& rec = *v;
  if (rec.writer == e.tx) {
    return fail(CertFlagKind::kSelfRead,
                tx_tag(e.tx) + " read back its own value without a prior write");
  }
  if (rec.writer != kInitTx) {
    const TxState* w = txs_.find(rec.writer);
    if (w == nullptr || !w->committed) {
      // Possibly the H4 commit-pending case — conservative (see header).
      return fail(CertFlagKind::kReadFromNonCommitted,
                  tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                  std::to_string(e.ret) + " from non-committed T" +
                  std::to_string(rec.writer));
    }
  }

  if (stamped) {
    // The read claims it observed version `ver` while snapshot 2·rv+1 was
    // current; both halves must agree with the value-resolved version
    // chain (the Theorem-2-on-stamps cross-check, see the header; the
    // shared helper also guards 2·ver against the wrap attack).
    if (e.ver != kNoReadVersion &&
        !read_stamp_names_version(e.ver, rec.open_rank)) {
      return fail(CertFlagKind::kReadStampMismatch,
                  tx_tag(e.tx) + " stamped its read of x" + std::to_string(e.obj) +
                  "=" + std::to_string(e.ret) + " with version " +
                  std::to_string(e.ver) + " but the value belongs to the version "
                  "opened at rank " + std::to_string(rec.open_rank));
    }
    if (rec.open_rank > static_cast<std::size_t>(e.stamp)) {
      return fail(CertFlagKind::kReadStampMismatch,
                  tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                  std::to_string(e.ret) + " from a version opened at rank " +
                  std::to_string(rec.open_rank) + ", after its snapshot stamp " +
                  std::to_string(e.stamp));
    }
  }

  // Intersect the snapshot window with the version's validity interval.
  if (rec.open_rank > tx.lo) tx.lo = rec.open_rank;
  if (rec.close_rank < tx.hi) tx.hi = rec.close_rank;
  if (rec.close_rank == kOpen) holders_[e.obj].push_back(e.tx);

  if (tx.lo >= tx.hi) {
    return fail(CertFlagKind::kSnapshotEmpty,
                tx_tag(e.tx) + "'s reads form no consistent snapshot (window empty " +
                "after reading x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) + ")");
  }
  if (tx.hi <= tx.birth_rank) {
    return fail(CertFlagKind::kStaleRead,
                tx_tag(e.tx) + " read the outdated x" + std::to_string(e.obj) + "=" +
                std::to_string(e.ret) +
                ", overwritten before the transaction's first event "
                "(real-time order)");
  }
  return true;
}

bool OnlineCertificateMonitor::on_commit(const Event& c, TxState& tx, TxId id) {
  // Serialization-point checks BEFORE installing this commit's writes.
  if (policy_ == VersionOrderPolicy::kStampedRead && c.stamp != 0 &&
      c.stamp < tx.max_read_stamp) {
    // Snapshots only ever slide forward; a commit stamp below a read
    // snapshot contradicts the runtime's own discipline.
    return fail(CertFlagKind::kReadStampMismatch,
                tx_tag(id) + " committed at stamp " + std::to_string(c.stamp) +
                " below its latest read snapshot " +
                std::to_string(tx.max_read_stamp));
  }
  std::size_t rank = 0;
  if (tx.has_write) {
    if (stamp_space(policy_)) {
      // The transaction serializes at its stamped rank, which must lie in
      // its snapshot window and above its birth floor — the generalized
      // form of "reads current at commit" (under kCommitOrder the rank is
      // the new top rank, so the two coincide).
      rank = resolver_.update_commit_rank(c);
      if (rank < tx.lo || rank >= tx.hi || rank <= tx.birth_rank) {
        return fail(CertFlagKind::kNotCurrentAtCommit,
                    tx_tag(id) + " committed updates at rank " +
                        std::to_string(rank) +
                        " outside its snapshot window (version order)");
      }
    } else {
      // Update transactions serialize at their commit rank: every read
      // version must still be open (SiStm's write skew dies here).
      if (tx.hi != kOpen) {
        return fail(CertFlagKind::kNotCurrentAtCommit,
                    tx_tag(id) + " committed updates although a version it read was "
                          "overwritten (reads not current at commit)");
      }
      rank = resolver_.update_commit_rank(c);
    }
  } else {
    const std::optional<std::size_t> point = resolver_.read_only_point(c);
    if (point.has_value()) {
      // The runtime pinned the serialization point (an MV snapshot): it
      // must lie in the window and above the birth floor.
      if (*point < tx.lo || *point >= tx.hi || *point <= tx.birth_rank) {
        return fail(CertFlagKind::kNoReadOnlyPoint,
                    tx_tag(id) + " (read-only) committed at snapshot point " +
                        std::to_string(*point) +
                        " outside its snapshot window");
      }
    } else if (tx.lo >= tx.hi || tx.hi <= tx.birth_rank) {
      return fail(CertFlagKind::kNoReadOnlyPoint,
                  tx_tag(id) + " (read-only) committed with no serialization point "
                        "compatible with real-time order");
    }
  }

  tx.committed = true;
  if (!tx.has_write) return true;

  // Install: one rank for the whole commit; each written register's
  // previous version closes here. (Ascending-register order, exactly as
  // the std::map-backed write set iterated.)
  ++commits_;
  for (const auto& [obj, value] : tx.writes) {
    auto& prev_key = current_[obj];
    if (VersionRec* prev = versions_.find(prev_key.first, prev_key.second)) {
      prev->close_rank = rank;
    }
    for (const TxId holder : holders_[obj]) {
      TxState* h = txs_.find(holder);
      if (h != nullptr && rank < h->hi) h->hi = rank;
    }
    holders_[obj].clear();

    VersionRec& rec = versions_.slot(obj, value);
    rec.writer = id;
    rec.open_rank = rank;
    rec.close_rank = kOpen;
    prev_key = {obj, value};
  }
  return true;
}

bool OnlineCertificateMonitor::feed(const Event& e) {
  if (violation_.has_value()) {
    ++pos_;
    return false;
  }
  if (policy_ == VersionOrderPolicy::kBlindWriteSmart) retained_.append(e);
  cur_tx_ = e.tx;
  TxState& tx = txs_.get(e.tx);
  if (!tx.born) {
    tx.born = true;
    tx.birth_rank = resolver_.floor();
  }

  bool ok = true;
  switch (e.kind) {
    case EventKind::kInvoke:
      if (tx.phase != Phase::kIdle) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " invoked an operation while not idle (well-formedness)");
      } else if (!model_.contains(e.obj)) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " invoked an operation on unknown object x" +
                  std::to_string(e.obj));
      } else {
        tx.phase = Phase::kOpPending;
        tx.pending = e;
      }
      break;
    case EventKind::kResponse:
      if (tx.phase != Phase::kOpPending || !tx.pending.matches(e)) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " received a response with no matching invocation "
                        "(well-formedness)");
      } else {
        tx.phase = Phase::kIdle;
        if (search_mode_) {
          // The exact search replaces the register checks, but has_write
          // keeps feeding commits_seen().
          if (e.op == OpCode::kWrite) tx.has_write = true;
        } else {
          ok = on_operation_response(e, tx);
        }
      }
      break;
    case EventKind::kTryCommit:
      if (tx.phase != Phase::kIdle) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " issued tryC while not idle (well-formedness)");
      } else {
        tx.phase = Phase::kCommitPending;
      }
      break;
    case EventKind::kCommit:
      if (tx.phase != Phase::kCommitPending) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " committed without tryC (well-formedness)");
      } else {
        tx.phase = Phase::kDone;
        if (search_mode_) {
          tx.committed = true;
          if (tx.has_write) ++commits_;
        } else {
          ok = on_commit(e, tx, e.tx);
        }
        // The write set is installed (or the run is condemned): recycle
        // any spill storage for the next write-heavy transaction.
        tx.writes.release(spill_pool_);
      }
      break;
    case EventKind::kTryAbort:
      if (tx.phase != Phase::kIdle) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " issued tryA while not idle (well-formedness)");
      } else {
        tx.phase = Phase::kAbortPending;
      }
      break;
    case EventKind::kAbort:
      // A answers tryA, tryC, or a pending operation invocation.
      if (tx.phase == Phase::kDone) {
        ok = fail(CertFlagKind::kNotWellFormed,
                  tx_tag(e.tx) + " aborted after completing (well-formedness)");
      } else {
        tx.phase = Phase::kDone;  // aborted: writes never install
        tx.writes.release(spill_pool_);
      }
      break;
  }
  // Search mode delegates the certificate to the exact bounded search on
  // every response-class prefix (invocations cannot break opacity); the
  // prefix that triggered a successful retro-order was verified by the
  // repair itself.
  if (ok && search_mode_ && e.is_response() && !prefix_verified_) {
    ok = search_verify();
  }
  prefix_verified_ = false;
  ++pos_;
  return ok;
}

bool OnlineCertificateMonitor::ingest(std::span<const Event> batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (violation_.has_value()) {
      // Sticky: the rest of the batch is recorded (events_fed) in one step
      // instead of churning through feed() per event.
      pos_ += batch.size() - i;
      return false;
    }
    (void)feed(batch[i]);
  }
  return !violation_.has_value();
}

}  // namespace optm::core
