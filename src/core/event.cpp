#include "core/event.hpp"

#include <sstream>

namespace optm::core {

std::string to_string(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kInvoke:
      os << "inv" << e.tx << "(x" << e.obj << ", " << to_string(e.op);
      if (e.op != OpCode::kRead && e.op != OpCode::kDeq && e.op != OpCode::kPop &&
          e.op != OpCode::kGet && e.op != OpCode::kInc && e.op != OpCode::kDec) {
        os << ", " << e.arg;
      }
      os << ")";
      break;
    case EventKind::kResponse:
      os << "ret" << e.tx << "(x" << e.obj << ", " << to_string(e.op) << " -> "
         << e.ret << ")";
      break;
    case EventKind::kTryCommit:
      os << "tryC" << e.tx;
      break;
    case EventKind::kCommit:
      os << "C" << e.tx;
      break;
    case EventKind::kTryAbort:
      os << "tryA" << e.tx;
      break;
    case EventKind::kAbort:
      os << "A" << e.tx;
      break;
  }
  return os.str();
}

}  // namespace optm::core
