// 1-copy serializability (paper §3.3, after Bernstein & Goodman '83).
//
// Multi-version register histories: a read may return any version, but the
// execution must be equivalent to a serial history over a single copy of
// every register. Decided via the multiversion serialization graph (MVSG):
// H is 1-copy serializable iff there exists a version order such that
// MVSG(H, version-order) is acyclic. As in the classical theory, it
// suffices to consider version orders induced by total orders on the
// committed transactions, which is how the exhaustive checker searches.
//
// Like serializability — and unlike opacity — 1-copy serializability says
// nothing about live or aborted transactions.
//
// Preconditions: register-only history, value-unique writes (so reads-from
// is derivable from values).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/opacity.hpp"

namespace optm::core {

struct OneCopyResult {
  Verdict verdict{Verdict::kUnknown};
  /// Witness total order on committed transactions (iff kYes).
  std::optional<std::vector<TxId>> order;
  std::string reason;
  std::uint64_t orders_examined{0};

  [[nodiscard]] bool holds() const noexcept { return verdict == Verdict::kYes; }
};

/// Exhaustive MVSG search over total orders of the committed transactions;
/// kUnknown if there are more than `max_txs` committed transactions.
[[nodiscard]] OneCopyResult check_one_copy_serializability(
    const History& h, std::size_t max_txs = 9);

/// Polynomial certificate: is MVSG(H, version order induced by `order`)
/// acyclic? `order` lists the committed transactions.
[[nodiscard]] bool verify_one_copy_certificate(const History& h,
                                               const std::vector<TxId>& order,
                                               std::string* why = nullptr);

}  // namespace optm::core
