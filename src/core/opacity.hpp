// Opacity (paper §5, Definition 1) — the definitional checker.
//
//   A history H is opaque if there exists a sequential history S equivalent
//   to some history in Complete(H), such that (1) S preserves the real-time
//   order of H, and (2) every transaction Ti ∈ S is legal in S.
//
// Deciding opacity subsumes view-serializability and is NP-hard, so the
// checker is an exact memoized search intended for checker-scale histories
// (up to 64 transactions). Long recorded executions are verified instead
// with the polynomial certificate checker in opacity_graph.hpp.
//
// Search shape: place transactions one at a time into the candidate
// serialization S. A transaction is placeable once all its ≺_H predecessors
// are placed. Placing T as *committed* replays T's operations against the
// current committed system state and, on success, advances that state;
// placing T as *aborted* replays against a throwaway clone (T sees committed
// state + its own effects, leaves no trace). Commit-pending transactions may
// be placed in either role — this folds the whole Complete(H) enumeration
// into the search. Failures are memoized on (placed-set, state-encoding):
// if a configuration was shown unextendable once, any other path reaching
// the same set of placed transactions and the same object states fails too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"

namespace optm::core {

enum class Verdict : std::uint8_t {
  kYes,
  kNo,
  kUnknown,  // search budget exhausted (or >64 transactions)
};

[[nodiscard]] constexpr const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kYes: return "yes";
    case Verdict::kNo: return "no";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

/// Role a transaction plays in a witness serialization.
enum class Role : std::uint8_t { kCommitted, kAborted };

struct SerializationWitness {
  std::vector<TxId> order;  // the serialization S, as transaction ids
  std::vector<Role> roles;  // role of each transaction in S
};

struct OpacityResult {
  Verdict verdict{Verdict::kUnknown};
  std::optional<SerializationWitness> witness;  // set iff verdict == kYes
  std::string reason;                           // human-readable on kNo/kUnknown
  std::uint64_t states_explored{0};

  [[nodiscard]] bool opaque() const noexcept { return verdict == Verdict::kYes; }
};

struct OpacityOptions {
  /// Upper bound on DFS states; kUnknown once exceeded.
  std::uint64_t max_states = 4'000'000;
  /// Definition 1 requires S to preserve ≺_H; disabling yields the weaker
  /// "non-strict" variant (every transaction sees *some* consistent state,
  /// but possibly an outdated one — §2's real-time discussion).
  bool require_real_time = true;
};

/// Decide Definition 1 for `h`. Precondition: h.well_formed().
[[nodiscard]] OpacityResult check_opacity(const History& h,
                                          const OpacityOptions& options = {});

/// Check that every prefix of `h` is opaque (the paper notes a TM generates
/// its history progressively, so each prefix of a run must itself be opaque
/// even though opacity as defined is not prefix-closed). Returns the length
/// of the shortest non-opaque prefix, or nullopt if all prefixes are opaque.
[[nodiscard]] std::optional<std::size_t> first_non_opaque_prefix(
    const History& h, const OpacityOptions& options = {});

/// Reconstruct the witness serialization as an actual sequential history
/// equivalent to a member of Complete(h).
[[nodiscard]] History witness_history(const History& h,
                                      const SerializationWitness& witness);

// ---------------------------------------------------------------------------
// Shared search engine (also used by the serializability checkers)
// ---------------------------------------------------------------------------

/// What to place, and how, in a legal-serialization search.
struct SearchSpec {
  const HistoryIndex* index = nullptr;
  /// Dense indices (into index->txs()) of the transactions to serialize.
  std::vector<std::size_t> participants;
  /// Role constraint per participant, same order: kCommitted / kAborted /
  /// nullopt = searcher's choice (commit-pending duality).
  std::vector<std::optional<Role>> roles;
  bool require_real_time = true;
  std::uint64_t max_states = 4'000'000;
};

struct SearchOutcome {
  Verdict verdict{Verdict::kUnknown};
  std::optional<SerializationWitness> witness;
  std::uint64_t states_explored{0};
};

/// Find a legal serialization of the given transactions. The engine behind
/// check_opacity, check_serializability and check_strict_serializability.
[[nodiscard]] SearchOutcome search_legal_serialization(const SearchSpec& spec);

}  // namespace optm::core
