// Umbrella evaluation of every correctness criterion the paper surveys
// (§3) plus opacity itself (§5), producing the comparison matrix that the
// paper develops in prose: which criteria a given history satisfies.
#pragma once

#include <map>
#include <string>

#include "core/history.hpp"
#include "core/opacity.hpp"

namespace optm::core {

enum class Criterion : std::uint8_t {
  kSerializability,          // §3.2 (committed only)
  kStrictSerializability,    // §3.2 + real-time
  kConflictSerializability,  // classical polynomial variant
  kOneCopySerializability,   // §3.3
  kGlobalAtomicity,          // §3.4
  kRecoverability,           // §3.5 (reads-from commit order)
  kStrictRecoverability,     // §3.5 strongest form
  kRigorousness,             // §3.6
  kTxLinearizability,        // §3.1
  kOpacity,                  // §5
};

[[nodiscard]] constexpr const char* to_string(Criterion c) noexcept {
  switch (c) {
    case Criterion::kSerializability: return "serializability";
    case Criterion::kStrictSerializability: return "strict serializability";
    case Criterion::kConflictSerializability: return "conflict serializability";
    case Criterion::kOneCopySerializability: return "1-copy serializability";
    case Criterion::kGlobalAtomicity: return "global atomicity";
    case Criterion::kRecoverability: return "recoverability";
    case Criterion::kStrictRecoverability: return "strict recoverability";
    case Criterion::kRigorousness: return "rigorousness";
    case Criterion::kTxLinearizability: return "tx-linearizability";
    case Criterion::kOpacity: return "OPACITY";
  }
  return "?";
}

struct CriteriaReport {
  std::map<Criterion, Verdict> verdicts;
  std::map<Criterion, std::string> notes;  // failure reasons etc.

  [[nodiscard]] Verdict verdict(Criterion c) const {
    const auto it = verdicts.find(c);
    return it == verdicts.end() ? Verdict::kUnknown : it->second;
  }
  /// Render as an aligned two-column text table.
  [[nodiscard]] std::string table() const;
};

/// Evaluate every applicable criterion on `h`. Criteria whose preconditions
/// fail (e.g. the register-only checkers on a counter history) report
/// kUnknown with an explanatory note.
[[nodiscard]] CriteriaReport evaluate_criteria(const History& h);

}  // namespace optm::core
