// Nested transactions and non-transactional accesses (§7, "Concluding
// Remarks").
//
// The paper sketches how the flat model extends:
//
//  * Closed nesting — "we can treat events of each committed nested
//    transaction as if they were executed directly by the parent
//    transaction. Aborted and live nested transactions can be accounted
//    for in a similar way as we deal with aborted and live (flat)
//    transactions. The main difference here is that a nested transaction
//    should observe the changes done by its parent transaction."
//
//    flatten_closed_nesting implements exactly that reduction: given a
//    history whose transactions form a forest (parent map), it relabels
//    every committed child's events as the parent's, drops the child's
//    tryC/C markers, and leaves aborted/live children as standalone
//    transactions. The resulting FLAT history is then judged by the
//    ordinary opacity machinery. (The "child sees its parent's writes"
//    requirement is inherited automatically for committed children, whose
//    operations literally become parent operations; for aborted children
//    it is approximated — the child is judged against committed state like
//    any flat aborted transaction — the simplification §7 itself makes.)
//
//  * Non-transactional accesses — "It is preferable to require that every
//    non-transactional operation has the semantics of a single
//    transaction. We can encompass such a model by encapsulating every
//    non-transactional operation into a committed transaction."
//
//    as_single_op_transaction performs that encapsulation.
#pragma once

#include <map>

#include "core/history.hpp"

namespace optm::core {

/// Parent relation for a nesting forest: child TxId -> parent TxId.
/// Transactions absent from the map are top-level.
using NestingForest = std::map<TxId, TxId>;

/// Reduce a closed-nested history to the paper's flat model: committed
/// children's operation events are relabeled to their (transitively
/// top-level) ancestor; their tryC/C events are removed. Aborted and live
/// children stay separate transactions. Throws std::invalid_argument on a
/// cyclic parent map or on a child committing after its parent completed.
[[nodiscard]] History flatten_closed_nesting(const History& h,
                                             const NestingForest& forest);

/// §7's encapsulation of a non-transactional access: append `op(arg)=ret`
/// on `obj` to `h` as a fresh single-operation committed transaction with
/// identifier `tx`, and return the extended history.
[[nodiscard]] History with_non_transactional_access(const History& h, TxId tx,
                                                    ObjId obj, OpCode op,
                                                    Value arg, Value ret);

/// Open-nesting reduction (§7, after Moss [22]): a committed open-nested
/// child publishes its effects IMMEDIATELY at its own commit — it stays a
/// separate committed transaction in the flat history, and its effects
/// survive even if the parent later aborts (compensation is the
/// application's business, outside the model). The §7 requirement that
/// "a nested transaction should observe the changes done by its parent"
/// is handled per the paper's suggestion of judging the child's operations
/// "together with all the preceding operations of its parent": a child
/// read whose value was written by a (transitive) ancestor before the
/// child's first event is justified by the nest context, not by the global
/// committed state, so the reduction removes that read from the flat
/// history (it is local to the nest, like a read-own-write).
///
/// Approximations (documented limits of the flat §7 sketch): a child write
/// that the PARENT later reads back is not treated specially (the parent
/// sees it through the global state once the child committed — which open
/// nesting indeed prescribes), and aborted children are judged like flat
/// aborted transactions. Throws std::invalid_argument on a cyclic forest.
[[nodiscard]] History flatten_open_nesting(const History& h,
                                           const NestingForest& forest);

}  // namespace optm::core
