// Legal histories and transaction legality (paper §4, "Legal histories and
// transactions").
//
// A sequential history S is legal if S|ob ∈ Seq(ob) for every shared object
// ob. For our deterministic specifications this is decidable by replay: run
// every operation through the object state machines in history order and
// compare each recorded return value with the specified one.
//
// A transaction Ti in a complete sequential history S is legal in S if the
// largest subsequence S' of S consisting of (a) committed transactions
// preceding Ti in S and (b) Ti itself, is a legal history.
#pragma once

#include <string>

#include "core/history.hpp"

namespace optm::core {

/// Is the sequential history S legal (S|ob ∈ Seq(ob) for all ob)?
/// Precondition: S is well-formed and sequential.
[[nodiscard]] bool sequential_legal(const History& s, std::string* why = nullptr);

/// Is transaction `ti` legal in the complete sequential history S?
[[nodiscard]] bool transaction_legal(const History& s, TxId ti,
                                     std::string* why = nullptr);

/// Are all transactions legal in S (the condition (2) of Definition 1)?
[[nodiscard]] bool all_transactions_legal(const History& s,
                                          std::string* why = nullptr);

}  // namespace optm::core
