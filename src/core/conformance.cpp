#include "core/conformance.hpp"

#include <utility>

#include "core/parallel_verify.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

[[nodiscard]] EngineVerdict monitor_verdict(const History& h,
                                            VersionOrderPolicy policy) {
  OnlineCertificateMonitor m(h.model(), policy);
  for (const Event& e : h.events()) (void)m.feed(e);
  EngineVerdict v;
  v.certified = m.ok();
  if (!v.certified) {
    v.pos = m.violation()->pos;
    v.reason = m.violation()->reason;
    v.kind = m.violation()->kind;
  }
  return v;
}

[[nodiscard]] EngineVerdict driver_verdict(const History& h,
                                           util::ThreadPool& pool,
                                           VersionOrderPolicy policy,
                                           std::size_t shards) {
  ShardVerifyOptions options;
  options.policy = policy;
  options.num_shards = shards;
  const ParallelVerifyResult result = verify_history_sharded(h, pool, options);
  EngineVerdict v;
  v.certified = result.certified;
  if (!v.certified && result.violation.has_value()) {
    v.pos = result.violation->pos;
    v.reason = result.violation->reason;
    v.kind = result.violation->kind;
  }
  return v;
}

[[nodiscard]] std::string describe(const EngineVerdict& v) {
  if (v.certified) return "certified";
  return "flagged at " + std::to_string(v.pos) + " (" + v.reason + ")";
}

}  // namespace

ConformanceReport check_conformance(const History& h,
                                    const ConformanceOptions& options) {
  ConformanceReport report;
  util::ThreadPool pool(2);

  const auto diverge = [&report](std::string what) {
    if (report.ok) {
      report.ok = false;
      report.divergence = std::move(what);
    }
  };

  for (const VersionOrderPolicy policy : options.policies) {
    PolicyConformance pc;
    pc.policy = policy;
    pc.monitor = monitor_verdict(h, policy);

    bool first = true;
    for (const std::size_t shards : options.shard_counts) {
      const EngineVerdict d = driver_verdict(h, pool, policy, shards);
      if (first) {
        pc.driver = d;
        first = false;
      } else if (d.certified != pc.driver.certified ||
                 (!d.certified && d.pos != pc.driver.pos)) {
        diverge(std::string("driver disagrees with itself across shard "
                            "counts under ") +
                to_string(policy) + ": " + describe(pc.driver) + " vs " +
                describe(d) + " at " + std::to_string(shards) + " shards");
      }
      // Monitor/driver equivalence: verdict always; position except under
      // kBlindWriteSmart (the engines search different prefixes).
      if (d.certified != pc.monitor.certified ||
          (policy != VersionOrderPolicy::kBlindWriteSmart && !d.certified &&
           d.pos != pc.monitor.pos)) {
        diverge(std::string("monitor/driver divergence under ") +
                to_string(policy) + " (" + std::to_string(shards) +
                " shards): monitor " + describe(pc.monitor) + ", driver " +
                describe(d));
      }
    }
    report.policies.push_back(std::move(pc));
  }

  std::string why;
  if (options.exact_max_txs > 0 &&
      h.transactions().size() <= options.exact_max_txs &&
      h.well_formed(&why)) {  // check_opacity's precondition
    OpacityOptions opts;
    opts.max_states = options.exact_max_states;
    const OpacityResult exact = check_opacity(h, opts);
    report.exact = exact.verdict;
    report.exact_reason = exact.reason;

    for (const PolicyConformance& pc : report.policies) {
      if (pc.monitor.certified && exact.verdict == Verdict::kNo) {
        // A certified non-opaque history would be a Theorem-2 soundness
        // bug — the one divergence that must never happen.
        diverge(std::string("SOUNDNESS: ") + to_string(pc.policy) +
                " certified a history the exact checker proves non-opaque (" +
                exact.reason + ")");
      }
      if (!pc.monitor.certified && exact.verdict == Verdict::kYes &&
          pc.monitor.kind == CertFlagKind::kNotWellFormed) {
        // Well-formedness is decided, not certified: the exact checker
        // front-ends the same §4 state machine, so a well-formedness flag
        // on an exactly-opaque history means the engines disagree on §4.
        diverge(std::string("well-formedness flag under ") +
                to_string(pc.policy) +
                " on a history the exact checker accepts: " +
                pc.monitor.reason);
      }
    }
  }

  return report;
}

}  // namespace optm::core
