// Pluggable version-order resolution (the serialization-rank layer).
//
// The §5.4 certificate machinery needs, for every committed update
// transaction, a serialization RANK, and for every committed write an
// (open, close) rank interval — the version's validity window. PR 1 baked
// in one resolution: rank = position in commit (C-record) order. That is
// correct for every single-version STM in this repository, but it is a
// POLICY, not a law:
//
//   * §3.6's "smart" TMs order blind writes differently from the commit
//     order (a later committer may serialize earlier when nobody observed
//     the difference);
//   * multi-version runtimes serialize read-only transactions at their
//     snapshot, which may lie arbitrarily far before their C event (the
//     H4 / footnote-2 escape route), and — once the recorder stops
//     serializing commit points against its record stream — even update
//     commits' C records can drift past each other, so the RECORD order
//     and the VERSION order genuinely diverge.
//
// This header turns the rank assignment into a policy object consumed by
// both certificate engines (the streaming OnlineCertificateMonitor and the
// sharded offline driver verify_history_sharded):
//
//   * kCommitOrder   — PR 1's behavior, byte for byte: ranks 1, 2, 3, …
//     in C-record order; update commits must be current at their rank.
//   * kBlindWriteSmart — commit-order ranks until a window-based flag
//     would fire, then a bounded search over the §3.6 reorderings
//     (moving recent committers past each other), each candidate verified
//     EXACTLY with verify_opacity_certificate, so a certified verdict is
//     still sound. Checker-scale (the search replays the prefix).
//   * kSnapshotRank  — ranks live in the runtime's stamp space: an update
//     commit serializes at the stamp its C event carries (2·wv), a
//     read-only commit at its snapshot point (2·snapshot+1), and version
//     intervals are stamp intervals. This certifies MV histories whose
//     C records arrive out of stamp order — exactly the histories the
//     commit-order policy falsely flags.
//   * kStampedRead   — kSnapshotRank plus per-read stamp validation: when
//     a read response carries its (rv, version) pair (Event::stamp =
//     2·rv+1, Event::ver — window-free recording, see stm/recorder.hpp),
//     the engines additionally check that the value read resolves to the
//     version the read NAMES (open rank == 2·ver, via
//     read_stamp_names_version below), that the version was not created
//     after the claimed snapshot (open rank <= 2·rv+1), and at commit
//     that the transaction's serialization stamp does not precede any of
//     its read snapshots. The stamps may come from a clock runtime (TL2
//     family: rv is the global clock, ver the lock word's version) or
//     from an orec runtime (dstm/astm: rv is a validation snapshot drawn
//     before the whole-read-set check, ver is half the CAS-acquired
//     orec's version word — itself the writer's 2·wv ticket); the three
//     checks are source-agnostic. This is the policy under which a
//     recorder needs NO sampling window: the Theorem-2 argument lives
//     entirely on the stamps the runtime emits (see online.hpp for the
//     soundness argument, including why stolen orecs cannot fake it).
//
// All four remain SUFFICIENT certificates: a flag is a certificate
// violation, not yet a proof of non-opacity, and carries a structured
// CertFlagKind so downstream adjudication (the definitional fallback, the
// smart-reorder search) can dispatch on it without string matching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/history.hpp"

namespace optm::core {

enum class VersionOrderPolicy : std::uint8_t {
  kCommitOrder,     // committed version order == commit (record) order
  kBlindWriteSmart, // + bounded §3.6 reordering search on window flags
  kSnapshotRank,    // stamp-space ranks (MV snapshot serialization)
  kStampedRead,     // + per-read (rv, version) stamp validation
};

[[nodiscard]] constexpr const char* to_string(VersionOrderPolicy p) noexcept {
  switch (p) {
    case VersionOrderPolicy::kCommitOrder: return "commit-order";
    case VersionOrderPolicy::kBlindWriteSmart: return "blind-write-smart";
    case VersionOrderPolicy::kSnapshotRank: return "snapshot-rank";
    case VersionOrderPolicy::kStampedRead: return "stamped-read";
  }
  return "?";
}

/// Inverse of to_string — the one parser behind every --policy flag and
/// the log headers' policy metadata. nullopt for unknown names.
[[nodiscard]] constexpr std::optional<VersionOrderPolicy>
parse_version_order_policy(std::string_view name) noexcept {
  if (name == "commit-order") return VersionOrderPolicy::kCommitOrder;
  if (name == "blind-write-smart") return VersionOrderPolicy::kBlindWriteSmart;
  if (name == "snapshot-rank") return VersionOrderPolicy::kSnapshotRank;
  if (name == "stamped-read") return VersionOrderPolicy::kStampedRead;
  return std::nullopt;
}

/// Policies whose serialization ranks live in the runtimes' stamp space
/// (Event::stamp) rather than in C-record order. Both runtime stamp
/// sources land in the same space: clock runtimes (tl2/tiny/mv) stamp C
/// with 2·wv straight off the global clock, and the orec runtimes
/// (dstm/astm) ticket their commits through a CAS-published kCommitting
/// state and store the 2·wv ticket as the orec version word — either way
/// Event::ver on a stamped read names the wv whose C opened the version.
[[nodiscard]] constexpr bool stamp_space(VersionOrderPolicy p) noexcept {
  return p == VersionOrderPolicy::kSnapshotRank ||
         p == VersionOrderPolicy::kStampedRead;
}

/// The kStampedRead version-identity cross-check, shared by both
/// certificate engines: does the version id a read names (Event::ver)
/// match the stamp-space rank its value-resolved version opened at? The
/// magnitude guard keeps `2 * ver` from wrapping: a genuine version claim
/// always satisfies open == 2·ver without overflow, so a wrapping ver —
/// the ver = 2^63 + true_ver replay attack — is by definition a lie,
/// whatever open rank the wrapped product would alias to.
[[nodiscard]] constexpr bool read_stamp_names_version(
    std::uint64_t ver, std::size_t open_rank) noexcept {
  return ver <= (~std::uint64_t{0} >> 1) &&
         open_rank == 2 * static_cast<std::size_t>(ver);
}

/// Structured classification of a certificate flag. Every fail site of the
/// certificate engines tags its flag with one of these so adjudication
/// (definitional fallback, smart-reorder repair) dispatches on the enum
/// instead of matching reason strings.
enum class CertFlagKind : std::uint8_t {
  kNone = 0,
  kNotWellFormed,         // §4 life-cycle violation
  kValueNotUnique,        // two writers produced the same (register, value)
  kLocalInconsistency,    // local read disagrees with own buffered write
  kUnwrittenValue,        // read a value no transaction ever wrote
  kSelfRead,              // read own value before writing it
  kReadFromNonCommitted,  // reads-from a non-committed (possibly
                          // commit-pending — the H4 case) writer
  kSnapshotEmpty,         // snapshot window became empty
  kStaleRead,             // window closed before the transaction began
  kNotCurrentAtCommit,    // update commit outside its snapshot window
  kNoReadOnlyPoint,       // read-only commit with no serialization point
  kReadStampMismatch,     // a read's (rv, version) stamp contradicts the
                          // value-resolved version chain, or a commit
                          // stamp precedes one of its read snapshots
  kSmartReorderFailed,    // no bounded §3.6 reordering certifies the prefix
  kNotOpaque,             // definitional: prefix proven non-opaque
  kBudgetExhausted,       // definitional: search budget exhausted
};

[[nodiscard]] const char* to_string(CertFlagKind k) noexcept;

/// Window-based flags are statements about ONE candidate version order and
/// may evaporate under another — these are the kinds the BlindWriteSmart
/// policy may try to repair by retro-ordering versions. Well-formedness and
/// value-resolution flags are order-independent and never repairable.
[[nodiscard]] constexpr bool reorder_repairable(CertFlagKind k) noexcept {
  switch (k) {
    case CertFlagKind::kSnapshotEmpty:
    case CertFlagKind::kStaleRead:
    case CertFlagKind::kNotCurrentAtCommit:
    case CertFlagKind::kNoReadOnlyPoint:
      return true;
    default:
      return false;
  }
}

/// Flag kinds that by themselves prove the history non-opaque (they break
/// §5.4 consistency, which Theorem 2 makes necessary) — the definitional
/// fallback can adjudicate these kNo without running the exponential
/// search.
[[nodiscard]] constexpr bool proves_non_opaque(CertFlagKind k) noexcept {
  switch (k) {
    case CertFlagKind::kLocalInconsistency:
    case CertFlagKind::kUnwrittenValue:
    case CertFlagKind::kSelfRead:
      return true;
    default:
      return false;
  }
}

/// Rank value meaning "still open" / "no rank".
inline constexpr std::size_t kOpenVersionRank = static_cast<std::size_t>(-1);

/// Streaming serialization-rank assignment — the one shared mechanism under
/// the monitor and the sharded driver's pass 0. Feed it every committed
/// C event in record order; it answers three questions:
///
///   * update_commit_rank(c): the rank at which the update transaction
///     behind C event `c` serializes (and at which its writes open /
///     predecessors close);
///   * read_only_point(c): the pinned serialization point of a read-only
///     commit, when the policy derives one (a stamp-space policy with an
///     odd stamp — the runtime's 2·snapshot+1 convention); nullopt means the
///     engines fall back to the window rule (any rank in the snapshot
///     window past the birth floor);
///   * floor(): the birth floor — every version closed at a rank <= floor()
///     was closed by a commit whose C event has already been fed, so a
///     transaction born now must serialize strictly above it.
class VersionOrderResolver {
 public:
  explicit VersionOrderResolver(
      VersionOrderPolicy policy = VersionOrderPolicy::kCommitOrder) noexcept
      : policy_(policy) {}

  [[nodiscard]] VersionOrderPolicy policy() const noexcept { return policy_; }

  [[nodiscard]] std::size_t update_commit_rank(const Event& c) noexcept {
    if (stamp_space(policy_)) {
      // Stamp space. Unstamped C events (hand-built or legacy histories)
      // synthesize a rank just above everything seen, which reproduces
      // commit-order behavior on stamp-free histories.
      const std::size_t rank =
          c.stamp != 0 ? static_cast<std::size_t>(c.stamp) : floor_ + 1;
      if (rank > floor_) floor_ = rank;
      return rank;
    }
    ++next_;
    floor_ = next_;
    return next_;
  }

  [[nodiscard]] std::optional<std::size_t> read_only_point(
      const Event& c) const noexcept {
    if (stamp_space(policy_) && (c.stamp & 1) != 0) {
      return static_cast<std::size_t>(c.stamp);
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t floor() const noexcept { return floor_; }

 private:
  VersionOrderPolicy policy_;
  std::size_t next_ = 0;   // commit-order counter
  std::size_t floor_ = 0;  // max update rank assigned so far
};

// ---------------------------------------------------------------------------
// §3.6 smart-reorder search (the BlindWriteSmart policy's engine)
// ---------------------------------------------------------------------------

struct SmartReorderResult {
  /// A candidate version order was found and verified EXACTLY (Theorem 2
  /// certificate over the whole history) — the history is opaque.
  bool certified = false;
  /// The certified total order ≪ over all transactions (iff certified).
  std::vector<TxId> order;
  /// Candidate orders examined (certified, pruned or exactly refuted).
  std::size_t candidates_tried = 0;
  /// Of those, candidates rejected by the O(reads) stamp scan WITHOUT an
  /// exact verify_opacity_certificate pass (see StampPruneIndex).
  std::size_t candidates_pruned = 0;
};

/// The recorder's anchor order: committed transactions at their C position,
/// others at their last non-local read response (their last whole-read-set
/// validation), falling back to their first event — the same rule as
/// stm::detail::certificate_order_of with no stamps. Exposed for tests.
[[nodiscard]] std::vector<TxId> anchor_order(const History& h);

/// Sound fast rejection of candidate version orders, built once per search
/// from the history's value-resolved reads-from and its recorded read
/// stamps (Event::ver — the version identity PRs 3–4 put on window-free
/// read responses). Two necessary conditions of the exact certificate are
/// checked in O(reads) per candidate, with no History replay:
///
///   * reads-from follows ≪ (certificate check (b)): a candidate that
///     serializes a reader at or before its value-resolved writer is
///     condemned for every reader — committed, aborted or live — because
///     verify_opacity_certificate rejects any reads-from edge against ≪;
///   * no intervening writer (certificate check (d)): when a stamped read
///     names its version, the stamp chain names that version's OVERWRITER
///     (the committed writer of the next version in stamp space). A
///     candidate ranking writer < overwriter < reader puts a visible
///     writer of the register strictly between the reads-from endpoints,
///     which check (d) rejects.
///
/// Both conditions are implied by the exact pass, so pruning can only skip
/// candidates the exact pass would refute — verdicts are unchanged (the
/// stamp-prune fuzz suite differentially enforces this).
class StampPruneIndex {
 public:
  explicit StampPruneIndex(const History& h);

  /// True if `order` cannot be certified (sound: implied by the exact
  /// certificate). O(reads) plus one O(|order|) rank fill.
  [[nodiscard]] bool rejects(const std::vector<TxId>& order) const;

  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }

 private:
  struct Constraint {
    TxId reader{kNoTx};
    TxId writer{kNoTx};      // kInitTx: reader > init holds in every order
    TxId overwriter{kNoTx};  // kNoTx: no stamped next version known
  };
  std::vector<Constraint> constraints_;
  // Scratch for rejects(): dense tx -> candidate rank, epoch-validated so
  // repeated calls neither clear nor allocate.
  mutable std::vector<std::pair<std::uint32_t, std::size_t>> rank_;
  mutable std::uint32_t epoch_ = 0;
};

struct SmartReorderOptions {
  /// Transaction to try moving first (the flagged one), if any.
  std::optional<TxId> prioritize;
  /// Search bound: the last max_moves committers, each moved up to
  /// max_moves positions earlier.
  std::size_t max_moves = 8;
  /// A previously certified order to extend and try FIRST (the streaming
  /// monitor's incremental search-mode replay: the witness of the last
  /// certified prefix usually certifies the next one, making the common
  /// per-response cost one exact pass instead of a whole search).
  const std::vector<TxId>* hint = nullptr;
  /// Reject candidates via StampPruneIndex before the exact pass
  /// (disabled only by the differential fuzz that proves it sound).
  bool stamp_prune = true;
};

/// Bounded search over the §3.6 reorderings of `h`'s anchor order: for
/// each of the last max_moves committers (trying options.prioritize
/// first, if given), try serializing it up to max_moves positions earlier;
/// every surviving candidate is verified with verify_opacity_certificate,
/// so `certified` is sound. Candidates are first screened by the O(reads)
/// StampPruneIndex scan (candidates_pruned counts the rejects). Intended
/// for checker-scale prefixes — each exact pass costs O(|h| log |h|).
[[nodiscard]] SmartReorderResult smart_reorder_search(
    const History& h, const SmartReorderOptions& options);

/// Convenience overload (pre-PR-5 signature).
[[nodiscard]] inline SmartReorderResult smart_reorder_search(
    const History& h, std::optional<TxId> prioritize = std::nullopt,
    std::size_t max_moves = 8) {
  SmartReorderOptions options;
  options.prioritize = prioritize;
  options.max_moves = max_moves;
  return smart_reorder_search(h, options);
}

}  // namespace optm::core
