// ParallelStreamCertifier — the online certificate monitor, sharded
// across cores.
//
// Every live pipeline (DrainPump -> MonitorSink, verify_event_stream's
// streaming path, checker_tool certify-log) previously topped out at the
// throughput of one OnlineCertificateMonitor core. The offline driver
// (parallel_verify.hpp) already proved that the §5.4 certificate
// decomposes by register shard; this class ports that decomposition to
// the STREAMING path, so live certification scales past one core while
// preserving the monitor's verdict and first-flag position exactly.
//
// PIPELINE. ingest(span) copies each stamp-contiguous batch into a chunk
// and hands it to a bounded SPSC channel feeding the GLOBAL PASS-0
// WORKER, which runs the sequential register-free part of the
// certificate — the §4 lifecycle state machine, birth floors, and the
// VersionOrderResolver rank assignment (ranks are what couple registers
// together; computing them on one thread is what keeps the shards
// independent, exactly as in the offline driver's pass 0). Pass 0
// annotates each committed update C event with its serialization rank and
// PARTITIONS the batch by `register % num_shards` into per-shard SPSC
// queues (C events broadcast to every shard — each shard installs only
// its own registers' writes but needs the committed-writer marks);
// util::ThreadPool workers — one long-running task per shard, plus one
// for pass 0 — consume the queues, each running the shard-local
// certificate pass of parallel_verify.cpp's ShardPass over its own
// dense-state slices (VersionTable version chains, TxSlab write-set
// index, SmallWriteSet buffers; see dense_state.hpp).
//
// WINDOWED MERGE. Every merge_window_events ingested events, pass 0
// pushes a barrier through all shard queues. Each shard, on reaching it,
// resolves the pending reads of transactions that COMPLETED in the closed
// window against its version chain and parks; pass 0 then replays each
// completed transaction's snapshot-window intersection over its reads
// from all shards in position order with the shared close-heap sweep
// (detail::sweep_tx_windows, window_merge.hpp — the same function the
// offline merge runs), applies the commit-point check, and releases the
// shards. finish() runs a final barrier that also sweeps the reads of
// transactions still live at stream end and the readless birth-floor
// checks of the stamp policies, then sorts all flags by position: the
// earliest is the violation.
//
// WHY PER-REGISTER PARTITIONING PRESERVES FLAG POSITIONS (the soundness
// argument, satellite of the offline driver's):
//
//   * every flag the certificate can raise is attributable to either the
//     register-free pass (well-formedness, commit-stamp monotonicity —
//     computed sequentially here, identical to the monitor), to ONE
//     register (value-unique writes, local consistency, reads-from
//     resolution, per-read stamp checks — each register's version chain
//     is touched only by its own shard, which sees that register's
//     events in stream order, so the shard-local scan is byte-identical
//     to the monitor's view of that register), or to the per-transaction
//     WINDOW INTERSECTION across registers — which the merge replays
//     sequentially from the shard-resolved (open, close) intervals with
//     the monitor's knowledge timing (a close participates only once its
//     closing C event precedes the check position);
//   * resolving a transaction's reads at the barrier where it completed
//     is equivalent to the offline driver's end-of-history resolution:
//     every check on a transaction T happens at positions <= T's
//     completion position <= the barrier position B, and the sweep
//     applies a close only when close_pos < check position, so closes
//     recorded after B (the only difference between the chain at B and
//     the final chain) can never participate in T's checks — they would
//     fail the close_pos < check test anyway. Hence the flag set, and
//     therefore the EARLIEST flag position, equals the offline driver's,
//     which is fuzz-proven position-equivalent to the monitor.
//
// Unlike the monitor, a latched violation does NOT stop the pipeline
// early: flags surface out of position order (a shard may flag position
// 50 after another already flagged 90), so the certifier processes the
// whole stream and selects the earliest flag at finish(). ingest()'s
// return value turns (stickily) false as soon as ANY flag is known —
// same contract shape as the monitor — but ok()/violation() are final
// only after finish().
//
// kBlindWriteSmart FALLS BACK TO THE SERIAL MONITOR: the §3.6 bounded
// reorder search retains and replays the whole prefix and a successful
// retro-order re-opens version windows across ALL registers at once —
// both inherently global and sequential, so there is no shard-local pass
// to run (the offline driver has the same asymmetry: it repairs once over
// the whole history). serial_fallback() reports when this happened;
// shards_used()/threads_used() are then 1.
//
// MEMORY stays within a constant factor of the monitor's: per-transaction
// slabs and the per-shard version chains grow exactly like the monitor's
// (O(transactions + versions)), and pending reads are retained only for
// LIVE transactions — a transaction's reads are resolved and freed at the
// barrier closing the window in which it completed.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "core/event.hpp"
#include "core/online.hpp"
#include "core/version_order.hpp"

namespace optm::util {
class ThreadPool;  // util/pool.hpp
}

namespace optm::core {

class ParallelStreamCertifier {
 public:
  struct Options {
    /// Register shards (= shard worker tasks); 0 = auto via
    /// resolve_verify_concurrency (min(#registers, worker budget)).
    std::size_t num_shards = 0;
    /// Worker-thread budget when the certifier OWNS its pool (no external
    /// pool passed); 0 = auto. The pipeline needs num_shards + 1
    /// concurrently parked tasks, so an owned pool is always sized to
    /// exactly that — this knob only feeds the shard auto-resolution.
    std::size_t num_threads = 0;
    /// Merge-barrier cadence, in ingested events. Smaller windows bound
    /// the pending-read retention tighter; larger ones amortize the
    /// barrier. Verdicts and flag positions are window-size-invariant.
    std::size_t merge_window_events = std::size_t{1} << 16;
    /// Bounded depth (in chunks) of the ingest -> pass-0 channel;
    /// ingest() blocks when the pipeline is this far behind.
    std::size_t max_queued_chunks = 8;
  };

  /// Same preconditions as OnlineCertificateMonitor: all-register model
  /// (throws std::invalid_argument otherwise). When `pool` is given it is
  /// borrowed, must outlive the certifier, and must have at least
  /// resolved-shards + 1 threads DEDICATED while the certifier is live
  /// (throws std::invalid_argument if too small) — the workers are
  /// long-running tasks, not finite jobs. With pool == nullptr the
  /// certifier owns a right-sized pool.
  explicit ParallelStreamCertifier(
      ObjectModel model,
      VersionOrderPolicy policy = VersionOrderPolicy::kCommitOrder);
  ParallelStreamCertifier(ObjectModel model, VersionOrderPolicy policy,
                          Options options, util::ThreadPool* pool = nullptr);
  ~ParallelStreamCertifier();

  ParallelStreamCertifier(const ParallelStreamCertifier&) = delete;
  ParallelStreamCertifier& operator=(const ParallelStreamCertifier&) = delete;

  /// Feed the next stamp-contiguous batch (same contract as the
  /// monitor's ingest). Blocks when the pipeline is max_queued_chunks
  /// behind. Returns false once a violation is known (sticky) — but see
  /// the header: the definitive verdict needs finish().
  bool ingest(std::span<const Event> batch);

  /// Pre-size the dense state (monitor-compatible signature; the version
  /// budget is split across shards, holders_per_register is accepted for
  /// symmetry but unused — this engine has no holder lists). Only
  /// effective before the first ingest().
  void reserve(std::size_t num_txs, std::size_t num_versions,
               std::size_t holders_per_register = 0);

  /// End of stream: run the final merge barrier, shut the workers down,
  /// and latch the earliest flag. Idempotent. Returns ok().
  bool finish();

  /// Final after finish(); provisional (flags may still be in flight in
  /// the shard workers) before.
  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] const std::optional<OnlineViolation>& violation() const noexcept;

  [[nodiscard]] VersionOrderPolicy policy() const noexcept;
  [[nodiscard]] std::size_t events_fed() const noexcept;
  /// Register shards certifying in parallel (1 under serial fallback).
  [[nodiscard]] std::size_t shards_used() const noexcept;
  /// Long-running worker tasks the pipeline occupies: shards + the pass-0
  /// worker (1 under serial fallback — everything runs on the ingest
  /// thread).
  [[nodiscard]] std::size_t threads_used() const noexcept;
  /// True iff the policy forced the serial-monitor fallback
  /// (kBlindWriteSmart; see the header for why it cannot shard).
  [[nodiscard]] bool serial_fallback() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace optm::core
