#include "core/opacity_graph.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace optm::core {

namespace {

constexpr std::size_t kInitVertex = 0;

/// Digest of a register history in nonlocal form: per transaction, the
/// non-local reads with their resolved writers, and the non-local writes.
class RegisterHistoryView {
 public:
  struct Read {
    ObjId obj;
    Value value;
    std::size_t writer;  // vertex index (kInitVertex for initial values)
  };
  struct TxNode {
    TxId id{kNoTx};
    TxStatus status{TxStatus::kLive};
    std::vector<Read> reads;
    std::vector<std::pair<ObjId, Value>> writes;
    std::size_t first_pos{0};
    std::size_t last_pos{0};
    bool completed{false};
  };

  explicit RegisterHistoryView(const History& h) : nonlocal_(h.nonlocal()) {
    const auto& model = nonlocal_.model();

    // Real-time positions come from the FULL history: dropping local
    // operations moves a transaction's first/last events inward, which
    // would CREATE ≺ orderings that do not exist in ≺_H (e.g. a
    // transaction whose early writes are all local would appear to start
    // only at its first non-local read). Definition 1's real-time order is
    // ≺_H, so Lrt edges and the certificate's real-time check must use
    // full positions; reads, writes and labels still come from
    // nonlocal(H) per §5.4.
    std::map<TxId, std::pair<std::size_t, std::size_t>> full_span;
    for (std::size_t i = 0; i < h.size(); ++i) {
      const auto [it, inserted] =
          full_span.emplace(h[i].tx, std::make_pair(i, i));
      if (!inserted) it->second.second = i;
    }

    // Vertex 0 is the initializer: the explicit transaction kInitTx if the
    // history has one, else a synthetic committed transaction.
    const auto tx_ids = nonlocal_.transactions();
    const bool explicit_init =
        std::find(tx_ids.begin(), tx_ids.end(), kInitTx) != tx_ids.end();
    synthetic_init_ = !explicit_init;

    TxNode init;
    init.id = kInitTx;
    init.status = TxStatus::kCommitted;
    init.completed = true;
    txs_.push_back(init);

    std::map<TxId, std::size_t> vertex_of;
    vertex_of[kInitTx] = kInitVertex;
    for (TxId id : tx_ids) {
      if (id == kInitTx) continue;
      vertex_of[id] = txs_.size();
      TxNode node;
      node.id = id;
      node.status = nonlocal_.status(id);
      node.completed = node.status == TxStatus::kCommitted ||
                       node.status == TxStatus::kAborted;
      txs_.push_back(node);
    }

    // Writers: (register, value) -> vertex, value-unique per §5.4. The
    // initializer writes the initial value of every register (overridable:
    // an explicit write of the initial value takes precedence would violate
    // uniqueness, so it is rejected).
    std::map<std::pair<ObjId, Value>, std::size_t> writer_of;
    for (ObjId r = 0; r < model.size(); ++r) {
      const auto* reg = dynamic_cast<const RegisterSpec*>(&model.spec(r));
      if (reg == nullptr) {
        throw std::invalid_argument(
            "opacity graph: §5.4 applies to register histories only");
      }
      writer_of[{r, reg->initial_value()}] = kInitVertex;
    }

    for (const auto& [tx, span] : full_span) {
      const auto at = vertex_of.find(tx);
      if (at == vertex_of.end()) continue;  // no retained events
      txs_[at->second].first_pos = span.first;
      txs_[at->second].last_pos = span.second;
    }

    std::map<TxId, Event> pending;
    for (std::size_t i = 0; i < nonlocal_.size(); ++i) {
      const Event& e = nonlocal_[i];
      const std::size_t v = vertex_of.at(e.tx);
      TxNode& node = txs_[v];
      switch (e.kind) {
        case EventKind::kInvoke:
          if (e.op == OpCode::kWrite) {
            const auto key = std::make_pair(e.obj, e.arg);
            const auto [it, inserted] = writer_of.emplace(key, v);
            if (!inserted && it->second != v) {
              throw std::invalid_argument(
                  "opacity graph: two writers of value " + std::to_string(e.arg) +
                  " to register x" + std::to_string(e.obj) +
                  " (value-unique writes required)");
            }
            node.writes.emplace_back(e.obj, e.arg);
          }
          pending[e.tx] = e;
          break;
        case EventKind::kResponse:
          if (e.op == OpCode::kRead) {
            reads_to_resolve_.push_back({v, e.obj, e.ret});
          }
          pending.erase(e.tx);
          break;
        default:
          break;
      }
    }

    // Resolve reads-from now that every writer is known.
    for (const auto& [v, obj, value] : reads_to_resolve_) {
      const auto it = writer_of.find({obj, value});
      if (it == writer_of.end()) {
        consistent_ = false;
        continue;  // detected by History::consistent as well
      }
      txs_[v].reads.push_back(Read{obj, value, it->second});
    }
  }

  [[nodiscard]] const History& nonlocal() const noexcept { return nonlocal_; }
  [[nodiscard]] const std::vector<TxNode>& txs() const noexcept { return txs_; }
  [[nodiscard]] bool synthetic_init() const noexcept { return synthetic_init_; }
  [[nodiscard]] bool reads_resolvable() const noexcept { return consistent_; }

  [[nodiscard]] std::size_t vertex_of(TxId id) const {
    for (std::size_t v = 0; v < txs_.size(); ++v)
      if (txs_[v].id == id) return v;
    throw std::invalid_argument("opacity graph: unknown transaction T" +
                                std::to_string(id));
  }

  /// Real-time order between vertices, on nonlocal(H). The initializer
  /// precedes everything; a synthetic initializer has no other relations.
  [[nodiscard]] bool precedes(std::size_t i, std::size_t k) const noexcept {
    if (i == k) return false;
    if (i == kInitVertex) return true;
    if (k == kInitVertex) return false;
    return txs_[i].completed && txs_[i].last_pos < txs_[k].first_pos;
  }

 private:
  struct PendingRead {
    std::size_t v;
    ObjId obj;
    Value value;
  };

  History nonlocal_;
  std::vector<TxNode> txs_;
  std::vector<PendingRead> reads_to_resolve_;
  bool synthetic_init_ = true;
  bool consistent_ = true;
};

/// Build the graph given a rank function over vertices (rank[init] must be
/// minimal) and visibility flags.
OpacityGraph build_from_view(const RegisterHistoryView& view,
                             const std::vector<std::size_t>& rank,
                             const std::vector<bool>& vis) {
  const auto& txs = view.txs();
  const std::size_t n = txs.size();

  OpacityGraph g;
  g.has_synthetic_init = view.synthetic_init();
  g.vertex_tx.resize(n);
  g.vis = vis;
  g.label.assign(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t v = 0; v < n; ++v) g.vertex_tx[v] = txs[v].id;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i == k) continue;
      // Rule 1: real-time order.
      if (view.precedes(i, k)) g.label[i][k] |= kLrt;
      // Rule 3: Ti ≪ Tk, Ti reads a register written by Tk.
      if (rank[i] < rank[k]) {
        for (const auto& rd : txs[i].reads) {
          const bool k_writes = std::any_of(
              txs[k].writes.begin(), txs[k].writes.end(),
              [&rd](const auto& w) { return w.first == rd.obj; });
          if (k_writes) {
            g.label[i][k] |= kLrw;
            break;
          }
        }
      }
    }
    // Rule 2: Tk reads from Ti -> edge (Ti, Tk).
    for (const auto& rd : txs[i].reads) {
      if (rd.writer != i) g.label[rd.writer][i] |= kLrf;
    }
  }

  // Rule 4: Ti visible, Ti ≪ Tm, Ti writes r, Tm reads r from Tk
  //         -> edge (Ti, Tk).
  for (std::size_t m = 0; m < n; ++m) {
    for (const auto& rd : txs[m].reads) {
      const std::size_t k = rd.writer;
      for (std::size_t i = 0; i < n; ++i) {
        if (i == k || i == m || !vis[i] || rank[i] >= rank[m]) continue;
        const bool i_writes = std::any_of(
            txs[i].writes.begin(), txs[i].writes.end(),
            [&rd](const auto& w) { return w.first == rd.obj; });
        if (i_writes) g.label[i][k] |= kLww;
      }
    }
  }
  return g;
}

std::vector<bool> visibility(const RegisterHistoryView& view,
                             const std::vector<TxId>& v_set) {
  const auto& txs = view.txs();
  std::vector<bool> vis(txs.size(), false);
  for (std::size_t i = 0; i < txs.size(); ++i)
    vis[i] = txs[i].status == TxStatus::kCommitted;
  vis[kInitVertex] = true;
  for (TxId id : v_set) {
    const std::size_t v = view.vertex_of(id);
    if (view.txs()[v].status != TxStatus::kCommitPending) {
      throw std::invalid_argument(
          "opacity graph: V must contain only commit-pending transactions");
    }
    vis[v] = true;
  }
  return vis;
}

/// Ranks from a caller-supplied ≪ (initializer forced first).
std::vector<std::size_t> ranks_from_order(const RegisterHistoryView& view,
                                          const std::vector<TxId>& order) {
  const std::size_t n = view.txs().size();
  std::vector<std::size_t> rank(n, std::numeric_limits<std::size_t>::max());
  rank[kInitVertex] = 0;
  std::size_t next = 1;
  for (TxId id : order) {
    if (id == kInitTx) continue;  // always first
    const std::size_t v = view.vertex_of(id);
    if (rank[v] != std::numeric_limits<std::size_t>::max()) {
      throw std::invalid_argument("opacity graph: duplicate transaction in ≪");
    }
    rank[v] = next++;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (rank[v] == std::numeric_limits<std::size_t>::max()) {
      throw std::invalid_argument("opacity graph: ≪ misses transaction T" +
                                  std::to_string(view.txs()[v].id));
    }
  }
  return rank;
}

}  // namespace

std::string edge_labels_to_string(std::uint8_t mask) {
  std::string out;
  auto add = [&](const char* s) {
    if (!out.empty()) out += ",";
    out += s;
  };
  if (mask & kLrt) add("rt");
  if (mask & kLrf) add("rf");
  if (mask & kLrw) add("rw");
  if (mask & kLww) add("ww");
  return out;
}

bool OpacityGraph::well_formed(std::string* why) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (vis[i]) continue;
    for (std::size_t k = 0; k < size(); ++k) {
      if (label[i][k] & kLrf) {
        if (why != nullptr) {
          *why = "Lloc vertex T" + std::to_string(vertex_tx[i]) +
                 " has an Lrf out-edge to T" + std::to_string(vertex_tx[k]);
        }
        return false;
      }
    }
  }
  return true;
}

bool OpacityGraph::acyclic(std::vector<std::size_t>* cycle) const {
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(size(), kWhite);
  std::vector<std::size_t> stack;

  // Iterative DFS with an explicit stack of (vertex, next-neighbour).
  for (std::size_t root = 0; root < size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
    color[root] = kGrey;
    stack.push_back(root);
    while (!frames.empty()) {
      auto& [v, next] = frames.back();
      bool advanced = false;
      for (; next < size(); ++next) {
        if (label[v][next] == 0) continue;
        const std::size_t w = next;
        if (color[w] == kGrey) {
          if (cycle != nullptr) {
            const auto it = std::find(stack.begin(), stack.end(), w);
            cycle->assign(it, stack.end());
          }
          return false;
        }
        if (color[w] == kWhite) {
          color[w] = kGrey;
          stack.push_back(w);
          ++next;
          frames.emplace_back(w, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[v] = kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return true;
}

std::string OpacityGraph::dot() const {
  std::ostringstream os;
  os << "digraph OPG {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < size(); ++i) {
    os << "  n" << i << " [label=\"T" << vertex_tx[i]
       << (vis[i] ? " (vis)" : " (loc)") << "\""
       << (vis[i] ? "" : ", style=dashed") << "];\n";
  }
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t k = 0; k < size(); ++k) {
      if (label[i][k] == 0) continue;
      os << "  n" << i << " -> n" << k << " [label=\""
         << edge_labels_to_string(label[i][k]) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

OpacityGraph build_opg(const History& h, const std::vector<TxId>& order,
                       const std::vector<TxId>& v) {
  const RegisterHistoryView view(h);
  if (!view.reads_resolvable()) {
    throw std::invalid_argument(
        "opacity graph: history is inconsistent (a read returns a value "
        "never written)");
  }
  return build_from_view(view, ranks_from_order(view, order),
                         visibility(view, v));
}

GraphCheckResult check_opacity_via_graph(const History& h, std::size_t max_txs) {
  GraphCheckResult result;

  std::string why;
  if (!h.consistent(&why)) {  // Theorem 2, condition (1)
    result.verdict = Verdict::kNo;
    result.reason = "not consistent: " + why;
    return result;
  }

  const RegisterHistoryView view(h);
  const auto& txs = view.txs();

  std::vector<TxId> others;     // vertices except the initializer
  std::vector<TxId> commit_pending;
  for (std::size_t i = 1; i < txs.size(); ++i) {
    others.push_back(txs[i].id);
    if (txs[i].status == TxStatus::kCommitPending)
      commit_pending.push_back(txs[i].id);
  }
  if (others.size() > max_txs) {
    result.verdict = Verdict::kUnknown;
    result.reason = "history too large for exhaustive (≪, V) search";
    return result;
  }

  std::sort(others.begin(), others.end());
  const std::uint64_t subsets = 1ULL << commit_pending.size();
  do {
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      std::vector<TxId> v_set;
      for (std::size_t b = 0; b < commit_pending.size(); ++b) {
        if ((mask >> b) & 1) v_set.push_back(commit_pending[b]);
      }
      const OpacityGraph g = build_from_view(
          view, ranks_from_order(view, others), visibility(view, v_set));
      ++result.graphs_examined;
      if (g.well_formed() && g.acyclic()) {
        result.verdict = Verdict::kYes;
        result.order = others;
        result.v = v_set;
        return result;
      }
    }
  } while (std::next_permutation(others.begin(), others.end()));

  result.verdict = Verdict::kNo;
  result.reason = "no (≪, V) yields a well-formed acyclic OPG (" +
                  std::to_string(result.graphs_examined) + " graphs examined)";
  return result;
}

bool verify_opacity_certificate(const History& h, const std::vector<TxId>& order,
                                const std::vector<TxId>& v, std::string* why) {
  std::string inner;
  if (!h.consistent(&inner)) {
    if (why != nullptr) *why = "not consistent: " + inner;
    return false;
  }

  const RegisterHistoryView view(h);
  if (!view.reads_resolvable()) {
    if (why != nullptr) *why = "a read returns a value never written";
    return false;
  }
  const auto& txs = view.txs();
  const std::vector<std::size_t> rank = ranks_from_order(view, order);
  const std::vector<bool> vis = visibility(view, v);
  const std::size_t n = txs.size();

  // (a) + (b): every reads-from edge leaves a visible vertex and follows ≪.
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& rd : txs[k].reads) {
      if (!vis[rd.writer]) {
        if (why != nullptr) {
          *why = "T" + std::to_string(txs[k].id) + " reads x" +
                 std::to_string(rd.obj) + " from non-visible T" +
                 std::to_string(txs[rd.writer].id);
        }
        return false;
      }
      if (rank[rd.writer] >= rank[k]) {
        if (why != nullptr) {
          *why = "reads-from edge T" + std::to_string(txs[rd.writer].id) +
                 " -> T" + std::to_string(txs[k].id) + " contradicts ≪";
        }
        return false;
      }
    }
  }

  // (c) real-time alignment: Ti ≺ Tk (on nonlocal(H)) must imply
  // rank(Ti) < rank(Tk). Sweep in rank order, tracking the minimum first
  // position among higher-ranked transactions.
  // For each completed Ti, every Tk whose first event follows Ti's last
  // event must have rank(k) > rank(i). Equivalently: among transactions
  // ranked strictly before Ti, none may have a first event after Ti's last
  // event. One prefix-max sweep in rank order decides this in O(n).
  {
    std::vector<std::size_t> by_rank(n);
    for (std::size_t i = 0; i < n; ++i) by_rank[rank[i]] = i;
    std::vector<std::size_t> prefix_max_first(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t vtx = by_rank[r];
      prefix_max_first[r + 1] =
          std::max(prefix_max_first[r],
                   vtx == kInitVertex ? 0 : txs[vtx].first_pos);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i == kInitVertex || !txs[i].completed) continue;
      if (prefix_max_first[rank[i]] > txs[i].last_pos) {
        if (why != nullptr) {
          *why = "real-time order violated around T" + std::to_string(txs[i].id);
        }
        return false;
      }
    }
  }

  // (d) version alignment: for each read of r from Tk by Tm, no visible
  // writer of r may be ranked strictly between Tk and Tm.
  {
    std::map<ObjId, std::vector<std::size_t>> writer_ranks;  // sorted
    for (std::size_t i = 0; i < n; ++i) {
      if (!vis[i]) continue;
      for (const auto& w : txs[i].writes) writer_ranks[w.first].push_back(rank[i]);
    }
    // The initializer writes every register.
    for (auto& [obj, ranks] : writer_ranks) {
      ranks.push_back(rank[kInitVertex]);
      std::sort(ranks.begin(), ranks.end());
    }
    for (std::size_t m = 0; m < n; ++m) {
      for (const auto& rd : txs[m].reads) {
        const auto it = writer_ranks.find(rd.obj);
        if (it == writer_ranks.end()) continue;
        const auto& ranks = it->second;
        auto lo = std::upper_bound(ranks.begin(), ranks.end(), rank[rd.writer]);
        if (lo != ranks.end() && *lo < rank[m]) {
          if (why != nullptr) {
            *why = "T" + std::to_string(txs[m].id) + " reads x" +
                   std::to_string(rd.obj) + " from T" +
                   std::to_string(txs[rd.writer].id) +
                   " but a visible writer is ranked in between";
          }
          return false;
        }
      }
    }
  }

  return true;
}

}  // namespace optm::core
