#include "core/one_copy.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace optm::core {

namespace {

/// Committed-transaction multiversion digest. Vertex 0 is the initializer.
struct MvView {
  struct Node {
    TxId id;
    std::vector<std::pair<ObjId, std::size_t>> reads;  // (register, writer vertex)
    std::set<ObjId> writes;
  };
  std::vector<Node> nodes;

  explicit MvView(const History& h) {
    const History nl = h.nonlocal();
    const auto& model = nl.model();

    nodes.push_back(Node{kInitTx, {}, {}});
    std::map<TxId, std::size_t> vertex_of{{kInitTx, 0}};
    for (TxId tx : nl.transactions()) {
      if (tx == kInitTx || !nl.is_committed(tx)) continue;
      vertex_of[tx] = nodes.size();
      nodes.push_back(Node{tx, {}, {}});
    }

    std::map<std::pair<ObjId, Value>, std::size_t> writer_of;
    for (ObjId r = 0; r < model.size(); ++r) {
      const auto* reg = dynamic_cast<const RegisterSpec*>(&model.spec(r));
      if (reg == nullptr) {
        throw std::invalid_argument("1-copy SR: register histories only");
      }
      writer_of[{r, reg->initial_value()}] = 0;
    }

    struct PendingRead {
      std::size_t v;
      ObjId obj;
      Value value;
    };
    std::vector<PendingRead> reads;
    for (const Event& e : nl.events()) {
      const auto it = vertex_of.find(e.tx);
      if (it == vertex_of.end()) continue;  // aborted/live: out of scope
      if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
        const auto [w, inserted] = writer_of.emplace(
            std::make_pair(e.obj, e.arg), it->second);
        if (!inserted && w->second != it->second) {
          throw std::invalid_argument("1-copy SR: writes must be value-unique");
        }
        nodes[it->second].writes.insert(e.obj);
      } else if (e.kind == EventKind::kResponse && e.op == OpCode::kRead) {
        reads.push_back({it->second, e.obj, e.ret});
      }
    }
    for (const auto& rd : reads) {
      const auto w = writer_of.find({rd.obj, rd.value});
      if (w == writer_of.end()) {
        // The read observed a value no committed transaction wrote (an
        // aborted or live writer) — there is no one-copy serial equivalent.
        nodes[rd.v].reads.emplace_back(rd.obj, kMissingWriter);
      } else {
        nodes[rd.v].reads.emplace_back(rd.obj, w->second);
      }
    }
  }

  static constexpr std::size_t kMissingWriter = static_cast<std::size_t>(-1);
};

/// MVSG acyclicity under the version order induced by `rank`.
bool mvsg_acyclic(const MvView& view, const std::vector<std::size_t>& rank,
                  std::string* why) {
  const std::size_t n = view.nodes.size();
  std::vector<std::vector<bool>> edge(n, std::vector<bool>(n, false));

  for (std::size_t m = 0; m < n; ++m) {
    for (const auto& [obj, k] : view.nodes[m].reads) {
      if (k == MvView::kMissingWriter) {
        if (why != nullptr) {
          *why = "T" + std::to_string(view.nodes[m].id) +
                 " reads a value not written by any committed transaction";
        }
        return false;
      }
      if (k != m) edge[k][m] = true;  // reads-from
      // For every other committed writer Ti of obj: version-order edge.
      for (std::size_t i = 0; i < n; ++i) {
        if (i == k || i == m || !view.nodes[i].writes.count(obj)) continue;
        if (rank[i] < rank[k]) {
          edge[i][k] = true;  // Ti's version is older than Tk's
        } else {
          edge[m][i] = true;  // the read must precede Ti's newer version
        }
      }
    }
  }

  // DFS cycle detection.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  auto dfs = [&](auto&& self, std::size_t v) -> bool {
    color[v] = kGrey;
    for (std::size_t w = 0; w < n; ++w) {
      if (!edge[v][w]) continue;
      if (color[w] == kGrey) return false;
      if (color[w] == kWhite && !self(self, w)) return false;
    }
    color[v] = kBlack;
    return true;
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (color[v] == kWhite && !dfs(dfs, v)) {
      if (why != nullptr) *why = "MVSG is cyclic under the given version order";
      return false;
    }
  }
  return true;
}

}  // namespace

OneCopyResult check_one_copy_serializability(const History& h,
                                             std::size_t max_txs) {
  OneCopyResult result;
  const MvView view(h);
  const std::size_t n = view.nodes.size();
  if (n - 1 > max_txs) {
    result.verdict = Verdict::kUnknown;
    result.reason = "too many committed transactions for exhaustive search";
    return result;
  }

  std::vector<std::size_t> perm(n - 1);
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i + 1;

  std::vector<std::size_t> rank(n, 0);
  do {
    for (std::size_t r = 0; r < perm.size(); ++r) rank[perm[r]] = r + 1;
    ++result.orders_examined;
    if (mvsg_acyclic(view, rank, nullptr)) {
      result.verdict = Verdict::kYes;
      std::vector<TxId> order;
      for (std::size_t v : perm) order.push_back(view.nodes[v].id);
      result.order = std::move(order);
      return result;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  result.verdict = Verdict::kNo;
  result.reason = "no version order yields an acyclic MVSG (" +
                  std::to_string(result.orders_examined) + " orders examined)";
  return result;
}

bool verify_one_copy_certificate(const History& h, const std::vector<TxId>& order,
                                 std::string* why) {
  const MvView view(h);
  const std::size_t n = view.nodes.size();
  std::vector<std::size_t> rank(n, static_cast<std::size_t>(-2));
  rank[0] = 0;
  std::size_t next = 1;
  for (TxId id : order) {
    if (id == kInitTx) continue;
    bool found = false;
    for (std::size_t v = 1; v < n; ++v) {
      if (view.nodes[v].id == id) {
        rank[v] = next++;
        found = true;
        break;
      }
    }
    if (!found) continue;  // order may cover non-committed transactions too
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (rank[v] == static_cast<std::size_t>(-2)) {
      if (why != nullptr) {
        *why = "version order misses committed transaction T" +
               std::to_string(view.nodes[v].id);
      }
      return false;
    }
  }
  return mvsg_acyclic(view, rank, why);
}

}  // namespace optm::core
