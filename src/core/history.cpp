#include "core/history.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace optm::core {

namespace {

/// Per-transaction well-formedness automaton (paper §4: H|Ti is a prefix of
/// O · F).
enum class TxFsm : std::uint8_t {
  kIdle,           // between operations
  kOpPending,      // operation invoked, no response yet
  kCommitPending,  // tryC issued
  kAbortPending,   // tryA issued
  kDone,           // C or A received
};

struct FsmState {
  TxFsm fsm = TxFsm::kIdle;
  Event pending{};           // the pending invocation (valid in kOpPending)
  EventKind last = EventKind::kAbort;  // last event seen (valid once any seen)
  bool any = false;
  bool saw_try_abort = false;
};

}  // namespace

std::vector<TxId> History::transactions() const {
  std::vector<TxId> order;
  std::unordered_set<TxId> seen;
  for (const Event& e : events_) {
    if (seen.insert(e.tx).second) order.push_back(e.tx);
  }
  return order;
}

bool History::contains(TxId tx) const {
  return std::any_of(events_.begin(), events_.end(),
                     [tx](const Event& e) { return e.tx == tx; });
}

History History::project_tx(TxId tx) const {
  History out(model_);
  for (const Event& e : events_)
    if (e.tx == tx) out.append(e);
  return out;
}

History History::project_obj(ObjId obj) const {
  History out(model_);
  for (const Event& e : events_) {
    if ((e.kind == EventKind::kInvoke || e.kind == EventKind::kResponse) &&
        e.obj == obj) {
      out.append(e);
    }
  }
  return out;
}

History History::committed_only() const {
  std::unordered_set<TxId> committed;
  for (TxId tx : transactions())
    if (is_committed(tx)) committed.insert(tx);
  History out(model_);
  for (const Event& e : events_)
    if (committed.count(e.tx)) out.append(e);
  return out;
}

bool History::equivalent(const History& other) const {
  std::unordered_map<TxId, std::vector<Event>> mine, theirs;
  for (const Event& e : events_) mine[e.tx].push_back(e);
  for (const Event& e : other.events_) theirs[e.tx].push_back(e);
  return mine == theirs;
}

History History::concat(const History& other) const {
  History out = from_batch(model_, events_);
  out.append_batch(other.events());
  return out;
}

bool History::well_formed(std::string* why) const {
  auto fail = [&](std::size_t pos, const std::string& msg) {
    if (why != nullptr) {
      *why = "event " + std::to_string(pos) + " (" + to_string(events_[pos]) +
             "): " + msg;
    }
    return false;
  };

  std::unordered_map<TxId, FsmState> st;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    FsmState& s = st[e.tx];
    if (s.fsm == TxFsm::kDone) return fail(i, "event after commit/abort");

    switch (e.kind) {
      case EventKind::kInvoke: {
        if (s.fsm != TxFsm::kIdle) return fail(i, "invocation while not idle");
        if (!model_.contains(e.obj)) return fail(i, "unknown object");
        if (!model_.spec(e.obj).supports(e.op))
          return fail(i, std::string("operation '") + to_string(e.op) +
                             "' not supported by " +
                             std::string(model_.spec(e.obj).name()));
        s.fsm = TxFsm::kOpPending;
        s.pending = e;
        break;
      }
      case EventKind::kResponse: {
        if (s.fsm != TxFsm::kOpPending)
          return fail(i, "response without pending invocation");
        if (!s.pending.matches(e)) return fail(i, "response does not match invocation");
        s.fsm = TxFsm::kIdle;
        break;
      }
      case EventKind::kTryCommit: {
        if (s.fsm != TxFsm::kIdle) return fail(i, "tryC while not idle");
        s.fsm = TxFsm::kCommitPending;
        break;
      }
      case EventKind::kTryAbort: {
        if (s.fsm != TxFsm::kIdle) return fail(i, "tryA while not idle");
        s.fsm = TxFsm::kAbortPending;
        s.saw_try_abort = true;
        break;
      }
      case EventKind::kCommit: {
        if (s.fsm != TxFsm::kCommitPending) return fail(i, "C without pending tryC");
        s.fsm = TxFsm::kDone;
        break;
      }
      case EventKind::kAbort: {
        if (s.fsm != TxFsm::kOpPending && s.fsm != TxFsm::kCommitPending &&
            s.fsm != TxFsm::kAbortPending) {
          return fail(i, "A must follow a pending invocation, tryC, or tryA");
        }
        s.fsm = TxFsm::kDone;
        break;
      }
    }
    s.last = e.kind;
    s.any = true;
  }
  return true;
}

std::optional<Event> History::pending_invocation(TxId tx) const {
  std::optional<Event> pending;
  for (const Event& e : events_) {
    if (e.tx != tx) continue;
    if (e.is_invocation()) {
      pending = e;
    } else {
      pending.reset();
    }
  }
  return pending;
}

TxStatus History::status(TxId tx) const {
  bool saw_tryc = false;
  EventKind last = EventKind::kAbort;
  bool any = false;
  for (const Event& e : events_) {
    if (e.tx != tx) continue;
    any = true;
    last = e.kind;
    if (e.kind == EventKind::kTryCommit) saw_tryc = true;
  }
  if (!any) return TxStatus::kLive;  // not in H; callers should check contains()
  if (last == EventKind::kCommit) return TxStatus::kCommitted;
  if (last == EventKind::kAbort) return TxStatus::kAborted;
  return saw_tryc ? TxStatus::kCommitPending : TxStatus::kLive;
}

bool History::is_forcefully_aborted(TxId tx) const {
  if (!is_aborted(tx)) return false;
  for (const Event& e : events_)
    if (e.tx == tx && e.kind == EventKind::kTryAbort) return false;
  return true;
}

bool History::precedes(TxId a, TxId b) const {
  if (a == b || !is_completed(a)) return false;
  std::size_t last_a = 0;
  bool found_a = false;
  std::size_t first_b = events_.size();
  bool found_b = false;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].tx == a) {
      last_a = i;
      found_a = true;
    }
    if (events_[i].tx == b && !found_b) {
      first_b = i;
      found_b = true;
    }
  }
  return found_a && found_b && last_a < first_b;
}

bool History::preserves_real_time_order_of(const History& other) const {
  const auto txs = other.transactions();
  for (TxId a : txs) {
    for (TxId b : txs) {
      if (a != b && other.precedes(a, b) && !precedes(a, b)) return false;
    }
  }
  return true;
}

bool History::is_sequential(std::string* why) const {
  // Sequential <=> transaction event ranges are pairwise disjoint intervals,
  // which for a scan means the active transaction can never be re-entered.
  std::unordered_set<TxId> closed;
  TxId current = kNoTx;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TxId tx = events_[i].tx;
    if (tx == current) continue;
    if (closed.count(tx)) {
      if (why != nullptr) {
        *why = "transaction T" + std::to_string(tx) +
               " re-enters at event " + std::to_string(i);
      }
      return false;
    }
    if (current != kNoTx) closed.insert(current);
    current = tx;
  }
  return true;
}

bool History::is_complete() const {
  for (TxId tx : transactions())
    if (is_live(tx)) return false;
  return true;
}

std::vector<History> History::completions(std::size_t max_results) const {
  std::vector<TxId> commit_pending;
  std::vector<TxId> to_abort;  // live, not commit-pending
  for (TxId tx : transactions()) {
    switch (status(tx)) {
      case TxStatus::kCommitPending: commit_pending.push_back(tx); break;
      case TxStatus::kLive: to_abort.push_back(tx); break;
      default: break;
    }
  }
  if (commit_pending.size() < 64 &&
      (1ULL << commit_pending.size()) > max_results) {
    throw std::length_error("Complete(H): too many commit-pending transactions");
  }

  std::vector<History> out;
  const std::uint64_t combos = 1ULL << commit_pending.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    History h = *this;
    for (TxId tx : to_abort) {
      if (pending_invocation(tx).has_value()) {
        h.append(ev::abort(tx));  // F = <inv, A>
      } else {
        h.append(ev::try_commit(tx));  // Complete() may insert only tryC/C/A
        h.append(ev::abort(tx));
      }
    }
    for (std::size_t i = 0; i < commit_pending.size(); ++i) {
      h.append((mask >> i) & 1 ? ev::commit(commit_pending[i])
                               : ev::abort(commit_pending[i]));
    }
    out.push_back(std::move(h));
  }
  return out;
}

History History::nonlocal() const {
  // Identify local register operations per §5.4. Operations on non-register
  // objects are never considered local.
  auto is_register = [this](ObjId obj) {
    return model_.contains(obj) && model_.spec(obj).name() == "register";
  };

  // For each (tx, obj): positions of that transaction's writes, in order.
  std::map<std::pair<TxId, ObjId>, std::vector<std::size_t>> writes;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite && is_register(e.obj))
      writes[{e.tx, e.obj}].push_back(i);
  }

  auto local_invocation = [&](std::size_t i) {
    const Event& e = events_[i];
    if (e.kind != EventKind::kInvoke || !is_register(e.obj)) return false;
    const auto it = writes.find({e.tx, e.obj});
    if (it == writes.end()) return false;
    if (e.op == OpCode::kRead) {
      // Local iff some write by the same tx to the same register precedes it.
      return it->second.front() < i;
    }
    if (e.op == OpCode::kWrite) {
      // Local iff a later write by the same tx to the same register exists.
      return it->second.back() > i;
    }
    return false;
  };

  History out(model_);
  std::unordered_set<TxId> skip_response;  // txs whose next response is local
  // Pair each response with its invocation: track pending invocation per tx.
  std::unordered_map<TxId, bool> pending_local;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.kind == EventKind::kInvoke) {
      const bool local = local_invocation(i);
      pending_local[e.tx] = local;
      if (!local) out.append(e);
    } else if (e.kind == EventKind::kResponse) {
      const auto it = pending_local.find(e.tx);
      const bool local = it != pending_local.end() && it->second;
      if (!local) out.append(e);
      pending_local.erase(e.tx);
    } else {
      out.append(e);
    }
  }
  return out;
}

bool History::locally_consistent(std::string* why) const {
  // Track, per (tx, register), the argument of the transaction's latest
  // completed write; a local read must return exactly that value.
  std::map<std::pair<TxId, ObjId>, Value> own_write;
  std::unordered_map<TxId, Event> pending;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.kind == EventKind::kInvoke) {
      pending[e.tx] = e;
    } else if (e.kind == EventKind::kResponse) {
      const Event inv = pending[e.tx];
      pending.erase(e.tx);
      if (!model_.contains(inv.obj) || model_.spec(inv.obj).name() != "register")
        continue;
      if (inv.op == OpCode::kWrite) {
        own_write[{e.tx, inv.obj}] = inv.arg;
      } else if (inv.op == OpCode::kRead) {
        const auto it = own_write.find({e.tx, inv.obj});
        if (it != own_write.end() && e.ret != it->second) {
          if (why != nullptr) {
            *why = "local read at event " + std::to_string(i) + " returned " +
                   std::to_string(e.ret) + ", expected own write " +
                   std::to_string(it->second);
          }
          return false;
        }
      }
    }
  }
  return true;
}

bool History::consistent(std::string* why) const {
  if (!locally_consistent(why)) return false;

  const History nl = nonlocal();
  // Values written (per register) anywhere in nonlocal(H); the initial value
  // plays the role of the implicit initializing transaction T0.
  std::map<ObjId, std::set<Value>> written;
  for (const Event& e : nl.events()) {
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite &&
        model_.contains(e.obj) && model_.spec(e.obj).name() == "register") {
      written[e.obj].insert(e.arg);
    }
  }
  for (const Event& e : nl.events()) {
    if (e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
        model_.contains(e.obj) && model_.spec(e.obj).name() == "register") {
      const auto* reg = dynamic_cast<const RegisterSpec*>(&model_.spec(e.obj));
      const Value init = reg != nullptr ? reg->initial_value() : 0;
      if (e.ret == init) continue;
      const auto it = written.find(e.obj);
      if (it == written.end() || it->second.count(e.ret) == 0) {
        if (why != nullptr) {
          *why = "non-local read of x" + std::to_string(e.obj) + " by T" +
                 std::to_string(e.tx) + " returns value " +
                 std::to_string(e.ret) + " never written in nonlocal(H)";
        }
        return false;
      }
    }
  }
  return true;
}

std::string History::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    os << (i < 10 ? "  " : i < 100 ? " " : "") << i << ": "
       << to_string(events_[i]) << '\n';
  }
  return os.str();
}

std::string History::timeline() const {
  const auto txs = transactions();
  std::unordered_map<TxId, std::size_t> lane;
  for (std::size_t i = 0; i < txs.size(); ++i) lane[txs[i]] = i;

  // One column per event; each cell shows a compact event label.
  std::vector<std::string> labels(events_.size());
  std::size_t col_width = 1;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    std::ostringstream os;
    switch (e.kind) {
      case EventKind::kInvoke:
        os << to_string(e.op) << "(x" << e.obj;
        if (!model_.spec(e.obj).is_readonly(e.op)) os << "," << e.arg;
        os << ")";
        break;
      case EventKind::kResponse:
        if (model_.contains(e.obj) && model_.spec(e.obj).is_readonly(e.op)) {
          os << "->" << e.ret;
        } else {
          os << "->ok";
        }
        break;
      default:
        os << to_string(e.kind);
        break;
    }
    labels[i] = os.str();
    col_width = std::max(col_width, labels[i].size() + 1);
  }

  std::ostringstream out;
  for (TxId tx : txs) {
    out << 'T' << tx << (tx < 10 ? ":  " : ": ");
    for (std::size_t i = 0; i < events_.size(); ++i) {
      std::string cell = events_[i].tx == tx ? labels[i] : "";
      cell.resize(col_width, events_[i].tx == tx ? ' ' : '.');
      out << cell;
    }
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// HistoryIndex
// ---------------------------------------------------------------------------

HistoryIndex::HistoryIndex(const History& h) : h_(&h) {
  std::string why;
  if (!h.well_formed(&why)) {
    throw std::invalid_argument("HistoryIndex: history not well-formed: " + why);
  }

  std::unordered_map<TxId, std::size_t> pos;
  const auto& events = h.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    auto it = pos.find(e.tx);
    if (it == pos.end()) {
      it = pos.emplace(e.tx, txs_.size()).first;
      txs_.push_back(TxInfo{});
      txs_.back().id = e.tx;
      txs_.back().first_pos = i;
    }
    TxInfo& info = txs_[it->second];
    info.last_pos = i;
    switch (e.kind) {
      case EventKind::kInvoke: {
        OpExec op;
        op.obj = e.obj;
        op.op = e.op;
        op.arg = e.arg;
        op.inv_pos = i;
        info.ops.push_back(op);
        if (!h.model().spec(e.obj).is_readonly(e.op)) info.read_only = false;
        break;
      }
      case EventKind::kResponse: {
        OpExec& op = info.ops.back();
        op.ret = e.ret;
        op.has_response = true;
        op.ret_pos = i;
        break;
      }
      default:
        break;
    }
  }
  for (TxInfo& info : txs_) {
    info.status = h.status(info.id);
    info.forcefully_aborted = h.is_forcefully_aborted(info.id);
  }
}

std::size_t HistoryIndex::pos_of(TxId tx) const {
  for (std::size_t i = 0; i < txs_.size(); ++i)
    if (txs_[i].id == tx) return i;
  throw std::out_of_range("HistoryIndex::pos_of: unknown transaction");
}

}  // namespace optm::core
