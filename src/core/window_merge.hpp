// The §5.4 windowed merge, shared by the sharded offline driver
// (parallel_verify.cpp) and the parallel streaming certifier
// (parallel_stream.cpp).
//
// Both engines split the certificate the same way: a sequential pass 0
// assigns serialization ranks, per-register-shard passes resolve each
// non-local read to its version's (open, close) rank interval and date the
// close with the POSITION of the closing C event, and a sequential merge
// replays every transaction's snapshot-window intersection over its reads
// from all shards in position order — applying a close only once its
// closing C event precedes the current check position, which is exactly
// the knowledge the streaming OnlineCertificateMonitor had at that moment.
// Keeping the sweep in one place is what makes the two drivers
// byte-for-byte equivalent on verdicts and flag positions BY CONSTRUCTION
// rather than by parallel maintenance: the offline driver calls
// sweep_tx_windows once per transaction over the whole history, the
// streaming certifier calls the identical function once per transaction at
// the merge barrier where that transaction completed (see
// parallel_stream.hpp for why the barrier-time version-chain state is
// final as far as that transaction's checks are concerned).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_order.hpp"

namespace optm::core::detail {

inline constexpr std::size_t kMergeNone = static_cast<std::size_t>(-1);
inline constexpr std::size_t kMergeOpenRank = static_cast<std::size_t>(-1);
inline constexpr std::size_t kMergeNoShard = static_cast<std::size_t>(-1);

[[nodiscard]] inline std::string tx_tag(TxId tx) {
  return "T" + std::to_string(tx);
}

/// §4 life-cycle, mirroring OnlineCertificateMonitor's state machine.
enum class TxPhase : std::uint8_t {
  kIdle,
  kOpPending,
  kCommitPending,
  kAbortPending,
  kDone,
};

/// The full per-transaction pass-0 state, shared by the offline driver's
/// Pass0 and the streaming certifier's pass-0 worker. Default construction
/// means "never seen" (TxSlab absence).
struct MergeTxState {
  TxPhase phase{TxPhase::kIdle};
  Event pending{};
  bool born{false};
  bool committed{false};
  bool has_write{false};
  std::size_t birth_rank{0};
  std::size_t commit_pos{kMergeNone};
  std::size_t commit_rank{0};   // meaningful for committed update txs
  std::size_t ro_point{kMergeNone};  // pinned read-only serialization point
  std::uint64_t max_read_stamp{0};  // kStampedRead: largest read snapshot
};

/// The slice of per-transaction pass-0 state the merge consumes.
struct MergeTxMeta {
  bool committed{false};
  bool has_write{false};
  std::size_t birth_rank{0};
  std::size_t commit_pos{kMergeNone};
  std::size_t commit_rank{0};   // meaningful for committed update txs
  std::size_t ro_point{kMergeNone};  // pinned read-only serialization point
};

/// One certificate flag, as both drivers stage it internally.
struct MergeFlag {
  std::size_t pos;
  std::string reason;
  CertFlagKind kind;
  TxId tx;
  std::size_t shard;
};

[[nodiscard]] inline MergeTxMeta to_merge_meta(const MergeTxState& tx) {
  MergeTxMeta m;
  m.committed = tx.committed;
  m.has_write = tx.has_write;
  m.birth_rank = tx.birth_rank;
  m.commit_pos = tx.commit_pos;
  m.commit_rank = tx.commit_rank;
  m.ro_point = tx.ro_point;
  return m;
}

/// One pass-0 step: the §4 lifecycle transition for event `e` at position
/// `i`, plus birth floors and the VersionOrderResolver rank assignment.
/// This mirrors OnlineCertificateMonitor::feed condition-for-condition,
/// including flag positions — the shared contract is verdict and position
/// equivalence with the streaming monitor under kCommitOrder,
/// kSnapshotRank and kStampedRead, and the BatchEquivalence +
/// MvSnapshotFuzz + ParallelStreamFuzz suites enforce it; change the
/// monitor and this function together. Both pass-0 drivers (the offline
/// Pass0 scan and the streaming certifier's pass-0 worker) call it for
/// every event in record order. Returns true when the event COMPLETED the
/// transaction (the C or A transition to done) — the streaming certifier
/// uses that to close the transaction's merge window.
inline bool pass0_step(MergeTxState& tx, const Event& e, std::size_t i,
                       const ObjectModel& model, VersionOrderPolicy policy,
                       VersionOrderResolver& resolver,
                       std::vector<MergeFlag>& flags) {
  if (!tx.born) {
    tx.born = true;
    tx.birth_rank = resolver.floor();
  }
  bool completed = false;
  switch (e.kind) {
    case EventKind::kInvoke:
      if (tx.phase != TxPhase::kIdle) {
        flags.push_back({i, tx_tag(e.tx) +
                                " invoked an operation while not idle "
                                "(well-formedness)",
                         CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else if (!model.contains(e.obj)) {
        flags.push_back({i, tx_tag(e.tx) +
                                " invoked an operation on unknown object x" +
                                std::to_string(e.obj),
                         CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kOpPending;
        tx.pending = e;
      }
      break;
    case EventKind::kResponse:
      if (tx.phase != TxPhase::kOpPending || !tx.pending.matches(e)) {
        flags.push_back({i, tx_tag(e.tx) +
                                " received a response with no matching "
                                "invocation (well-formedness)",
                         CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kIdle;
        if (e.op == OpCode::kWrite) tx.has_write = true;
        if (policy == VersionOrderPolicy::kStampedRead &&
            e.op == OpCode::kRead && e.stamp > tx.max_read_stamp) {
          tx.max_read_stamp = e.stamp;
        }
      }
      break;
    case EventKind::kTryCommit:
      if (tx.phase != TxPhase::kIdle) {
        flags.push_back(
            {i, tx_tag(e.tx) + " issued tryC while not idle (well-formedness)",
             CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kCommitPending;
      }
      break;
    case EventKind::kCommit:
      if (tx.phase != TxPhase::kCommitPending) {
        flags.push_back(
            {i, tx_tag(e.tx) + " committed without tryC (well-formedness)",
             CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kDone;
        tx.committed = true;
        tx.commit_pos = i;
        completed = true;
        if (policy == VersionOrderPolicy::kStampedRead && e.stamp != 0 &&
            e.stamp < tx.max_read_stamp) {
          flags.push_back({i, tx_tag(e.tx) + " committed at stamp " +
                                  std::to_string(e.stamp) +
                                  " below its latest read snapshot " +
                                  std::to_string(tx.max_read_stamp),
                           CertFlagKind::kReadStampMismatch, e.tx,
                           kMergeNoShard});
        }
        if (tx.has_write) {
          tx.commit_rank = resolver.update_commit_rank(e);
        } else if (const auto point = resolver.read_only_point(e)) {
          tx.ro_point = *point;
        }
      }
      break;
    case EventKind::kTryAbort:
      if (tx.phase != TxPhase::kIdle) {
        flags.push_back(
            {i, tx_tag(e.tx) + " issued tryA while not idle (well-formedness)",
             CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kAbortPending;
      }
      break;
    case EventKind::kAbort:
      if (tx.phase == TxPhase::kDone) {
        flags.push_back(
            {i, tx_tag(e.tx) + " aborted after completing (well-formedness)",
             CertFlagKind::kNotWellFormed, e.tx, kMergeNoShard});
      } else {
        tx.phase = TxPhase::kDone;
        completed = true;
      }
      break;
  }
  return completed;
}

/// One non-local read, with its version's validity interval resolved by a
/// shard pass; `close_pos` dates the close so the merge sweep can apply it
/// with the streaming monitor's timing.
struct MergeReadRec {
  TxId tx;
  std::size_t pos;
  ObjId obj;
  std::size_t shard;
  std::size_t open_rank;
  std::size_t close_rank;  // kMergeOpenRank if never overwritten
  std::size_t close_pos;   // kMergeNone if never overwritten
};

/// (close_pos, (close_rank, shard)) — min-heap element of the sweep.
using MergeClose = std::pair<std::size_t, std::pair<std::size_t, std::size_t>>;

/// Replay one transaction's snapshot window over its reads (all shards,
/// sorted by position; `count` >= 1), applying version closes only once
/// their closing C event precedes the current position, then run the
/// serialization-point check at the commit position. `closes` is caller
/// scratch (reused across transactions so the sweep allocates nothing once
/// warm). Flags are appended with monitor-identical positions.
inline void sweep_tx_windows(TxId id, const MergeTxMeta& meta,
                             const MergeReadRec* reads, std::size_t count,
                             bool snapshot_rank,
                             std::vector<MergeClose>& closes,
                             std::vector<MergeFlag>& flags) {
  std::size_t lo = 0;
  std::size_t hi = kMergeOpenRank;
  std::size_t hi_shard = kMergeNoShard;
  closes.clear();
  const auto apply_closes_before = [&](std::size_t pos) {
    while (!closes.empty() && closes.front().first < pos) {
      if (closes.front().second.first < hi) {
        hi = closes.front().second.first;
        hi_shard = closes.front().second.second;
      }
      std::pop_heap(closes.begin(), closes.end(), std::greater<MergeClose>{});
      closes.pop_back();
    }
  };

  bool flagged = false;
  for (std::size_t i = 0; i < count && !flagged; ++i) {
    const MergeReadRec& r = reads[i];
    apply_closes_before(r.pos);
    if (r.open_rank > lo) lo = r.open_rank;
    if (r.close_pos != kMergeNone) {
      if (r.close_pos < r.pos) {
        if (r.close_rank < hi) {
          hi = r.close_rank;
          hi_shard = r.shard;
        }
      } else {
        closes.push_back({r.close_pos, {r.close_rank, r.shard}});
        std::push_heap(closes.begin(), closes.end(),
                       std::greater<MergeClose>{});
      }
    }
    if (lo >= hi) {
      flags.push_back({r.pos, tx_tag(id) +
                                  "'s reads form no consistent snapshot "
                                  "(window empty after reading x" +
                                  std::to_string(r.obj) + ")",
                       CertFlagKind::kSnapshotEmpty, id, r.shard});
      flagged = true;
    } else if (hi <= meta.birth_rank) {
      flags.push_back({r.pos, tx_tag(id) + " read the outdated x" +
                                  std::to_string(r.obj) +
                                  ", overwritten before the transaction's "
                                  "first event (real-time order)",
                       CertFlagKind::kStaleRead, id, r.shard});
      flagged = true;
    }
  }
  if (!flagged && meta.committed && meta.commit_pos != kMergeNone) {
    apply_closes_before(meta.commit_pos);
    if (meta.has_write) {
      if (snapshot_rank) {
        const std::size_t rank = meta.commit_rank;
        if (rank < lo || rank >= hi || rank <= meta.birth_rank) {
          flags.push_back({meta.commit_pos,
                           tx_tag(id) + " committed updates at rank " +
                               std::to_string(rank) +
                               " outside its snapshot window (version order)",
                           CertFlagKind::kNotCurrentAtCommit, id,
                           hi_shard != kMergeNoShard ? hi_shard
                                                     : reads[0].shard});
        }
      } else if (hi != kMergeOpenRank) {
        flags.push_back({meta.commit_pos,
                         tx_tag(id) +
                             " committed updates although a version it read "
                             "was overwritten (reads not current at commit)",
                         CertFlagKind::kNotCurrentAtCommit, id, hi_shard});
      }
    } else if (meta.ro_point != kMergeNone) {
      const std::size_t point = meta.ro_point;
      if (point < lo || point >= hi || point <= meta.birth_rank) {
        flags.push_back({meta.commit_pos,
                         tx_tag(id) +
                             " (read-only) committed at snapshot point " +
                             std::to_string(point) +
                             " outside its snapshot window",
                         CertFlagKind::kNoReadOnlyPoint, id,
                         hi_shard != kMergeNoShard ? hi_shard
                                                   : reads[0].shard});
      }
    } else if (lo >= hi || hi <= meta.birth_rank) {
      flags.push_back({meta.commit_pos,
                       tx_tag(id) +
                           " (read-only) committed with no serialization "
                           "point compatible with real-time order",
                       CertFlagKind::kNoReadOnlyPoint, id,
                       hi_shard != kMergeNoShard ? hi_shard : reads[0].shard});
    }
  }
}

/// The birth-floor check for committed transactions with NO non-local
/// reads (they never enter sweep_tx_windows, which iterates read groups);
/// only meaningful under the stamp-space policies — the monitor fires it
/// at the C event.
inline void check_readless_tx(TxId id, const MergeTxMeta& meta,
                              std::vector<MergeFlag>& flags) {
  if (!meta.committed) return;
  if (meta.has_write) {
    if (meta.commit_rank <= meta.birth_rank) {
      flags.push_back({meta.commit_pos,
                       tx_tag(id) + " committed updates at rank " +
                           std::to_string(meta.commit_rank) +
                           " outside its snapshot window (version order)",
                       CertFlagKind::kNotCurrentAtCommit, id, kMergeNoShard});
    }
  } else if (meta.ro_point != kMergeNone &&
             meta.ro_point <= meta.birth_rank) {
    flags.push_back({meta.commit_pos,
                     tx_tag(id) + " (read-only) committed at snapshot point " +
                         std::to_string(meta.ro_point) +
                         " outside its snapshot window",
                     CertFlagKind::kNoReadOnlyPoint, id, kMergeNoShard});
  }
}

}  // namespace optm::core::detail
