// Serializability and global atomicity (paper §3.2, §3.4).
//
// In the paper's survey:
//  * Serializability [Papadimitriou'79] constrains only committed
//    transactions: H is serializable if the committed transactions issue
//    the same operations and receive the same responses in some legal
//    sequential history.
//  * Strict serializability additionally preserves the real-time order
//    among committed transactions.
//  * Global atomicity [Weihl'89] is the same committed-only requirement
//    generalized to arbitrary objects with sequential specifications — in
//    this executable framework (values recorded, legality by replay) it
//    coincides with our serializability checker, and we expose it under
//    both names for fidelity to the paper's terminology.
//
// Neither says anything about live or aborted transactions — exactly the
// gap opacity closes (Figure 1's H1 passes everything here and fails
// opacity).
//
// The view-style checkers run the shared exponential search engine from
// opacity.hpp. For register histories with totally ordered conflicting
// operations we also provide classical *conflict* serializability, which is
// polynomial and strictly stronger (conflict-SR ⊆ view-SR).
#pragma once

#include <string>

#include "core/history.hpp"
#include "core/opacity.hpp"

namespace optm::core {

struct SerializabilityResult {
  Verdict verdict{Verdict::kUnknown};
  std::optional<SerializationWitness> witness;
  std::string reason;
  std::uint64_t states_explored{0};

  [[nodiscard]] bool holds() const noexcept { return verdict == Verdict::kYes; }
};

/// Committed transactions appear in some legal sequential order.
[[nodiscard]] SerializabilityResult check_serializability(
    const History& h, std::uint64_t max_states = 4'000'000);

/// ... an order that additionally extends ≺_H restricted to committed txs.
[[nodiscard]] SerializabilityResult check_strict_serializability(
    const History& h, std::uint64_t max_states = 4'000'000);

/// Weihl's global atomicity: identical to check_serializability in this
/// framework (arbitrary objects are already first-class); see file comment.
[[nodiscard]] inline SerializabilityResult check_global_atomicity(
    const History& h, std::uint64_t max_states = 4'000'000) {
  return check_serializability(h, max_states);
}

/// Global atomicity extended with real-time order — the base layer of
/// opacity's requirement (1) before live/aborted transactions are added.
[[nodiscard]] inline SerializabilityResult check_strict_global_atomicity(
    const History& h, std::uint64_t max_states = 4'000'000) {
  return check_strict_serializability(h, max_states);
}

// ---------------------------------------------------------------------------
// Conflict serializability (registers, polynomial)
// ---------------------------------------------------------------------------

struct ConflictResult {
  Verdict verdict{Verdict::kUnknown};
  std::string reason;
  /// Topological order of committed transactions (iff kYes).
  std::optional<std::vector<TxId>> order;
};

/// Classical conflict serializability of the committed register operations:
/// build the conflict graph (read-write, write-read, write-write pairs
/// ordered by completion) and test acyclicity. Precondition: conflicting
/// operations of distinct transactions must not overlap in H (each op's
/// interval [inv, ret]); returns kUnknown with a reason otherwise.
[[nodiscard]] ConflictResult check_conflict_serializability(const History& h);

/// Conflict serializability + real-time order edges (strictness).
[[nodiscard]] ConflictResult check_strict_conflict_serializability(
    const History& h);

}  // namespace optm::core
