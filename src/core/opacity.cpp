#include "core/opacity.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace optm::core {

namespace {

/// DFS machinery for search_legal_serialization.
class Searcher {
 public:
  explicit Searcher(const SearchSpec& spec)
      : spec_(spec), index_(*spec.index), n_(spec.participants.size()) {
    if (n_ > 64) {
      throw std::invalid_argument(
          "search_legal_serialization: more than 64 transactions; use the "
          "certificate checker (opacity_graph.hpp) for long histories");
    }
    // pred_[i] = bitmask of participants that must be placed before i
    // (real-time predecessors within the participant set).
    pred_.assign(n_, 0);
    if (spec.require_real_time) {
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
          if (i != j && index_.precedes(spec.participants[j], spec.participants[i])) {
            pred_[i] |= 1ULL << j;
          }
        }
      }
    }
  }

  SearchOutcome run() {
    SystemState state(index_.history().model());
    order_.reserve(n_);
    roles_.reserve(n_);
    const bool found = dfs(0, state);
    SearchOutcome out;
    out.states_explored = states_;
    if (found) {
      out.verdict = Verdict::kYes;
      SerializationWitness w;
      for (std::size_t k = 0; k < n_; ++k) {
        w.order.push_back(index_.txs()[spec_.participants[order_[k]]].id);
        w.roles.push_back(roles_[k]);
      }
      out.witness = std::move(w);
    } else {
      out.verdict = budget_exceeded_ ? Verdict::kUnknown : Verdict::kNo;
    }
    return out;
  }

 private:
  /// Replay participant `p`'s operations on `state`. Returns false on the
  /// first return-value mismatch. Pending trailing invocations are skipped
  /// (nothing to validate; allowed by prefix-closed specifications).
  [[nodiscard]] static bool replay(const TxInfo& tx, SystemState& state) {
    for (const OpExec& op : tx.ops) {
      if (!op.has_response) continue;
      if (state.apply(op.obj, op.op, op.arg) != op.ret) return false;
    }
    return true;
  }

  bool dfs(std::uint64_t placed, SystemState& state) {
    if (order_.size() == n_) return true;
    if (states_ >= spec_.max_states) {
      budget_exceeded_ = true;
      return false;
    }

    // Memoize failed configurations. The residual problem depends only on
    // the set of placed transactions and the committed object states.
    std::string key = state.encode();
    key.append(reinterpret_cast<const char*>(&placed), sizeof(placed));
    if (failed_.count(key)) return false;

    for (std::size_t i = 0; i < n_; ++i) {
      if ((placed >> i) & 1) continue;
      if ((pred_[i] & ~placed) != 0) continue;  // a ≺_H predecessor missing
      const TxInfo& tx = index_.txs()[spec_.participants[i]];

      // Try committed first: committed placements constrain the future state
      // and tend to fail fast; aborted placements are side-effect-free.
      const auto role = spec_.roles[i];
      const bool try_committed = !role.has_value() || *role == Role::kCommitted;
      const bool try_aborted = !role.has_value() || *role == Role::kAborted;

      if (try_committed) {
        ++states_;
        SystemState next = state;  // deep copy
        if (replay(tx, next)) {
          order_.push_back(i);
          roles_.push_back(Role::kCommitted);
          if (dfs(placed | (1ULL << i), next)) return true;
          order_.pop_back();
          roles_.pop_back();
        }
      }
      if (try_aborted) {
        ++states_;
        SystemState scratch = state;  // T sees committed state + own effects
        if (replay(tx, scratch)) {
          order_.push_back(i);
          roles_.push_back(Role::kAborted);
          if (dfs(placed | (1ULL << i), state)) return true;  // state unchanged
          order_.pop_back();
          roles_.pop_back();
        }
      }
    }

    failed_.insert(std::move(key));
    return false;
  }

  const SearchSpec& spec_;
  const HistoryIndex& index_;
  std::size_t n_;
  std::vector<std::uint64_t> pred_;
  std::vector<std::size_t> order_;  // participant positions, in placement order
  std::vector<Role> roles_;
  std::unordered_set<std::string> failed_;
  std::uint64_t states_ = 0;
  bool budget_exceeded_ = false;
};

}  // namespace

SearchOutcome search_legal_serialization(const SearchSpec& spec) {
  if (spec.index == nullptr) {
    throw std::invalid_argument("search_legal_serialization: null index");
  }
  return Searcher(spec).run();
}

OpacityResult check_opacity(const History& h, const OpacityOptions& options) {
  const HistoryIndex index(h);

  SearchSpec spec;
  spec.index = &index;
  spec.require_real_time = options.require_real_time;
  spec.max_states = options.max_states;
  for (std::size_t i = 0; i < index.num_txs(); ++i) {
    spec.participants.push_back(i);
    switch (index.txs()[i].status) {
      case TxStatus::kCommitted:
        spec.roles.emplace_back(Role::kCommitted);
        break;
      case TxStatus::kAborted:
      case TxStatus::kLive:  // live, not commit-pending: must appear aborted
        spec.roles.emplace_back(Role::kAborted);
        break;
      case TxStatus::kCommitPending:  // Complete(H) duality: searcher's choice
        spec.roles.emplace_back(std::nullopt);
        break;
    }
  }

  SearchOutcome outcome = search_legal_serialization(spec);
  OpacityResult result;
  result.verdict = outcome.verdict;
  result.witness = std::move(outcome.witness);
  result.states_explored = outcome.states_explored;
  if (result.verdict == Verdict::kNo) {
    result.reason = "no legal real-time-preserving serialization exists (" +
                    std::to_string(result.states_explored) + " states explored)";
  } else if (result.verdict == Verdict::kUnknown) {
    result.reason = "search budget exhausted after " +
                    std::to_string(result.states_explored) + " states";
  }
  return result;
}

std::optional<std::size_t> first_non_opaque_prefix(const History& h,
                                                   const OpacityOptions& options) {
  // Only prefixes that are themselves well-formed histories are considered
  // (a prefix may not split an invocation from its response — it cannot,
  // since a prefix only *truncates*; truncation always leaves a well-formed
  // history, so every prefix qualifies).
  for (std::size_t len = 0; len <= h.size(); ++len) {
    History prefix(h.model());
    for (std::size_t i = 0; i < len; ++i) prefix.append(h[i]);
    const OpacityResult r = check_opacity(prefix, options);
    if (r.verdict == Verdict::kNo) return len;
    if (r.verdict == Verdict::kUnknown) {
      throw std::runtime_error("first_non_opaque_prefix: budget exhausted");
    }
  }
  return std::nullopt;
}

History witness_history(const History& h, const SerializationWitness& witness) {
  History s(h.model());
  for (std::size_t k = 0; k < witness.order.size(); ++k) {
    const TxId tx = witness.order[k];
    const History sub = h.project_tx(tx);
    for (const Event& e : sub.events()) s.append(e);
    // Complete the transaction per its witness role, mirroring Complete(H).
    switch (h.status(tx)) {
      case TxStatus::kCommitted:
      case TxStatus::kAborted:
        break;  // already complete
      case TxStatus::kCommitPending:
        s.append(witness.roles[k] == Role::kCommitted ? ev::commit(tx)
                                                      : ev::abort(tx));
        break;
      case TxStatus::kLive:
        if (h.pending_invocation(tx).has_value()) {
          s.append(ev::abort(tx));
        } else {
          s.append(ev::try_commit(tx));
          s.append(ev::abort(tx));
        }
        break;
    }
  }
  return s;
}

}  // namespace optm::core
