// Online (streaming) opacity monitors.
//
// §5.2 observes that "a history of a TM is generated progressively and at
// each time the history of all events issued so far must be opaque" — the
// set of opaque histories is not prefix-closed, but a correct TM's run is
// judged prefix by prefix. These monitors consume one transactional event
// at a time, as a TM would emit them, and report the FIRST event whose
// prefix is condemned. Two backends with the usual exactness/efficiency
// trade:
//
//  * OnlineDefinitionalMonitor — exact. Replays Definition 1 on every
//    prefix that ends in a response-class event (invocations alone cannot
//    make an opaque prefix non-opaque: they add no return values and
//    complete no transaction, so the previous witness still works).
//    Exponential worst case; intended for checker-scale histories, tests,
//    and cross-validation of the certificate backend.
//
//  * OnlineCertificateMonitor — polynomial (amortized O(1) per event), for
//    register histories with value-unique writes. It is a SUFFICIENT
//    certificate, not a decision procedure: a clean run is certified
//    opaque-prefix-by-prefix; a flagged event is a certificate violation
//    (carrying a structured CertFlagKind) that the definitional backend
//    can then adjudicate. Reads from commit-pending writers (legal under
//    opacity via the set V — the H4 optimization) are flagged
//    conservatively with kReadFromNonCommitted; none of our runtimes
//    produce them, because the recorder window makes commit points atomic
//    with their C events.
//
// Both backends are single-threaded. When live certification needs to
// scale past one core, core::ParallelStreamCertifier
// (parallel_stream.hpp) shards the certificate pass across worker
// threads with the SAME verdict and first condemned position as
// OnlineCertificateMonitor (differentially fuzz-tested) — the trade is
// verdict latency: it answers at merge barriers and finish(), not per
// event.
//
// The committed VERSION ORDER the certificate checks against is no longer
// hard-wired to the commit (C-record) order: the monitor takes a
// core::VersionOrderPolicy (see version_order.hpp) that decides how ranks
// are assigned:
//
//  * kCommitOrder (default) — PR 1's behavior byte for byte: the version
//    order is the commit order, update transactions serialize at their
//    commit rank. Correct for every single-version STM in this repository.
//  * kBlindWriteSmart — commit-order ranks until a window-based flag would
//    fire; then the §3.6 "smart" reorderings are searched (bounded, each
//    candidate verified exactly with the Theorem-2 certificate) and, on
//    success, the monitor retro-orders the offending version — re-opening
//    the windows the commit order had closed — and keeps streaming in
//    search mode. Checker-scale (it retains and replays the prefix).
//  * kSnapshotRank — ranks live in the runtimes' stamp space (Event::stamp:
//    2·wv on update commits, 2·snapshot+1 on snapshot-serialized commits).
//    Read-only transactions serialize at their snapshot point, which may
//    lie arbitrarily before their C event, and update commits' C records
//    may drift past each other (a window-free recorder) — the MV histories
//    the commit-order policy falsely flags.
//  * kStampedRead — kSnapshotRank plus validation of the per-read
//    (rv, version) stamp pair that window-free TL2-style recording puts on
//    non-local read responses (Event::stamp = 2·rv+1, Event::ver = the
//    version read). The policy for histories recorded with NO sampling
//    window at all.
//
// WINDOW-FREE SOUNDNESS (Theorem 2 on stamps). With the recorder's shared
// sampling window gone, a read's value sampling and the recording of its
// response are no longer atomic: the response record can drift past the C
// record of a commit that overwrote the version read, and C records of
// concurrent commits can drift past each other. The certificate survives
// because every claim it needs moved off record POSITIONS onto the stamps
// the runtime emits:
//
//   * reads-from is never inverted: a TL2-style committer records C
//     (drawing its global recorder stamp) BEFORE writing back, and a
//     reader samples the committed value only AFTER write-back, so the
//     writer's C precedes every dependent read response in the drained
//     stream — version records exist and are committed by the time a read
//     resolves against them (kReadFromNonCommitted cannot fire falsely);
//   * read validity is a stamp interval: a read stamped (rv, version)
//     claims its version was current at snapshot rv — version <= rv by the
//     runtime's O(1) validation, and the NEXT version of that register
//     carries wv' > rv because a writer locks the register before
//     advancing the clock (a reader that samples an unlocked old version
//     did so before the overwriter locked, hence before it advanced). So
//     2·rv+1 lies in the version's stamp interval [2·version, 2·wv')
//     regardless of where the records landed;
//   * the serialization checks are per-transaction stamp checks: an update
//     commit (2·wv) and a pinned read-only point (2·rv+1) must lie inside
//     the transaction's stamp-space snapshot window and above its birth
//     floor. The floor stays sound window-free: any C event recorded
//     before a transaction's first event drew its commit stamp before that
//     first event was recorded, hence before the transaction sampled its
//     snapshot — its rank is below every serialization point the
//     transaction can claim.
//
// OREC-SOURCED STAMPS (dstm/astm). The ownership-record runtimes have no
// per-read O(1) clock validation, but the same three claims hold with the
// orec machinery as the stamp authority (the full story is in
// stm/dstm.hpp):
//
//   * a committer CASes its status word to kCommitting BEFORE drawing its
//     clock ticket wv, and every owned orec points at that word — so the
//     intent to commit is visible through the data before the ticket
//     exists, exactly the role TL2's write locks play;
//   * a validation draws its snapshot rv BEFORE examining any read-set
//     entry and waits out kCommitting/kCommitted owners (bounded, then a
//     conservative abort — two committers each reading a variable the
//     other owns would deadlock an unbounded wait); an entry that passes
//     therefore has every future overwriter entering kCommitting — and
//     drawing its ticket — after the rv read, so all passing entries are
//     simultaneously current at stamp 2·rv+1. Reads are stamped
//     (2·rv+1, version/2), where the version word a reader sampled is the
//     writer's 2·wv ticket (write-backs store the ticket);
//   * reads-from is never inverted for the same reason as in TL2: C is
//     recorded after the kCommitted store and before write-back, and a
//     reader resolves a value only after write-back published it.
//
//   STOLEN ORECS cannot fake any of this: ownership can be stolen only
//   from a status word reading kAborted (or a stale epoch), never from
//   kCommitting/kCommitted — so a steal implies the victim aborted, its C
//   is never recorded, and its buffered writes never reach a version
//   word. The stamps on the victim's recorded reads keep naming the last
//   COMMITTED version, which is still the truth, and the victim's A event
//   installs nothing — so a committed read can never resolve against a
//   stolen (never-written-back) version, and reads-from cannot invert.
//
// MvStm's update commits join by the mirrored ordering: the committer
// locks its write set, draws 2·wv, THEN validates (lock → ticket →
// validate), so an overwriter of anything it read tickets strictly later;
// its reads are stamped (2·snapshot+1, ring stamp), truthful by the
// snapshot-read construction (see stm/mv.hpp).
//
// The recorded ≺_H (completion before first event, in RECORD order) is a
// subset of the real-time order of the record pushes, so a stamp
// serialization that respects the birth floors respects ≺_H — exactly the
// obligation Theorem 2's well-formedness side imposes.
//
// BATCH-STAMPED RECORDING (Recorder::Options::stamp_batch) changes none of
// the above. The batch grain coarsens only the recorder's MERGE tickets —
// the per-push sequence drain() sorts by — and those tickets never appear
// in the verified stream: every claim here reads Event::stamp, the
// RUNTIME's clock, which batching does not touch. The strict seqlock rule
// (a lane extends its open batch only while its ticket is still the latest
// drawn; commit/abort records always draw a fresh ticket) means any two
// pushes whose real-time order is observable through the global clock get
// distinct, correctly ordered tickets — so the drained stream remains a
// real-time-consistent order of the pushes, the ≺_H-subset argument above
// is untouched at any grain, and the conformance fuzz confirms recordings
// are byte-equal to per-event stamping. What the stamps do
// NOT prove by themselves is that the runtime told the truth; kStampedRead
// therefore cross-checks every claim it can (version identity, snapshot
// monotonicity) and the conformance harness (core/conformance.hpp)
// differentially tests window-free recordings against windowed recordings
// of identical schedules and against the exact definitional checker.
//
// The certificate backend maintains, per live transaction, the interval of
// serialization ranks ("the snapshot window") at which ALL its non-local
// reads were simultaneously current — the same snapshot-window idea as
// find_inconsistent_snapshot, but incremental:
//
//   * every committed write opens a version at the resolver-assigned rank
//     and closes the previous version of that register;
//   * a read intersects the transaction's window with the version's
//     [open, close) interval; an empty window is an inconsistent snapshot;
//   * a window that closes at or before the transaction's "birth floor"
//     (the resolver's floor at its first event) cannot be serialized
//     without violating the real-time order ≺_H — the stale-read case;
//   * at commit, an UPDATE transaction must additionally serialize inside
//     its window at its resolver rank (under kCommitOrder that rank is the
//     new top rank, so this degenerates to "reads still current at
//     commit"); a read-only transaction needs its pinned snapshot point
//     inside the window when the policy derives one, or merely a nonempty
//     window extending past its birth floor when it does not.
//
// SiStm's write skew is caught at the second skewed commit: the rival's
// commit closed a version the committer read, so the window no longer
// contains the commit rank.
//
// HOT-PATH COST MODEL (the PR 5 rebuild). A steady-state event performs
// ZERO heap allocations and ZERO node-based hash-map probes:
//
//   * per-transaction state lives in a TxId-indexed slab (TxSlab — both
//     recorders allocate ids densely from 1, so the id is the index; one
//     bounds check + one vector index per event, growth is geometric and
//     amortized away entirely by reserve());
//   * the (register, value) version namespace is an open-addressing flat
//     table (VersionTable — records inline, linear probing, no
//     tombstones since versions are never erased);
//   * a transaction's executed writes are a sorted SmallWriteSet: inline
//     up to its capacity, then spilled into vectors RECYCLED through a
//     per-monitor pool at transaction completion (same ascending-register
//     iteration order as the std::map it replaced, so install order and
//     every flag position are unchanged);
//   * holder lists and the BlindWriteSmart retained prefix reuse their
//     high-water capacity; failure strings are built only when a flag
//     actually fires.
//
// reserve() pre-sizes all of it; tests/core/monitor_alloc_test.cpp feeds
// 100k+ events under a counting operator-new and asserts literally zero
// allocations after warm-up for kCommitOrder/kSnapshotRank/kStampedRead.
// The design follows what production validation engines do to stay O(1)
// per event (TL2's per-stripe version arrays, NOrec's value-based fast
// path); behavioral equivalence with the pre-rebuild engine is enforced
// byte-for-byte (verdict + flagged position) by the conformance and batch
// differential suites.
//
// Under kBlindWriteSmart the retained prefix is now kept as an
// incrementally appended History, and search mode re-verifies each prefix
// by first extending the LAST CERTIFIED WITNESS with the transactions
// that appeared since (one exact pass in the common case) before falling
// back to the bounded §3.6 search — whose candidates are screened by the
// O(reads) StampPruneIndex scan (version_order.hpp) before any exact
// verify_opacity_certificate replay.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dense_state.hpp"
#include "core/history.hpp"
#include "core/opacity.hpp"
#include "core/version_order.hpp"

namespace optm::core {

struct OnlineViolation {
  /// Index (0-based) of the event whose prefix is condemned; the prefix
  /// h[0..pos] inclusive is the shortest bad one this monitor saw.
  std::size_t pos{0};
  std::string reason;
  /// Structured classification — what adjudication dispatches on.
  CertFlagKind kind{CertFlagKind::kNone};
};

/// Exact streaming monitor: Definition 1 on every response-ended prefix.
class OnlineDefinitionalMonitor {
 public:
  explicit OnlineDefinitionalMonitor(ObjectModel model,
                                     OpacityOptions options = {});

  /// Feed the next event. Returns false once a violation has been found
  /// (sticky); further events are recorded but not re-checked.
  bool feed(const Event& e);

  /// Batch ingestion: feed every event of `batch` in order. Returns the
  /// conjunction of the feeds (false once a violation is latched).
  bool ingest(std::span<const Event> batch);

  [[nodiscard]] bool ok() const noexcept { return !violation_.has_value(); }
  [[nodiscard]] const std::optional<OnlineViolation>& violation() const noexcept {
    return violation_;
  }
  [[nodiscard]] const History& history() const noexcept { return h_; }
  [[nodiscard]] std::size_t events_fed() const noexcept { return h_.size(); }

 private:
  History h_;
  OpacityOptions options_;
  std::optional<OnlineViolation> violation_;
};

/// Polynomial streaming certificate monitor (see file header for the
/// precise guarantee). Requires an all-register object model; throws
/// std::invalid_argument otherwise.
class OnlineCertificateMonitor {
 public:
  explicit OnlineCertificateMonitor(
      ObjectModel model,
      VersionOrderPolicy policy = VersionOrderPolicy::kCommitOrder);

  /// Feed the next event. Returns false once a violation has been found
  /// (sticky).
  bool feed(const Event& e);

  /// Batch ingestion — the feed for the sharded recorder's drain() and the
  /// recorded-mode pipeline. Equivalent to feeding every event of `batch`
  /// one at a time (the equivalence is tested), but amortizes the sticky
  /// violation handling across the batch. Returns false once a violation
  /// has been latched. Live pipelines usually reach this through
  /// stm::MonitorSink fed by a DrainPump (stm/sink.hpp); the same spans
  /// also arrive replayed from disk via log::SegmentReader and the
  /// bounded-memory front-end core::verify_event_stream.
  bool ingest(std::span<const Event> batch);

  /// Pre-size the dense hot-path state: the transaction slab (expected
  /// number of distinct TxIds), the version table (expected distinct
  /// (register, value) pairs, writes plus initial values), and optionally
  /// each register's holder list. After this, a feed within those bounds
  /// performs no heap allocation at all (monitor_alloc_test holds it to
  /// zero under a counting allocator).
  void reserve(std::size_t num_txs, std::size_t num_versions,
               std::size_t holders_per_register = 0);

  [[nodiscard]] bool ok() const noexcept { return !violation_.has_value(); }
  [[nodiscard]] const std::optional<OnlineViolation>& violation() const noexcept {
    return violation_;
  }
  [[nodiscard]] VersionOrderPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t events_fed() const noexcept { return pos_; }
  /// Committed update transactions seen so far.
  [[nodiscard]] std::size_t commits_seen() const noexcept { return commits_; }
  /// kBlindWriteSmart only: true once a §3.6 retro-ordering was needed (and
  /// found) — the monitor is replaying prefixes in search mode from then on.
  [[nodiscard]] bool retro_ordered() const noexcept { return search_mode_; }

 private:
  static constexpr std::size_t kOpen = static_cast<std::size_t>(-1);

  /// Life-cycle of one transaction, §4's well-formedness state machine.
  enum class Phase : std::uint8_t {
    kIdle,           // between responses
    kOpPending,      // operation invoked, response outstanding
    kCommitPending,  // tryC issued
    kAbortPending,   // tryA issued
    kDone,           // C or A received
  };

  struct TxState {
    Phase phase{Phase::kIdle};
    bool born{false};
    bool committed{false};
    bool has_write{false};      // an executed write exists
    std::size_t birth_rank{0};
    std::size_t lo{0};          // window: max over reads of version open rank
    std::size_t hi{kOpen};      // min over reads of version close rank
    /// Largest read-stamp (2·rv+1) among the transaction's stamped reads —
    /// kStampedRead checks the commit stamp against it.
    std::uint64_t max_read_stamp{0};
    Event pending{};            // the outstanding invocation (kOpPending)
    /// Executed writes, latest value per register, ascending-register
    /// order (spill storage recycled via spill_pool_ at completion).
    SmallWriteSet writes;
  };

  struct VersionRec {
    TxId writer{kNoTx};
    std::size_t open_rank{0};
    std::size_t close_rank{kOpen};
  };

  bool fail(CertFlagKind kind, const std::string& reason);
  bool on_operation_response(const Event& e, TxState& tx);
  bool on_commit(const Event& c, TxState& tx, TxId id);
  /// kBlindWriteSmart: called at a would-be repairable flag; tries the §3.6
  /// search on the retained prefix and, on success, switches to search mode.
  bool try_retro_order();
  /// Search mode: exact bounded re-verification of the retained prefix,
  /// extending the last certified witness first (incremental fast path).
  bool search_verify();

  ObjectModel model_;
  VersionOrderPolicy policy_;
  VersionOrderResolver resolver_;
  std::size_t pos_{0};
  std::size_t commits_{0};  // committed update transactions so far
  TxId cur_tx_{kNoTx};      // transaction of the event being fed
  bool search_mode_{false};
  /// Set when a successful retro-order already verified the current
  /// event's prefix (feed() then skips the redundant search).
  bool prefix_verified_{false};
  /// The fed prefix, retained only under kBlindWriteSmart (the reorder
  /// search and search-mode re-verification replay it), appended
  /// incrementally instead of rebuilt per search.
  History retained_;
  /// kBlindWriteSmart: the order that certified the last verified prefix;
  /// extended and tried first on the next one.
  std::vector<TxId> witness_;
  std::optional<OnlineViolation> violation_;
  /// TxId-indexed transaction slab — the id is the index (dense by
  /// construction of both recorders; sparse ids overflow gracefully).
  TxSlab<TxState> txs_;
  /// (register, value) -> version record; value-unique writes. Every read
  /// and write resolves against it, so it IS the hot path: an
  /// open-addressing flat table, records inline, no per-probe chasing.
  VersionTable<VersionRec> versions_;
  /// Register -> key of its current committed version in versions_.
  std::vector<std::pair<ObjId, Value>> current_;
  /// Register -> live transactions holding the current version in their
  /// window (their hi must shrink when it closes).
  std::vector<std::vector<TxId>> holders_;
  /// Recycled SmallWriteSet spill storage (see dense_state.hpp).
  SmallWriteSet::SpillPool spill_pool_;
};

}  // namespace optm::core
