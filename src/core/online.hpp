// Online (streaming) opacity monitors.
//
// §5.2 observes that "a history of a TM is generated progressively and at
// each time the history of all events issued so far must be opaque" — the
// set of opaque histories is not prefix-closed, but a correct TM's run is
// judged prefix by prefix. These monitors consume one transactional event
// at a time, as a TM would emit them, and report the FIRST event whose
// prefix is condemned. Two backends with the usual exactness/efficiency
// trade:
//
//  * OnlineDefinitionalMonitor — exact. Replays Definition 1 on every
//    prefix that ends in a response-class event (invocations alone cannot
//    make an opaque prefix non-opaque: they add no return values and
//    complete no transaction, so the previous witness still works).
//    Exponential worst case; intended for checker-scale histories, tests,
//    and cross-validation of the certificate backend.
//
//  * OnlineCertificateMonitor — polynomial (amortized O(1) per event), for
//    register histories with value-unique writes whose committed version
//    order is the commit order (true of every STM in this repository; the
//    §3.6 "smart" blind-write orderings are the exception). It is a
//    SUFFICIENT certificate, not a decision procedure: a clean run is
//    certified opaque-prefix-by-prefix; a flagged event is a certificate
//    violation that the definitional backend can then adjudicate. Reads
//    from commit-pending writers (legal under opacity via the set V — the
//    H4 optimization) are flagged conservatively; none of our runtimes
//    produce them, because the recorder window makes commit points atomic
//    with their C events.
//
// The certificate backend maintains, per live transaction, the interval of
// committed-prefix positions ("ranks") at which ALL its non-local reads
// were simultaneously current — the same snapshot-window idea as
// find_inconsistent_snapshot, but incremental:
//
//   * every committed write opens a version at the committing rank and
//     closes the previous version of that register;
//   * a read intersects the transaction's window with the version's
//     [open, close) interval; an empty window is an inconsistent snapshot;
//   * a window that closes at or before the transaction's "birth rank"
//     (commits completed before its first event) cannot be serialized
//     without violating the real-time order ≺_H — the stale-read case;
//   * at commit, an UPDATE transaction must additionally have a
//     still-open window (its reads current at its commit point — the
//     commit-order serialization); a read-only transaction only needs a
//     nonempty window extending past its birth rank.
//
// SiStm's write skew is caught at the second skewed commit: the rival's
// commit closed a version the committer read, so the window no longer
// contains the commit rank.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/history.hpp"
#include "core/opacity.hpp"
#include "util/hash.hpp"

namespace optm::core {

struct OnlineViolation {
  /// Index (0-based) of the event whose prefix is condemned; the prefix
  /// h[0..pos] inclusive is the shortest bad one this monitor saw.
  std::size_t pos{0};
  std::string reason;
};

/// Exact streaming monitor: Definition 1 on every response-ended prefix.
class OnlineDefinitionalMonitor {
 public:
  explicit OnlineDefinitionalMonitor(ObjectModel model,
                                     OpacityOptions options = {});

  /// Feed the next event. Returns false once a violation has been found
  /// (sticky); further events are recorded but not re-checked.
  bool feed(const Event& e);

  /// Batch ingestion: feed every event of `batch` in order. Returns the
  /// conjunction of the feeds (false once a violation is latched).
  bool ingest(std::span<const Event> batch);

  [[nodiscard]] bool ok() const noexcept { return !violation_.has_value(); }
  [[nodiscard]] const std::optional<OnlineViolation>& violation() const noexcept {
    return violation_;
  }
  [[nodiscard]] const History& history() const noexcept { return h_; }
  [[nodiscard]] std::size_t events_fed() const noexcept { return h_.size(); }

 private:
  History h_;
  OpacityOptions options_;
  std::optional<OnlineViolation> violation_;
};

/// Polynomial streaming certificate monitor (see file header for the
/// precise guarantee). Requires an all-register object model; throws
/// std::invalid_argument otherwise.
class OnlineCertificateMonitor {
 public:
  explicit OnlineCertificateMonitor(ObjectModel model);

  /// Feed the next event. Returns false once a violation has been found
  /// (sticky).
  bool feed(const Event& e);

  /// Batch ingestion — the feed for the sharded recorder's drain() and the
  /// recorded-mode pipeline. Equivalent to feeding every event of `batch`
  /// one at a time (the equivalence is tested), but amortizes the sticky
  /// violation handling across the batch. Returns false once a violation
  /// has been latched.
  bool ingest(std::span<const Event> batch);

  [[nodiscard]] bool ok() const noexcept { return !violation_.has_value(); }
  [[nodiscard]] const std::optional<OnlineViolation>& violation() const noexcept {
    return violation_;
  }
  [[nodiscard]] std::size_t events_fed() const noexcept { return pos_; }
  /// Committed transactions seen so far (the rank space of the windows).
  [[nodiscard]] std::size_t commits_seen() const noexcept { return rank_; }

 private:
  static constexpr std::size_t kOpen = static_cast<std::size_t>(-1);

  /// Life-cycle of one transaction, §4's well-formedness state machine.
  enum class Phase : std::uint8_t {
    kIdle,           // between responses
    kOpPending,      // operation invoked, response outstanding
    kCommitPending,  // tryC issued
    kAbortPending,   // tryA issued
    kDone,           // C or A received
  };

  struct TxState {
    Phase phase{Phase::kIdle};
    bool born{false};
    bool committed{false};
    std::size_t birth_rank{0};
    std::size_t lo{0};          // window: max over reads of version open rank
    std::size_t hi{kOpen};      // min over reads of version close rank
    bool has_write{false};      // an executed write exists
    Event pending{};            // the outstanding invocation (kOpPending)
    std::map<ObjId, Value> writes;  // executed writes, latest value per obj
  };

  struct VersionRec {
    TxId writer{kNoTx};
    std::size_t open_rank{0};
    std::size_t close_rank{kOpen};
  };

  bool fail(const std::string& reason);
  bool on_operation_response(const Event& e, TxState& tx);
  bool on_commit(TxState& tx, TxId id);

  struct VersionKeyHash {
    [[nodiscard]] std::size_t operator()(
        const std::pair<ObjId, Value>& key) const noexcept {
      return static_cast<std::size_t>(util::hash_combine(
          key.first, static_cast<std::uint64_t>(key.second)));
    }
  };

  ObjectModel model_;
  std::size_t pos_{0};
  std::size_t rank_{0};  // committed transactions so far
  std::optional<OnlineViolation> violation_;
  std::unordered_map<TxId, TxState> txs_;
  /// (register, value) -> version record; value-unique writes. A hash map:
  /// every read and write resolves against it, so it IS the hot path.
  std::unordered_map<std::pair<ObjId, Value>, VersionRec, VersionKeyHash>
      versions_;
  /// Register -> key of its current committed version in versions_.
  std::vector<std::pair<ObjId, Value>> current_;
  /// Register -> live transactions holding the current version in their
  /// window (their hi must shrink when it closes).
  std::vector<std::vector<TxId>> holders_;
};

}  // namespace optm::core
