// Graph characterization of opacity (paper §5.4, Theorem 2).
//
//   THEOREM 2. A history H is opaque if, and only if, (1) H is consistent,
//   and (2) there exists a total order ≪ on the transactions of H and a
//   subset V of the commit-pending transactions of H such that
//   OPG(nonlocal(H), ≪, V) is well-formed and acyclic.
//
// The characterization applies to histories over read/write registers, with
// the §5.4 conventions: writes are value-unique per register, and histories
// start with an initializing committed transaction T0 writing every
// register. This module synthesizes T0 as a virtual vertex when the history
// does not contain an explicit transaction kInitTx, so builder histories and
// recorded STM runs need no special setup.
//
// Three entry points:
//  * build_opg            — construct OPG(nonlocal(H), ≪, V) explicitly.
//  * check_opacity_via_graph — decide Theorem 2's right-hand side by
//    exhaustive search over (≪, V); exponential, for small histories; used
//    to machine-check Theorem 2 against the definitional checker.
//  * verify_opacity_certificate — polynomial-time verification given a
//    concrete (≪, V), e.g. the commit order recorded by an STM. Checks that
//    every OPG edge is aligned with ≪, which implies acyclicity. This is
//    the workhorse for verifying long recorded executions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/opacity.hpp"

namespace optm::core {

/// Edge labels, as bit flags (one physical edge can carry several labels).
enum EdgeLabel : std::uint8_t {
  kLrt = 1 << 0,  // real-time order
  kLrf = 1 << 1,  // reads-from
  kLrw = 1 << 2,  // read before overwrite (anti-dependency aligned with ≪)
  kLww = 1 << 3,  // version order (visible writer before read source)
};

[[nodiscard]] std::string edge_labels_to_string(std::uint8_t mask);

/// OPG(H, ≪, V): a directed labeled graph over the transactions of H plus
/// (if H lacks an explicit T0) a synthetic initializing vertex 0.
struct OpacityGraph {
  std::vector<TxId> vertex_tx;             // vertex -> transaction id
  std::vector<bool> vis;                    // vertex -> labelled Lvis?
  std::vector<std::vector<std::uint8_t>> label;  // adjacency matrix of masks
  bool has_synthetic_init = false;          // vertex 0 synthesized?

  [[nodiscard]] std::size_t size() const noexcept { return vertex_tx.size(); }
  [[nodiscard]] bool has_edge(std::size_t i, std::size_t k) const noexcept {
    return label[i][k] != 0;
  }

  /// No Lrf out-edge from an Lloc vertex (nobody observed a non-visible tx).
  [[nodiscard]] bool well_formed(std::string* why = nullptr) const;

  /// Acyclicity; optionally reports one cycle (as vertex indices).
  [[nodiscard]] bool acyclic(std::vector<std::size_t>* cycle = nullptr) const;

  /// Graphviz rendering (vertices labelled with tx ids and Lvis/Lloc).
  [[nodiscard]] std::string dot() const;
};

/// Construct OPG(nonlocal(h), ≪, V).
///   order : all transactions of h in ≪ order (T0 may be omitted; it is
///           always placed first).
///   v     : the subset V of commit-pending transactions.
/// Throws std::invalid_argument if h is not a register history with
/// value-unique writes, if order does not cover the transactions of h, or
/// if v contains a non-commit-pending transaction.
[[nodiscard]] OpacityGraph build_opg(const History& h,
                                     const std::vector<TxId>& order,
                                     const std::vector<TxId>& v);

struct GraphCheckResult {
  Verdict verdict{Verdict::kUnknown};
  std::optional<std::vector<TxId>> order;  // witness ≪ (iff kYes)
  std::optional<std::vector<TxId>> v;      // witness V (iff kYes)
  std::string reason;
  std::uint64_t graphs_examined{0};
};

/// Decide Theorem 2's condition by exhaustive search over total orders ≪
/// and subsets V. Exponential (n! · 2^p); intended for histories with at
/// most `max_txs` transactions (default 9).
[[nodiscard]] GraphCheckResult check_opacity_via_graph(const History& h,
                                                       std::size_t max_txs = 9);

/// Polynomial certificate verification: given a concrete total order ≪ and
/// visible set V (e.g. an STM's commit order), verify that H is consistent
/// and that every OPG(nonlocal(H), ≪, V) edge agrees with ≪ — which implies
/// the graph is well-formed and acyclic, hence (Theorem 2) H is opaque.
///
/// Sound but conservative with respect to the *given* certificate: an
/// anti-≪ edge fails verification even if the graph happens to be acyclic
/// under some other topological order. Runs in O(|H| log |H|).
[[nodiscard]] bool verify_opacity_certificate(const History& h,
                                              const std::vector<TxId>& order,
                                              const std::vector<TxId>& v,
                                              std::string* why = nullptr);

}  // namespace optm::core
