// Transactional events (paper §4, "Transactional events").
//
// A history is a sequence of these events. Invocation events (operation
// invocation, commit-try, abort-try) are initiated by transactions;
// response events (operation response, commit, abort) by the TM.
#pragma once

#include <string>

#include "core/types.hpp"

namespace optm::core {

enum class EventKind : std::uint8_t {
  kInvoke,     // inv_i(ob, op, args)
  kResponse,   // ret_i(ob, op, val)
  kTryCommit,  // tryC_i
  kCommit,     // C_i
  kTryAbort,   // tryA_i
  kAbort,      // A_i
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kInvoke: return "inv";
    case EventKind::kResponse: return "ret";
    case EventKind::kTryCommit: return "tryC";
    case EventKind::kCommit: return "C";
    case EventKind::kTryAbort: return "tryA";
    case EventKind::kAbort: return "A";
  }
  return "?";
}

/// Sentinel for Event::ver on stamped reads whose runtime validates by
/// VALUE rather than by a named version (NOrec): the snapshot claim
/// (Event::stamp) stands, but the version identity is left to value
/// resolution.
inline constexpr std::uint64_t kNoReadVersion = ~std::uint64_t{0};

struct Event {
  EventKind kind{EventKind::kInvoke};
  TxId tx{kNoTx};
  ObjId obj{kNoObj};     // valid for kInvoke / kResponse
  OpCode op{OpCode::kRead};
  Value arg{0};          // operation argument (kInvoke; copied onto kResponse)
  Value ret{0};          // return value (kResponse only)
  /// Serialization stamp of stamp-aware runtimes, in the runtime's stamp
  /// space (2·version for points at a committed version, 2·snapshot+1 for
  /// points at a snapshot). Carried by
  ///   * C/A events: 2·wv for committed updates, 2·snapshot+1 for
  ///     transactions that serialize at their snapshot (see
  ///     RecorderBase::on_commit);
  ///   * non-local READ responses of window-free-capable runtimes:
  ///     2·rv+1, the snapshot the read was validated against (the `rv`
  ///     half of the read-stamp pair; `ver` below is the other half).
  /// 0 means "unstamped": the version order is the commit (record) order.
  /// The stamp-space version-order policies (core/version_order.hpp) read
  /// this instead of re-inferring ranks from the event stream.
  std::uint64_t stamp{0};
  /// The `version` half of a stamped read's (rv, version) pair: the
  /// runtime version of the value read (its writer's wv; stamp-space open
  /// rank 2·ver), or kNoReadVersion when the runtime validates by value
  /// (NOrec). Only meaningful on a kResponse read with stamp != 0.
  std::uint64_t ver{0};

  [[nodiscard]] constexpr bool is_invocation() const noexcept {
    return kind == EventKind::kInvoke || kind == EventKind::kTryCommit ||
           kind == EventKind::kTryAbort;
  }
  [[nodiscard]] constexpr bool is_response() const noexcept {
    return !is_invocation();
  }

  /// Do `*this` (an invocation) and `r` (a response) match in the paper's
  /// sense: same transaction, and for operations the same object/op?
  [[nodiscard]] constexpr bool matches(const Event& r) const noexcept {
    if (tx != r.tx) return false;
    switch (kind) {
      case EventKind::kInvoke:
        return (r.kind == EventKind::kResponse && obj == r.obj && op == r.op) ||
               r.kind == EventKind::kAbort;  // abort may replace a response
      case EventKind::kTryCommit:
        return r.kind == EventKind::kCommit || r.kind == EventKind::kAbort;
      case EventKind::kTryAbort:
        return r.kind == EventKind::kAbort;
      default:
        return false;
    }
  }

  friend constexpr bool operator==(const Event&, const Event&) noexcept = default;
};

/// Factory helpers mirroring the paper's notation.
namespace ev {

[[nodiscard]] constexpr Event inv(TxId tx, ObjId obj, OpCode op, Value arg = 0) noexcept {
  return Event{EventKind::kInvoke, tx, obj, op, arg, 0, 0};
}
[[nodiscard]] constexpr Event ret(TxId tx, ObjId obj, OpCode op, Value arg,
                                  Value val, std::uint64_t stamp = 0,
                                  std::uint64_t ver = 0) noexcept {
  return Event{EventKind::kResponse, tx, obj, op, arg, val, stamp, ver};
}
[[nodiscard]] constexpr Event try_commit(TxId tx) noexcept {
  return Event{EventKind::kTryCommit, tx, kNoObj, OpCode::kRead, 0, 0, 0};
}
[[nodiscard]] constexpr Event commit(TxId tx, std::uint64_t stamp = 0) noexcept {
  return Event{EventKind::kCommit, tx, kNoObj, OpCode::kRead, 0, 0, stamp};
}
[[nodiscard]] constexpr Event try_abort(TxId tx) noexcept {
  return Event{EventKind::kTryAbort, tx, kNoObj, OpCode::kRead, 0, 0, 0};
}
[[nodiscard]] constexpr Event abort(TxId tx, std::uint64_t stamp = 0) noexcept {
  return Event{EventKind::kAbort, tx, kNoObj, OpCode::kRead, 0, 0, stamp};
}

}  // namespace ev

/// Renders an event in the paper's notation, e.g. "inv1(x3, read)",
/// "ret2(x0, read -> 5)", "tryC1", "A2".
[[nodiscard]] std::string to_string(const Event& e);

}  // namespace optm::core
