// Transactional events (paper §4, "Transactional events").
//
// A history is a sequence of these events. Invocation events (operation
// invocation, commit-try, abort-try) are initiated by transactions;
// response events (operation response, commit, abort) by the TM.
#pragma once

#include <string>

#include "core/types.hpp"

namespace optm::core {

enum class EventKind : std::uint8_t {
  kInvoke,     // inv_i(ob, op, args)
  kResponse,   // ret_i(ob, op, val)
  kTryCommit,  // tryC_i
  kCommit,     // C_i
  kTryAbort,   // tryA_i
  kAbort,      // A_i
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kInvoke: return "inv";
    case EventKind::kResponse: return "ret";
    case EventKind::kTryCommit: return "tryC";
    case EventKind::kCommit: return "C";
    case EventKind::kTryAbort: return "tryA";
    case EventKind::kAbort: return "A";
  }
  return "?";
}

struct Event {
  EventKind kind{EventKind::kInvoke};
  TxId tx{kNoTx};
  ObjId obj{kNoObj};     // valid for kInvoke / kResponse
  OpCode op{OpCode::kRead};
  Value arg{0};          // operation argument (kInvoke; copied onto kResponse)
  Value ret{0};          // return value (kResponse only)
  /// Serialization stamp carried by C/A events of stamp-aware runtimes
  /// (2·wv for committed updates, 2·snapshot+1 for transactions that
  /// serialize at their snapshot — see RecorderBase::on_commit). 0 means
  /// "unstamped": the version order is the commit (record) order. The
  /// SnapshotRank version-order policy (core/version_order.hpp) reads this
  /// instead of re-inferring snapshot ranks from the event stream.
  std::uint64_t stamp{0};

  [[nodiscard]] constexpr bool is_invocation() const noexcept {
    return kind == EventKind::kInvoke || kind == EventKind::kTryCommit ||
           kind == EventKind::kTryAbort;
  }
  [[nodiscard]] constexpr bool is_response() const noexcept {
    return !is_invocation();
  }

  /// Do `*this` (an invocation) and `r` (a response) match in the paper's
  /// sense: same transaction, and for operations the same object/op?
  [[nodiscard]] constexpr bool matches(const Event& r) const noexcept {
    if (tx != r.tx) return false;
    switch (kind) {
      case EventKind::kInvoke:
        return (r.kind == EventKind::kResponse && obj == r.obj && op == r.op) ||
               r.kind == EventKind::kAbort;  // abort may replace a response
      case EventKind::kTryCommit:
        return r.kind == EventKind::kCommit || r.kind == EventKind::kAbort;
      case EventKind::kTryAbort:
        return r.kind == EventKind::kAbort;
      default:
        return false;
    }
  }

  friend constexpr bool operator==(const Event&, const Event&) noexcept = default;
};

/// Factory helpers mirroring the paper's notation.
namespace ev {

[[nodiscard]] constexpr Event inv(TxId tx, ObjId obj, OpCode op, Value arg = 0) noexcept {
  return Event{EventKind::kInvoke, tx, obj, op, arg, 0, 0};
}
[[nodiscard]] constexpr Event ret(TxId tx, ObjId obj, OpCode op, Value arg,
                                  Value val) noexcept {
  return Event{EventKind::kResponse, tx, obj, op, arg, val, 0};
}
[[nodiscard]] constexpr Event try_commit(TxId tx) noexcept {
  return Event{EventKind::kTryCommit, tx, kNoObj, OpCode::kRead, 0, 0, 0};
}
[[nodiscard]] constexpr Event commit(TxId tx, std::uint64_t stamp = 0) noexcept {
  return Event{EventKind::kCommit, tx, kNoObj, OpCode::kRead, 0, 0, stamp};
}
[[nodiscard]] constexpr Event try_abort(TxId tx) noexcept {
  return Event{EventKind::kTryAbort, tx, kNoObj, OpCode::kRead, 0, 0, 0};
}
[[nodiscard]] constexpr Event abort(TxId tx, std::uint64_t stamp = 0) noexcept {
  return Event{EventKind::kAbort, tx, kNoObj, OpCode::kRead, 0, 0, stamp};
}

}  // namespace ev

/// Renders an event in the paper's notation, e.g. "inv1(x3, read)",
/// "ret2(x0, read -> 5)", "tryC1", "A2".
[[nodiscard]] std::string to_string(const Event& e);

}  // namespace optm::core
