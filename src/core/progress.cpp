#include "core/progress.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace optm::core {

ProgressResult check_progressive(const History& h) {
  ProgressResult result;

  // Lifetimes and access sets per transaction.
  struct Info {
    std::size_t first = 0;
    std::size_t last = 0;
    std::set<ObjId> objects;
    bool seen = false;
  };
  std::map<TxId, Info> info;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    Info& inf = info[e.tx];
    if (!inf.seen) {
      inf.first = i;
      inf.seen = true;
    }
    inf.last = i;
    if (e.kind == EventKind::kInvoke) inf.objects.insert(e.obj);
  }

  result.progressive = true;
  for (const auto& [tx, inf] : info) {
    if (!h.is_forcefully_aborted(tx)) continue;
    ++result.forced_aborts;

    bool justified = false;
    for (const auto& [other, oinf] : info) {
      if (other == tx) continue;
      // (a) common shared object?
      const bool conflicts = std::any_of(
          inf.objects.begin(), inf.objects.end(),
          [&oinf](ObjId obj) { return oinf.objects.count(obj) > 0; });
      if (!conflicts) continue;
      // (b) lifetimes overlap (both live at some common instant)?
      const bool overlap = inf.first <= oinf.last && oinf.first <= inf.last;
      if (overlap) {
        justified = true;
        break;
      }
    }
    if (justified) {
      ++result.justified_aborts;
    } else if (result.progressive) {
      result.progressive = false;
      result.violation = ProgressViolation{
          tx, "T" + std::to_string(tx) +
                  " was forcefully aborted without any concurrent "
                  "conflicting transaction"};
    }
  }
  return result;
}

}  // namespace optm::core
