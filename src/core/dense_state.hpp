// Dense state containers for the certificate engines' hot path.
//
// The streaming certificate monitor touches per-event exactly three pieces
// of state: the acting transaction's TxState, the (register, value) version
// record the event resolves against, and — on reads of open versions — the
// register's holder list. PR 1 kept the first two in node-based hash maps
// (std::unordered_map), which costs a hash, a bucket probe, a pointer chase
// and (on insertion) a node allocation per event. This header replaces them
// with structures that are O(1) per access with ZERO heap allocations in
// steady state:
//
//   * TxSlab<T>      — a TxId-indexed slab. Both recorders allocate
//     transaction ids densely from 1 (Recorder::begin_tx is a fetch_add),
//     so the id IS the index; the slab grows geometrically and an access
//     is one bounds check + one vector index. Hand-built histories with
//     genuinely sparse ids (fuzzers, adversarial tests) spill into a small
//     overflow map instead of ballooning the slab: an id more than
//     kGrowSlack past the dense frontier is judged non-dense.
//
//   * VersionTable<R> — an open-addressing, linear-probing flat table over
//     (register, value) keys, the §5.4 value-unique version namespace.
//     Slots store the record inline (no nodes), probing is cache-
//     sequential, and the table only ever grows — the engines never erase
//     a version, so no tombstones exist and a probe chain never has to
//     step over deleted slots (the "tombstone-free epochs" property: a
//     rehash starts a fresh epoch with every surviving slot reinserted).
//
//   * SmallWriteSet  — a transaction's executed writes, sorted by
//     register: inline storage for the common small write set, spilling
//     into a pooled vector past kInlineCapacity. Spill vectors are
//     RECYCLED through a caller-owned pool (release() at transaction
//     completion), so even write-heavy streams stop allocating once the
//     pool has warmed to the high-water number of concurrently live
//     spilled transactions. Iteration order is ascending register — the
//     same order the std::map it replaces gave the engines, so commit
//     installation order (and therefore every verdict and flag position)
//     is preserved byte for byte.
//
// All three are shared by OnlineCertificateMonitor (core/online.hpp) and
// the sharded offline driver (core/parallel_verify.cpp); the monitor's
// reserve() pre-sizes them so a soak-scale feed performs no allocation at
// all after warm-up (tests/core/monitor_alloc_test.cpp holds it to that
// under a counting operator-new).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/hash.hpp"

namespace optm::core {

// ---------------------------------------------------------------------------
// TxSlab
// ---------------------------------------------------------------------------

/// TxId-indexed slab with an overflow map for non-dense ids. T must be
/// default-constructible; a default-constructed T is indistinguishable
/// from "never touched" (the engines' TxState/TxMeta encode absence as
/// !born / !committed, which default-construction yields).
template <typename T>
class TxSlab {
 public:
  /// Ids at most this far past the dense frontier still grow the slab;
  /// anything further is treated as sparse and lives in the overflow map
  /// (prevents a single adversarial id from allocating gigabytes).
  static constexpr TxId kGrowSlack = 1u << 16;

  void reserve(std::size_t num_txs) { dense_.reserve(num_txs); }

  /// Mutable access, growing the slab on demand (the "insert" of the map
  /// API this replaces). Hot path: one compare + one index. Geometric
  /// growth, clipped to the reserved capacity so a reserve() sized to the
  /// load is never overshot into a reallocation.
  ///
  /// INVARIANT: overflow_ never holds a key below dense_.size() — growth
  /// migrates any overflow entries the new frontier covers, so a dense
  /// hit can never shadow state parked in the overflow map (an id judged
  /// sparse earlier stays authoritative after the frontier passes it).
  [[nodiscard]] T& get(TxId tx) {
    if (tx < dense_.size()) return dense_[tx];
    if (tx < dense_.size() + kGrowSlack) {
      const std::size_t need = static_cast<std::size_t>(tx) + 1;
      const std::size_t want =
          std::max<std::size_t>(need, dense_.size() * 2);
      dense_.resize(std::max(need, std::min(want, dense_.capacity())));
      migrate_covered_overflow();
      return dense_[tx];
    }
    return overflow_[tx];
  }

  /// Lookup without insertion. A dense id below the frontier always
  /// resolves (possibly to a default-constructed T — see class comment).
  [[nodiscard]] T* find(TxId tx) noexcept {
    if (tx < dense_.size()) return &dense_[tx];
    const auto it = overflow_.find(tx);
    return it == overflow_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const T* find(TxId tx) const noexcept {
    if (tx < dense_.size()) return &dense_[tx];
    const auto it = overflow_.find(tx);
    return it == overflow_.end() ? nullptr : &it->second;
  }

  /// Visit every slot ever materialized, as (TxId, T&). Dense slots that
  /// were never touched visit as default-constructed T — callers filter on
  /// their own "born" marker, exactly as they skipped absent map keys.
  template <typename F>
  void for_each(F&& f) const {
    for (TxId tx = 0; tx < dense_.size(); ++tx) f(tx, dense_[tx]);
    for (const auto& [tx, t] : overflow_) f(tx, t);
  }

 private:
  /// Restore the class invariant after dense growth: entries the new
  /// frontier covers move from the overflow map into their dense slot.
  /// Overflow is adversarial-input-only, so this stays off the hot path.
  void migrate_covered_overflow() {
    if (overflow_.empty()) return;
    for (auto it = overflow_.begin(); it != overflow_.end();) {
      if (it->first < dense_.size()) {
        dense_[it->first] = std::move(it->second);
        it = overflow_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::vector<T> dense_;
  std::unordered_map<TxId, T> overflow_;
};

// ---------------------------------------------------------------------------
// VersionTable
// ---------------------------------------------------------------------------

/// Open-addressing flat hash table over (register, value) keys. Linear
/// probing, power-of-two capacity, load factor <= 1/2, records inline. No
/// erase — the version namespace only grows — hence no tombstones.
template <typename Rec>
class VersionTable {
 public:
  explicit VersionTable(std::size_t expected_entries = 16) {
    rehash(bucket_count_for(expected_entries));
  }

  void reserve(std::size_t entries) {
    const std::size_t want = bucket_count_for(entries);
    if (want > slots_.size()) rehash(want);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Find the record for (obj, val), default-inserting one if absent (the
  /// emplace of the map API this replaces). `inserted` reports which. The
  /// growth check runs only when the probe actually inserts, so a lookup
  /// of an existing key can never rehash — reserve() sized exactly to the
  /// load stays allocation-free, as the monitor's reserve() contract
  /// promises.
  [[nodiscard]] Rec& slot(ObjId obj, Value val, bool* inserted = nullptr) {
    std::size_t i = find_slot(obj, val);
    if (slots_[i].used) {
      if (inserted != nullptr) *inserted = false;
      return slots_[i].rec;
    }
    if ((size_ + 1) * 2 > slots_.size()) {
      rehash(slots_.size() * 2);
      i = find_slot(obj, val);  // empty slot in the new epoch
    }
    Slot& s = slots_[i];
    s.used = true;
    s.obj = obj;
    s.val = val;
    s.rec = Rec{};
    ++size_;
    if (inserted != nullptr) *inserted = true;
    return s.rec;
  }

  [[nodiscard]] Rec* find(ObjId obj, Value val) noexcept {
    Slot& s = slots_[find_slot(obj, val)];
    return s.used ? &s.rec : nullptr;
  }
  [[nodiscard]] const Rec* find(ObjId obj, Value val) const noexcept {
    return const_cast<VersionTable*>(this)->find(obj, val);
  }

 private:
  struct Slot {
    Rec rec{};
    Value val{0};
    ObjId obj{0};
    bool used{false};
  };

  [[nodiscard]] static std::size_t bucket_count_for(
      std::size_t entries) noexcept {
    std::size_t cap = 16;
    while (cap < entries * 2) cap *= 2;  // keep load factor <= 1/2
    return cap;
  }

  [[nodiscard]] std::size_t bucket_of(ObjId obj, Value val) const noexcept {
    const std::uint64_t key =
        util::hash_combine(obj, static_cast<std::uint64_t>(val));
    return static_cast<std::size_t>(util::mix64(key)) & mask_;
  }

  /// Probe to the key's slot or the first empty slot of its chain.
  [[nodiscard]] std::size_t find_slot(ObjId obj, Value val) const noexcept {
    std::size_t i = bucket_of(obj, val);
    for (;;) {
      const Slot& s = slots_[i];
      if (!s.used || (s.obj == obj && s.val == val)) return i;
      i = (i + 1) & mask_;
    }
  }

  void rehash(std::size_t new_buckets) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_buckets, Slot{});
    mask_ = new_buckets - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = bucket_of(s.obj, s.val);
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// SmallWriteSet
// ---------------------------------------------------------------------------

/// A transaction's executed writes (latest value per register), sorted by
/// register. Inline up to kInlineCapacity entries; beyond that the entries
/// move into a vector acquired from a caller-owned pool and returned to it
/// by release() when the transaction completes — the pool is what makes a
/// long stream of write-heavy transactions allocation-free once warm.
class SmallWriteSet {
 public:
  using Entry = std::pair<ObjId, Value>;
  using Spill = std::vector<Entry>;
  using SpillPool = std::vector<Spill>;
  static constexpr std::size_t kInlineCapacity = 4;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] const Entry* begin() const noexcept {
    return spilled_ ? spill_.data() : inline_.data();
  }
  [[nodiscard]] const Entry* end() const noexcept { return begin() + size_; }

  [[nodiscard]] const Value* find(ObjId obj) const noexcept {
    for (const Entry* e = begin(); e != end(); ++e) {
      if (e->first == obj) return &e->second;
      if (e->first > obj) break;  // sorted
    }
    return nullptr;
  }

  /// Insert or overwrite the write to `obj`, keeping entries sorted.
  void set(ObjId obj, Value val, SpillPool& pool) {
    Entry* data = spilled_ ? spill_.data() : inline_.data();
    std::size_t at = 0;
    while (at < size_ && data[at].first < obj) ++at;
    if (at < size_ && data[at].first == obj) {
      data[at].second = val;
      return;
    }
    if (!spilled_ && size_ == kInlineCapacity) {
      if (pool.empty()) {
        spill_ = Spill{};
      } else {
        spill_ = std::move(pool.back());
        pool.pop_back();
        spill_.clear();
      }
      spill_.insert(spill_.end(), inline_.begin(), inline_.end());
      spilled_ = true;
      data = spill_.data();
    }
    if (spilled_) {
      spill_.insert(spill_.begin() + static_cast<std::ptrdiff_t>(at),
                    {obj, val});
    } else {
      for (std::size_t i = size_; i > at; --i) inline_[i] = inline_[i - 1];
      inline_[at] = {obj, val};
    }
    ++size_;
  }

  /// Return any spill storage to the pool and forget all entries (the
  /// transaction completed; its writes are installed or discarded).
  void release(SpillPool& pool) noexcept {
    if (spilled_) {
      pool.push_back(std::move(spill_));
      spill_ = Spill{};
      spilled_ = false;
    }
    size_ = 0;
  }

 private:
  std::array<Entry, kInlineCapacity> inline_{};
  Spill spill_;
  std::uint32_t size_ = 0;
  bool spilled_ = false;
};

}  // namespace optm::core
