#include "core/legality.hpp"

#include <stdexcept>
#include <unordered_map>

namespace optm::core {

namespace {

/// Replay all operation events of `s` (in order) against fresh object
/// states; returns false at the first response mismatching its spec.
bool replay(const History& s, std::string* why) {
  SystemState state(s.model());
  std::unordered_map<TxId, Event> pending;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Event& e = s[i];
    switch (e.kind) {
      case EventKind::kInvoke:
        pending[e.tx] = e;
        break;
      case EventKind::kResponse: {
        const Event inv = pending.at(e.tx);
        pending.erase(e.tx);
        const Value expected = state.apply(inv.obj, inv.op, inv.arg);
        if (expected != e.ret) {
          if (why != nullptr) {
            *why = "event " + std::to_string(i) + " (" + to_string(e) +
                   "): specification requires return " + std::to_string(expected);
          }
          return false;
        }
        break;
      }
      default:
        break;  // tryC/C/tryA/A do not touch object state
    }
  }
  // A trailing pending invocation is permitted: sequential specifications
  // contain sequences ending with a pending invocation (paper §4).
  return true;
}

}  // namespace

bool sequential_legal(const History& s, std::string* why) {
  std::string wf;
  if (!s.well_formed(&wf)) {
    if (why != nullptr) *why = "not well-formed: " + wf;
    return false;
  }
  std::string seq;
  if (!s.is_sequential(&seq)) {
    if (why != nullptr) *why = "not sequential: " + seq;
    return false;
  }
  return replay(s, why);
}

bool transaction_legal(const History& s, TxId ti, std::string* why) {
  if (!s.contains(ti)) {
    if (why != nullptr) *why = "transaction not in history";
    return false;
  }
  // Largest subsequence with committed Tk ≺_S Ti, plus Ti itself.
  History sub(s.model());
  for (const Event& e : s.events()) {
    if (e.tx == ti || (s.is_committed(e.tx) && s.precedes(e.tx, ti))) {
      sub.append(e);
    }
  }
  std::string inner;
  if (!sequential_legal(sub, &inner)) {
    if (why != nullptr) {
      *why = "T" + std::to_string(ti) + " illegal: " + inner;
    }
    return false;
  }
  return true;
}

bool all_transactions_legal(const History& s, std::string* why) {
  for (TxId tx : s.transactions()) {
    if (!transaction_legal(s, tx, why)) return false;
  }
  return true;
}

}  // namespace optm::core
