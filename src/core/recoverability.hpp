// Recoverability (paper §3.5, after Hadzilacos '88).
//
// Two checkers:
//
//  * check_recoverability — the classical reads-from condition: a committed
//    transaction must only have read from transactions that committed, and
//    that committed before the reader did. (Register histories with
//    value-unique writes, so reads-from is derivable.)
//
//  * check_strict_recoverability — the paper's "strongest form": once a
//    transaction Ti updates a shared object x, no other transaction may
//    perform ANY operation on x until Ti commits or aborts. This is the
//    variant §3.5 shows is (a) still insufficient for TM when combined with
//    global atomicity (Figure 1), and (b) already too strong for arbitrary
//    objects (it forbids the §3.4 concurrent counter increments).
//    Applies to arbitrary objects ("update" = any non-read-only operation).
// Both conflict-window checkers count only operation EXECUTIONS (an
// invocation with a matching response): an invocation answered by A never
// accessed the object — that is how a rigorous/strict scheduler refuses a
// conflicting request in the first place.
#pragma once

#include <string>
#include <vector>

#include "core/history.hpp"

namespace optm::core {

struct RecoverabilityResult {
  bool holds{false};
  std::string reason;  // first violation, if any
};

[[nodiscard]] RecoverabilityResult check_recoverability(const History& h);

[[nodiscard]] RecoverabilityResult check_strict_recoverability(const History& h);

/// For each event position: true iff it is an invocation that received a
/// matching response (i.e., became an operation execution). Shared by the
/// strict-recoverability and rigorous-scheduling checkers.
[[nodiscard]] std::vector<bool> executed_invocations(const History& h);

}  // namespace optm::core
