#include "core/parallel_verify.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/dense_state.hpp"
#include "core/object_spec.hpp"
#include "core/window_merge.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::size_t kOpenRank = static_cast<std::size_t>(-1);

using detail::tx_tag;

/// Field-for-field the shared merge types (window_merge.hpp) — the merge
/// sweep, the pass-0 lifecycle step and the per-transaction state all live
/// there now, shared with the streaming certifier.
using Flag = detail::MergeFlag;
using ReadRec = detail::MergeReadRec;
using TxMeta = detail::MergeTxState;
using detail::to_merge_meta;

/// Pass 0: well-formedness + the serialization-rank assignment. Everything
/// that couples registers together is computed here, sequentially and
/// cheaply — the VersionOrderResolver hands out ranks (commit-order or
/// stamp-space, per the policy) — so pass 1's shards never need to
/// synchronize. Per-transaction state lives in a TxId-indexed slab
/// (dense_state.hpp): recorder tx ids are dense, so the sequential pass is
/// one vector index per event instead of a hash probe. The lifecycle step
/// itself is the shared detail::pass0_step (window_merge.hpp), which the
/// streaming certifier's pass-0 worker runs too.
struct Pass0 {
  TxSlab<TxMeta> txs;
  std::vector<Flag> flags;

  void run(const History& h, VersionOrderPolicy policy) {
    VersionOrderResolver resolver(policy);
    const std::vector<Event>& events = h.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      (void)detail::pass0_step(txs.get(e.tx), e, i, h.model(), policy,
                               resolver, flags);
    }
  }
};

/// Pass 1 worker: the register-local certificate for one shard. Each read
/// resolves to a detail::MergeReadRec against the FINAL version-chain
/// state after the scan; `close_pos` dates the close so the merge sweep
/// can apply it with the streaming monitor's timing.
struct ShardPass {
  const History* h;
  const Pass0* pass0;
  std::size_t shard;
  std::size_t num_shards;
  VersionOrderPolicy policy;

  std::vector<Flag> flags;
  std::vector<ReadRec> reads;

  struct VersionRec {
    TxId writer{kNoTx};
    std::size_t open_rank{0};
    std::size_t close_rank{kOpenRank};
    std::size_t close_pos{kNone};
    bool installed{false};
  };

  [[nodiscard]] bool mine(ObjId obj) const noexcept {
    return h->model().contains(obj) && obj % num_shards == shard;
  }

  void run() {
    VersionTable<VersionRec> versions(h->model().size() / num_shards + 16);
    // Register -> key of its current committed version (dense by obj).
    std::vector<std::pair<ObjId, Value>> current(h->model().size());
    // Write sets, held compactly: the dense slab maps TxId -> 1-based
    // index (4 bytes/tx), the sets themselves exist only for transactions
    // that actually wrote in this shard — each of the N shards would
    // otherwise touch a full TxId-range of ~100-byte SmallWriteSets.
    TxSlab<std::uint32_t> writer_index;
    std::vector<SmallWriteSet> writer_sets;
    const auto writes_of = [&](TxId tx) -> SmallWriteSet* {
      const std::uint32_t* idx = writer_index.find(tx);
      return idx != nullptr && *idx != 0 ? &writer_sets[*idx - 1] : nullptr;
    };
    SmallWriteSet::SpillPool spill_pool;
    struct PendingRead {
      TxId tx;
      std::size_t pos;
      ObjId obj;
      std::pair<ObjId, Value> key;
      std::uint64_t stamp;  // 2·rv+1 when the read is stamped, else 0
      std::uint64_t ver;    // version half of the read-stamp pair
    };
    std::vector<PendingRead> pending_reads;

    for (ObjId r = 0; r < h->model().size(); ++r) {
      if (!mine(r)) continue;
      const auto* reg = dynamic_cast<const RegisterSpec*>(&h->model().spec(r));
      const Value init_val = reg->initial_value();
      VersionRec init;
      init.writer = kInitTx;
      init.installed = true;
      versions.slot(r, init_val) = init;
      current[r] = {r, init_val};
    }

    const std::vector<Event>& events = h->events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.kind == EventKind::kCommit) {
        const TxMeta* meta = pass0->txs.find(e.tx);
        if (meta == nullptr || !meta->committed || meta->commit_pos != i ||
            !meta->has_write) {
          continue;
        }
        SmallWriteSet* writes = writes_of(e.tx);
        if (writes == nullptr || writes->empty()) continue;
        const std::size_t rank = meta->commit_rank;
        for (const auto& [obj, value] : *writes) {
          auto& prev_key = current[obj];
          if (VersionRec* prev =
                  versions.find(prev_key.first, prev_key.second)) {
            prev->close_rank = rank;
            prev->close_pos = i;
          }
          VersionRec& rec = versions.slot(obj, value);
          rec.writer = e.tx;
          rec.open_rank = rank;
          rec.close_rank = kOpenRank;
          rec.close_pos = kNone;
          rec.installed = true;
          prev_key = {obj, value};
        }
        // NOTE: the write set is intentionally NOT recycled here — a
        // malformed history can read after its commit, and the monitor-
        // equivalent treatment of that read depends on the stale buffer
        // (the streaming monitor never consults a completed transaction's
        // writes, so it recycles; this pass has no lifecycle state).
        continue;
      }
      if (e.kind != EventKind::kResponse || !mine(e.obj)) continue;

      if (e.op == OpCode::kWrite) {
        bool inserted = false;
        VersionRec& rec = versions.slot(e.obj, e.arg, &inserted);
        if (inserted) {
          rec.writer = e.tx;
        } else if (rec.writer != e.tx) {
          flags.push_back({i, tx_tag(e.tx) + " rewrote value " +
                                  std::to_string(e.arg) + " of x" +
                                  std::to_string(e.obj) +
                                  " (value-unique writes required)",
                           CertFlagKind::kValueNotUnique, e.tx, shard});
          rec.writer = e.tx;
        }
        std::uint32_t& windex = writer_index.get(e.tx);
        if (windex == 0) {
          writer_sets.emplace_back();
          windex = static_cast<std::uint32_t>(writer_sets.size());
        }
        writer_sets[windex - 1].set(e.obj, e.arg, spill_pool);
        continue;
      }
      if (e.op != OpCode::kRead) continue;

      // Local reads answer from the write buffer; they never touch windows.
      if (const SmallWriteSet* own_set = writes_of(e.tx)) {
        if (const Value* own = own_set->find(e.obj)) {
          if (*own != e.ret) {
            flags.push_back({i, tx_tag(e.tx) + " read x" + std::to_string(e.obj) +
                                    "=" + std::to_string(e.ret) +
                                    " despite its own write of " +
                                    std::to_string(*own) +
                                    " (local consistency)",
                             CertFlagKind::kLocalInconsistency, e.tx, shard});
          }
          continue;
        }
      }

      const VersionRec* v = versions.find(e.obj, e.ret);
      if (v == nullptr) {
        flags.push_back({i, tx_tag(e.tx) + " read x" + std::to_string(e.obj) +
                                "=" + std::to_string(e.ret) +
                                ", a value never written",
                         CertFlagKind::kUnwrittenValue, e.tx, shard});
        continue;
      }
      if (v->writer == e.tx) {
        flags.push_back(
            {i, tx_tag(e.tx) + " read back its own value without a prior write",
             CertFlagKind::kSelfRead, e.tx, shard});
        continue;
      }
      if (v->writer != kInitTx) {
        const TxMeta* w = pass0->txs.find(v->writer);
        const bool committed_before =
            w != nullptr && w->committed && w->commit_pos < i;
        if (!committed_before) {
          flags.push_back({i, tx_tag(e.tx) + " read x" + std::to_string(e.obj) +
                                  "=" + std::to_string(e.ret) +
                                  " from non-committed T" +
                                  std::to_string(v->writer),
                           CertFlagKind::kReadFromNonCommitted, e.tx, shard});
          continue;
        }
      }
      pending_reads.push_back({e.tx, i, e.obj, {e.obj, e.ret},
                               policy == VersionOrderPolicy::kStampedRead
                                   ? e.stamp
                                   : 0,
                               e.ver});
    }

    // Resolve each read's interval to the version chain's final state
    // (versions only ever close once, so the final record plus close_pos
    // reconstructs what was known at any position).
    reads.reserve(pending_reads.size());
    for (const PendingRead& pr : pending_reads) {
      const VersionRec& rec = *versions.find(pr.key.first, pr.key.second);
      // kStampedRead: the read's (rv, version) pair must agree with the
      // value-resolved version chain — the same two checks, with the same
      // flag positions, as the streaming monitor's stamped-read path. (A
      // never-installed version presents the monitor's empty [0, 0)
      // interval, so its open rank is 0 here too.)
      if (pr.stamp != 0) {
        const std::size_t open = rec.installed ? rec.open_rank : 0;
        // The shared helper carries the monitor's wrap guard too.
        if (pr.ver != kNoReadVersion &&
            !read_stamp_names_version(pr.ver, open)) {
          flags.push_back(
              {pr.pos, tx_tag(pr.tx) + " stamped its read of x" +
                           std::to_string(pr.obj) + "=" +
                           std::to_string(pr.key.second) + " with version " +
                           std::to_string(pr.ver) +
                           " but the value belongs to the version opened at "
                           "rank " + std::to_string(open),
               CertFlagKind::kReadStampMismatch, pr.tx, shard});
          continue;
        }
        if (open > static_cast<std::size_t>(pr.stamp)) {
          flags.push_back(
              {pr.pos, tx_tag(pr.tx) + " read x" + std::to_string(pr.obj) +
                           "=" + std::to_string(pr.key.second) +
                           " from a version opened at rank " +
                           std::to_string(open) +
                           ", after its snapshot stamp " +
                           std::to_string(pr.stamp),
               CertFlagKind::kReadStampMismatch, pr.tx, shard});
          continue;
        }
      }
      if (!rec.installed) {
        // The writer committed but superseded this value with a later write
        // of its own, so the version never installed: the streaming monitor
        // leaves its interval at the empty [0, 0). Present the same.
        reads.push_back({pr.tx, pr.pos, pr.obj, shard, 0, 0, 0});
      } else {
        reads.push_back({pr.tx, pr.pos, pr.obj, shard, rec.open_rank,
                         rec.close_rank, rec.close_pos});
      }
    }
  }
};

/// Merge: replay each transaction's snapshot window over its reads from
/// all shards, in position order, applying closes only once their closing
/// C event precedes the current position — the streaming monitor's exact
/// knowledge timing. The per-transaction sweep itself is the shared
/// detail::sweep_tx_windows (window_merge.hpp), which the parallel
/// streaming certifier runs too.
void merge_windows(const Pass0& pass0, VersionOrderPolicy policy,
                   std::vector<ReadRec>& all_reads, std::vector<Flag>& flags) {
  const bool snapshot_rank = stamp_space(policy);
  std::sort(all_reads.begin(), all_reads.end(),
            [](const ReadRec& a, const ReadRec& b) {
              if (a.tx != b.tx) return a.tx < b.tx;
              return a.pos < b.pos;
            });

  // Close-heap scratch, reused across transactions so the sweep allocates
  // nothing once warm.
  std::vector<detail::MergeClose> closes;

  std::size_t begin = 0;
  while (begin < all_reads.size()) {
    std::size_t end = begin;
    while (end < all_reads.size() && all_reads[end].tx == all_reads[begin].tx) {
      ++end;
    }
    const TxId id = all_reads[begin].tx;
    const TxMeta& meta = *pass0.txs.find(id);
    detail::sweep_tx_windows(id, to_merge_meta(meta),
                             all_reads.data() + begin, end - begin,
                             snapshot_rank, closes, flags);
    begin = end;
  }
}

/// Committed transactions with NO non-local reads never enter
/// merge_windows (it iterates read groups), but under kSnapshotRank their
/// serialization points still face the birth-floor check — the monitor
/// fires it at the C event: a pinned read-only point at or below the
/// floor, or a blind update whose stamped rank is at or below the floor,
/// violates the real-time order.
void check_readless_points(const Pass0& pass0, std::vector<Flag>& flags,
                           const std::vector<ReadRec>& all_reads) {
  std::unordered_set<TxId> with_reads;
  for (const ReadRec& r : all_reads) with_reads.insert(r.tx);
  pass0.txs.for_each([&](TxId id, const TxMeta& meta) {
    if (!meta.committed || with_reads.count(id) != 0) return;
    detail::check_readless_tx(id, to_merge_meta(meta), flags);
  });
}

}  // namespace

VerifyConcurrency resolve_verify_concurrency(std::size_t num_registers,
                                             std::size_t num_shards,
                                             std::size_t num_threads) noexcept {
  VerifyConcurrency out;
  out.threads = num_threads;
  if (out.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out.threads = hw > 0 ? hw : 1;
  }
  out.shards = num_shards;
  if (out.shards == 0) out.shards = std::min(num_registers, out.threads);
  if (out.shards == 0) out.shards = 1;
  return out;
}

History project_registers(const History& h, const std::vector<ObjId>& registers) {
  std::unordered_set<ObjId> regs(registers.begin(), registers.end());
  std::unordered_set<TxId> touching;
  for (const Event& e : h.events()) {
    if ((e.kind == EventKind::kInvoke || e.kind == EventKind::kResponse) &&
        regs.count(e.obj) != 0) {
      touching.insert(e.tx);
    }
  }
  History out(h.model());
  for (const Event& e : h.events()) {
    const bool op_event =
        e.kind == EventKind::kInvoke || e.kind == EventKind::kResponse;
    if (op_event ? regs.count(e.obj) != 0 : touching.count(e.tx) != 0) {
      out.append(e);
    }
  }
  return out;
}

ParallelVerifyResult verify_history_sharded(const History& h,
                                            util::ThreadPool& pool,
                                            const ShardVerifyOptions& options) {
  for (ObjId r = 0; r < h.model().size(); ++r) {
    if (dynamic_cast<const RegisterSpec*>(&h.model().spec(r)) == nullptr) {
      throw std::invalid_argument(
          "sharded verification: register histories only");
    }
  }

  ParallelVerifyResult result;
  result.events = h.size();
  const std::size_t shards =
      resolve_verify_concurrency(h.model().size(), options.num_shards,
                                 pool.size())
          .shards;
  result.shards_used = shards;

  Pass0 pass0;
  pass0.run(h, options.policy);

  std::vector<ShardPass> passes;
  passes.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    passes.push_back(ShardPass{&h, &pass0, s, shards, options.policy, {}, {}});
  }
  pool.parallel_for(shards, [&](std::size_t s) { passes[s].run(); });

  std::vector<Flag> flags = std::move(pass0.flags);
  std::vector<ReadRec> all_reads;
  for (ShardPass& p : passes) {
    flags.insert(flags.end(), p.flags.begin(), p.flags.end());
    all_reads.insert(all_reads.end(), p.reads.begin(), p.reads.end());
  }
  merge_windows(pass0, options.policy, all_reads, flags);
  if (stamp_space(options.policy)) {
    check_readless_points(pass0, flags, all_reads);
  }

  std::sort(flags.begin(), flags.end(),
            [](const Flag& a, const Flag& b) { return a.pos < b.pos; });

  // §3.6 repair: when every flag is a statement about the commit order
  // (reorder_repairable), a bounded search over the smart reorderings may
  // certify the history outright.
  if (options.policy == VersionOrderPolicy::kBlindWriteSmart &&
      !flags.empty() &&
      std::all_of(flags.begin(), flags.end(),
                  [](const Flag& f) { return reorder_repairable(f.kind); })) {
    const SmartReorderResult found = smart_reorder_search(h, flags.front().tx);
    if (found.certified) {
      result.smart_order = found.order;
      result.certified = true;
      return result;
    }
  }

  // Definitional fallback: adjudicate each flagged shard's sub-history.
  // Flags whose kind already proves non-opacity (a §5.4 consistency
  // violation) are adjudicated kNo without the exponential search — the
  // structured kind is what lets us dispatch here without string matching.
  std::unordered_map<std::size_t, std::pair<Verdict, std::string>> adjudicated;
  if (options.definitional_fallback) {
    for (const Flag& f : flags) {
      if (f.shard == kNoShard || adjudicated.count(f.shard) != 0) continue;
      if (proves_non_opaque(f.kind)) {
        adjudicated[f.shard] = {
            Verdict::kNo, std::string("flag kind ") + to_string(f.kind) +
                              " violates consistency (Theorem 2 makes it "
                              "necessary; no search needed)"};
        continue;
      }
      std::vector<ObjId> regs;
      for (ObjId r = 0; r < h.model().size(); ++r) {
        if (r % shards == f.shard) regs.push_back(r);
      }
      const History sub = project_registers(h, regs);
      if (sub.transactions().size() > options.fallback_max_txs) {
        adjudicated[f.shard] = {Verdict::kUnknown,
                                "sub-history too large for the definitional "
                                "checker (" +
                                    std::to_string(sub.transactions().size()) +
                                    " transactions)"};
        continue;
      }
      OpacityOptions opts;
      opts.max_states = options.fallback_max_states;
      const OpacityResult exact = check_opacity(sub, opts);
      adjudicated[f.shard] = {exact.verdict, exact.reason};
    }
  }

  result.flags.reserve(flags.size());
  for (const Flag& f : flags) {
    ShardFlag out;
    out.pos = f.pos;
    out.reason = f.reason;
    out.kind = f.kind;
    out.tx = f.tx;
    out.shard = f.shard;
    const auto a = adjudicated.find(f.shard);
    if (a != adjudicated.end()) {
      out.adjudication = a->second.first;
      out.adjudication_reason = a->second.second;
    }
    result.flags.push_back(std::move(out));
  }
  result.certified = result.flags.empty();
  if (!result.flags.empty()) {
    result.violation = OnlineViolation{result.flags.front().pos,
                                       result.flags.front().reason,
                                       result.flags.front().kind};
  }
  return result;
}

ParallelVerifyResult verify_history_sharded(const History& h,
                                            const ShardVerifyOptions& options) {
  util::ThreadPool pool(resolve_verify_concurrency(h.model().size(),
                                                   options.num_shards,
                                                   options.num_threads)
                            .threads);
  return verify_history_sharded(h, pool, options);
}

}  // namespace optm::core
