#include "core/criteria.hpp"

#include <sstream>

#include "core/linearizability.hpp"
#include "core/one_copy.hpp"
#include "core/recoverability.hpp"
#include "core/rigorous.hpp"
#include "core/serializability.hpp"

namespace optm::core {

std::string CriteriaReport::table() const {
  std::size_t width = 0;
  for (const auto& [c, v] : verdicts) width = std::max(width, std::string(to_string(c)).size());
  std::ostringstream os;
  for (const auto& [c, v] : verdicts) {
    std::string name = to_string(c);
    name.resize(width, ' ');
    os << "  " << name << " : " << to_string(v);
    const auto note = notes.find(c);
    if (note != notes.end() && !note->second.empty())
      os << "   (" << note->second << ")";
    os << '\n';
  }
  return os.str();
}

CriteriaReport evaluate_criteria(const History& h) {
  CriteriaReport report;
  auto set = [&report](Criterion c, Verdict v, std::string note = "") {
    report.verdicts[c] = v;
    report.notes[c] = std::move(note);
  };
  auto guard = [&set](Criterion c, auto&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      set(c, Verdict::kUnknown, e.what());
    }
  };

  guard(Criterion::kSerializability, [&] {
    const auto r = check_serializability(h);
    set(Criterion::kSerializability, r.verdict, r.reason);
  });
  guard(Criterion::kStrictSerializability, [&] {
    const auto r = check_strict_serializability(h);
    set(Criterion::kStrictSerializability, r.verdict, r.reason);
  });
  guard(Criterion::kConflictSerializability, [&] {
    const auto r = check_conflict_serializability(h);
    set(Criterion::kConflictSerializability, r.verdict, r.reason);
  });
  guard(Criterion::kOneCopySerializability, [&] {
    const auto r = check_one_copy_serializability(h);
    set(Criterion::kOneCopySerializability, r.verdict, r.reason);
  });
  guard(Criterion::kGlobalAtomicity, [&] {
    const auto r = check_global_atomicity(h);
    set(Criterion::kGlobalAtomicity, r.verdict, r.reason);
  });
  guard(Criterion::kRecoverability, [&] {
    const auto r = check_recoverability(h);
    set(Criterion::kRecoverability, r.holds ? Verdict::kYes : Verdict::kNo,
        r.reason);
  });
  guard(Criterion::kStrictRecoverability, [&] {
    const auto r = check_strict_recoverability(h);
    set(Criterion::kStrictRecoverability, r.holds ? Verdict::kYes : Verdict::kNo,
        r.reason);
  });
  guard(Criterion::kRigorousness, [&] {
    const auto r = check_rigorous(h);
    set(Criterion::kRigorousness, r.holds ? Verdict::kYes : Verdict::kNo,
        r.reason);
  });
  guard(Criterion::kTxLinearizability, [&] {
    const auto r = check_transactional_linearizability(h);
    set(Criterion::kTxLinearizability, r.verdict, r.reason);
  });
  guard(Criterion::kOpacity, [&] {
    const auto r = check_opacity(h);
    set(Criterion::kOpacity, r.verdict, r.reason);
  });
  return report;
}

}  // namespace optm::core
