// Cross-engine conformance driver — the differential-testing backbone of
// the window-free recording work.
//
// The repository now has three independent ways to judge one recorded
// history: the streaming OnlineCertificateMonitor, the sharded offline
// driver verify_history_sharded, and the exact definitional checker
// check_opacity — the first two parameterized by a version-order policy
// (core/version_order.hpp). Each pair owes the others a contract:
//
//   * per policy, monitor and driver are verdict- AND position-equivalent
//     (kBlindWriteSmart: verdict only — the two engines search different
//     prefixes, see parallel_verify.hpp);
//   * the driver must agree with itself across shard counts;
//   * soundness: a CERTIFIED verdict under any policy is a Theorem-2
//     certificate, so the exact checker must answer kYes;
//   * flag completeness: if the exact checker proves the history
//     non-opaque, no policy may certify it (a flag may still be
//     conservative — certificates are sufficient, not necessary).
//
// check_conformance runs every configured engine over one history and
// verifies all four contracts, reporting the first divergence in plain
// text. It is the reusable core of the cross-runtime conformance fuzz
// suite (tests/core/conformance_fuzz_test.cpp), which feeds it recordings
// of live runtimes — windowed and window-free — plus the random_*_history
// generators; it is equally usable from tools (a recorded history that
// fails conformance is a checker bug by definition, whatever the verdict).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/online.hpp"
#include "core/opacity.hpp"
#include "core/version_order.hpp"

namespace optm::core {

struct ConformanceOptions {
  /// Policies to sweep (each runs the monitor and the sharded driver).
  std::vector<VersionOrderPolicy> policies{
      VersionOrderPolicy::kCommitOrder, VersionOrderPolicy::kSnapshotRank,
      VersionOrderPolicy::kStampedRead};
  /// Shard counts the driver must agree with the monitor (and itself) on.
  std::vector<std::size_t> shard_counts{1, 3};
  /// Run the exact definitional checker when the history has at most this
  /// many transactions (0 disables it — it is exponential).
  std::size_t exact_max_txs = 10;
  /// DFS state budget for the exact checker.
  std::uint64_t exact_max_states = 500'000;
};

/// One engine's view of the history under one policy.
struct EngineVerdict {
  bool certified{false};
  std::size_t pos{0};  // first condemned position (valid iff !certified)
  std::string reason;
  CertFlagKind kind{CertFlagKind::kNone};
};

struct PolicyConformance {
  VersionOrderPolicy policy{VersionOrderPolicy::kCommitOrder};
  EngineVerdict monitor;
  /// The driver's verdict at the FIRST configured shard count (all counts
  /// are checked for agreement; a mismatch is reported as a divergence).
  EngineVerdict driver;
};

struct ConformanceReport {
  /// Every contract held (monitor≡driver per policy, driver self-agreement
  /// across shard counts, certified ⟹ exact kYes, exact kNo ⟹ all flag).
  bool ok{true};
  /// Human-readable description of the first broken contract.
  std::string divergence;
  std::vector<PolicyConformance> policies;
  /// Exact checker's verdict (kUnknown when skipped or budget-exhausted).
  Verdict exact{Verdict::kUnknown};
  std::string exact_reason;
  /// Did the given policy certify the history (monitor side)?
  [[nodiscard]] bool certified(VersionOrderPolicy p) const noexcept {
    for (const PolicyConformance& pc : policies) {
      if (pc.policy == p) return pc.monitor.certified;
    }
    return false;
  }
};

/// Run every configured engine over `h` and check the contracts above.
/// Precondition (same as the certificate engines): all-register history;
/// throws std::invalid_argument otherwise.
[[nodiscard]] ConformanceReport check_conformance(
    const History& h, const ConformanceOptions& options = {});

}  // namespace optm::core
