// Bounded-memory verification of an event STREAM — the chunked front-end
// to the offline machinery for recordings that no longer fit in RAM
// (multi-segment binary logs, log/reader.hpp).
//
// Strategy: the sharded parallel driver (parallel_verify.hpp) is the
// strongest engine — multi-threaded, full flag list, definitional
// fallback, §3.6 smart reorder — but it needs the whole history
// materialized. The streaming certificate monitor (online.hpp) needs only
// O(transactions + live versions) state and is verdict- and
// flag-position-equivalent to the driver (tested by the batch/conformance
// suites). verify_event_stream therefore buffers the stream into a
// History while it still fits `window_events`; if the stream ends within
// the window it runs the sharded driver over the materialized history,
// otherwise it replays the buffer into an OnlineCertificateMonitor, frees
// it, and streams the rest through ingest() in window-bounded spans —
// peak memory is the window plus monitor state, never the history size.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>

#include "core/event.hpp"
#include "core/online.hpp"
#include "core/parallel_verify.hpp"

namespace optm::core {

/// Pull-based event source: each call returns the next stamp-contiguous
/// run of the stream, an empty span once exhausted (or on error — the
/// caller checks its producer afterwards). Spans need only stay valid
/// until the next call.
using EventPull = std::function<std::span<const Event>()>;

struct StreamVerifyOptions {
  VersionOrderPolicy policy = VersionOrderPolicy::kCommitOrder;
  /// The materialization window, in events: histories up to this size are
  /// verified with the sharded parallel driver; longer streams fall over
  /// to the streaming engines. Also bounds the span size fed per ingest.
  std::size_t window_events = std::size_t{1} << 20;
  /// Concurrency, resolved ONCE per stream by resolve_verify_concurrency
  /// (parallel_verify.hpp — the same "0 = auto" rule as
  /// ShardVerifyOptions), and applied on BOTH paths: the sharded driver
  /// when the stream fits the window, and the parallel streaming
  /// certifier (parallel_stream.hpp) when it does not. When the resolved
  /// thread count is 1 — or the policy is kBlindWriteSmart, which cannot
  /// shard — the streaming path runs the serial monitor instead.
  std::size_t num_shards = 0;
  std::size_t num_threads = 0;
  /// Engine pre-sizing hints (events within the bounds allocate nothing).
  std::size_t reserve_txs = 0;
  std::size_t reserve_versions = 0;
};

struct StreamVerifyResult {
  bool certified = false;
  /// Earliest flag, position in the global event stream — identical to
  /// what the in-RAM monitor latches on the same recording.
  std::optional<OnlineViolation> violation;
  std::size_t events = 0;
  /// True when the stream fit the window and the sharded driver ran.
  bool used_sharded_driver = false;
  /// True when the streaming path ran the parallel certifier instead of
  /// the serial monitor.
  bool used_parallel_certifier = false;
  std::size_t shards_used = 0;  // sharded driver / parallel certifier
  /// Worker threads the verification occupied (1 = serial monitor).
  std::size_t threads_used = 0;
  /// Number of ingest windows fed on the streaming path.
  std::size_t windows = 0;
};

/// Verify a stream of events against the certificate under `policy`, in
/// memory bounded by `window_events`. The model must be all registers
/// (as for OnlineCertificateMonitor).
[[nodiscard]] StreamVerifyResult verify_event_stream(
    const ObjectModel& model, const EventPull& next,
    const StreamVerifyOptions& options = {});

}  // namespace optm::core
