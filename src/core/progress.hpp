// Progress properties as history predicates (§6.1 and §7).
//
// Opacity is a safety property; the paper pairs it with progress notions
// and uses one — *progressiveness* — as a premise of Theorem 3:
//
//   "[A TM] is progressive if it forcefully aborts a transaction Ti only
//    when there is a time t at which Ti conflicts with another, concurrent
//    transaction Tk that is not committed or aborted by time t; we say
//    that two transactions conflict if they access some common shared
//    object."
//
// check_progressive decides this on a recorded history: for every
// forcefully aborted transaction there must exist a concurrent conflicting
// transaction that was live at some point during the overlap. A recorded
// TL2 run containing its signature post-commit abort FAILS this check; the
// progressive runtimes pass it by construction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"

namespace optm::core {

struct ProgressViolation {
  TxId aborted_tx{kNoTx};
  std::string explanation;
};

struct ProgressResult {
  bool progressive{false};
  std::optional<ProgressViolation> violation;  // first one found
  std::uint64_t forced_aborts{0};
  std::uint64_t justified_aborts{0};
};

/// Decide progressiveness of `h`: every forcefully aborted transaction must
/// have a *justifying conflict* — some other transaction that (a) accesses
/// an object the aborted transaction also accesses, and (b) is live at some
/// instant of the aborted transaction's lifespan.
///
/// This is a conservative sufficient condition in the paper's spirit: we
/// require the conflicting transaction's lifetime to overlap the aborted
/// one's (both live at a common time t). Works on any object model.
[[nodiscard]] ProgressResult check_progressive(const History& h);

}  // namespace optm::core
