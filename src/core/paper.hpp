// The paper's worked histories and examples, encoded programmatically so
// every claim the paper makes about them is machine-checkable (tests) and
// demonstrable (examples/checker_tool).
//
// Object ids: x = 0, y = 1, z = 2 throughout (matching the paper's naming).
#pragma once

#include "core/history.hpp"

namespace optm::core::paper {

inline constexpr ObjId kX = 0;
inline constexpr ObjId kY = 1;
inline constexpr ObjId kZ = 2;

/// Figure 1 / history H1 (§4): satisfies global atomicity (with real-time
/// order) and recoverability, yet aborted T2 observes an inconsistent state
/// — the paper's separating example against all pre-existing criteria.
///
///   H1 = <write1(x,1), tryC1, C1, read2(x,1),
///         write3(x,2), write3(y,2), tryC3, C3,
///         read2(y,2), tryC2, A2>
[[nodiscard]] History fig1_h1();

/// H2 (§4): a sequential history equivalent to H1.
[[nodiscard]] History h2();

/// H3 (§4): incomplete history used to illustrate Complete(H):
///   H3 = <write1(x,1), tryC1, read2(x,1)>
[[nodiscard]] History h3();

/// H4 (§5.2): the commit-pending subtlety. T3 reads the value written by
/// commit-pending T2 while T1 subsequently reads the old value of y; opaque
/// (T1 serializes before T2, T3 after), and the optimization multi-version
/// TMs exploit.
///
///   H4 = <read1(x,0), write2(x,5), write2(y,5), tryC2,
///         read3(y,5), read1(y,0)>
[[nodiscard]] History h4();

/// Figure 2 / history H5 (§5.3): the paper's fully worked opaque history,
/// with overlapping operations, witness serialization T2 · T1 · T3.
[[nodiscard]] History fig2_h5();

/// §2's motivating zombie: invariants y = x² and x >= 2 hold initially
/// (x=4, y=16); T1 executes {x:=2; y:=4; commit}; concurrent T2 reads the
/// OLD x (4) and the NEW y (4), so computing 1/(y-x) divides by zero even
/// though T2 later aborts. Not opaque.
[[nodiscard]] History section2_zombie();

/// §3.4: k transactions concurrently increment a shared counter (semantic
/// counter object, inc is commutative) and all commit. Opaque — showcases
/// why the model admits arbitrary objects.
[[nodiscard]] History counter_increments(std::size_t k);

/// §3.4, read/write encoding: each of the k transactions reads the register
/// (value 0) and writes back 1; all commit. NOT serializable (hence not
/// opaque) for k >= 2 — only one such transaction may commit.
[[nodiscard]] History register_increments_all_commit(std::size_t k);

/// Same, but only the first transaction commits; the rest abort. Opaque.
[[nodiscard]] History register_increments_one_commits(std::size_t k);

/// §3.6: k transactions blindly write x, y, z (values i) with interleaved
/// operations, all commit. Opaque, but NOT rigorous — the example showing
/// rigorous scheduling is too strong for TM.
[[nodiscard]] History blind_overlapping_writes(std::size_t k);

/// §3.5's observation: strict recoverability forbids the concurrent counter
/// increments of §3.4 (each modifies the same object before the others
/// complete) even though they are perfectly opaque.
[[nodiscard]] inline History recoverability_counterexample() {
  return counter_increments(3);
}

}  // namespace optm::core::paper
