#include "core/random_history.hpp"

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace optm::core {

namespace {

struct TxPlan {
  TxId id;
  std::size_t ops_left;
  bool has_pending_response = false;
  Event pending_inv{};
  enum class End : std::uint8_t {
    kCommit,
    kCommitFails,
    kVoluntaryAbort,
    kCommitPending,
    kLive
  } end = End::kCommit;
  bool terminated = false;
  std::map<ObjId, Value> write_buffer;
};

}  // namespace

History random_history(const RandomHistoryParams& params) {
  util::Xoshiro256 rng(params.seed);
  History h(ObjectModel::registers(params.num_objects, 0));

  std::vector<Value> committed(params.num_objects, 0);
  std::vector<Value> all_written{0};  // candidate pool for adversarial reads
  Value next_value = 1;               // value-unique writes

  std::vector<TxPlan> plans;
  for (std::size_t i = 0; i < params.num_txs; ++i) {
    TxPlan plan;
    plan.id = static_cast<TxId>(i + 1);
    plan.ops_left = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(params.min_ops_per_tx),
        static_cast<std::int64_t>(params.max_ops_per_tx)));
    const double r = rng.uniform();
    if (r < params.leave_live_prob) {
      plan.end = TxPlan::End::kLive;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob) {
      plan.end = TxPlan::End::kCommitPending;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob +
                       params.voluntary_abort_prob) {
      plan.end = TxPlan::End::kVoluntaryAbort;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob +
                       params.voluntary_abort_prob + params.commit_fail_prob) {
      plan.end = TxPlan::End::kCommitFails;
    } else {
      plan.end = TxPlan::End::kCommit;
    }
    plans.push_back(plan);
  }

  auto all_done = [&plans] {
    for (const auto& p : plans)
      if (!p.terminated) return false;
    return true;
  };

  while (!all_done()) {
    // Pick a random unfinished transaction.
    std::size_t idx = rng.below(plans.size());
    while (plans[idx].terminated) idx = rng.below(plans.size());
    TxPlan& tx = plans[idx];

    if (tx.has_pending_response) {
      // Deliver the delayed response now.
      const Event& inv = tx.pending_inv;
      Value ret = kOk;
      if (inv.op == OpCode::kRead) {
        const auto own = tx.write_buffer.find(inv.obj);
        if (own != tx.write_buffer.end()) {
          ret = own->second;
        } else if (params.value_model == ValueModel::kCoherent) {
          ret = committed[inv.obj];
        } else {
          ret = all_written[rng.below(all_written.size())];
        }
      }
      h.append(ev::ret(tx.id, inv.obj, inv.op, inv.arg, ret));
      tx.has_pending_response = false;
      continue;
    }

    if (tx.ops_left > 0) {
      --tx.ops_left;
      const ObjId obj = static_cast<ObjId>(rng.below(params.num_objects));
      Event inv;
      if (rng.chance(params.write_prob)) {
        inv = ev::inv(tx.id, obj, OpCode::kWrite, next_value);
        tx.write_buffer[obj] = next_value;
        all_written.push_back(next_value);
        ++next_value;
      } else {
        inv = ev::inv(tx.id, obj, OpCode::kRead);
      }
      h.append(inv);
      tx.pending_inv = inv;
      tx.has_pending_response = true;
      if (!rng.chance(params.split_op_prob)) {
        // Deliver the response immediately (the common case).
        Value ret = kOk;
        if (inv.op == OpCode::kRead) {
          const auto own = tx.write_buffer.find(inv.obj);
          if (own != tx.write_buffer.end() && inv.op == OpCode::kRead) {
            ret = own->second;
          } else if (params.value_model == ValueModel::kCoherent) {
            ret = committed[inv.obj];
          } else {
            ret = all_written[rng.below(all_written.size())];
          }
        }
        h.append(ev::ret(tx.id, inv.obj, inv.op, inv.arg, ret));
        tx.has_pending_response = false;
      }
      continue;
    }

    // Terminate.
    switch (tx.end) {
      case TxPlan::End::kCommit:
        h.append(ev::try_commit(tx.id));
        h.append(ev::commit(tx.id));
        for (const auto& [obj, v] : tx.write_buffer) committed[obj] = v;
        break;
      case TxPlan::End::kCommitFails:
        h.append(ev::try_commit(tx.id));
        h.append(ev::abort(tx.id));
        break;
      case TxPlan::End::kVoluntaryAbort:
        h.append(ev::try_abort(tx.id));
        h.append(ev::abort(tx.id));
        break;
      case TxPlan::End::kCommitPending:
        h.append(ev::try_commit(tx.id));
        break;
      case TxPlan::End::kLive:
        break;
    }
    tx.terminated = true;
  }
  return h;
}

// ---------------------------------------------------------------------------
// random_mv_history: window-free-recorded MV executions
// ---------------------------------------------------------------------------

namespace {

/// One simulated MV process (MvStm's per-slot state), driven by the
/// deterministic scheduler below.
struct MvProc {
  enum class State : std::uint8_t {
    kIdle,        // between transactions
    kRunning,     // transaction active, operations left
    kCommitting,  // commit point taken, C record still in flight
  };
  State state = State::kIdle;
  TxId tx = kNoTx;
  bool read_only = false;
  bool snapped = false;
  std::uint64_t snapshot = 0;  // begin-time (first-op) snapshot bound
  std::size_t ops_left = 0;
  std::map<ObjId, std::uint64_t> reads;  // var -> stamp read (update txs)
  std::map<ObjId, Value> writes;
};

/// An update commit whose serialization point (stamp) is taken but whose
/// C record has not been flushed yet — the vars it wrote stay locked, the
/// versions invisible, exactly as MvStm's seqlocks would have it.
struct PendingCommit {
  std::size_t due_step = 0;
  TxId tx = kNoTx;
  std::uint64_t stamp = 0;  // wv
  std::map<ObjId, Value> writes;
};

}  // namespace

History random_mv_history(const MvHistoryParams& params) {
  util::Xoshiro256 rng(params.seed);
  History h(ObjectModel::registers(params.num_objects, 0));

  struct Version {
    std::uint64_t stamp;
    Value value;
  };
  // Visible committed chains (newest last); stamp 0 is the initial version.
  std::vector<std::vector<Version>> chains(params.num_objects, {{0, 0}});
  std::vector<TxId> locked_by(params.num_objects, kNoTx);
  std::vector<PendingCommit> pending;
  std::vector<MvProc> procs(std::max<std::size_t>(params.num_procs, 1));

  std::uint64_t clock = 0;  // commit stamps (wv)
  Value next_value = 1;     // value-unique writes
  TxId next_tx = 1;
  std::size_t started = 0;

  const auto flush = [&](const PendingCommit& pc) {
    h.append(ev::commit(pc.tx, 2 * pc.stamp));
    for (const auto& [obj, value] : pc.writes) {
      chains[obj].push_back({pc.stamp, value});
      locked_by[obj] = kNoTx;
    }
    for (MvProc& p : procs) {
      if (p.state == MvProc::State::kCommitting && p.tx == pc.tx) {
        p.state = MvProc::State::kIdle;
      }
    }
  };

  const auto newest_visible = [&](ObjId obj,
                                  std::uint64_t bound) -> const Version& {
    const std::vector<Version>& chain = chains[obj];
    for (std::size_t i = chain.size(); i-- > 0;) {
      if (chain[i].stamp <= bound) return chain[i];
    }
    return chain.front();  // stamp 0 is always <= bound
  };

  const auto all_done = [&] {
    if (started < params.num_txs) return false;
    for (const MvProc& p : procs) {
      if (p.state != MvProc::State::kIdle) return false;
    }
    return pending.empty();
  };

  for (std::size_t step = 0; !all_done(); ++step) {
    // Flush every C record that has come due (in due order — the drift
    // between due steps is what reorders the record stream).
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].due_step <= step) {
        flush(pending[i]);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    MvProc& p = procs[rng.below(procs.size())];
    if (p.state == MvProc::State::kCommitting) continue;  // blocked on flush

    if (p.state == MvProc::State::kIdle) {
      if (started >= params.num_txs) continue;
      ++started;
      p.state = MvProc::State::kRunning;
      p.tx = next_tx++;
      p.read_only = rng.chance(params.read_only_prob);
      p.snapped = false;
      p.snapshot = 0;
      p.ops_left = static_cast<std::size_t>(
          rng.range(static_cast<std::int64_t>(params.min_ops_per_tx),
                    static_cast<std::int64_t>(params.max_ops_per_tx)));
      p.reads.clear();
      p.writes.clear();
      continue;
    }

    if (p.ops_left > 0) {
      const ObjId obj = static_cast<ObjId>(rng.below(params.num_objects));
      if (!p.read_only && rng.chance(params.write_prob)) {
        const Value v = next_value++;
        h.append(ev::inv(p.tx, obj, OpCode::kWrite, v));
        if (!p.snapped) {  // writes pin the snapshot too (first access)
          p.snapshot = clock;
          p.snapped = true;
        }
        p.writes[obj] = v;
        h.append(ev::ret(p.tx, obj, OpCode::kWrite, v, kOk));
        --p.ops_left;
        continue;
      }
      // Snapshot read. A locked var means a rival holds its commit point —
      // MvStm's seqlock would spin, so the process just retries later.
      const auto own = p.writes.find(obj);
      if (own == p.writes.end() && locked_by[obj] != kNoTx) continue;
      h.append(ev::inv(p.tx, obj, OpCode::kRead));
      if (!p.snapped) {
        p.snapshot = clock;
        p.snapped = true;
      }
      if (own != p.writes.end()) {
        // Local read: answered from the write buffer, never stamped.
        h.append(ev::ret(p.tx, obj, OpCode::kRead, 0, own->second));
      } else {
        const Version& v = newest_visible(obj, p.snapshot);
        p.reads.emplace(obj, v.stamp);
        if (params.stamp_reads) {
          // The (2·snapshot+1, version) pair MvStm records window-free:
          // the version named is the writer's wv (stamp-space open rank
          // 2·ver), truthful by the snapshot-read construction.
          h.append(ev::ret(p.tx, obj, OpCode::kRead, 0, v.value,
                           2 * p.snapshot + 1, v.stamp));
        } else {
          h.append(ev::ret(p.tx, obj, OpCode::kRead, 0, v.value));
        }
      }
      --p.ops_left;
      continue;
    }

    // Terminate. Snapshot transactions (read-only or with an empty write
    // set) serialize at their snapshot; updates take the commit point.
    if (!p.snapped) {
      p.snapshot = clock;
      p.snapped = true;
    }
    if (p.writes.empty()) {
      h.append(ev::try_commit(p.tx));
      h.append(ev::commit(p.tx, 2 * p.snapshot + 1));
      p.state = MvProc::State::kIdle;
      continue;
    }
    // First-committer-wins validation: every read var unlocked and still
    // newest at the snapshot bound.
    bool valid = true;
    for (const auto& [obj, stamp] : p.reads) {
      if ((locked_by[obj] != kNoTx && locked_by[obj] != p.tx) ||
          chains[obj].back().stamp > p.snapshot) {
        valid = false;
        break;
      }
    }
    // The write locks themselves: a locked write var means a rival commit
    // is in flight — wait for it (retry this step later).
    bool wait = false;
    for (const auto& [obj, value] : p.writes) {
      if (locked_by[obj] != kNoTx && locked_by[obj] != p.tx) wait = true;
    }
    if (wait && valid) continue;
    h.append(ev::try_commit(p.tx));
    if (!valid) {
      h.append(ev::abort(p.tx, 2 * p.snapshot + 1));
      p.state = MvProc::State::kIdle;
      continue;
    }
    const std::uint64_t wv = ++clock;  // the commit point
    for (const auto& [obj, value] : p.writes) locked_by[obj] = p.tx;
    PendingCommit pc{step, p.tx, wv, p.writes};
    if (rng.chance(params.record_delay_prob)) {
      pc.due_step = step + 1 +
                    rng.below(std::max<std::size_t>(
                        params.max_record_delay_steps, 1));
      pending.push_back(pc);
      p.state = MvProc::State::kCommitting;
    } else {
      flush(pc);
      p.state = MvProc::State::kIdle;
    }
  }
  return h;
}

}  // namespace optm::core
