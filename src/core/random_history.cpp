#include "core/random_history.hpp"

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace optm::core {

namespace {

struct TxPlan {
  TxId id;
  std::size_t ops_left;
  bool has_pending_response = false;
  Event pending_inv{};
  enum class End : std::uint8_t {
    kCommit,
    kCommitFails,
    kVoluntaryAbort,
    kCommitPending,
    kLive
  } end = End::kCommit;
  bool terminated = false;
  std::map<ObjId, Value> write_buffer;
};

}  // namespace

History random_history(const RandomHistoryParams& params) {
  util::Xoshiro256 rng(params.seed);
  History h(ObjectModel::registers(params.num_objects, 0));

  std::vector<Value> committed(params.num_objects, 0);
  std::vector<Value> all_written{0};  // candidate pool for adversarial reads
  Value next_value = 1;               // value-unique writes

  std::vector<TxPlan> plans;
  for (std::size_t i = 0; i < params.num_txs; ++i) {
    TxPlan plan;
    plan.id = static_cast<TxId>(i + 1);
    plan.ops_left = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(params.min_ops_per_tx),
        static_cast<std::int64_t>(params.max_ops_per_tx)));
    const double r = rng.uniform();
    if (r < params.leave_live_prob) {
      plan.end = TxPlan::End::kLive;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob) {
      plan.end = TxPlan::End::kCommitPending;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob +
                       params.voluntary_abort_prob) {
      plan.end = TxPlan::End::kVoluntaryAbort;
    } else if (r < params.leave_live_prob + params.leave_commit_pending_prob +
                       params.voluntary_abort_prob + params.commit_fail_prob) {
      plan.end = TxPlan::End::kCommitFails;
    } else {
      plan.end = TxPlan::End::kCommit;
    }
    plans.push_back(plan);
  }

  auto all_done = [&plans] {
    for (const auto& p : plans)
      if (!p.terminated) return false;
    return true;
  };

  while (!all_done()) {
    // Pick a random unfinished transaction.
    std::size_t idx = rng.below(plans.size());
    while (plans[idx].terminated) idx = rng.below(plans.size());
    TxPlan& tx = plans[idx];

    if (tx.has_pending_response) {
      // Deliver the delayed response now.
      const Event& inv = tx.pending_inv;
      Value ret = kOk;
      if (inv.op == OpCode::kRead) {
        const auto own = tx.write_buffer.find(inv.obj);
        if (own != tx.write_buffer.end()) {
          ret = own->second;
        } else if (params.value_model == ValueModel::kCoherent) {
          ret = committed[inv.obj];
        } else {
          ret = all_written[rng.below(all_written.size())];
        }
      }
      h.append(ev::ret(tx.id, inv.obj, inv.op, inv.arg, ret));
      tx.has_pending_response = false;
      continue;
    }

    if (tx.ops_left > 0) {
      --tx.ops_left;
      const ObjId obj = static_cast<ObjId>(rng.below(params.num_objects));
      Event inv;
      if (rng.chance(params.write_prob)) {
        inv = ev::inv(tx.id, obj, OpCode::kWrite, next_value);
        tx.write_buffer[obj] = next_value;
        all_written.push_back(next_value);
        ++next_value;
      } else {
        inv = ev::inv(tx.id, obj, OpCode::kRead);
      }
      h.append(inv);
      tx.pending_inv = inv;
      tx.has_pending_response = true;
      if (!rng.chance(params.split_op_prob)) {
        // Deliver the response immediately (the common case).
        Value ret = kOk;
        if (inv.op == OpCode::kRead) {
          const auto own = tx.write_buffer.find(inv.obj);
          if (own != tx.write_buffer.end() && inv.op == OpCode::kRead) {
            ret = own->second;
          } else if (params.value_model == ValueModel::kCoherent) {
            ret = committed[inv.obj];
          } else {
            ret = all_written[rng.below(all_written.size())];
          }
        }
        h.append(ev::ret(tx.id, inv.obj, inv.op, inv.arg, ret));
        tx.has_pending_response = false;
      }
      continue;
    }

    // Terminate.
    switch (tx.end) {
      case TxPlan::End::kCommit:
        h.append(ev::try_commit(tx.id));
        h.append(ev::commit(tx.id));
        for (const auto& [obj, v] : tx.write_buffer) committed[obj] = v;
        break;
      case TxPlan::End::kCommitFails:
        h.append(ev::try_commit(tx.id));
        h.append(ev::abort(tx.id));
        break;
      case TxPlan::End::kVoluntaryAbort:
        h.append(ev::try_abort(tx.id));
        h.append(ev::abort(tx.id));
        break;
      case TxPlan::End::kCommitPending:
        h.append(ev::try_commit(tx.id));
        break;
      case TxPlan::End::kLive:
        break;
    }
    tx.terminated = true;
  }
  return h;
}

}  // namespace optm::core
