#include "core/object_spec.hpp"

#include <deque>
#include <set>

namespace optm::core {

namespace {

void encode_value(std::string& out, Value v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((u >> (i * 8)) & 0xff));
}

// Unsupported operations are modeled as returning kEmpty; legality checking
// additionally rejects them via ObjectSpec::supports before replay.
class RegisterState final : public ObjectState {
 public:
  explicit RegisterState(Value v) noexcept : v_(v) {}
  Value apply(OpCode op, Value arg) override {
    switch (op) {
      case OpCode::kRead: return v_;
      case OpCode::kWrite: v_ = arg; return kOk;
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<RegisterState>(v_);
  }
  void encode(std::string& out) const override {
    out.push_back('R');
    encode_value(out, v_);
  }

 private:
  Value v_;
};

class CounterState final : public ObjectState {
 public:
  explicit CounterState(Value v) noexcept : v_(v) {}
  Value apply(OpCode op, Value) override {
    switch (op) {
      case OpCode::kInc: ++v_; return kOk;
      case OpCode::kDec: --v_; return kOk;
      case OpCode::kGet: return v_;
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<CounterState>(v_);
  }
  void encode(std::string& out) const override {
    out.push_back('C');
    encode_value(out, v_);
  }

 private:
  Value v_;
};

class FetchAddState final : public ObjectState {
 public:
  explicit FetchAddState(Value v) noexcept : v_(v) {}
  Value apply(OpCode op, Value arg) override {
    switch (op) {
      case OpCode::kFetchAdd: {
        const Value old = v_;
        v_ += arg;
        return old;
      }
      case OpCode::kGet: return v_;
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<FetchAddState>(v_);
  }
  void encode(std::string& out) const override {
    out.push_back('F');
    encode_value(out, v_);
  }

 private:
  Value v_;
};

class QueueState final : public ObjectState {
 public:
  QueueState() = default;
  explicit QueueState(std::deque<Value> q) : q_(std::move(q)) {}
  Value apply(OpCode op, Value arg) override {
    switch (op) {
      case OpCode::kEnq: q_.push_back(arg); return kOk;
      case OpCode::kDeq: {
        if (q_.empty()) return kEmpty;
        const Value front = q_.front();
        q_.pop_front();
        return front;
      }
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<QueueState>(q_);
  }
  void encode(std::string& out) const override {
    out.push_back('Q');
    encode_value(out, static_cast<Value>(q_.size()));
    for (Value v : q_) encode_value(out, v);
  }

 private:
  std::deque<Value> q_;
};

class StackState final : public ObjectState {
 public:
  StackState() = default;
  explicit StackState(std::vector<Value> s) : s_(std::move(s)) {}
  Value apply(OpCode op, Value arg) override {
    switch (op) {
      case OpCode::kPush: s_.push_back(arg); return kOk;
      case OpCode::kPop: {
        if (s_.empty()) return kEmpty;
        const Value top = s_.back();
        s_.pop_back();
        return top;
      }
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<StackState>(s_);
  }
  void encode(std::string& out) const override {
    out.push_back('S');
    encode_value(out, static_cast<Value>(s_.size()));
    for (Value v : s_) encode_value(out, v);
  }

 private:
  std::vector<Value> s_;
};

class SetState final : public ObjectState {
 public:
  SetState() = default;
  explicit SetState(std::set<Value> s) : s_(std::move(s)) {}
  Value apply(OpCode op, Value arg) override {
    switch (op) {
      case OpCode::kInsert: return s_.insert(arg).second ? 1 : 0;
      case OpCode::kErase: return s_.erase(arg) > 0 ? 1 : 0;
      case OpCode::kContains: return s_.count(arg) > 0 ? 1 : 0;
      default: return kEmpty;
    }
  }
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<SetState>(s_);
  }
  void encode(std::string& out) const override {
    out.push_back('T');
    encode_value(out, static_cast<Value>(s_.size()));
    for (Value v : s_) encode_value(out, v);
  }

 private:
  std::set<Value> s_;
};

}  // namespace

std::unique_ptr<ObjectState> RegisterSpec::initial() const {
  return std::make_unique<RegisterState>(initial_);
}
std::unique_ptr<ObjectState> CounterSpec::initial() const {
  return std::make_unique<CounterState>(initial_);
}
std::unique_ptr<ObjectState> FetchAddSpec::initial() const {
  return std::make_unique<FetchAddState>(initial_);
}
std::unique_ptr<ObjectState> QueueSpec::initial() const {
  return std::make_unique<QueueState>();
}
std::unique_ptr<ObjectState> StackSpec::initial() const {
  return std::make_unique<StackState>();
}
std::unique_ptr<ObjectState> SetSpec::initial() const {
  return std::make_unique<SetState>();
}

ObjectModel ObjectModel::registers(std::size_t k, Value initial) {
  ObjectModel m;
  const auto spec = std::make_shared<const RegisterSpec>(initial);
  for (std::size_t i = 0; i < k; ++i) m.add(spec);
  return m;
}

SystemState::SystemState(const ObjectModel& model) {
  states_.reserve(model.size());
  for (ObjId i = 0; i < model.size(); ++i)
    states_.push_back(model.spec(i).initial());
}

SystemState::SystemState(const SystemState& other) {
  states_.reserve(other.states_.size());
  for (const auto& s : other.states_) states_.push_back(s->clone());
}

SystemState& SystemState::operator=(const SystemState& other) {
  if (this == &other) return *this;
  states_.clear();
  states_.reserve(other.states_.size());
  for (const auto& s : other.states_) states_.push_back(s->clone());
  return *this;
}

std::string SystemState::encode() const {
  std::string out;
  for (const auto& s : states_) s->encode(out);
  return out;
}

}  // namespace optm::core
