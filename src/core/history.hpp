// Transaction histories (paper §4) and their derived notions: projections,
// equivalence, well-formedness, transaction status, real-time order,
// completions Complete(H), and the §5.4 register-history notions
// nonlocal(H), local consistency and consistency.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/object_spec.hpp"
#include "core/types.hpp"

namespace optm::core {

/// Status of a transaction in a history (paper §4, "Status of transactions").
enum class TxStatus : std::uint8_t {
  kCommitted,      // last event C_i
  kAborted,        // last event A_i
  kCommitPending,  // live, has issued tryC_i
  kLive,           // live, no tryC_i yet
};

[[nodiscard]] constexpr const char* to_string(TxStatus s) noexcept {
  switch (s) {
    case TxStatus::kCommitted: return "committed";
    case TxStatus::kAborted: return "aborted";
    case TxStatus::kCommitPending: return "commit-pending";
    case TxStatus::kLive: return "live";
  }
  return "?";
}

/// A (high-level) history: the sequence of all invocation and response
/// events of an execution, together with the object model giving each
/// shared object's sequential specification.
class History {
 public:
  History() = default;
  explicit History(ObjectModel model) : model_(std::move(model)) {}

  History& append(Event e) {
    events_.push_back(e);
    return *this;
  }

  /// Bulk append of an event run — THE conversion from the drain side
  /// (stm::EventBatch::span(), a log reader's block) into a history.
  History& append_batch(std::span<const Event> batch) {
    events_.insert(events_.end(), batch.begin(), batch.end());
    return *this;
  }

  /// A history over `model` from one contiguous event run.
  [[nodiscard]] static History from_batch(ObjectModel model,
                                          std::span<const Event> batch) {
    History h(std::move(model));
    h.append_batch(batch);
    return h;
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const Event& operator[](std::size_t i) const { return events_[i]; }
  [[nodiscard]] const ObjectModel& model() const noexcept { return model_; }

  /// Transactions in H, ordered by first event (T_i ∈ H iff H|T_i nonempty).
  [[nodiscard]] std::vector<TxId> transactions() const;
  [[nodiscard]] bool contains(TxId tx) const;

  // --- projections -------------------------------------------------------

  /// H|Ti: longest subsequence with only Ti's events.
  [[nodiscard]] History project_tx(TxId tx) const;
  /// H|ob: longest subsequence with only operation events on ob.
  [[nodiscard]] History project_obj(ObjId obj) const;
  /// Committed-transactions-only subsequence (used by serializability).
  [[nodiscard]] History committed_only() const;

  /// H ≡ H': same transactions, identical H|Ti for every Ti.
  [[nodiscard]] bool equivalent(const History& other) const;

  /// H · H' concatenation.
  [[nodiscard]] History concat(const History& other) const;

  // --- well-formedness ----------------------------------------------------

  /// Paper §4 "we assume every history is well-formed": per-transaction
  /// alternation of invocations and matching responses, with termination
  /// rules (nothing after C/A; only C/A after tryC; only A after tryA),
  /// and every operation supported by its object's specification.
  [[nodiscard]] bool well_formed(std::string* why = nullptr) const;

  /// The pending invocation event of `tx`, if any.
  [[nodiscard]] std::optional<Event> pending_invocation(TxId tx) const;

  // --- status -------------------------------------------------------------

  [[nodiscard]] TxStatus status(TxId tx) const;
  [[nodiscard]] bool is_committed(TxId tx) const { return status(tx) == TxStatus::kCommitted; }
  [[nodiscard]] bool is_aborted(TxId tx) const { return status(tx) == TxStatus::kAborted; }
  [[nodiscard]] bool is_commit_pending(TxId tx) const {
    return status(tx) == TxStatus::kCommitPending;
  }
  [[nodiscard]] bool is_completed(TxId tx) const {
    const auto s = status(tx);
    return s == TxStatus::kCommitted || s == TxStatus::kAborted;
  }
  [[nodiscard]] bool is_live(TxId tx) const { return !is_completed(tx); }
  /// Aborted without having issued tryA.
  [[nodiscard]] bool is_forcefully_aborted(TxId tx) const;

  // --- real-time order ------------------------------------------------------

  /// Ti ≺_H Tj: Ti completed and Tj's first event follows Ti's last event.
  [[nodiscard]] bool precedes(TxId a, TxId b) const;
  [[nodiscard]] bool concurrent(TxId a, TxId b) const {
    return contains(a) && contains(b) && a != b && !precedes(a, b) && !precedes(b, a);
  }
  /// ≺_other ⊆ ≺_this (this history preserves the real-time order of `other`).
  [[nodiscard]] bool preserves_real_time_order_of(const History& other) const;

  /// No two transactions concurrent.
  [[nodiscard]] bool is_sequential(std::string* why = nullptr) const;
  /// No live transaction.
  [[nodiscard]] bool is_complete() const;

  // --- Complete(H) ----------------------------------------------------------

  /// Canonical representatives of Complete(H): one history per assignment of
  /// commit/abort to the commit-pending transactions (2^p total); every other
  /// live transaction is aborted (pending operation -> A; idle -> tryC, A).
  /// Inserted events are appended at the end in transaction-id order, which
  /// is without loss of generality for opacity (equivalence only constrains
  /// per-transaction subsequences and the real-time order used is ≺_H).
  /// Throws std::length_error if 2^p exceeds `max_results`.
  [[nodiscard]] std::vector<History> completions(std::size_t max_results = 1024) const;

  // --- §5.4 register-history notions ----------------------------------------

  /// nonlocal(H): H without local operation executions. A read of r by Ti is
  /// local if preceded in H|Ti by a write of Ti to r; a write is local if
  /// followed in H|Ti by another write of Ti to r.
  [[nodiscard]] History nonlocal() const;

  /// Every local read returns the transaction's own latest preceding write.
  [[nodiscard]] bool locally_consistent(std::string* why = nullptr) const;

  /// Locally consistent, and every non-local read in nonlocal(H) returns a
  /// value written in nonlocal(H) (the object's initial value counts as
  /// written by the implicit initializing transaction T0 of §5.4).
  [[nodiscard]] bool consistent(std::string* why = nullptr) const;

  // --- rendering --------------------------------------------------------------

  /// One event per line: "  3: ret2(x0, read -> 1)".
  [[nodiscard]] std::string str() const;
  /// Figure-style per-transaction lanes (like the paper's Figures 1 and 2).
  [[nodiscard]] std::string timeline() const;

 private:
  ObjectModel model_;
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// HistoryIndex: per-transaction digest used by all checkers
// ---------------------------------------------------------------------------

/// One operation execution (paper: exec_i(ob, op, args, val)); if the
/// response never arrived, `has_response` is false (pending invocation).
struct OpExec {
  ObjId obj{kNoObj};
  OpCode op{OpCode::kRead};
  Value arg{0};
  Value ret{0};
  bool has_response{false};
  std::size_t inv_pos{0};  // index of the invocation event in H
  std::size_t ret_pos{0};  // index of the response event (if any)
};

struct TxInfo {
  TxId id{kNoTx};
  TxStatus status{TxStatus::kLive};
  bool forcefully_aborted{false};
  std::size_t first_pos{0};  // index of first event in H
  std::size_t last_pos{0};   // index of last event in H
  std::vector<OpExec> ops;   // in program order; at most the last one pending
  bool read_only{true};      // no state-changing op (per the object specs)
};

/// Immutable digest of a well-formed history: transactions with their
/// operation sequences, statuses, and the real-time order. Checkers build
/// one of these instead of re-scanning the raw event list.
class HistoryIndex {
 public:
  /// Precondition: h.well_formed(). Throws std::invalid_argument otherwise.
  explicit HistoryIndex(const History& h);

  [[nodiscard]] const History& history() const noexcept { return *h_; }
  [[nodiscard]] const std::vector<TxInfo>& txs() const noexcept { return txs_; }
  [[nodiscard]] std::size_t num_txs() const noexcept { return txs_.size(); }

  /// Internal dense index of a TxId (txs()[i].id == tx).
  [[nodiscard]] std::size_t pos_of(TxId tx) const;

  /// Real-time order on dense indices: txs()[i] ≺_H txs()[j].
  [[nodiscard]] bool precedes(std::size_t i, std::size_t j) const noexcept {
    const auto& a = txs_[i];
    const auto& b = txs_[j];
    return (a.status == TxStatus::kCommitted || a.status == TxStatus::kAborted) &&
           a.last_pos < b.first_pos;
  }

 private:
  const History* h_;
  std::vector<TxInfo> txs_;
};

}  // namespace optm::core
