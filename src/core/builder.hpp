// Fluent construction of histories for tests, examples and the paper's
// worked figures. The builder appends events in the *global* order the
// caller dictates, which is how interleavings are expressed:
//
//   auto h = HistoryBuilder::registers(2)
//                .write(1, x, 1).commit_now(1)   // T1: write x:=1; commit
//                .read(2, x, 1)                  // T2 reads 1
//                .write(3, x, 2).write(3, y, 2).commit_now(3)
//                .read(2, y, 2).tryc(2).abort(2) // T2 forcefully aborted
//                .build();
#pragma once

#include <unordered_map>

#include "core/history.hpp"

namespace optm::core {

class HistoryBuilder {
 public:
  explicit HistoryBuilder(ObjectModel model) : h_(std::move(model)) {}

  /// Model of k registers initialized to `initial`.
  [[nodiscard]] static HistoryBuilder registers(std::size_t k, Value initial = 0) {
    return HistoryBuilder(ObjectModel::registers(k, initial));
  }

  // --- complete operation executions (inv immediately followed by ret) ----

  HistoryBuilder& exec(TxId tx, ObjId obj, OpCode op, Value arg, Value ret) {
    h_.append(ev::inv(tx, obj, op, arg));
    h_.append(ev::ret(tx, obj, op, arg, ret));
    return *this;
  }
  HistoryBuilder& read(TxId tx, ObjId obj, Value ret) {
    return exec(tx, obj, OpCode::kRead, 0, ret);
  }
  HistoryBuilder& write(TxId tx, ObjId obj, Value v) {
    return exec(tx, obj, OpCode::kWrite, v, kOk);
  }
  HistoryBuilder& inc(TxId tx, ObjId obj) { return exec(tx, obj, OpCode::kInc, 0, kOk); }
  HistoryBuilder& dec(TxId tx, ObjId obj) { return exec(tx, obj, OpCode::kDec, 0, kOk); }
  HistoryBuilder& get(TxId tx, ObjId obj, Value ret) {
    return exec(tx, obj, OpCode::kGet, 0, ret);
  }
  HistoryBuilder& fetch_add(TxId tx, ObjId obj, Value d, Value old) {
    return exec(tx, obj, OpCode::kFetchAdd, d, old);
  }
  HistoryBuilder& enq(TxId tx, ObjId obj, Value v) {
    return exec(tx, obj, OpCode::kEnq, v, kOk);
  }
  HistoryBuilder& deq(TxId tx, ObjId obj, Value ret) {
    return exec(tx, obj, OpCode::kDeq, 0, ret);
  }
  HistoryBuilder& push(TxId tx, ObjId obj, Value v) {
    return exec(tx, obj, OpCode::kPush, v, kOk);
  }
  HistoryBuilder& pop(TxId tx, ObjId obj, Value ret) {
    return exec(tx, obj, OpCode::kPop, 0, ret);
  }
  HistoryBuilder& insert(TxId tx, ObjId obj, Value v, Value ret = 1) {
    return exec(tx, obj, OpCode::kInsert, v, ret);
  }
  HistoryBuilder& erase(TxId tx, ObjId obj, Value v, Value ret = 1) {
    return exec(tx, obj, OpCode::kErase, v, ret);
  }
  HistoryBuilder& contains(TxId tx, ObjId obj, Value v, Value ret) {
    return exec(tx, obj, OpCode::kContains, v, ret);
  }

  // --- split events, for overlapping operations (as in Figure 2 / H5) -----

  HistoryBuilder& inv(TxId tx, ObjId obj, OpCode op, Value arg = 0) {
    h_.append(ev::inv(tx, obj, op, arg));
    pending_[tx] = ev::inv(tx, obj, op, arg);
    return *this;
  }
  /// Completes `tx`'s pending invocation with return value `retv`.
  HistoryBuilder& ret(TxId tx, Value retv) {
    const Event inv_e = pending_.at(tx);
    pending_.erase(tx);
    h_.append(ev::ret(tx, inv_e.obj, inv_e.op, inv_e.arg, retv));
    return *this;
  }

  // --- termination events ---------------------------------------------------

  HistoryBuilder& tryc(TxId tx) { h_.append(ev::try_commit(tx)); return *this; }
  HistoryBuilder& commit(TxId tx) { h_.append(ev::commit(tx)); return *this; }
  HistoryBuilder& trya(TxId tx) { h_.append(ev::try_abort(tx)); return *this; }
  HistoryBuilder& abort(TxId tx) { h_.append(ev::abort(tx)); return *this; }
  HistoryBuilder& commit_now(TxId tx) { return tryc(tx).commit(tx); }
  HistoryBuilder& abort_now(TxId tx) { return trya(tx).abort(tx); }

  HistoryBuilder& raw(Event e) { h_.append(e); return *this; }

  [[nodiscard]] History build() const { return h_; }

 private:
  History h_;
  std::unordered_map<TxId, Event> pending_;
};

}  // namespace optm::core
