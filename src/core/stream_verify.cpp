#include "core/stream_verify.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/history.hpp"
#include "core/parallel_stream.hpp"
#include "util/pool.hpp"

namespace optm::core {

StreamVerifyResult verify_event_stream(const ObjectModel& model,
                                       const EventPull& next,
                                       const StreamVerifyOptions& options) {
  const std::size_t window = std::max<std::size_t>(options.window_events, 1);
  // The one per-stream concurrency resolution: both the sharded driver
  // and the streaming engines below inherit it, so "0 = auto" means the
  // same thing on every path.
  const VerifyConcurrency conc = resolve_verify_concurrency(
      model.size(), options.num_shards, options.num_threads);
  StreamVerifyResult out;

  // Phase 1: buffer optimistically, hoping the stream fits the window.
  History buffered(model);
  std::span<const Event> carry;  // unconsumed remainder of the last pull
  bool exhausted = false;
  while (buffered.size() < window) {
    carry = next();
    if (carry.empty()) {
      exhausted = true;
      break;
    }
    const std::size_t take = std::min(carry.size(), window - buffered.size());
    buffered.append_batch(carry.first(take));
    carry = carry.subspan(take);
    if (!carry.empty()) break;  // window full mid-pull
  }

  if (exhausted) {
    util::ThreadPool pool(conc.threads);
    ShardVerifyOptions sharded;
    sharded.policy = options.policy;
    sharded.num_shards = options.num_shards;
    const ParallelVerifyResult r = verify_history_sharded(buffered, pool,
                                                          sharded);
    out.certified = r.certified;
    out.violation = r.violation;
    out.events = buffered.size();
    out.used_sharded_driver = true;
    out.shards_used = r.shards_used;
    out.threads_used = conc.threads;
    return out;
  }

  // Phase 2: the stream outgrew the window — fall over to a streaming
  // engine, constructed ONCE for the whole stream (engine state and its
  // thread pool are reused across every window; the old code had no pool
  // here, but its successor pattern — an engine per window — is the churn
  // this guards against). With more than one resolved thread the engine is
  // the parallel certifier (parallel_stream.hpp), whose verdict and flag
  // position match the monitor's exactly; kBlindWriteSmart cannot shard
  // (see parallel_stream.hpp) and single-thread resolutions keep the
  // serial monitor. Replay the buffer, drop it, then feed the rest
  // straight from the source in window-bounded spans.
  const bool parallel = conc.threads > 1 &&
                        options.policy != VersionOrderPolicy::kBlindWriteSmart;
  std::unique_ptr<ParallelStreamCertifier> certifier;
  std::unique_ptr<OnlineCertificateMonitor> monitor;
  if (parallel) {
    ParallelStreamCertifier::Options popts;
    popts.num_shards = options.num_shards;
    popts.num_threads = options.num_threads;
    popts.merge_window_events = std::min(window, std::size_t{1} << 16);
    certifier = std::make_unique<ParallelStreamCertifier>(model,
                                                          options.policy,
                                                          popts);
  } else {
    monitor = std::make_unique<OnlineCertificateMonitor>(model,
                                                         options.policy);
  }
  if (options.reserve_txs != 0 || options.reserve_versions != 0) {
    if (certifier) {
      certifier->reserve(options.reserve_txs, options.reserve_versions);
    } else {
      monitor->reserve(options.reserve_txs, options.reserve_versions);
    }
  }
  // The certifier copies each ingested span into a pipeline chunk, so cap
  // its feed granularity — a multi-megaevent window would otherwise sit
  // queued in RAM up to max_queued_chunks deep.
  const std::size_t feed =
      certifier ? std::min(window, std::size_t{1} << 13) : window;
  const auto ingest_windowed = [&](std::span<const Event> span) {
    while (!span.empty()) {
      std::span<const Event> win = span.first(std::min(span.size(), window));
      span = span.subspan(win.size());
      ++out.windows;
      while (!win.empty()) {
        const std::size_t take = std::min(win.size(), feed);
        if (certifier) {
          (void)certifier->ingest(win.first(take));
        } else {
          (void)monitor->ingest(win.first(take));
        }
        win = win.subspan(take);
      }
    }
  };
  ingest_windowed(buffered.events());
  {
    History drop(model);
    std::swap(buffered, drop);  // release the window's memory
  }
  ingest_windowed(carry);
  for (std::span<const Event> batch = next(); !batch.empty(); batch = next()) {
    ingest_windowed(batch);
  }
  if (certifier) {
    out.certified = certifier->finish();
    out.violation = certifier->violation();
    out.events = certifier->events_fed();
    out.used_parallel_certifier = true;
    out.shards_used = certifier->shards_used();
    out.threads_used = certifier->threads_used();
  } else {
    out.certified = monitor->ok();
    out.violation = monitor->violation();
    out.events = monitor->events_fed();
    out.threads_used = 1;
  }
  return out;
}

}  // namespace optm::core
