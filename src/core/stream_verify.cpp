#include "core/stream_verify.hpp"

#include <algorithm>
#include <utility>

#include "core/history.hpp"

namespace optm::core {

StreamVerifyResult verify_event_stream(const ObjectModel& model,
                                       const EventPull& next,
                                       const StreamVerifyOptions& options) {
  const std::size_t window = std::max<std::size_t>(options.window_events, 1);
  StreamVerifyResult out;

  // Phase 1: buffer optimistically, hoping the stream fits the window.
  History buffered(model);
  std::span<const Event> carry;  // unconsumed remainder of the last pull
  bool exhausted = false;
  while (buffered.size() < window) {
    carry = next();
    if (carry.empty()) {
      exhausted = true;
      break;
    }
    const std::size_t take = std::min(carry.size(), window - buffered.size());
    buffered.append_batch(carry.first(take));
    carry = carry.subspan(take);
    if (!carry.empty()) break;  // window full mid-pull
  }

  if (exhausted) {
    ShardVerifyOptions sharded;
    sharded.policy = options.policy;
    sharded.num_shards = options.num_shards;
    sharded.num_threads = options.num_threads;
    const ParallelVerifyResult r = verify_history_sharded(buffered, sharded);
    out.certified = r.certified;
    out.violation = r.violation;
    out.events = buffered.size();
    out.used_sharded_driver = true;
    out.shards_used = r.shards_used;
    return out;
  }

  // Phase 2: the stream outgrew the window — fall over to the streaming
  // monitor. Replay the buffer, drop it, then feed the rest straight from
  // the source in window-bounded spans. The monitor's verdict and flag
  // position match the driver's on the same events (see online.hpp).
  OnlineCertificateMonitor monitor(model, options.policy);
  if (options.reserve_txs != 0 || options.reserve_versions != 0) {
    monitor.reserve(options.reserve_txs, options.reserve_versions);
  }
  const auto ingest_windowed = [&](std::span<const Event> span) {
    while (!span.empty()) {
      const std::size_t take = std::min(span.size(), window);
      (void)monitor.ingest(span.first(take));
      span = span.subspan(take);
      ++out.windows;
    }
  };
  ingest_windowed(buffered.events());
  {
    History drop(model);
    std::swap(buffered, drop);  // release the window's memory
  }
  ingest_windowed(carry);
  for (std::span<const Event> batch = next(); !batch.empty(); batch = next()) {
    ingest_windowed(batch);
  }
  out.certified = monitor.ok();
  out.violation = monitor.violation();
  out.events = monitor.events_fed();
  return out;
}

}  // namespace optm::core
