#include "core/version_order.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/opacity_graph.hpp"

namespace optm::core {

const char* to_string(CertFlagKind k) noexcept {
  switch (k) {
    case CertFlagKind::kNone: return "none";
    case CertFlagKind::kNotWellFormed: return "not-well-formed";
    case CertFlagKind::kValueNotUnique: return "value-not-unique";
    case CertFlagKind::kLocalInconsistency: return "local-inconsistency";
    case CertFlagKind::kUnwrittenValue: return "unwritten-value";
    case CertFlagKind::kSelfRead: return "self-read";
    case CertFlagKind::kReadFromNonCommitted: return "read-from-non-committed";
    case CertFlagKind::kSnapshotEmpty: return "snapshot-empty";
    case CertFlagKind::kStaleRead: return "stale-read";
    case CertFlagKind::kNotCurrentAtCommit: return "not-current-at-commit";
    case CertFlagKind::kNoReadOnlyPoint: return "no-read-only-point";
    case CertFlagKind::kReadStampMismatch: return "read-stamp-mismatch";
    case CertFlagKind::kSmartReorderFailed: return "smart-reorder-failed";
    case CertFlagKind::kNotOpaque: return "not-opaque";
    case CertFlagKind::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

std::vector<TxId> anchor_order(const History& h) {
  struct Anchor {
    std::size_t pos = 0;
    bool committed = false;
    bool seen = false;
  };
  std::unordered_map<TxId, Anchor> anchors;
  std::set<std::pair<TxId, ObjId>> wrote;
  const std::vector<Event>& events = h.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    Anchor& a = anchors[e.tx];
    if (!a.seen) {
      a.seen = true;
      a.pos = i;  // first-event fallback
    }
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      wrote.insert({e.tx, e.obj});
    } else if (e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
               !a.committed && wrote.count({e.tx, e.obj}) == 0) {
      a.pos = i;  // last non-local read response
    } else if (e.kind == EventKind::kCommit) {
      a.committed = true;
      a.pos = i;
    }
  }
  std::vector<TxId> order;
  order.reserve(anchors.size());
  for (const auto& [tx, a] : anchors) order.push_back(tx);
  std::sort(order.begin(), order.end(), [&](TxId a, TxId b) {
    return anchors.at(a).pos < anchors.at(b).pos;
  });
  return order;
}

namespace {

[[nodiscard]] bool verify_candidate(const History& h,
                                    const std::vector<TxId>& order) {
  try {
    return verify_opacity_certificate(h, order, {}, nullptr);
  } catch (const std::invalid_argument&) {
    // Not a value-unique register history — nothing to reorder.
    return false;
  }
}

}  // namespace

SmartReorderResult smart_reorder_search(const History& h,
                                        std::optional<TxId> prioritize,
                                        std::size_t max_moves) {
  SmartReorderResult result;
  std::vector<TxId> base = anchor_order(h);

  ++result.candidates_tried;
  if (verify_candidate(h, base)) {
    result.certified = true;
    result.order = std::move(base);
    return result;
  }

  // The movers: the last max_moves committers (§3.6 reorders only commits),
  // the prioritized transaction first when given.
  std::vector<TxId> movers;
  if (prioritize.has_value()) movers.push_back(*prioritize);
  std::vector<std::pair<std::size_t, TxId>> committers;  // (C pos, tx)
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind == EventKind::kCommit) committers.push_back({i, h[i].tx});
  }
  for (auto it = committers.rbegin();
       it != committers.rend() && movers.size() < max_moves + 1; ++it) {
    if (std::find(movers.begin(), movers.end(), it->second) == movers.end()) {
      movers.push_back(it->second);
    }
  }

  for (const TxId mover : movers) {
    const auto at = std::find(base.begin(), base.end(), mover);
    if (at == base.end()) continue;
    const std::size_t from = static_cast<std::size_t>(at - base.begin());
    for (std::size_t k = 1; k <= max_moves && k <= from; ++k) {
      std::vector<TxId> candidate = base;
      // Serialize `mover` k positions earlier than its anchor.
      std::rotate(candidate.begin() + static_cast<std::ptrdiff_t>(from - k),
                  candidate.begin() + static_cast<std::ptrdiff_t>(from),
                  candidate.begin() + static_cast<std::ptrdiff_t>(from + 1));
      ++result.candidates_tried;
      if (verify_candidate(h, candidate)) {
        result.certified = true;
        result.order = std::move(candidate);
        return result;
      }
    }
  }
  return result;
}

}  // namespace optm::core
