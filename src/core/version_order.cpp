#include "core/version_order.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/opacity_graph.hpp"

namespace optm::core {

const char* to_string(CertFlagKind k) noexcept {
  switch (k) {
    case CertFlagKind::kNone: return "none";
    case CertFlagKind::kNotWellFormed: return "not-well-formed";
    case CertFlagKind::kValueNotUnique: return "value-not-unique";
    case CertFlagKind::kLocalInconsistency: return "local-inconsistency";
    case CertFlagKind::kUnwrittenValue: return "unwritten-value";
    case CertFlagKind::kSelfRead: return "self-read";
    case CertFlagKind::kReadFromNonCommitted: return "read-from-non-committed";
    case CertFlagKind::kSnapshotEmpty: return "snapshot-empty";
    case CertFlagKind::kStaleRead: return "stale-read";
    case CertFlagKind::kNotCurrentAtCommit: return "not-current-at-commit";
    case CertFlagKind::kNoReadOnlyPoint: return "no-read-only-point";
    case CertFlagKind::kReadStampMismatch: return "read-stamp-mismatch";
    case CertFlagKind::kSmartReorderFailed: return "smart-reorder-failed";
    case CertFlagKind::kNotOpaque: return "not-opaque";
    case CertFlagKind::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

std::vector<TxId> anchor_order(const History& h) {
  struct Anchor {
    std::size_t pos = 0;
    bool committed = false;
    bool seen = false;
  };
  std::unordered_map<TxId, Anchor> anchors;
  std::set<std::pair<TxId, ObjId>> wrote;
  const std::vector<Event>& events = h.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    Anchor& a = anchors[e.tx];
    if (!a.seen) {
      a.seen = true;
      a.pos = i;  // first-event fallback
    }
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      wrote.insert({e.tx, e.obj});
    } else if (e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
               !a.committed && wrote.count({e.tx, e.obj}) == 0) {
      a.pos = i;  // last non-local read response
    } else if (e.kind == EventKind::kCommit) {
      a.committed = true;
      a.pos = i;
    }
  }
  std::vector<TxId> order;
  order.reserve(anchors.size());
  for (const auto& [tx, a] : anchors) order.push_back(tx);
  std::sort(order.begin(), order.end(), [&](TxId a, TxId b) {
    return anchors.at(a).pos < anchors.at(b).pos;
  });
  return order;
}

// ---------------------------------------------------------------------------
// StampPruneIndex
// ---------------------------------------------------------------------------

StampPruneIndex::StampPruneIndex(const History& h) {
  // Value resolution mirroring the certificate's view: value-unique
  // writers per (register, value), non-local reads only (a read preceded
  // by the transaction's own write to the register answers from its write
  // buffer and induces no reads-from edge).
  std::map<std::pair<ObjId, Value>, TxId> writer_of;
  std::set<std::pair<TxId, ObjId>> wrote;
  std::unordered_map<TxId, std::uint64_t> commit_stamp;
  // Per register: committed stamped writers as (C stamp, writer).
  std::map<ObjId, std::vector<std::pair<std::uint64_t, TxId>>> stamped_writers;

  struct PendingRead {
    TxId reader;
    ObjId obj;
    Value value;
    std::uint64_t ver;  // Event::ver (kNoReadVersion when unnamed)
    bool stamped;
  };
  std::vector<PendingRead> reads;

  for (const Event& e : h.events()) {
    switch (e.kind) {
      case EventKind::kInvoke:
        if (e.op == OpCode::kWrite) {
          writer_of.emplace(std::make_pair(e.obj, e.arg), e.tx);
        }
        break;
      case EventKind::kResponse:
        if (e.op == OpCode::kWrite) {
          wrote.insert({e.tx, e.obj});
        } else if (e.op == OpCode::kRead && wrote.count({e.tx, e.obj}) == 0) {
          reads.push_back({e.tx, e.obj, e.ret, e.ver,
                           e.stamp != 0 && e.ver != kNoReadVersion});
        }
        break;
      case EventKind::kCommit:
        if (e.stamp != 0 && (e.stamp & 1) == 0) commit_stamp[e.tx] = e.stamp;
        break;
      default:
        break;
    }
  }
  for (const auto& [wtx, obj] : wrote) {
    const auto s = commit_stamp.find(wtx);
    if (s != commit_stamp.end()) {
      stamped_writers[obj].push_back({s->second, wtx});
    }
  }
  for (auto& [obj, writers] : stamped_writers) {
    std::sort(writers.begin(), writers.end());
  }

  for (const PendingRead& r : reads) {
    const auto w = writer_of.find({r.obj, r.value});
    // Unresolvable reads condemn every order at the exact pass already;
    // no constraint needed (and none would be sound to skip on).
    if (w == writer_of.end()) continue;
    const TxId writer = w->second;
    if (writer == r.reader) continue;
    Constraint c;
    c.reader = r.reader;
    c.writer = writer;
    if (r.stamped && r.ver <= (~std::uint64_t{0} >> 1)) {
      // The stamp names the version (open rank 2·ver): its overwriter is
      // the committed writer of the next stamped version of the register.
      const auto sw = stamped_writers.find(r.obj);
      if (sw != stamped_writers.end()) {
        const auto next = std::upper_bound(
            sw->second.begin(), sw->second.end(),
            std::make_pair(2 * r.ver, std::numeric_limits<TxId>::max()));
        if (next != sw->second.end() && next->second != r.reader &&
            next->second != writer && next->second != kInitTx) {
          c.overwriter = next->second;
        }
      }
    }
    if (writer == kInitTx && c.overwriter == kNoTx) continue;  // trivial
    constraints_.push_back(c);
  }
}

bool StampPruneIndex::rejects(const std::vector<TxId>& order) const {
  if (constraints_.empty()) return false;
  ++epoch_;
  std::size_t need = 1;
  for (const TxId tx : order) {
    need = std::max<std::size_t>(need, static_cast<std::size_t>(tx) + 1);
  }
  // Sparse adversarial ids would balloon the dense rank scratch; such
  // histories just forgo pruning (the exact pass still decides them).
  if (need > (std::size_t{1} << 22)) return false;
  if (rank_.size() < need) rank_.resize(need, {0, 0});
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == kInitTx) continue;
    rank_[order[i]] = {epoch_, i + 1};
  }
  const auto rank_of = [&](TxId tx) -> std::size_t {
    // The initializer ranks 0 wherever it appears — exactly how
    // ranks_from_order treats an explicit T0 in a candidate order.
    if (tx == kInitTx) return 0;
    if (static_cast<std::size_t>(tx) >= rank_.size() ||
        rank_[tx].first != epoch_) {
      return kOpenVersionRank;  // not in the order: no claim
    }
    return rank_[tx].second;
  };
  for (const Constraint& c : constraints_) {
    const std::size_t rr = rank_of(c.reader);
    if (rr == kOpenVersionRank) continue;
    const std::size_t rw = rank_of(c.writer);
    if (rw == kOpenVersionRank) continue;
    // Certificate check (b): reads-from must follow ≪.
    if (rw >= rr) return true;
    if (c.overwriter != kNoTx) {
      const std::size_t ro = rank_of(c.overwriter);
      // Certificate check (d): a visible writer of the register must not
      // rank strictly between the reads-from endpoints.
      if (ro != kOpenVersionRank && rw < ro && ro < rr) return true;
    }
  }
  return false;
}

namespace {

[[nodiscard]] bool verify_candidate(const History& h,
                                    const std::vector<TxId>& order) {
  try {
    return verify_opacity_certificate(h, order, {}, nullptr);
  } catch (const std::invalid_argument&) {
    // Not a value-unique register history — nothing to reorder.
    return false;
  }
}

/// Reorder `anchor` so that the transactions present in `hint` keep the
/// hint's RELATIVE order (at the anchor slots hint members occupy), while
/// transactions the hint has never seen stay at their anchor positions —
/// the incremental extension of a previously certified witness. O(T):
/// this runs once per verified response in search mode, so linear scans
/// per element would make the fast path quadratic in the prefix.
[[nodiscard]] std::vector<TxId> extend_hint(const std::vector<TxId>& anchor,
                                            const std::vector<TxId>& hint) {
  std::unordered_set<TxId> in_anchor(anchor.begin(), anchor.end());
  std::vector<TxId> known;
  known.reserve(hint.size());
  for (const TxId tx : hint) {
    if (in_anchor.count(tx) != 0) known.push_back(tx);
  }
  const std::unordered_set<TxId> in_known(known.begin(), known.end());
  std::vector<TxId> out = anchor;
  std::size_t next = 0;
  for (TxId& slot : out) {
    if (in_known.count(slot) != 0) slot = known[next++];
  }
  return out;
}

}  // namespace

SmartReorderResult smart_reorder_search(const History& h,
                                        const SmartReorderOptions& options) {
  SmartReorderResult result;
  std::vector<TxId> base = anchor_order(h);

  // The prune index costs an O(n log n) scan of the whole history, so it
  // is built lazily — only once a candidate actually reaches a prune
  // check (never when stamp_prune is off, and not at all when the hint
  // certifies, the streaming search mode's common case).
  std::optional<StampPruneIndex> pruner;
  const auto prune_rejects = [&](const std::vector<TxId>& candidate) {
    if (!options.stamp_prune) return false;
    if (!pruner.has_value()) pruner.emplace(h);
    return pruner->rejects(candidate);
  };

  const auto try_candidate = [&](std::vector<TxId>&& candidate,
                                 bool prune = true) {
    ++result.candidates_tried;
    if (prune && prune_rejects(candidate)) {
      ++result.candidates_pruned;
      return false;
    }
    if (verify_candidate(h, candidate)) {
      result.certified = true;
      result.order = std::move(candidate);
      return true;
    }
    return false;
  };

  // The hint first: the witness that certified the previous prefix,
  // extended with the transactions that appeared since, usually certifies
  // this one — the incremental fast path of the monitor's search mode. It
  // goes straight to the exact pass (a just-certified order rarely prunes,
  // and skipping the check keeps the fast path free of the index build).
  if (options.hint != nullptr && !options.hint->empty()) {
    std::vector<TxId> hinted = extend_hint(base, *options.hint);
    if (hinted != base && try_candidate(std::move(hinted), /*prune=*/false)) {
      return result;
    }
  }

  if (try_candidate(std::vector<TxId>(base))) return result;

  // The movers: the last max_moves committers (§3.6 reorders only commits),
  // the prioritized transaction first when given.
  std::vector<TxId> movers;
  if (options.prioritize.has_value()) movers.push_back(*options.prioritize);
  std::vector<std::pair<std::size_t, TxId>> committers;  // (C pos, tx)
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind == EventKind::kCommit) committers.push_back({i, h[i].tx});
  }
  for (auto it = committers.rbegin();
       it != committers.rend() && movers.size() < options.max_moves + 1;
       ++it) {
    if (std::find(movers.begin(), movers.end(), it->second) == movers.end()) {
      movers.push_back(it->second);
    }
  }

  for (const TxId mover : movers) {
    const auto at = std::find(base.begin(), base.end(), mover);
    if (at == base.end()) continue;
    const std::size_t from = static_cast<std::size_t>(at - base.begin());
    for (std::size_t k = 1; k <= options.max_moves && k <= from; ++k) {
      std::vector<TxId> candidate = base;
      // Serialize `mover` k positions earlier than its anchor.
      std::rotate(candidate.begin() + static_cast<std::ptrdiff_t>(from - k),
                  candidate.begin() + static_cast<std::ptrdiff_t>(from),
                  candidate.begin() + static_cast<std::ptrdiff_t>(from + 1));
      if (try_candidate(std::move(candidate))) return result;
    }
  }
  return result;
}

}  // namespace optm::core
