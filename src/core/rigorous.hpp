// Rigorous scheduling (paper §3.6, after Breitbart et al. '91).
//
// A history is rigorous if, in addition to strict recoverability (no
// operation on an object updated by an incomplete transaction), no
// transaction updates an object that an incomplete transaction has read.
// §3.6 argues this is *too strong* a basis for TM correctness: the
// overlapping blind-writes example is perfectly acceptable (and opaque)
// yet not rigorous.
#pragma once

#include <string>

#include "core/history.hpp"

namespace optm::core {

struct RigorousResult {
  bool holds{false};
  std::string reason;
};

[[nodiscard]] RigorousResult check_rigorous(const History& h);

}  // namespace optm::core
