#include "core/recoverability.hpp"

#include <limits>
#include <map>
#include <stdexcept>

namespace optm::core {

namespace {

/// Position of the commit event of each committed transaction.
std::map<TxId, std::size_t> commit_positions(const History& h) {
  std::map<TxId, std::size_t> pos;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind == EventKind::kCommit) pos[h[i].tx] = i;
  }
  return pos;
}

}  // namespace

std::vector<bool> executed_invocations(const History& h) {
  std::vector<bool> executed(h.size(), false);
  std::map<TxId, std::size_t> pending;  // tx -> position of its open inv
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke) {
      pending[e.tx] = i;
    } else if (e.kind == EventKind::kResponse) {
      const auto it = pending.find(e.tx);
      if (it != pending.end()) {
        executed[it->second] = true;
        pending.erase(it);
      }
    } else if (e.kind == EventKind::kAbort) {
      pending.erase(e.tx);  // A instead of a response: the op never executed
    }
  }
  return executed;
}

RecoverabilityResult check_recoverability(const History& h) {
  RecoverabilityResult result{true, ""};
  const auto& model = h.model();

  // Resolve reads-from by value (value-unique writes).
  std::map<std::pair<ObjId, Value>, TxId> writer_of;
  for (const Event& e : h.events()) {
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      const auto [it, inserted] =
          writer_of.emplace(std::make_pair(e.obj, e.arg), e.tx);
      if (!inserted && it->second != e.tx) {
        throw std::invalid_argument("recoverability: writes must be value-unique");
      }
    }
  }

  const auto commits = commit_positions(h);
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind != EventKind::kResponse || e.op != OpCode::kRead) continue;
    if (!model.contains(e.obj) || model.spec(e.obj).name() != "register") continue;

    const auto w = writer_of.find({e.obj, e.ret});
    if (w == writer_of.end() || w->second == e.tx) continue;  // initial / own
    const TxId reader = e.tx;
    const TxId writer = w->second;
    if (!h.is_committed(reader)) continue;  // only committed readers constrained

    if (!h.is_committed(writer)) {
      result.holds = false;
      result.reason = "committed T" + std::to_string(reader) +
                      " read from non-committed T" + std::to_string(writer);
      return result;
    }
    if (commits.at(writer) > commits.at(reader)) {
      result.holds = false;
      result.reason = "T" + std::to_string(reader) + " committed before T" +
                      std::to_string(writer) + " it read from";
      return result;
    }
  }
  return result;
}

RecoverabilityResult check_strict_recoverability(const History& h) {
  RecoverabilityResult result{true, ""};
  const auto& model = h.model();

  // For each transaction: position of its completion event (or end of H).
  std::map<TxId, std::size_t> completion;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kCommit || e.kind == EventKind::kAbort)
      completion[e.tx] = i;
  }
  const std::size_t never = std::numeric_limits<std::size_t>::max();

  // For each (tx, obj): position of the first EXECUTED update (an
  // invocation answered by A never became an operation execution in the
  // paper's model — a refused lock request, say, does not access the
  // object).
  const std::vector<bool> executed = executed_invocations(h);
  std::map<std::pair<TxId, ObjId>, std::size_t> first_update;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke && executed[i] &&
        !model.spec(e.obj).is_readonly(e.op)) {
      first_update.emplace(std::make_pair(e.tx, e.obj), i);
    }
  }

  for (const auto& [key, start] : first_update) {
    const auto [updater, obj] = key;
    const auto done = completion.count(updater) ? completion.at(updater) : never;
    for (std::size_t i = start + 1; i < h.size() && i < done; ++i) {
      const Event& e = h[i];
      if (e.kind == EventKind::kInvoke && executed[i] && e.obj == obj &&
          e.tx != updater) {
        result.holds = false;
        result.reason =
            "T" + std::to_string(e.tx) + " operated on x" + std::to_string(obj) +
            " while updater T" + std::to_string(updater) + " was incomplete";
        return result;
      }
    }
  }
  return result;
}

}  // namespace optm::core
