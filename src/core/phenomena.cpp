#include "core/phenomena.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace optm::core {

namespace {

struct WriterTable {
  /// (register, value) -> writing transaction.
  std::map<std::pair<ObjId, Value>, TxId> writer_of;
  /// Commit-event position per committed transaction.
  std::map<TxId, std::size_t> commit_pos;
  /// tryC position per transaction that issued one.
  std::map<TxId, std::size_t> tryc_pos;

  explicit WriterTable(const History& h) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
        const auto [it, inserted] =
            writer_of.emplace(std::make_pair(e.obj, e.arg), e.tx);
        if (!inserted && it->second != e.tx) {
          throw std::invalid_argument("phenomena: writes must be value-unique");
        }
      } else if (e.kind == EventKind::kCommit) {
        commit_pos[e.tx] = i;
      } else if (e.kind == EventKind::kTryCommit) {
        tryc_pos[e.tx] = i;
      }
    }
  }
};

bool is_register(const History& h, ObjId obj) {
  return h.model().contains(obj) && h.model().spec(obj).name() == "register";
}

}  // namespace

std::optional<DirtyRead> find_dirty_read(const History& h) {
  const WriterTable table(h);
  std::map<std::pair<TxId, ObjId>, Value> own_write;

  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      own_write[{e.tx, e.obj}] = e.arg;
      continue;
    }
    if (e.kind != EventKind::kResponse || e.op != OpCode::kRead ||
        !is_register(h, e.obj)) {
      continue;
    }
    const auto own = own_write.find({e.tx, e.obj});
    if (own != own_write.end() && own->second == e.ret) continue;  // local

    const auto w = table.writer_of.find({e.obj, e.ret});
    if (w == table.writer_of.end() || w->second == e.tx) continue;  // initial
    const TxId writer = w->second;

    const auto c = table.commit_pos.find(writer);
    if (c != table.commit_pos.end() && c->second < i) continue;  // clean

    DirtyRead dirty;
    dirty.reader = e.tx;
    dirty.writer = writer;
    dirty.obj = e.obj;
    dirty.value = e.ret;
    dirty.read_pos = i;
    const auto t = table.tryc_pos.find(writer);
    dirty.writer_commit_pending = t != table.tryc_pos.end() && t->second < i;
    return dirty;
  }
  return std::nullopt;
}

std::optional<InconsistentSnapshot> find_inconsistent_snapshot(const History& h) {
  const WriterTable table(h);
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  // For each register: committed writes sorted by commit position. A version
  // written by W is "current" from commit(W) until the next committed write
  // to the same register commits. Initial values are current from position
  // 0 (exclusive lower bound handled by using 0) until the first committed
  // write to that register.
  std::map<ObjId, std::vector<std::pair<std::size_t, TxId>>> commits_per_reg;
  for (const auto& [key, writer] : table.writer_of) {
    const auto c = table.commit_pos.find(writer);
    if (c != table.commit_pos.end())
      commits_per_reg[key.first].emplace_back(c->second, writer);
  }
  for (auto& [obj, v] : commits_per_reg) std::sort(v.begin(), v.end());

  // Validity interval [from, to) of a (register, value) version.
  auto interval = [&](ObjId obj, TxId writer) -> std::pair<std::size_t, std::size_t> {
    const auto& commits = commits_per_reg[obj];
    if (writer == kNoTx) {  // initial value
      const std::size_t to = commits.empty() ? kNever : commits.front().first;
      return {0, to};
    }
    const auto c = table.commit_pos.find(writer);
    if (c == table.commit_pos.end()) {
      // A commit-pending writer may yet commit (H4's situation): its version
      // becomes current after everything committed so far. Aborted or plain
      // live writers produce versions that are never current.
      if (h.is_commit_pending(writer)) return {h.size(), kNever};
      return {kNever, kNever};
    }
    const auto it = std::upper_bound(
        commits.begin(), commits.end(),
        std::make_pair(c->second, std::numeric_limits<TxId>::max()));
    return {c->second, it == commits.end() ? kNever : it->first};
  };

  // Per transaction: intersect the validity intervals of everything it read.
  struct SeenRead {
    ObjId obj;
    Value value;
    std::size_t from, to;
  };
  std::map<TxId, std::vector<SeenRead>> seen;
  std::map<std::pair<TxId, ObjId>, bool> wrote;  // local-read suppression

  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      wrote[{e.tx, e.obj}] = true;
      continue;
    }
    if (e.kind != EventKind::kResponse || e.op != OpCode::kRead ||
        !is_register(h, e.obj)) {
      continue;
    }
    if (wrote.count({e.tx, e.obj})) continue;  // local read

    const auto w = table.writer_of.find({e.obj, e.ret});
    const TxId writer =
        (w == table.writer_of.end() || w->second == e.tx) ? kNoTx : w->second;
    const auto [from, to] = interval(e.obj, writer);

    if (from == kNever && writer != kNoTx) {
      // The observed version was never committed at all: no committed-prefix
      // state ever contained it.
      InconsistentSnapshot out;
      out.tx = e.tx;
      out.obj_a = out.obj_b = e.obj;
      out.value_a = out.value_b = e.ret;
      out.explanation = "T" + std::to_string(e.tx) + " read x" +
                        std::to_string(e.obj) + "=" + std::to_string(e.ret) +
                        " from a transaction that never committed";
      return out;
    }

    auto& reads = seen[e.tx];
    for (const SeenRead& prev : reads) {
      // Two reads are compatible iff their validity intervals intersect.
      const std::size_t lo = std::max(prev.from, from);
      const std::size_t hi = std::min(prev.to, to);
      if (lo >= hi) {
        InconsistentSnapshot out;
        out.tx = e.tx;
        out.obj_a = prev.obj;
        out.value_a = prev.value;
        out.obj_b = e.obj;
        out.value_b = e.ret;
        out.explanation =
            "T" + std::to_string(e.tx) + " read x" + std::to_string(prev.obj) +
            "=" + std::to_string(prev.value) + " and x" + std::to_string(e.obj) +
            "=" + std::to_string(e.ret) +
            ", versions never simultaneously current";
        return out;
      }
    }
    reads.push_back({e.obj, e.ret, from, to});
  }
  return std::nullopt;
}

std::optional<WriteSkew> find_write_skew(const History& h) {
  const WriterTable table(h);

  // Per committed transaction: registers written, and non-local reads with
  // the transaction that wrote the observed value (kNoTx = initial value).
  struct ReadObs {
    ObjId obj;
    TxId from;
  };
  struct TxFacts {
    std::vector<ObjId> writes;
    std::vector<ReadObs> reads;
  };
  std::map<TxId, TxFacts> facts;
  std::map<std::pair<TxId, ObjId>, bool> wrote;

  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (!is_register(h, e.obj)) continue;
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      wrote[{e.tx, e.obj}] = true;
      continue;
    }
    if (e.kind != EventKind::kResponse) continue;
    if (e.op == OpCode::kWrite) {
      facts[e.tx].writes.push_back(e.obj);
    } else if (e.op == OpCode::kRead && !wrote.count({e.tx, e.obj})) {
      const auto w = table.writer_of.find({e.obj, e.ret});
      const TxId from =
          (w == table.writer_of.end() || w->second == e.tx) ? kNoTx : w->second;
      facts[e.tx].reads.push_back({e.obj, from});
    }
  }

  const auto writes_obj = [](const TxFacts& f, ObjId obj) {
    return std::find(f.writes.begin(), f.writes.end(), obj) != f.writes.end();
  };
  // Did `reader` observe the PRE-state of an object `other` wrote? (A read
  // of obj whose observed version came from neither `other` nor `reader`.)
  const auto missed_update = [&](const TxFacts& reader, const TxFacts& other,
                                 TxId other_id) -> std::optional<ObjId> {
    for (const ReadObs& r : reader.reads) {
      if (writes_obj(other, r.obj) && r.from != other_id) return r.obj;
    }
    return std::nullopt;
  };

  for (auto a = facts.begin(); a != facts.end(); ++a) {
    if (!h.is_committed(a->first)) continue;
    for (auto b = std::next(a); b != facts.end(); ++b) {
      if (!h.is_committed(b->first)) continue;
      if (!h.concurrent(a->first, b->first)) continue;
      // Disjoint write sets — otherwise first-committer-wins style checks
      // would have caught the conflict (that is the lost-update shape).
      bool overlap = false;
      for (const ObjId obj : a->second.writes) {
        if (writes_obj(b->second, obj)) {
          overlap = true;
          break;
        }
      }
      if (overlap) continue;
      const auto ra = missed_update(a->second, b->second, b->first);
      if (!ra) continue;
      const auto rb = missed_update(b->second, a->second, a->first);
      if (!rb) continue;
      WriteSkew skew;
      skew.tx_a = a->first;
      skew.tx_b = b->first;
      skew.read_by_a_written_by_b = *ra;
      skew.read_by_b_written_by_a = *rb;
      skew.explanation =
          "committed T" + std::to_string(a->first) + " and T" +
          std::to_string(b->first) + " are concurrent, wrote disjoint sets, " +
          "and each read the pre-state of an object the other wrote (x" +
          std::to_string(*ra) + ", x" + std::to_string(*rb) + ")";
      return skew;
    }
  }
  return std::nullopt;
}

}  // namespace optm::core
