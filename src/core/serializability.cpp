#include "core/serializability.hpp"

#include <algorithm>
#include <map>

namespace optm::core {

namespace {

SerializabilityResult run_view_search(const History& h, bool real_time,
                                      std::uint64_t max_states) {
  const HistoryIndex index(h);
  SearchSpec spec;
  spec.index = &index;
  spec.require_real_time = real_time;
  spec.max_states = max_states;
  for (std::size_t i = 0; i < index.num_txs(); ++i) {
    if (index.txs()[i].status != TxStatus::kCommitted) continue;
    spec.participants.push_back(i);
    spec.roles.emplace_back(Role::kCommitted);
  }

  const SearchOutcome outcome = search_legal_serialization(spec);
  SerializabilityResult result;
  result.verdict = outcome.verdict;
  result.witness = outcome.witness;
  result.states_explored = outcome.states_explored;
  if (result.verdict == Verdict::kNo) {
    result.reason = real_time
                        ? "no legal real-time-preserving serialization of the "
                          "committed transactions"
                        : "no legal serialization of the committed transactions";
  } else if (result.verdict == Verdict::kUnknown) {
    result.reason = "search budget exhausted";
  }
  return result;
}

struct CommittedOps {
  std::vector<TxId> txs;                      // committed, in first-event order
  std::map<TxId, std::size_t> dense;          // TxId -> index in txs
  // Completed register operations of committed transactions, in H order:
  struct Op {
    TxId tx;
    ObjId obj;
    bool is_write;
    std::size_t inv_pos;
    std::size_t ret_pos;
  };
  std::vector<Op> ops;
};

/// Collect the committed register operations, or return an explanation of
/// why the conflict framework does not apply.
bool collect(const History& h, CommittedOps& out, std::string* why) {
  for (TxId tx : h.transactions()) {
    if (h.is_committed(tx)) {
      out.dense[tx] = out.txs.size();
      out.txs.push_back(tx);
    }
  }
  std::map<TxId, std::pair<Event, std::size_t>> pending;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (!out.dense.count(e.tx)) continue;
    if (e.kind == EventKind::kInvoke) {
      if (e.op != OpCode::kRead && e.op != OpCode::kWrite) {
        if (why != nullptr)
          *why = "conflict serializability requires register operations only";
        return false;
      }
      pending[e.tx] = {e, i};
    } else if (e.kind == EventKind::kResponse) {
      const auto [inv, inv_pos] = pending.at(e.tx);
      pending.erase(e.tx);
      out.ops.push_back(
          {e.tx, inv.obj, inv.op == OpCode::kWrite, inv_pos, i});
    }
  }
  // Precondition: conflicting operations of distinct transactions are
  // totally ordered (no interval overlap).
  for (std::size_t a = 0; a < out.ops.size(); ++a) {
    for (std::size_t b = a + 1; b < out.ops.size(); ++b) {
      const auto& oa = out.ops[a];
      const auto& ob = out.ops[b];
      if (oa.tx == ob.tx || oa.obj != ob.obj) continue;
      if (!oa.is_write && !ob.is_write) continue;
      const bool disjoint = oa.ret_pos < ob.inv_pos || ob.ret_pos < oa.inv_pos;
      if (!disjoint) {
        if (why != nullptr)
          *why = "conflicting operations overlap; conflict order undefined";
        return false;
      }
    }
  }
  return true;
}

ConflictResult conflict_check(const History& h, bool strict) {
  ConflictResult result;
  CommittedOps cops;
  std::string why;
  if (!collect(h, cops, &why)) {
    result.verdict = Verdict::kUnknown;
    result.reason = why;
    return result;
  }

  const std::size_t n = cops.txs.size();
  std::vector<std::vector<bool>> edge(n, std::vector<bool>(n, false));
  for (const auto& oa : cops.ops) {
    for (const auto& ob : cops.ops) {
      if (oa.tx == ob.tx || oa.obj != ob.obj) continue;
      if (!oa.is_write && !ob.is_write) continue;
      if (oa.ret_pos < ob.inv_pos) {
        edge[cops.dense[oa.tx]][cops.dense[ob.tx]] = true;
      }
    }
  }
  if (strict) {
    for (TxId a : cops.txs) {
      for (TxId b : cops.txs) {
        if (a != b && h.precedes(a, b)) edge[cops.dense[a]][cops.dense[b]] = true;
      }
    }
  }

  // Kahn's algorithm; a completed topological order is the witness.
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      if (edge[i][k]) ++indeg[k];
  std::vector<TxId> order;
  std::vector<bool> done(n, false);
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!done[i] && indeg[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == n) {
      result.verdict = Verdict::kNo;
      result.reason = "conflict graph is cyclic";
      return result;
    }
    done[pick] = true;
    order.push_back(cops.txs[pick]);
    for (std::size_t k = 0; k < n; ++k)
      if (edge[pick][k]) --indeg[k];
  }
  result.verdict = Verdict::kYes;
  result.order = std::move(order);
  return result;
}

}  // namespace

SerializabilityResult check_serializability(const History& h,
                                            std::uint64_t max_states) {
  return run_view_search(h, /*real_time=*/false, max_states);
}

SerializabilityResult check_strict_serializability(const History& h,
                                                   std::uint64_t max_states) {
  return run_view_search(h, /*real_time=*/true, max_states);
}

ConflictResult check_conflict_serializability(const History& h) {
  return conflict_check(h, /*strict=*/false);
}

ConflictResult check_strict_conflict_serializability(const History& h) {
  return conflict_check(h, /*strict=*/true);
}

}  // namespace optm::core
