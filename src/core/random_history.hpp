// Seeded random history generation for property-based testing.
//
// Two value models:
//  * kCoherent — transactions run against a shared committed store with
//    buffered writes and commit-time publication, under a random scheduler.
//    Reads return the committed value at read time (plus the transaction's
//    own buffered writes). This mimics an invisible-read STM *without*
//    validation, so it produces a healthy mix of opaque histories and
//    realistic opacity violations (inconsistent snapshots) — ideal for
//    cross-validating the definitional and graph checkers (Theorem 2).
//  * kAdversarial — read values are drawn at random from the values written
//    anywhere in the history (or the initial value); almost always breaks
//    opacity in small histories, exercising the checkers' reject paths.
//
// Writes are value-unique so the §5.4 machinery applies.
#pragma once

#include <cstdint>

#include "core/history.hpp"

namespace optm::core {

enum class ValueModel : std::uint8_t { kCoherent, kAdversarial };

struct RandomHistoryParams {
  std::uint64_t seed = 1;
  std::size_t num_txs = 5;
  std::size_t num_objects = 3;
  std::size_t min_ops_per_tx = 1;
  std::size_t max_ops_per_tx = 4;
  double write_prob = 0.5;        // per op: write vs read
  double voluntary_abort_prob = 0.1;   // tryA instead of tryC
  double leave_live_prob = 0.05;       // no termination events at all
  double leave_commit_pending_prob = 0.1;  // tryC without C/A
  double commit_fail_prob = 0.15;      // tryC answered with A
  double split_op_prob = 0.3;          // responses delayed past other events
  ValueModel value_model = ValueModel::kCoherent;
};

/// Generate a well-formed random register history. Deterministic in
/// `params` (including the seed).
[[nodiscard]] History random_history(const RandomHistoryParams& params);

/// Parameters for random_mv_history: a faithful simulation of a
/// multi-version STM (MvStm's algorithm — begin-time snapshots, snapshot
/// reads, first-committer-wins validation) recorded WITHOUT the recorder's
/// exclusive commit window: a commit's clock advance (its serialization
/// point) and its C record are no longer atomic, so C records drift past
/// each other and past reads, and the RECORD order of commits diverges
/// from the stamp (version) order. Every generated history is opaque by
/// construction — serialize committed updates by stamp and snapshot
/// transactions at their snapshot — but the commit-order certificate
/// falsely flags the drifted ones; the SnapshotRank policy certifies them
/// from the stamps the C/A events carry.
struct MvHistoryParams {
  std::uint64_t seed = 1;
  std::size_t num_txs = 10;
  std::size_t num_objects = 4;
  std::size_t num_procs = 3;
  std::size_t min_ops_per_tx = 1;
  std::size_t max_ops_per_tx = 4;
  /// Probability a transaction is declared read-only (snapshot reads, no
  /// validation — the H4 escape route).
  double read_only_prob = 0.45;
  /// Per op of an update transaction: write vs read.
  double write_prob = 0.5;
  /// Probability an update commit's C record drifts past later scheduler
  /// steps (the window-free recorder). 0 degenerates to commit order.
  double record_delay_prob = 0.5;
  /// Maximum drift, in scheduler steps.
  std::size_t max_record_delay_steps = 6;
  /// Stamp every non-local read with its (2·snapshot+1, version) pair —
  /// what MvStm records window-free since PR 4. The stamps are truthful
  /// by construction; kStampedRead validates them, and the BlindWriteSmart
  /// stamp pruning (StampPruneIndex) keys off the named versions.
  bool stamp_reads = true;
};

/// Generate a well-formed, opaque-by-construction MV register history with
/// stamped C/A events (Event::stamp: 2·wv updates, 2·snapshot+1 snapshot
/// transactions) and, by default, stamped non-local reads. Deterministic
/// in `params`.
[[nodiscard]] History random_mv_history(const MvHistoryParams& params);

}  // namespace optm::core
