// Seeded random history generation for property-based testing.
//
// Two value models:
//  * kCoherent — transactions run against a shared committed store with
//    buffered writes and commit-time publication, under a random scheduler.
//    Reads return the committed value at read time (plus the transaction's
//    own buffered writes). This mimics an invisible-read STM *without*
//    validation, so it produces a healthy mix of opaque histories and
//    realistic opacity violations (inconsistent snapshots) — ideal for
//    cross-validating the definitional and graph checkers (Theorem 2).
//  * kAdversarial — read values are drawn at random from the values written
//    anywhere in the history (or the initial value); almost always breaks
//    opacity in small histories, exercising the checkers' reject paths.
//
// Writes are value-unique so the §5.4 machinery applies.
#pragma once

#include <cstdint>

#include "core/history.hpp"

namespace optm::core {

enum class ValueModel : std::uint8_t { kCoherent, kAdversarial };

struct RandomHistoryParams {
  std::uint64_t seed = 1;
  std::size_t num_txs = 5;
  std::size_t num_objects = 3;
  std::size_t min_ops_per_tx = 1;
  std::size_t max_ops_per_tx = 4;
  double write_prob = 0.5;        // per op: write vs read
  double voluntary_abort_prob = 0.1;   // tryA instead of tryC
  double leave_live_prob = 0.05;       // no termination events at all
  double leave_commit_pending_prob = 0.1;  // tryC without C/A
  double commit_fail_prob = 0.15;      // tryC answered with A
  double split_op_prob = 0.3;          // responses delayed past other events
  ValueModel value_model = ValueModel::kCoherent;
};

/// Generate a well-formed random register history. Deterministic in
/// `params` (including the seed).
[[nodiscard]] History random_history(const RandomHistoryParams& params);

}  // namespace optm::core
